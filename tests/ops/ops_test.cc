#include <gtest/gtest.h>

#include "ops/alert.h"
#include "ops/report.h"

namespace blameit::ops {
namespace {

class OpsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 1;
    cfg.eyeballs_per_region = 2;
    cfg.blocks_per_eyeball = 2;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  static core::StepReport report_with_middle_issue(double impact) {
    core::StepReport report;
    report.now = util::MinuteTime{100};
    core::MiddleIssue issue;
    issue.location = topo_->locations().front().id;
    issue.middle = net::MiddleSegmentId{0};
    issue.client_time_product = impact;
    report.ranked_issues.push_back(issue);
    return report;
  }

  static core::BlameResult blame(core::Blame category, int samples) {
    core::BlameResult r;
    r.blame = category;
    r.quartet.key.location = topo_->locations().front().id;
    r.quartet.client_as = net::AsId{20000};
    r.quartet.sample_count = samples;
    if (category == core::Blame::Cloud) r.faulty_as = topo_->cloud_as();
    if (category == core::Blame::Client) r.faulty_as = net::AsId{20000};
    return r;
  }

  static const net::Topology* topo_;
};

const net::Topology* OpsTest::topo_ = nullptr;

TEST_F(OpsTest, MiddleIssueTicketRoutedToPeering) {
  AlertSink sink;
  const auto tickets = sink.digest(report_with_middle_issue(500.0));
  ASSERT_EQ(tickets.size(), 1u);
  EXPECT_EQ(tickets[0].team, Team::Peering);
  EXPECT_EQ(tickets[0].category, core::Blame::Middle);
  EXPECT_FALSE(tickets[0].id.empty());
}

TEST_F(OpsTest, CloudAndClientBlamesRouteToRightTeams) {
  AlertSink sink;
  core::StepReport report;
  report.now = util::MinuteTime{100};
  for (int i = 0; i < 30; ++i) {
    report.blames.push_back(blame(core::Blame::Cloud, 50));
    report.blames.push_back(blame(core::Blame::Client, 50));
  }
  const auto tickets = sink.digest(report);
  ASSERT_EQ(tickets.size(), 2u);
  bool cloud_infra = false;
  bool client_comms = false;
  for (const auto& t : tickets) {
    cloud_infra |= t.team == Team::CloudInfra;
    client_comms |= t.team == Team::ClientComms;
  }
  EXPECT_TRUE(cloud_infra);
  EXPECT_TRUE(client_comms);
}

TEST_F(OpsTest, RepeatedIssueNotReTicketed) {
  AlertSink sink;
  EXPECT_EQ(sink.digest(report_with_middle_issue(500.0)).size(), 1u);
  EXPECT_EQ(sink.digest(report_with_middle_issue(600.0)).size(), 0u);
  EXPECT_EQ(sink.all_tickets().size(), 1u);
}

TEST_F(OpsTest, LowImpactFilteredOut) {
  AlertConfig cfg;
  cfg.min_impact_users = 10.0;
  AlertSink sink{cfg};
  EXPECT_TRUE(sink.digest(report_with_middle_issue(2.0)).empty());
}

TEST_F(OpsTest, TicketBudgetPerStep) {
  AlertConfig cfg;
  cfg.max_tickets_per_step = 2;
  AlertSink sink{cfg};
  core::StepReport report;
  report.now = util::MinuteTime{100};
  for (std::uint32_t i = 0; i < 6; ++i) {
    core::MiddleIssue issue;
    issue.location = topo_->locations().front().id;
    issue.middle = net::MiddleSegmentId{i};
    issue.client_time_product = 100.0 + i;
    report.ranked_issues.push_back(issue);
  }
  EXPECT_EQ(sink.digest(report).size(), 2u);
}

TEST_F(OpsTest, HighestImpactFirst) {
  AlertConfig cfg;
  cfg.max_tickets_per_step = 1;
  AlertSink sink{cfg};
  core::StepReport report;
  report.now = util::MinuteTime{100};
  for (std::uint32_t i = 0; i < 3; ++i) {
    core::MiddleIssue issue;
    issue.location = topo_->locations().front().id;
    issue.middle = net::MiddleSegmentId{i};
    issue.client_time_product = 100.0 * (i + 1);
    report.ranked_issues.push_back(issue);
  }
  const auto tickets = sink.digest(report);
  ASSERT_EQ(tickets.size(), 1u);
  EXPECT_DOUBLE_EQ(tickets[0].impact, 300.0);
}

TEST_F(OpsTest, RenderStepMentionsBlamesAndProbes) {
  auto report = report_with_middle_issue(42.0);
  report.on_demand_probes = 3;
  report.background_probes = 7;
  report.blames.push_back(blame(core::Blame::Middle, 50));
  const auto text = render_step(report, *topo_);
  EXPECT_NE(text.find("middle=1"), std::string::npos);
  EXPECT_NE(text.find("on-demand=3"), std::string::npos);
  EXPECT_NE(text.find("background=7"), std::string::npos);
  EXPECT_NE(text.find("top issue"), std::string::npos);
}

TEST_F(OpsTest, RenderTicketContainsRoutingInfo) {
  AlertSink sink;
  const auto tickets = sink.digest(report_with_middle_issue(500.0));
  ASSERT_EQ(tickets.size(), 1u);
  const auto line = render_ticket(tickets[0], *topo_);
  EXPECT_NE(line.find("BLM-"), std::string::npos);
  EXPECT_NE(line.find("peering"), std::string::npos);
}

}  // namespace
}  // namespace blameit::ops
