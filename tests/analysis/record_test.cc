#include "analysis/record.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "analysis/quartet.h"
#include "net/topology.h"

namespace blameit::analysis {
namespace {

RttRecord rec(std::int64_t minute, std::uint32_t ip, double rtt) {
  return RttRecord{.time = util::MinuteTime{minute},
                   .location = net::CloudLocationId{1},
                   .client_ip = net::Ipv4Addr{ip},
                   .device = net::DeviceClass::NonMobile,
                   .rtt_ms = rtt};
}

TEST(HourlyBucketStore, StoresAndReadsBack) {
  HourlyBucketStore store{16};
  for (int i = 0; i < 100; ++i) {
    store.add(rec(i % 60, static_cast<std::uint32_t>(i), 10.0 + i));
  }
  EXPECT_EQ(store.size(), 100u);
  const auto all = store.read_window(util::MinuteTime{0}, util::MinuteTime{60});
  EXPECT_EQ(all.size(), 100u);
}

TEST(HourlyBucketStore, WindowFiltersWithinHour) {
  HourlyBucketStore store{16};
  store.add(rec(10, 1, 5.0));
  store.add(rec(20, 2, 6.0));
  store.add(rec(30, 3, 7.0));
  const auto window =
      store.read_window(util::MinuteTime{15}, util::MinuteTime{25});
  ASSERT_EQ(window.size(), 1u);
  EXPECT_DOUBLE_EQ(window[0].rtt_ms, 6.0);
}

TEST(HourlyBucketStore, ScansAllBucketsOfTouchedHours) {
  // The §6.1 quirk: a 15-minute read must scan every bucket of the hour.
  HourlyBucketStore store{32};
  for (int i = 0; i < 200; ++i) {
    store.add(rec(i % 60, static_cast<std::uint32_t>(i), 1.0));
  }
  (void)store.read_window(util::MinuteTime{45}, util::MinuteTime{60});
  EXPECT_EQ(store.last_scan_bucket_count(), 32u);
}

TEST(HourlyBucketStore, CrossHourWindow) {
  HourlyBucketStore store{8};
  store.add(rec(59, 1, 1.0));
  store.add(rec(60, 2, 2.0));
  store.add(rec(61, 3, 3.0));
  const auto window =
      store.read_window(util::MinuteTime{59}, util::MinuteTime{61});
  EXPECT_EQ(window.size(), 2u);
  EXPECT_EQ(store.last_scan_bucket_count(), 16u);  // two hours scanned
}

TEST(HourlyBucketStore, EmptyAndInvertedWindows) {
  HourlyBucketStore store{8};
  store.add(rec(5, 1, 1.0));
  EXPECT_TRUE(
      store.read_window(util::MinuteTime{100}, util::MinuteTime{200}).empty());
  EXPECT_TRUE(
      store.read_window(util::MinuteTime{10}, util::MinuteTime{10}).empty());
  EXPECT_TRUE(
      store.read_window(util::MinuteTime{10}, util::MinuteTime{5}).empty());
}

TEST(HourlyBucketStore, EvictionDropsOldHours) {
  HourlyBucketStore store{8};
  store.add(rec(30, 1, 1.0));    // hour 0
  store.add(rec(90, 2, 2.0));    // hour 1
  store.add(rec(150, 3, 3.0));   // hour 2
  store.evict_before_hour(2);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(
      store.read_window(util::MinuteTime{0}, util::MinuteTime{120}).empty());
  EXPECT_EQ(
      store.read_window(util::MinuteTime{120}, util::MinuteTime{180}).size(),
      1u);
}

TEST(HourlyBucketStore, DeterministicPlacement) {
  HourlyBucketStore a{16, 42};
  HourlyBucketStore b{16, 42};
  for (int i = 0; i < 50; ++i) {
    a.add(rec(i, static_cast<std::uint32_t>(i), 1.0));
    b.add(rec(i, static_cast<std::uint32_t>(i), 1.0));
  }
  const auto ra = a.read_window(util::MinuteTime{0}, util::MinuteTime{60});
  const auto rb = b.read_window(util::MinuteTime{0}, util::MinuteTime{60});
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].client_ip, rb[i].client_ip);
  }
}

TEST(HourlyBucketStore, InvalidConfigThrows) {
  EXPECT_THROW(HourlyBucketStore{0}, std::invalid_argument);
  EXPECT_THROW(HourlyBucketStore{-3}, std::invalid_argument);
}


TEST(HourlyBucketStore, QuartetsIdenticalToDirectFeed) {
  // §6.1 equivalence: routing records through the randomized hourly storage
  // buckets must yield exactly the same quartets as a direct feed — the
  // bucket layout loses ordering, not information.
  net::TopologyConfig cfg;
  cfg.locations_per_region = 1;
  cfg.eyeballs_per_region = 2;
  cfg.blocks_per_eyeball = 2;
  const auto topo = net::make_topology(cfg);
  const auto& block = topo->blocks().front();
  const auto loc = topo->home_locations(block.block).front();

  std::vector<RttRecord> records;
  for (int i = 0; i < 200; ++i) {
    records.push_back(RttRecord{
        .time = util::MinuteTime{i % 10},
        .location = loc,
        .client_ip = block.block.host(static_cast<std::uint8_t>(1 + i % 200)),
        .device = i % 3 == 0 ? net::DeviceClass::Mobile
                             : net::DeviceClass::NonMobile,
        .rtt_ms = 20.0 + i % 17});
  }

  QuartetBuilder direct{topo.get(), BadnessThresholds{}};
  for (const auto& r : records) direct.add(r);

  HourlyBucketStore store{64};
  for (const auto& r : records) store.add(r);
  QuartetBuilder via_store{topo.get(), BadnessThresholds{}};
  for (const auto& r :
       store.read_window(util::MinuteTime{0}, util::MinuteTime{60})) {
    via_store.add(r);
  }

  for (int b = 0; b < 2; ++b) {
    auto a = direct.take_bucket(util::TimeBucket{b});
    auto c = via_store.take_bucket(util::TimeBucket{b});
    auto order = [](const Quartet& x, const Quartet& y) {
      return QuartetKeyHash{}(x.key) < QuartetKeyHash{}(y.key);
    };
    std::sort(a.begin(), a.end(), order);
    std::sort(c.begin(), c.end(), order);
    ASSERT_EQ(a.size(), c.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(a[i].key == c[i].key);
      EXPECT_EQ(a[i].sample_count, c[i].sample_count);
      EXPECT_NEAR(a[i].mean_rtt_ms, c[i].mean_rtt_ms, 1e-9);
    }
  }
}

}  // namespace
}  // namespace blameit::analysis
