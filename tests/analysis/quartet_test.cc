#include "analysis/quartet.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/rng.h"

namespace blameit::analysis {
namespace {

class QuartetBuilderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 1;
    cfg.eyeballs_per_region = 2;
    cfg.blocks_per_eyeball = 4;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  [[nodiscard]] QuartetBuilder make_builder(int min_samples = 10) const {
    QuartetBuilderConfig cfg;
    cfg.min_samples = min_samples;
    return QuartetBuilder{topo_, BadnessThresholds{}, cfg};
  }

  [[nodiscard]] RttRecord record(const net::ClientBlock& block,
                                 net::CloudLocationId loc, double rtt,
                                 std::int64_t minute = 2,
                                 net::DeviceClass device =
                                     net::DeviceClass::NonMobile) const {
    return RttRecord{.time = util::MinuteTime{minute},
                     .location = loc,
                     .client_ip = block.block.host(10),
                     .device = device,
                     .rtt_ms = rtt};
  }

  static const net::Topology* topo_;
};

const net::Topology* QuartetBuilderTest::topo_ = nullptr;

TEST_F(QuartetBuilderTest, AggregatesRecordsIntoQuartet) {
  auto builder = make_builder();
  const auto& block = topo_->blocks().front();
  const auto loc = topo_->home_locations(block.block).front();
  for (int i = 0; i < 12; ++i) {
    builder.add(record(block, loc, 20.0 + i));
  }
  const auto quartets = builder.take_bucket(util::TimeBucket{0});
  ASSERT_EQ(quartets.size(), 1u);
  EXPECT_EQ(quartets[0].sample_count, 12);
  EXPECT_NEAR(quartets[0].mean_rtt_ms, 25.5, 1e-9);
  EXPECT_EQ(quartets[0].key.block, block.block);
  EXPECT_EQ(quartets[0].client_as, block.client_as);
  EXPECT_EQ(quartets[0].region, block.region);
}

TEST_F(QuartetBuilderTest, MinSamplesGate) {
  auto builder = make_builder(10);
  const auto& block = topo_->blocks().front();
  const auto loc = topo_->home_locations(block.block).front();
  for (int i = 0; i < 9; ++i) builder.add(record(block, loc, 20.0));
  EXPECT_TRUE(builder.take_bucket(util::TimeBucket{0}).empty());
}

TEST_F(QuartetBuilderTest, ResolvesMiddleSegmentFromRouting) {
  auto builder = make_builder();
  const auto& block = topo_->blocks().front();
  const auto loc = topo_->home_locations(block.block).front();
  for (int i = 0; i < 10; ++i) builder.add(record(block, loc, 20.0));
  const auto quartets = builder.take_bucket(util::TimeBucket{0});
  ASSERT_EQ(quartets.size(), 1u);
  const auto* route =
      topo_->routing().route_for(loc, block.block, util::MinuteTime{0});
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(quartets[0].middle, route->middle);
}

TEST_F(QuartetBuilderTest, BadClassificationUsesRegionDeviceThreshold) {
  auto builder = make_builder();
  const auto& block = topo_->blocks().front();
  const auto loc = topo_->home_locations(block.block).front();
  const auto& thresholds = builder.thresholds();
  const double limit =
      thresholds.threshold(block.region, net::DeviceClass::NonMobile);
  for (int i = 0; i < 10; ++i) builder.add(record(block, loc, limit + 5.0));
  auto quartets = builder.take_bucket(util::TimeBucket{0});
  ASSERT_EQ(quartets.size(), 1u);
  EXPECT_TRUE(quartets[0].bad);

  for (int i = 0; i < 10; ++i) builder.add(record(block, loc, limit - 5.0));
  quartets = builder.take_bucket(util::TimeBucket{0});
  ASSERT_EQ(quartets.size(), 1u);
  EXPECT_FALSE(quartets[0].bad);
}

TEST_F(QuartetBuilderTest, MobileGetsHigherThreshold) {
  const BadnessThresholds thresholds;
  for (const auto region : net::kAllRegions) {
    EXPECT_GT(thresholds.threshold(region, net::DeviceClass::Mobile),
              thresholds.threshold(region, net::DeviceClass::NonMobile));
  }
}

TEST_F(QuartetBuilderTest, SeparateQuartetsPerDeviceAndBucket) {
  auto builder = make_builder();
  const auto& block = topo_->blocks().front();
  const auto loc = topo_->home_locations(block.block).front();
  for (int i = 0; i < 10; ++i) {
    builder.add(record(block, loc, 20.0, 2, net::DeviceClass::NonMobile));
    builder.add(record(block, loc, 60.0, 2, net::DeviceClass::Mobile));
    builder.add(record(block, loc, 30.0, 7, net::DeviceClass::NonMobile));
  }
  const auto b0 = builder.take_bucket(util::TimeBucket{0});
  EXPECT_EQ(b0.size(), 2u);  // two devices in bucket 0
  const auto b1 = builder.take_bucket(util::TimeBucket{1});
  EXPECT_EQ(b1.size(), 1u);
}

TEST_F(QuartetBuilderTest, UnknownBlocksAreDroppedAndCounted) {
  auto builder = make_builder();
  RttRecord stray{.time = util::MinuteTime{0},
                  .location = topo_->locations().front().id,
                  .client_ip = *net::Ipv4Addr::parse("203.0.113.7"),
                  .device = net::DeviceClass::NonMobile,
                  .rtt_ms = 10.0};
  builder.add(stray);
  EXPECT_EQ(builder.dropped_unknown_blocks(), 1u);
  EXPECT_TRUE(builder.take_bucket(util::TimeBucket{0}).empty());
}

TEST_F(QuartetBuilderTest, AddAggregateMatchesRecordPath) {
  auto by_records = make_builder();
  auto by_aggregate = make_builder();
  const auto& block = topo_->blocks().front();
  const auto loc = topo_->home_locations(block.block).front();
  double sum = 0.0;
  for (int i = 0; i < 20; ++i) {
    by_records.add(record(block, loc, 20.0 + i));
    sum += 20.0 + i;
  }
  by_aggregate.add_aggregate(
      QuartetKey{.block = block.block,
                 .location = loc,
                 .device = net::DeviceClass::NonMobile,
                 .bucket = util::TimeBucket{0}},
      20, sum / 20.0);
  const auto qa = by_records.take_bucket(util::TimeBucket{0});
  const auto qb = by_aggregate.take_bucket(util::TimeBucket{0});
  ASSERT_EQ(qa.size(), 1u);
  ASSERT_EQ(qb.size(), 1u);
  EXPECT_EQ(qa[0].sample_count, qb[0].sample_count);
  EXPECT_NEAR(qa[0].mean_rtt_ms, qb[0].mean_rtt_ms, 1e-9);
  EXPECT_EQ(qa[0].middle, qb[0].middle);
}

TEST_F(QuartetBuilderTest, ThresholdOverride) {
  BadnessThresholds thresholds;
  thresholds.set(net::Region::Europe, net::DeviceClass::NonMobile, 33.0);
  EXPECT_DOUBLE_EQ(
      thresholds.threshold(net::Region::Europe, net::DeviceClass::NonMobile),
      33.0);
  EXPECT_THROW(
      thresholds.set(net::Region::Europe, net::DeviceClass::Mobile, -1.0),
      std::invalid_argument);
}

TEST_F(QuartetBuilderTest, RecordsStraddlingBucketBoundary) {
  auto builder = make_builder(1);
  const auto& block = topo_->blocks().front();
  const auto loc = topo_->home_locations(block.block).front();
  // Minute 4 is the last minute of bucket 0; minute 5 opens bucket 1.
  builder.add(record(block, loc, 20.0, util::kBucketMinutes - 1));
  builder.add(record(block, loc, 40.0, util::kBucketMinutes));
  const auto b0 = builder.take_bucket(util::TimeBucket{0});
  ASSERT_EQ(b0.size(), 1u);
  EXPECT_EQ(b0[0].sample_count, 1);
  EXPECT_NEAR(b0[0].mean_rtt_ms, 20.0, 1e-9);
  const auto b1 = builder.take_bucket(util::TimeBucket{1});
  ASSERT_EQ(b1.size(), 1u);
  EXPECT_EQ(b1[0].sample_count, 1);
  EXPECT_NEAR(b1[0].mean_rtt_ms, 40.0, 1e-9);
}

TEST_F(QuartetBuilderTest, TakeBucketOnEmptyOrUnknownBucket) {
  auto builder = make_builder();
  // Nothing accumulated at all.
  EXPECT_TRUE(builder.take_bucket(util::TimeBucket{0}).empty());
  // Records exist, but only in bucket 0: other buckets yield nothing and
  // leave the pending accumulators untouched.
  const auto& block = topo_->blocks().front();
  const auto loc = topo_->home_locations(block.block).front();
  for (int i = 0; i < 12; ++i) builder.add(record(block, loc, 20.0));
  EXPECT_TRUE(builder.take_bucket(util::TimeBucket{99}).empty());
  EXPECT_TRUE(builder.take_bucket(util::TimeBucket{-3}).empty());
  EXPECT_EQ(builder.pending(), 1u);
  EXPECT_EQ(builder.take_bucket(util::TimeBucket{0}).size(), 1u);
  EXPECT_EQ(builder.pending(), 0u);
}

TEST_F(QuartetBuilderTest, MinSamplesDropAccounting) {
  auto builder = make_builder(10);
  const auto& block_a = topo_->blocks()[0];
  const auto& block_b = topo_->blocks()[1];
  const auto loc_a = topo_->home_locations(block_a.block).front();
  const auto loc_b = topo_->home_locations(block_b.block).front();
  for (int i = 0; i < 4; ++i) builder.add(record(block_a, loc_a, 20.0));
  for (int i = 0; i < 12; ++i) builder.add(record(block_b, loc_b, 30.0));
  EXPECT_EQ(builder.dropped_min_samples(), 0u);  // counted at take time
  const auto quartets = builder.take_bucket(util::TimeBucket{0});
  EXPECT_EQ(quartets.size(), 1u);
  EXPECT_EQ(builder.dropped_min_samples(), 1u);
  EXPECT_EQ(builder.dropped_min_samples_records(), 4u);
  // Dropped means dropped: re-taking the bucket finds nothing.
  EXPECT_TRUE(builder.take_bucket(util::TimeBucket{0}).empty());
  EXPECT_EQ(builder.dropped_min_samples(), 1u);
}

TEST_F(QuartetBuilderTest, AddAggregateMixedWithAddForSameKey) {
  auto by_mixed = make_builder(1);
  auto by_records = make_builder(1);
  const auto& block = topo_->blocks().front();
  const auto loc = topo_->home_locations(block.block).front();
  const QuartetKey key{.block = block.block,
                       .location = loc,
                       .device = net::DeviceClass::NonMobile,
                       .bucket = util::TimeBucket{0}};
  // Mixed path: 3 raw records + an aggregate of 5 more.
  for (int i = 0; i < 3; ++i) by_mixed.add(record(block, loc, 20.0));
  by_mixed.add_aggregate(key, 5, 44.0);
  // Reference: the same 8 samples all as records.
  for (int i = 0; i < 3; ++i) by_records.add(record(block, loc, 20.0));
  for (int i = 0; i < 5; ++i) by_records.add(record(block, loc, 44.0));
  const auto qa = by_mixed.take_bucket(util::TimeBucket{0});
  const auto qb = by_records.take_bucket(util::TimeBucket{0});
  ASSERT_EQ(qa.size(), 1u);
  ASSERT_EQ(qb.size(), 1u);
  EXPECT_EQ(qa[0].sample_count, 8);
  EXPECT_EQ(qb[0].sample_count, 8);
  EXPECT_NEAR(qa[0].mean_rtt_ms, qb[0].mean_rtt_ms, 1e-9);
  // Zero- and negative-count aggregates are ignored outright.
  by_mixed.add_aggregate(key, 0, 99.0);
  by_mixed.add_aggregate(key, -2, 99.0);
  EXPECT_TRUE(by_mixed.take_bucket(util::TimeBucket{0}).empty());
  EXPECT_EQ(by_mixed.pending(), 0u);
}

TEST(QuartetHomogeneity, AcceptsIidSamples) {
  util::Rng rng{3};
  std::vector<double> samples;
  for (int i = 0; i < 60; ++i) samples.push_back(rng.normal(30.0, 3.0));
  EXPECT_TRUE(quartet_samples_homogeneous(samples));
}

TEST(QuartetHomogeneity, RejectsRegimeChange) {
  // First half at 30 ms, second half at 90 ms — interleaved split still
  // mixes both regimes into each half... so use an alternating pattern that
  // puts the regimes into different halves: even indices low, odd high.
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) {
    samples.push_back(i % 2 == 0 ? 30.0 + 0.01 * i : 90.0 + 0.01 * i);
  }
  EXPECT_FALSE(quartet_samples_homogeneous(samples));
}

TEST(QuartetHomogeneity, TinySamplesPass) {
  EXPECT_TRUE(quartet_samples_homogeneous(std::vector<double>{1.0, 2.0}));
  EXPECT_TRUE(quartet_samples_homogeneous(std::vector<double>{}));
}

}  // namespace
}  // namespace blameit::analysis
