#include "analysis/impact.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace blameit::analysis {
namespace {

using util::TimeBucket;

TEST(IncidentTracker, SingleRun) {
  IncidentTracker tracker;
  tracker.observe(1, TimeBucket{10}, true, 5.0);
  tracker.observe(1, TimeBucket{11}, true, 7.0);
  tracker.observe(1, TimeBucket{12}, false, 0.0);
  const auto incidents = tracker.finish(TimeBucket{13});
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].start, TimeBucket{10});
  EXPECT_EQ(incidents[0].duration_buckets, 2);
  EXPECT_EQ(incidents[0].duration_minutes(), 10);
  EXPECT_DOUBLE_EQ(incidents[0].peak_users, 7.0);
  EXPECT_DOUBLE_EQ(incidents[0].user_time_product, 12.0);
}

TEST(IncidentTracker, GapBreaksRun) {
  IncidentTracker tracker;
  tracker.observe(1, TimeBucket{10}, true, 1.0);
  tracker.observe(1, TimeBucket{12}, true, 1.0);  // bucket 11 missing
  const auto incidents = tracker.finish(TimeBucket{20});
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_EQ(incidents[0].duration_buckets, 1);
  EXPECT_EQ(incidents[1].duration_buckets, 1);
}

TEST(IncidentTracker, KeysIndependent) {
  IncidentTracker tracker;
  tracker.observe(1, TimeBucket{10}, true, 1.0);
  tracker.observe(2, TimeBucket{10}, true, 2.0);
  tracker.observe(1, TimeBucket{11}, false, 0.0);
  tracker.observe(2, TimeBucket{11}, true, 2.0);
  const auto incidents = tracker.finish(TimeBucket{12});
  ASSERT_EQ(incidents.size(), 2u);
  // Sorted by start then key.
  EXPECT_EQ(incidents[0].key, 1u);
  EXPECT_EQ(incidents[0].duration_buckets, 1);
  EXPECT_EQ(incidents[1].key, 2u);
  EXPECT_EQ(incidents[1].duration_buckets, 2);
}

TEST(IncidentTracker, OpenRunLength) {
  IncidentTracker tracker;
  EXPECT_FALSE(tracker.open_run_length(1).has_value());
  tracker.observe(1, TimeBucket{5}, true, 1.0);
  EXPECT_EQ(tracker.open_run_length(1).value(), 1);
  tracker.observe(1, TimeBucket{6}, true, 1.0);
  EXPECT_EQ(tracker.open_run_length(1).value(), 2);
  tracker.observe(1, TimeBucket{7}, false, 0.0);
  EXPECT_FALSE(tracker.open_run_length(1).has_value());
}

TEST(IncidentTracker, FinishClosesOpenRuns) {
  IncidentTracker tracker;
  tracker.observe(1, TimeBucket{5}, true, 3.0);
  const auto incidents = tracker.finish(TimeBucket{6});
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].duration_buckets, 1);
}

TEST(IncidentTracker, NonAdvancingBucketThrows) {
  IncidentTracker tracker;
  tracker.observe(1, TimeBucket{5}, true, 1.0);
  EXPECT_THROW(tracker.observe(1, TimeBucket{5}, true, 1.0),
               std::invalid_argument);
  EXPECT_THROW(tracker.observe(1, TimeBucket{4}, false, 0.0),
               std::invalid_argument);
}

TEST(IncidentTracker, GoodObservationsForUnknownKeyAreNoops) {
  IncidentTracker tracker;
  tracker.observe(7, TimeBucket{3}, false, 0.0);
  EXPECT_TRUE(tracker.finish(TimeBucket{4}).empty());
}

TEST(ImpactCoverage, ImpactRankingDominatesPrefixRanking) {
  // Fig 4b's point: ranking by true impact reaches cumulative coverage much
  // faster than ranking by problematic-prefix counts when they disagree.
  std::vector<RankedAggregate> aggs;
  // One aggregate with few prefixes but huge impact (like tuple #2 in
  // Fig 5), many aggregates with many prefixes and small impact.
  aggs.push_back({.key = 0, .impact = 2000.0, .prefix_count = 1.0});
  for (std::uint64_t i = 1; i <= 10; ++i) {
    aggs.push_back({.key = i, .impact = 50.0, .prefix_count = 3.0});
  }
  const auto by_impact = impact_coverage_curve(aggs, /*rank_by_impact=*/true);
  const auto by_prefix =
      impact_coverage_curve(aggs, /*rank_by_impact=*/false);
  ASSERT_EQ(by_impact.size(), aggs.size());
  // Top-1 coverage: 2000/2500 = 80% vs 50/2500 = 2%.
  EXPECT_NEAR(by_impact[0], 0.8, 1e-9);
  EXPECT_NEAR(by_prefix[0], 0.02, 1e-9);
  // Both curves end at 100%.
  EXPECT_NEAR(by_impact.back(), 1.0, 1e-9);
  EXPECT_NEAR(by_prefix.back(), 1.0, 1e-9);
  // Monotone non-decreasing.
  for (std::size_t i = 1; i < by_impact.size(); ++i) {
    EXPECT_GE(by_impact[i], by_impact[i - 1]);
  }
}

TEST(ImpactCoverage, EmptyAndZeroTotals) {
  EXPECT_TRUE(impact_coverage_curve({}, true).empty());
  std::vector<RankedAggregate> zeros{{.key = 1, .impact = 0.0,
                                      .prefix_count = 2.0}};
  const auto curve = impact_coverage_curve(zeros, true);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0], 0.0);
}

}  // namespace
}  // namespace blameit::analysis
