#include "analysis/expected_rtt.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace blameit::analysis {
namespace {

const auto kLoc = net::CloudLocationId{3};
const auto kKey = cloud_key(kLoc, net::DeviceClass::NonMobile);

TEST(ExpectedRttKeys, DistinctNamespaces) {
  const auto ck = cloud_key(kLoc, net::DeviceClass::NonMobile);
  const auto mk =
      middle_key(kLoc, net::MiddleSegmentId{0}, net::DeviceClass::NonMobile);
  EXPECT_NE(ck, mk);
  EXPECT_NE(cloud_key(kLoc, net::DeviceClass::Mobile), ck);
  EXPECT_NE(middle_key(kLoc, net::MiddleSegmentId{1},
                       net::DeviceClass::NonMobile),
            mk);
  EXPECT_NE(middle_key(net::CloudLocationId{4}, net::MiddleSegmentId{0},
                       net::DeviceClass::NonMobile),
            mk);
}

TEST(ExpectedRttLearner, MedianOverWindow) {
  ExpectedRttLearner learner;
  for (int day = 0; day < 14; ++day) {
    for (int i = 0; i < 20; ++i) {
      learner.observe(kKey, day, 40.0 + day * 0.1);
    }
  }
  const auto expected = learner.expected(kKey, 14);
  ASSERT_TRUE(expected.has_value());
  EXPECT_NEAR(*expected, 40.65, 0.1);  // median across days 0..13
}

TEST(ExpectedRttLearner, NoHistoryGivesNullopt) {
  ExpectedRttLearner learner;
  EXPECT_FALSE(learner.expected(kKey, 5).has_value());
  learner.observe(kKey, 5, 40.0);
  // Day 5 itself is excluded when asking about day 5.
  EXPECT_FALSE(learner.expected(kKey, 5).has_value());
  EXPECT_TRUE(learner.expected(kKey, 6).has_value());
}

TEST(ExpectedRttLearner, CurrentDayExcluded) {
  // An ongoing incident must not teach the learner its own inflation.
  ExpectedRttLearner learner;
  for (int i = 0; i < 50; ++i) learner.observe(kKey, 0, 40.0);
  for (int i = 0; i < 50; ++i) learner.observe(kKey, 1, 400.0);  // incident
  const auto expected = learner.expected(kKey, 1);
  ASSERT_TRUE(expected.has_value());
  EXPECT_DOUBLE_EQ(*expected, 40.0);
}

TEST(ExpectedRttLearner, WindowSlidesForward) {
  ExpectedRttConfig cfg;
  cfg.window_days = 3;
  ExpectedRttLearner learner{cfg};
  for (int i = 0; i < 10; ++i) learner.observe(kKey, 0, 10.0);
  for (int i = 0; i < 10; ++i) learner.observe(kKey, 5, 90.0);
  // At day 6, only day 5 is inside the 3-day window.
  EXPECT_DOUBLE_EQ(learner.expected(kKey, 6).value(), 90.0);
  // At day 2, only day 0 is inside.
  EXPECT_DOUBLE_EQ(learner.expected(kKey, 2).value(), 10.0);
  // At day 9, nothing is inside.
  EXPECT_FALSE(learner.expected(kKey, 9).has_value());
}

TEST(ExpectedRttLearner, ReservoirBoundsMemory) {
  ExpectedRttConfig cfg;
  cfg.reservoir_per_day = 32;
  ExpectedRttLearner learner{cfg};
  for (int i = 0; i < 10000; ++i) learner.observe(kKey, 0, 40.0 + i % 7);
  EXPECT_EQ(learner.history_size(kKey, 1), 32u);
  const auto expected = learner.expected(kKey, 1);
  ASSERT_TRUE(expected.has_value());
  EXPECT_GT(*expected, 39.0);
  EXPECT_LT(*expected, 47.0);
}

TEST(ExpectedRttLearner, ReservoirKeepsRepresentativeMedian) {
  ExpectedRttConfig cfg;
  cfg.reservoir_per_day = 64;
  ExpectedRttLearner learner{cfg};
  // Stream with true median 50.
  for (int i = 0; i < 5000; ++i) {
    learner.observe(kKey, 0, static_cast<double>(i % 101));
  }
  EXPECT_NEAR(learner.expected(kKey, 1).value(), 50.0, 12.0);
}

TEST(ExpectedRttLearner, EvictStaleFreesOldDays) {
  ExpectedRttConfig cfg;
  cfg.window_days = 2;
  ExpectedRttLearner learner{cfg};
  learner.observe(kKey, 0, 1.0);
  learner.observe(kKey, 1, 2.0);
  learner.observe(kKey, 5, 3.0);
  learner.evict_stale(5);
  EXPECT_EQ(learner.history_size(kKey, 2), 0u);  // day 0/1 evicted
  EXPECT_EQ(learner.history_size(kKey, 6), 1u);  // day 5 kept
}

TEST(ExpectedRttLearner, RejectsDisorderedAndInvalid) {
  ExpectedRttLearner learner;
  learner.observe(kKey, 5, 1.0);
  EXPECT_THROW(learner.observe(kKey, 4, 1.0), std::invalid_argument);
  EXPECT_THROW(learner.observe(kKey, 6, -1.0), std::invalid_argument);
  EXPECT_THROW(learner.observe(kKey, -1, 1.0), std::invalid_argument);
}

TEST(ExpectedRttLearner, KeysAreIndependent) {
  ExpectedRttLearner learner;
  const auto other = cloud_key(net::CloudLocationId{9},
                               net::DeviceClass::NonMobile);
  learner.observe(kKey, 0, 10.0);
  learner.observe(other, 0, 99.0);
  EXPECT_DOUBLE_EQ(learner.expected(kKey, 1).value(), 10.0);
  EXPECT_DOUBLE_EQ(learner.expected(other, 1).value(), 99.0);
}

// Paper §4.3 worked example: historical RTTs uniform in [35,45] (median
// ~40); after a cloud fault the distribution moves to [40,70]. With τ=0.8,
// comparing against the *learned* 40 ms flags every quartet; comparing
// against the 50 ms region target would flag only ~1/3.
TEST(ExpectedRttLearner, WorkedExampleFromPaper) {
  ExpectedRttLearner learner;
  util::Rng rng{7};
  for (int day = 0; day < 14; ++day) {
    for (int i = 0; i < 100; ++i) {
      learner.observe(kKey, day, rng.uniform(35.0, 45.0));
    }
  }
  const double learned = learner.expected(kKey, 14).value();
  EXPECT_NEAR(learned, 40.0, 1.0);

  int bad_by_learned = 0;
  int bad_by_target = 0;
  const double target = 50.0;
  for (int i = 0; i < 3000; ++i) {
    const double rtt = rng.uniform(40.0, 70.0);
    bad_by_learned += rtt > learned;
    bad_by_target += rtt > target;
  }
  EXPECT_GT(bad_by_learned / 3000.0, 0.95);  // everything above 40
  EXPECT_NEAR(bad_by_target / 3000.0, 2.0 / 3.0, 0.05);
}

}  // namespace
}  // namespace blameit::analysis
