#include "analysis/expected_rtt.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace blameit::analysis {
namespace {

const auto kLoc = net::CloudLocationId{3};
const auto kKey = cloud_key(kLoc, net::DeviceClass::NonMobile);

TEST(ExpectedRttKeys, DistinctNamespaces) {
  const auto ck = cloud_key(kLoc, net::DeviceClass::NonMobile);
  const auto mk =
      middle_key(kLoc, net::MiddleSegmentId{0}, net::DeviceClass::NonMobile);
  EXPECT_NE(ck, mk);
  EXPECT_NE(cloud_key(kLoc, net::DeviceClass::Mobile), ck);
  EXPECT_NE(middle_key(kLoc, net::MiddleSegmentId{1},
                       net::DeviceClass::NonMobile),
            mk);
  EXPECT_NE(middle_key(net::CloudLocationId{4}, net::MiddleSegmentId{0},
                       net::DeviceClass::NonMobile),
            mk);
}

TEST(ExpectedRttLearner, MedianOverWindow) {
  ExpectedRttLearner learner;
  for (int day = 0; day < 14; ++day) {
    for (int i = 0; i < 20; ++i) {
      learner.observe(kKey, day, 40.0 + day * 0.1);
    }
  }
  const auto expected = learner.expected(kKey, 14);
  ASSERT_TRUE(expected.has_value());
  EXPECT_NEAR(*expected, 40.65, 0.1);  // median across days 0..13
}

TEST(ExpectedRttLearner, NoHistoryGivesNullopt) {
  ExpectedRttLearner learner;
  EXPECT_FALSE(learner.expected(kKey, 5).has_value());
  learner.observe(kKey, 5, 40.0);
  // Day 5 itself is excluded when asking about day 5.
  EXPECT_FALSE(learner.expected(kKey, 5).has_value());
  EXPECT_TRUE(learner.expected(kKey, 6).has_value());
}

TEST(ExpectedRttLearner, CurrentDayExcluded) {
  // An ongoing incident must not teach the learner its own inflation.
  ExpectedRttLearner learner;
  for (int i = 0; i < 50; ++i) learner.observe(kKey, 0, 40.0);
  for (int i = 0; i < 50; ++i) learner.observe(kKey, 1, 400.0);  // incident
  const auto expected = learner.expected(kKey, 1);
  ASSERT_TRUE(expected.has_value());
  EXPECT_DOUBLE_EQ(*expected, 40.0);
}

TEST(ExpectedRttLearner, WindowSlidesForward) {
  ExpectedRttConfig cfg;
  cfg.window_days = 3;
  ExpectedRttLearner learner{cfg};
  for (int i = 0; i < 10; ++i) learner.observe(kKey, 0, 10.0);
  for (int i = 0; i < 10; ++i) learner.observe(kKey, 5, 90.0);
  // At day 6, only day 5 is inside the 3-day window.
  EXPECT_DOUBLE_EQ(learner.expected(kKey, 6).value(), 90.0);
  // At day 2, only day 0 is inside.
  EXPECT_DOUBLE_EQ(learner.expected(kKey, 2).value(), 10.0);
  // At day 9, nothing is inside.
  EXPECT_FALSE(learner.expected(kKey, 9).has_value());
}

TEST(ExpectedRttLearner, ReservoirBoundsMemory) {
  ExpectedRttConfig cfg;
  cfg.reservoir_per_day = 32;
  ExpectedRttLearner learner{cfg};
  for (int i = 0; i < 10000; ++i) learner.observe(kKey, 0, 40.0 + i % 7);
  EXPECT_EQ(learner.history_size(kKey, 1), 32u);
  const auto expected = learner.expected(kKey, 1);
  ASSERT_TRUE(expected.has_value());
  EXPECT_GT(*expected, 39.0);
  EXPECT_LT(*expected, 47.0);
}

TEST(ExpectedRttLearner, ReservoirKeepsRepresentativeMedian) {
  ExpectedRttConfig cfg;
  cfg.reservoir_per_day = 64;
  ExpectedRttLearner learner{cfg};
  // Stream with true median 50.
  for (int i = 0; i < 5000; ++i) {
    learner.observe(kKey, 0, static_cast<double>(i % 101));
  }
  EXPECT_NEAR(learner.expected(kKey, 1).value(), 50.0, 12.0);
}

TEST(ExpectedRttLearner, CacheInvalidatedAtDayRollover) {
  ExpectedRttLearner learner;
  for (int i = 0; i < 20; ++i) learner.observe(kKey, 0, 10.0);
  // Prime the ⟨key, day 1⟩ cache.
  EXPECT_DOUBLE_EQ(learner.expected(kKey, 1).value(), 10.0);
  EXPECT_DOUBLE_EQ(learner.expected(kKey, 1).value(), 10.0);  // cached
  // Day rolls over: new observations land on day 1, queries move to day 2;
  // a stale cache would keep answering 10.
  for (int i = 0; i < 1000; ++i) learner.observe(kKey, 1, 100.0);
  const auto expected = learner.expected(kKey, 2);
  ASSERT_TRUE(expected.has_value());
  EXPECT_GT(*expected, 50.0);  // pooled over both days, dominated by day 1
  // The day-1 view is still served (recomputed) correctly.
  EXPECT_DOUBLE_EQ(learner.expected(kKey, 1).value(), 10.0);
}

TEST(ExpectedRttLearner, CacheInvalidatedByEvictStale) {
  ExpectedRttConfig cfg;
  cfg.window_days = 2;
  ExpectedRttLearner learner{cfg};
  learner.observe(kKey, 0, 10.0);
  learner.observe(kKey, 6, 20.0);
  // Prime the cache for query day 2 (sees only day 0).
  EXPECT_DOUBLE_EQ(learner.expected(kKey, 2).value(), 10.0);
  // Evicting day 0 must flush that cached value, not serve it stale.
  learner.evict_stale(6);
  EXPECT_FALSE(learner.expected(kKey, 2).has_value());
  EXPECT_DOUBLE_EQ(learner.expected(kKey, 7).value(), 20.0);
}

TEST(ExpectedRttLearner, MemoizationDoesNotChangeResults) {
  ExpectedRttConfig cached_cfg;
  ExpectedRttConfig uncached_cfg;
  uncached_cfg.memoize_medians = false;
  ExpectedRttLearner cached{cached_cfg};
  ExpectedRttLearner uncached{uncached_cfg};
  util::Rng rng{11};
  for (int day = 0; day < 6; ++day) {
    for (int i = 0; i < 400; ++i) {  // overflows the reservoir too
      const double rtt = rng.uniform(20.0, 90.0);
      cached.observe(kKey, day, rtt);
      uncached.observe(kKey, day, rtt);
    }
    for (int q = 0; q <= day + 1; ++q) {
      ASSERT_EQ(cached.expected(kKey, q), uncached.expected(kKey, q))
          << "day " << day << " query " << q;
    }
  }
}

TEST(ExpectedRttLearner, EvictErasesEmptiedKeys) {
  ExpectedRttConfig cfg;
  cfg.window_days = 2;
  ExpectedRttLearner learner{cfg};
  // 64 churned keys (seen once, never again) + one live key.
  for (std::uint16_t loc = 0; loc < 64; ++loc) {
    learner.observe(cloud_key(net::CloudLocationId{loc},
                              net::DeviceClass::Mobile),
                    0, 40.0);
  }
  learner.observe(kKey, 0, 40.0);
  EXPECT_EQ(learner.tracked_keys(), 65u);
  learner.observe(kKey, 9, 41.0);
  learner.evict_stale(9);
  // Only the key with a live reservoir survives; a learner that keeps empty
  // histories around would still report 65 and grow without bound.
  EXPECT_EQ(learner.tracked_keys(), 1u);
  EXPECT_DOUBLE_EQ(learner.expected(kKey, 10).value(), 41.0);
  learner.evict_stale(9 + cfg.window_days + 1);
  EXPECT_EQ(learner.tracked_keys(), 0u);
}

TEST(ExpectedRttLearner, EvictStaleFreesOldDays) {
  ExpectedRttConfig cfg;
  cfg.window_days = 2;
  ExpectedRttLearner learner{cfg};
  learner.observe(kKey, 0, 1.0);
  learner.observe(kKey, 1, 2.0);
  learner.observe(kKey, 5, 3.0);
  learner.evict_stale(5);
  EXPECT_EQ(learner.history_size(kKey, 2), 0u);  // day 0/1 evicted
  EXPECT_EQ(learner.history_size(kKey, 6), 1u);  // day 5 kept
}

TEST(ExpectedRttLearner, RejectsDisorderedAndInvalid) {
  ExpectedRttLearner learner;
  learner.observe(kKey, 5, 1.0);
  EXPECT_THROW(learner.observe(kKey, 4, 1.0), std::invalid_argument);
  EXPECT_THROW(learner.observe(kKey, 6, -1.0), std::invalid_argument);
  EXPECT_THROW(learner.observe(kKey, -1, 1.0), std::invalid_argument);
}

TEST(ExpectedRttLearner, KeysAreIndependent) {
  ExpectedRttLearner learner;
  const auto other = cloud_key(net::CloudLocationId{9},
                               net::DeviceClass::NonMobile);
  learner.observe(kKey, 0, 10.0);
  learner.observe(other, 0, 99.0);
  EXPECT_DOUBLE_EQ(learner.expected(kKey, 1).value(), 10.0);
  EXPECT_DOUBLE_EQ(learner.expected(other, 1).value(), 99.0);
}

// Paper §4.3 worked example: historical RTTs uniform in [35,45] (median
// ~40); after a cloud fault the distribution moves to [40,70]. With τ=0.8,
// comparing against the *learned* 40 ms flags every quartet; comparing
// against the 50 ms region target would flag only ~1/3.
TEST(ExpectedRttLearner, WorkedExampleFromPaper) {
  ExpectedRttLearner learner;
  util::Rng rng{7};
  for (int day = 0; day < 14; ++day) {
    for (int i = 0; i < 100; ++i) {
      learner.observe(kKey, day, rng.uniform(35.0, 45.0));
    }
  }
  const double learned = learner.expected(kKey, 14).value();
  EXPECT_NEAR(learned, 40.0, 1.0);

  int bad_by_learned = 0;
  int bad_by_target = 0;
  const double target = 50.0;
  for (int i = 0; i < 3000; ++i) {
    const double rtt = rng.uniform(40.0, 70.0);
    bad_by_learned += rtt > learned;
    bad_by_target += rtt > target;
  }
  EXPECT_GT(bad_by_learned / 3000.0, 0.95);  // everything above 40
  EXPECT_NEAR(bad_by_target / 3000.0, 2.0 / 3.0, 0.05);
}

// --- Columnar backend: bit-identical to the hash-map reference path. ---

ExpectedRttConfig backend_config(store::StateBackend backend) {
  ExpectedRttConfig cfg;
  cfg.backend = backend;
  cfg.reservoir_per_day = 8;  // small cap so Algorithm R actually evicts
  cfg.window_days = 3;        // short window so evict_stale() really drops
  return cfg;
}

/// Feeds both backends the identical day-ordered stream: many keys, sample
/// counts past the reservoir cap (so slot arithmetic matters), day gaps,
/// and an eviction partway through.
void parity_feed(ExpectedRttLearner& learner) {
  for (int day = 0; day < 20; ++day) {
    if (day == 7) continue;  // a silent day
    for (int k = 0; k < 6; ++k) {
      const auto key = middle_key(net::CloudLocationId{7},
                                  net::MiddleSegmentId{(unsigned)k},
                                  net::DeviceClass::NonMobile);
      const int samples = 3 + 5 * k;  // some keys overflow the cap of 8
      for (int s = 0; s < samples; ++s) {
        learner.observe(key, day, 30.0 + k * 7 + day * 0.25 + s * 0.125);
      }
    }
    if (day == 12) learner.evict_stale(day - 6);
  }
}

TEST(ExpectedRttBackends, ColumnarMatchesHashMapBitForBit) {
  ExpectedRttLearner hash{backend_config(store::StateBackend::kHashMap)};
  ExpectedRttLearner columnar{backend_config(store::StateBackend::kColumnar)};
  parity_feed(hash);
  parity_feed(columnar);

  EXPECT_EQ(hash.tracked_keys(), columnar.tracked_keys());
  for (int k = 0; k < 6; ++k) {
    const auto key = middle_key(net::CloudLocationId{7},
                                net::MiddleSegmentId{(unsigned)k},
                                net::DeviceClass::NonMobile);
    for (int day = 0; day <= 21; ++day) {
      const auto h = hash.expected(key, day);
      const auto c = columnar.expected(key, day);
      ASSERT_EQ(h.has_value(), c.has_value()) << "key " << k << " day " << day;
      if (h) {
        // Bit-level equality, not near: both backends must pool the same
        // samples in the same order.
        EXPECT_EQ(*h, *c) << "key " << k << " day " << day;
      }
      EXPECT_EQ(hash.history_size(key, day), columnar.history_size(key, day));
    }
  }
}

TEST(ExpectedRttBackends, EvictStaleParityAfterChurn) {
  ExpectedRttLearner hash{backend_config(store::StateBackend::kHashMap)};
  ExpectedRttLearner columnar{backend_config(store::StateBackend::kColumnar)};
  const auto churned = cloud_key(net::CloudLocationId{1},
                                 net::DeviceClass::Mobile);
  const auto steady = cloud_key(net::CloudLocationId{2},
                                net::DeviceClass::Mobile);
  for (auto* learner : {&hash, &columnar}) {
    learner->observe(churned, 0, 11.0);
    for (int day = 0; day < 10; ++day) learner->observe(steady, day, 22.0);
    learner->evict_stale(8);  // churned key's only reservoir expires
  }
  EXPECT_EQ(hash.tracked_keys(), 1u);
  EXPECT_EQ(columnar.tracked_keys(), 1u);
  EXPECT_FALSE(columnar.expected(churned, 10).has_value());
  EXPECT_EQ(hash.expected(steady, 10), columnar.expected(steady, 10));
}

TEST(ExpectedRttBackends, SaveRestoreRoundTripsEachBackend) {
  for (const auto backend :
       {store::StateBackend::kHashMap, store::StateBackend::kColumnar}) {
    ExpectedRttLearner learner{backend_config(backend)};
    parity_feed(learner);

    store::SnapshotWriter writer;
    learner.save_state(writer);
    const auto reader =
        store::SnapshotReader::from_bytes(writer.serialize(), "<rt>");

    ExpectedRttLearner restored{backend_config(backend)};
    restored.restore_state(reader);
    EXPECT_EQ(restored.tracked_keys(), learner.tracked_keys());
    for (int k = 0; k < 6; ++k) {
      const auto key = middle_key(net::CloudLocationId{7},
                                  net::MiddleSegmentId{(unsigned)k},
                                  net::DeviceClass::NonMobile);
      for (int day = 18; day <= 21; ++day) {
        EXPECT_EQ(learner.expected(key, day), restored.expected(key, day))
            << to_string(backend) << " key " << k << " day " << day;
      }
    }
  }
}

// --- §13 churn-aware baseline transfer ---------------------------------

const auto kOldPath =
    middle_key(kLoc, net::MiddleSegmentId{10}, net::DeviceClass::NonMobile);
const auto kNewPath =
    middle_key(kLoc, net::MiddleSegmentId{11}, net::DeviceClass::NonMobile);

TEST(BaselineTransfer, SeedsColdKeyWithDiscount) {
  ExpectedRttLearner learner;
  for (int day = 0; day < 5; ++day) learner.observe(kOldPath, day, 40.0);
  ASSERT_TRUE(learner.transfer_baseline(kOldPath, kNewPath, 5));

  // Plain expected() is untouched — the seed lives in the side table.
  EXPECT_FALSE(learner.expected(kNewPath, 5).has_value());
  const auto graded = learner.expected_with_provenance(kNewPath, 5);
  ASSERT_TRUE(graded.value.has_value());
  EXPECT_DOUBLE_EQ(*graded.value, 40.0 * 1.1);  // default discount
  EXPECT_EQ(graded.provenance, BaselineProvenance::kTransferred);
  EXPECT_TRUE(learner.recently_churned(kNewPath, 5));
  EXPECT_FALSE(learner.recently_churned(kOldPath, 5));
}

TEST(BaselineTransfer, SurvivesSourceEvictionThenExpires) {
  ExpectedRttConfig cfg;
  cfg.window_days = 2;
  cfg.transfer_max_age_days = 3;
  ExpectedRttLearner learner{cfg};
  learner.observe(kOldPath, 0, 50.0);
  ASSERT_TRUE(learner.transfer_baseline(kOldPath, kNewPath, 1));

  // Evicting the source's history must not lose the eagerly captured value.
  learner.evict_stale(3);  // drops the day-0 reservoir, keeps the transfer
  EXPECT_FALSE(learner.expected_with_provenance(kOldPath, 4).value);
  const auto graded = learner.expected_with_provenance(kNewPath, 4);
  ASSERT_TRUE(graded.value.has_value());
  EXPECT_DOUBLE_EQ(*graded.value, 50.0 * cfg.transfer_discount);

  // Past the age limit the transfer stops being served, and evict_stale
  // drops the entry from the side table.
  EXPECT_FALSE(learner.expected_with_provenance(kNewPath, 5).value);
  EXPECT_FALSE(learner.recently_churned(kNewPath, 5));
  EXPECT_EQ(learner.transfer_count(), 1u);
  learner.evict_stale(5);
  EXPECT_EQ(learner.transfer_count(), 0u);
}

TEST(BaselineTransfer, DoesNotClobberFresherBaseline) {
  ExpectedRttLearner learner;
  for (int day = 0; day < 4; ++day) {
    learner.observe(kOldPath, day, 80.0);
    learner.observe(kNewPath, day, 30.0);
  }
  // The target has real window history: the transfer is recorded (it marks
  // the key recently churned) but the served value stays the fresh median.
  EXPECT_TRUE(learner.transfer_baseline(kOldPath, kNewPath, 4));
  const auto graded = learner.expected_with_provenance(kNewPath, 4);
  ASSERT_TRUE(graded.value.has_value());
  EXPECT_DOUBLE_EQ(*graded.value, 30.0);
  EXPECT_EQ(graded.provenance, BaselineProvenance::kFresh);
  EXPECT_TRUE(learner.recently_churned(kNewPath, 4));
}

TEST(BaselineTransfer, ReplayedEventCannotOverwriteFresherTransfer) {
  ExpectedRttLearner learner;
  learner.observe(kOldPath, 0, 40.0);
  const auto other =
      middle_key(kLoc, net::MiddleSegmentId{12}, net::DeviceClass::NonMobile);
  learner.observe(other, 0, 90.0);
  ASSERT_TRUE(learner.transfer_baseline(kOldPath, kNewPath, 3));
  // A late-delivered (older-day) churn event for the same target loses.
  EXPECT_FALSE(learner.transfer_baseline(other, kNewPath, 2));
  EXPECT_DOUBLE_EQ(*learner.expected_with_provenance(kNewPath, 3).value,
                   40.0 * 1.1);
}

TEST(BaselineTransfer, NoOpWithoutUsableSource) {
  // Churn for an untracked path (no learner history on either end, e.g. a
  // /24 the pipeline never saw traffic from): nothing to seed, no crash,
  // no side-table growth.
  ExpectedRttLearner learner;
  EXPECT_FALSE(learner.transfer_baseline(kOldPath, kNewPath, 3));
  EXPECT_FALSE(learner.transfer_baseline(kOldPath, kOldPath, 3));
  EXPECT_EQ(learner.transfer_count(), 0u);
  EXPECT_FALSE(learner.recently_churned(kNewPath, 3));
}

TEST(BaselineTransfer, ChainedTransferCompoundsDiscount) {
  ExpectedRttLearner learner;
  learner.observe(kOldPath, 0, 40.0);
  const auto third =
      middle_key(kLoc, net::MiddleSegmentId{13}, net::DeviceClass::NonMobile);
  ASSERT_TRUE(learner.transfer_baseline(kOldPath, kNewPath, 1));
  // The path churns again inside the age limit: the second hop captures the
  // first transfer's once-discounted value, and serving applies one more
  // discount — two compounds total for the two-hop chain.
  ASSERT_TRUE(learner.transfer_baseline(kNewPath, third, 2));
  EXPECT_DOUBLE_EQ(*learner.expected_with_provenance(third, 2).value,
                   40.0 * 1.1 * 1.1);
}

TEST(BaselineTransfer, SnapshotParityOfTransferredProvenance) {
  // Transferred provenance must survive snapshot/restore bit-identically on
  // BOTH state backends.
  for (const auto backend :
       {store::StateBackend::kHashMap, store::StateBackend::kColumnar}) {
    ExpectedRttLearner learner{backend_config(backend)};
    for (int day = 0; day < 3; ++day) {
      for (int i = 0; i < 4; ++i) learner.observe(kOldPath, day, 44.0);
    }
    ASSERT_TRUE(learner.transfer_baseline(kOldPath, kNewPath, 3));

    store::SnapshotWriter writer;
    learner.save_state(writer);
    const auto reader =
        store::SnapshotReader::from_bytes(writer.serialize(), "<rt>");
    ExpectedRttLearner restored{backend_config(backend)};
    restored.restore_state(reader);

    EXPECT_EQ(restored.transfer_count(), 1u) << to_string(backend);
    const auto before = learner.expected_with_provenance(kNewPath, 3);
    const auto after = restored.expected_with_provenance(kNewPath, 3);
    ASSERT_TRUE(after.value.has_value()) << to_string(backend);
    EXPECT_EQ(*before.value, *after.value) << to_string(backend);
    EXPECT_EQ(after.provenance, BaselineProvenance::kTransferred);
    EXPECT_TRUE(restored.recently_churned(kNewPath, 3));
  }
}

}  // namespace
}  // namespace blameit::analysis
