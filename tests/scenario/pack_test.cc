// Scenario-pack DSL validation: every schema error must be actionable —
// file:line:column pointer, the JSON path of the offending value, and the
// allowed values when the field is an enumeration.
#include "scenario/pack.h"

#include <gtest/gtest.h>

#include <string>

namespace blameit::scenario {
namespace {

Pack parse(const std::string& text) {
  return parse_pack(util::json::parse(text), "<inline>");
}

/// Parses expecting failure; returns the PackError message.
std::string error_of(const std::string& text) {
  try {
    (void)parse(text);
    ADD_FAILURE() << "expected PackError for: " << text;
    return {};
  } catch (const PackError& e) {
    return e.what();
  }
}

constexpr const char* kMinimal = R"({
  "name": "mini",
  "incidents": [
    {
      "name": "one",
      "type": "middle_as",
      "region": "usa",
      "start": "3d01:00",
      "duration_minutes": 60,
      "added_ms": 50.0
    }
  ]
})";

TEST(PackTest, MinimalPackParsesWithDefaults) {
  const auto pack = parse(kMinimal);
  EXPECT_EQ(pack.name, "mini");
  EXPECT_EQ(pack.mode, FeedMode::Aggregates);
  EXPECT_EQ(pack.warmup_days, 3);
  EXPECT_EQ(pack.run_days, 1);
  ASSERT_EQ(pack.incidents.size(), 1u);
  EXPECT_EQ(pack.incidents[0].type, IncidentType::MiddleAs);
  EXPECT_EQ(pack.incidents[0].region, net::Region::UnitedStates);
  EXPECT_EQ(pack.incidents[0].start.minutes,
            util::MinuteTime::from_days(3).plus_minutes(60).minutes);
}

TEST(PackTest, TimeAcceptsMinutesAndDayClock) {
  const auto a = parse(R"({"name": "t", "incidents": [
    {"name": "i", "type": "client_as", "region": "india",
     "start": 4380, "duration_minutes": 60, "added_ms": 40.0}]})");
  EXPECT_EQ(a.incidents[0].start.minutes, 4380);
}

TEST(PackTest, UnknownTopLevelKeyListsAllowed) {
  const auto msg = error_of(R"({"name": "x", "modee": "records",
                               "incidents": []})");
  EXPECT_NE(msg.find("<inline>:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("$.modee"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown member"), std::string::npos) << msg;
  EXPECT_NE(msg.find("allowed:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("incidents"), std::string::npos) << msg;
}

TEST(PackTest, ErrorPointsAtExactLineAndColumn) {
  // The bad value sits at line 3, column 11 — the error must say so.
  const auto msg = error_of(
      "{\n  \"name\": \"x\",\n  \"mode\": \"steam\",\n  \"incidents\": []\n}");
  EXPECT_NE(msg.find("<inline>:3:11: $.mode:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown mode \"steam\""), std::string::npos) << msg;
  EXPECT_NE(msg.find("aggregates"), std::string::npos) << msg;
  EXPECT_NE(msg.find("records"), std::string::npos) << msg;
}

TEST(PackTest, UnknownRegionListsAllRegionTokens) {
  const auto msg = error_of(R"({"name": "x", "incidents": [
    {"name": "i", "type": "middle_as", "region": "atlantis",
     "start": "3d00:30", "duration_minutes": 60, "added_ms": 50.0}]})");
  EXPECT_NE(msg.find("$.incidents[0].region"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown region \"atlantis\""), std::string::npos) << msg;
  for (const auto region : net::kAllRegions) {
    EXPECT_NE(msg.find(std::string{region_token(region)}), std::string::npos)
        << msg;
  }
}

TEST(PackTest, UnknownIncidentTypeListsAllowed) {
  const auto msg = error_of(R"({"name": "x", "incidents": [
    {"name": "i", "type": "gremlins", "region": "usa",
     "start": "3d00:30", "duration_minutes": 60}]})");
  EXPECT_NE(msg.find("$.incidents[0].type"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown incident type \"gremlins\""), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("bgp_flap_storm"), std::string::npos) << msg;
  EXPECT_NE(msg.find("resteer"), std::string::npos) << msg;
}

TEST(PackTest, MalformedTimeShowsExpectedShape) {
  const auto msg = error_of(R"({"name": "x", "incidents": [
    {"name": "i", "type": "middle_as", "region": "usa",
     "start": "tomorrow", "duration_minutes": 60, "added_ms": 50.0}]})");
  EXPECT_NE(msg.find("malformed time \"tomorrow\""), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("3d08:15"), std::string::npos) << msg;
}

TEST(PackTest, OutOfRangeIntegerShowsBounds) {
  const auto msg =
      error_of(R"({"name": "x", "warmup_days": 0, "incidents": []})");
  EXPECT_NE(msg.find("$.warmup_days"), std::string::npos) << msg;
  EXPECT_NE(msg.find("out of range [1, 30]"), std::string::npos) << msg;
}

TEST(PackTest, IncidentOutsideWindowIsNamed) {
  const auto msg = error_of(R"({"name": "x", "warmup_days": 2, "run_days": 1,
    "incidents": [
    {"name": "late-show", "type": "middle_as", "region": "usa",
     "start": "3d23:30", "duration_minutes": 120, "added_ms": 50.0}]})");
  EXPECT_NE(msg.find("late-show"), std::string::npos) << msg;
  EXPECT_NE(msg.find("outside the evaluation window"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("[day 2, day 3)"), std::string::npos) << msg;
}

TEST(PackTest, DuplicateIncidentNamesRejected) {
  const auto msg = error_of(R"({"name": "x", "incidents": [
    {"name": "twin", "type": "middle_as", "region": "usa",
     "start": "3d01:00", "duration_minutes": 60, "added_ms": 50.0},
    {"name": "twin", "type": "client_as", "region": "india",
     "start": "3d02:00", "duration_minutes": 60, "added_ms": 50.0}]})");
  EXPECT_NE(msg.find("$.incidents[1].name"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicate incident name \"twin\""), std::string::npos)
      << msg;
}

TEST(PackTest, IngestOnlyValidInRecordsMode) {
  const auto msg = error_of(
      R"({"name": "x", "ingest": {"shards": 4}, "incidents": []})");
  EXPECT_NE(msg.find("$.ingest"), std::string::npos) << msg;
  EXPECT_NE(msg.find("mode is \"records\""), std::string::npos) << msg;
}

TEST(PackTest, ResteerSemanticChecks) {
  // Missing to_region.
  auto msg = error_of(R"({"name": "x", "incidents": [
    {"name": "i", "type": "resteer", "region": "east_asia",
     "start": "3d01:00", "duration_minutes": 60}]})");
  EXPECT_NE(msg.find("require \"to_region\""), std::string::npos) << msg;

  // Same-region re-steer is meaningless.
  msg = error_of(R"({"name": "x", "incidents": [
    {"name": "i", "type": "resteer", "region": "east_asia",
     "start": "3d01:00", "duration_minutes": 60,
     "to_region": "east_asia"}]})");
  EXPECT_NE(msg.find("DIFFERENT region"), std::string::npos) << msg;

  // to_region on a latency-fault type is a category error.
  msg = error_of(R"({"name": "x", "incidents": [
    {"name": "i", "type": "middle_as", "region": "usa",
     "start": "3d01:00", "duration_minutes": 60, "added_ms": 50.0,
     "to_region": "india"}]})");
  EXPECT_NE(msg.find("only valid for resteer"), std::string::npos) << msg;
}

TEST(PackTest, LatencyFaultsRequirePositiveAddedMs) {
  const auto msg = error_of(R"({"name": "x", "incidents": [
    {"name": "i", "type": "cloud_location", "region": "brazil",
     "start": "3d01:00", "duration_minutes": 60}]})");
  EXPECT_NE(msg.find("added_ms > 0"), std::string::npos) << msg;
}

TEST(PackTest, ChaosRateBoundsChecked) {
  const auto msg = error_of(
      R"({"name": "x", "chaos": {"probe_loss_rate": 1.5}, "incidents": []})");
  EXPECT_NE(msg.find("$.chaos.probe_loss_rate"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rate must be in [0, 1]"), std::string::npos) << msg;
}

class PackResolveTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { topo_ = net::make_topology().release(); }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }
  static const net::Topology* topo_;
};

const net::Topology* PackResolveTest::topo_ = nullptr;

TEST_F(PackResolveTest, ResolvesGroundTruthPerType) {
  const auto pack = parse(R"({"name": "x", "incidents": [
    {"name": "cloud", "type": "cloud_location", "region": "brazil",
     "start": "3d01:00", "duration_minutes": 60, "added_ms": 50.0},
    {"name": "steer", "type": "resteer", "region": "east_asia",
     "start": "3d03:00", "duration_minutes": 60, "to_region": "usa"},
    {"name": "hijack", "type": "bgp_hijack", "region": "europe",
     "start": "3d05:00", "duration_minutes": 60, "added_ms": 40.0},
    {"name": "flap", "type": "bgp_flap_storm", "region": "india",
     "start": "3d07:00", "duration_minutes": 60}]})");
  const auto incidents = resolve_incidents(pack, *topo_);
  ASSERT_EQ(incidents.size(), 4u);

  EXPECT_EQ(incidents[0].kind, sim::FaultKind::CloudLocation);
  EXPECT_EQ(incidents[0].culprit_as, topo_->cloud_as());
  EXPECT_EQ(topo_->location(incidents[0].cloud_location).region,
            net::Region::Brazil);

  EXPECT_TRUE(incidents[1].via_override);
  EXPECT_FALSE(incidents[1].culprit_as.has_value());
  EXPECT_EQ(topo_->location(incidents[1].override_to).region,
            net::Region::UnitedStates);

  EXPECT_EQ(incidents[2].disruption, sim::RouteDisruption::Hijack);
  EXPECT_EQ(incidents[2].kind, sim::FaultKind::MiddleAs);
  ASSERT_TRUE(incidents[2].culprit_as.has_value());
  EXPECT_EQ(incidents[2].target_as, *incidents[2].culprit_as);

  // Flap storms have a well-defined category but no single failed AS.
  EXPECT_EQ(incidents[3].disruption, sim::RouteDisruption::FlapStorm);
  EXPECT_FALSE(incidents[3].culprit_as.has_value());
  EXPECT_NE(incidents[3].target_as, net::AsId{});
}

TEST_F(PackResolveTest, OutOfRangeIndexNamesIncidentAndSize) {
  const auto pack = parse(R"({"name": "x", "incidents": [
    {"name": "fat-finger", "type": "middle_as", "region": "usa",
     "start": "3d01:00", "duration_minutes": 60, "added_ms": 50.0,
     "transit_index": 9999}]})");
  try {
    (void)resolve_incidents(pack, *topo_);
    FAIL() << "expected PackError";
  } catch (const PackError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("incident \"fat-finger\""), std::string::npos) << msg;
    EXPECT_NE(msg.find("transit index 9999 out of range"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("this topology has"), std::string::npos) << msg;
  }
}

TEST_F(PackResolveTest, MiddleAsTargetsAreNonDominantTransits) {
  const auto pack = parse(kMinimal);
  const auto incidents = resolve_incidents(pack, *topo_);
  const auto eligible =
      sim::non_dominant_transits(*topo_, net::Region::UnitedStates);
  ASSERT_FALSE(eligible.empty());
  EXPECT_EQ(incidents[0].target_as, eligible.front());
}

std::string with_restart_and_backend(const std::string& restart_at,
                                     const std::string& backend) {
  return R"({
  "name": "mini",
  "warmup_days": 3,
  "run_days": 1,
  "pipeline": { "state_backend": ")" +
         backend + R"(" },
  "restart": { "at": )" +
         restart_at + R"( },
  "incidents": [
    {
      "name": "one",
      "type": "middle_as",
      "region": "usa",
      "start": "3d01:00",
      "duration_minutes": 60,
      "added_ms": 50.0
    }
  ]
})";
}

TEST(PackTest, RestartAndBackendParse) {
  const auto pack =
      parse(with_restart_and_backend("\"3d12:00\"", "columnar"));
  ASSERT_TRUE(pack.restart.has_value());
  EXPECT_EQ(pack.restart->at.minutes,
            util::MinuteTime::from_days(3).plus_minutes(12 * 60).minutes);
  EXPECT_EQ(pack.pipeline.state_backend, store::StateBackend::kColumnar);
  // Absent stanza → no restart, hash-map default.
  const auto plain = parse(kMinimal);
  EXPECT_FALSE(plain.restart.has_value());
  EXPECT_EQ(plain.pipeline.state_backend, store::StateBackend::kHashMap);
}

TEST(PackTest, RestartMustLandOnAStepBoundary) {
  const auto what =
      error_of(with_restart_and_backend("\"3d12:07\"", "columnar"));
  EXPECT_NE(what.find("$.restart.at"), std::string::npos) << what;
  EXPECT_NE(what.find("15-minute step boundary"), std::string::npos) << what;
}

TEST(PackTest, RestartOutsideTheEvaluationWindowIsRejected) {
  // During warmup: recovers nothing that a fresh warmup would not rebuild.
  const auto early =
      error_of(with_restart_and_backend("\"1d12:00\"", "columnar"));
  EXPECT_NE(early.find("$.restart.at"), std::string::npos) << early;
  // Exactly at the final step: no post-restore step left to verify.
  const auto last =
      error_of(with_restart_and_backend("\"4d00:00\"", "columnar"));
  EXPECT_NE(last.find("strictly before"), std::string::npos) << last;
}

TEST(PackTest, UnknownStateBackendListsAllowed) {
  const auto what =
      error_of(with_restart_and_backend("\"3d12:00\"", "btree"));
  EXPECT_NE(what.find("$.pipeline.state_backend"), std::string::npos) << what;
  EXPECT_NE(what.find("hashmap, columnar"), std::string::npos) << what;
}

}  // namespace
}  // namespace blameit::scenario
