// End-to-end runner contracts:
//  - the trace digest is byte-identical across runs, analytics thread
//    counts, and ingest shard counts — WITH measurement chaos enabled
//    (chaos decisions hash event identity, never thread/shard layout);
//  - overlapping incidents are scored with the documented precedence
//    (latest-start primary, acceptable set = union of overlap partners'
//    expected categories);
//  - the JSONL manifest carries a copy-pasteable rerun command per failing
//    incident and a trailing summary line with the digest.
#include "scenario/runner.h"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

namespace blameit::scenario {
namespace {

Pack parse(const std::string& text) {
  return parse_pack(util::json::parse(text), "<inline>");
}

// Small records-mode pack: sharded ingest + record-level chaos + one
// detectable incident, sized so a full run stays around a second.
constexpr const char* kChaosPack = R"({
  "name": "determinism_probe",
  "mode": "records",
  "warmup_days": 1,
  "run_days": 1,
  "telemetry_seed": 5,
  "topology": {
    "locations_per_region": 1,
    "eyeballs_per_region": 2,
    "blocks_per_eyeball": 2
  },
  "pipeline": { "expected_rtt_window_days": 1 },
  "ingest": { "shards": 2, "batch_records": 64, "queue_batches": 4 },
  "chaos": {
    "seed": 99,
    "duplicate_record_rate": 0.05,
    "late_record_rate": 0.05
  },
  "incidents": [
    {
      "name": "usa-transit-fault",
      "type": "middle_as",
      "region": "usa",
      "start": "1d02:00",
      "duration_minutes": 120,
      "added_ms": 60.0
    }
  ]
})";

// Restart pack: a tiny run with an incident in flight at the restart step,
// on the columnar backend. run_pack executes it twice (uninterrupted +
// snapshot/kill/restore) and must find the digests bit-identical.
constexpr const char* kRestartPack = R"({
  "name": "restart_probe",
  "mode": "aggregates",
  "warmup_days": 1,
  "run_days": 1,
  "telemetry_seed": 5,
  "topology": {
    "locations_per_region": 1,
    "eyeballs_per_region": 4,
    "blocks_per_eyeball": 8
  },
  "pipeline": {
    "expected_rtt_window_days": 1,
    "state_backend": "columnar"
  },
  "restart": { "at": "1d03:00" },
  "incidents": [
    {
      "name": "usa-transit-fault",
      "type": "middle_as",
      "region": "usa",
      "start": "1d02:00",
      "duration_minutes": 120,
      "added_ms": 60.0
    }
  ]
})";

TEST(RunnerRestartTest, MidIncidentRestartRecoversBitIdentical) {
  const auto pack = parse(kRestartPack);
  ASSERT_TRUE(pack.restart.has_value());
  const auto result = run_pack(pack);
  EXPECT_TRUE(result.restarted);
  EXPECT_TRUE(result.restart_ok)
      << "restarted " << result.digest << " vs uninterrupted "
      << result.uninterrupted_digest;
  EXPECT_EQ(result.digest, result.uninterrupted_digest);
  // The restart must not cost the in-flight incident its detection.
  ASSERT_EQ(result.scores.size(), 1u);
  EXPECT_TRUE(result.scores[0].passed);
}

TEST(RunnerRestartTest, RestartedDigestMatchesTheSamePackWithoutRestart) {
  // Dropping the restart stanza (everything else identical) must yield the
  // very same digest — the stanza changes fault-tolerance mechanics, never
  // output.
  const auto with_restart = run_pack(parse(kRestartPack));
  std::string no_restart_text{kRestartPack};
  const auto pos = no_restart_text.find("\"restart\": { \"at\": \"1d03:00\" },");
  ASSERT_NE(pos, std::string::npos);
  no_restart_text.erase(pos, std::string{"\"restart\": { \"at\": \"1d03:00\" },"}
                                 .size());
  const auto without = run_pack(parse(no_restart_text));
  EXPECT_FALSE(without.restarted);
  EXPECT_EQ(without.digest, with_restart.digest);
}

TEST(RunnerDeterminismTest, DigestStableAcrossThreadsAndShardsUnderChaos) {
  const auto pack = parse(kChaosPack);
  const auto base = run_pack(pack);
  ASSERT_EQ(base.digest.size(), 16u);
  EXPECT_GT(base.ingest_records_in, 0u);
  EXPECT_GT(base.steps, 0);

  for (const int threads : {1, 2, 4, 8}) {
    const auto r = run_pack(pack, {.analytics_threads = threads});
    EXPECT_EQ(r.digest, base.digest) << "analytics_threads=" << threads;
  }
  for (const int shards : {1, 2, 4, 8}) {
    const auto r = run_pack(pack, {.ingest_shards = shards});
    EXPECT_EQ(r.digest, base.digest) << "ingest_shards=" << shards;
  }
}

// Aggregates-mode pack with a deliberately stacked pair (cloud + middle on
// the same European paths) plus one sub-threshold incident that can never
// be detected — exercising the FAIL path of the manifest.
constexpr const char* kOverlapPack = R"({
  "name": "overlap_probe",
  "mode": "aggregates",
  "warmup_days": 1,
  "run_days": 1,
  "telemetry_seed": 3,
  "pipeline": { "expected_rtt_window_days": 1 },
  "incidents": [
    {
      "name": "europe-edge",
      "type": "cloud_location",
      "region": "europe",
      "start": "1d08:00",
      "duration_minutes": 180,
      "added_ms": 50.0,
      "location_index": 0
    },
    {
      "name": "europe-transit",
      "type": "middle_as",
      "region": "europe",
      "start": "1d09:00",
      "duration_minutes": 150,
      "added_ms": 45.0,
      "transit_index": 0
    },
    {
      "name": "usa-whisper",
      "type": "middle_as",
      "region": "usa",
      "start": "1d04:00",
      "duration_minutes": 90,
      "added_ms": 1.0,
      "transit_index": 0
    }
  ]
})";

class OverlapRunTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pack_ = new Pack{parse(kOverlapPack)};
    result_ = new RunResult{run_pack(*pack_)};
  }
  static void TearDownTestSuite() {
    delete result_;
    delete pack_;
    result_ = nullptr;
    pack_ = nullptr;
  }

  static const IncidentScore& score(const std::string& name) {
    for (const auto& s : result_->scores) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << "no score for " << name;
    static IncidentScore none;
    return none;
  }

  static Pack* pack_;
  static RunResult* result_;
};

Pack* OverlapRunTest::pack_ = nullptr;
RunResult* OverlapRunTest::result_ = nullptr;

TEST_F(OverlapRunTest, OverlappingIncidentsLinkEachOther) {
  const auto& edge = score("europe-edge");
  const auto& transit = score("europe-transit");

  ASSERT_EQ(edge.overlapped_with.size(), 1u);
  EXPECT_EQ(edge.overlapped_with[0], "europe-transit");
  ASSERT_EQ(transit.overlapped_with.size(), 1u);
  EXPECT_EQ(transit.overlapped_with[0], "europe-edge");

  // Latest start owns the shared record stream.
  EXPECT_TRUE(transit.primary);
  EXPECT_FALSE(edge.primary);

  // The non-overlapping incident is its own primary with no partners.
  EXPECT_TRUE(score("usa-whisper").primary);
  EXPECT_TRUE(score("usa-whisper").overlapped_with.empty());
}

TEST_F(OverlapRunTest, AcceptableSetIsUnionOfPartnersExpectations) {
  const auto& edge = score("europe-edge");
  const auto& transit = score("europe-transit");
  EXPECT_EQ(edge.expected, core::Blame::Cloud);
  EXPECT_EQ(transit.expected, core::Blame::Middle);

  // Both detected; each majority must land in {Cloud, Middle} and both
  // therefore pass even though the shared stream can only carry ONE
  // majority category.
  EXPECT_TRUE(edge.detected);
  EXPECT_TRUE(transit.detected);
  for (const auto* s : {&edge, &transit}) {
    EXPECT_TRUE(s->majority == core::Blame::Cloud ||
                s->majority == core::Blame::Middle)
        << s->name;
    EXPECT_TRUE(s->passed) << s->name;
  }

  // The sub-threshold incident is undetected and fails.
  EXPECT_FALSE(score("usa-whisper").detected);
  EXPECT_FALSE(score("usa-whisper").passed);
  EXPECT_EQ(result_->failed, 1);
}

TEST_F(OverlapRunTest, DigestReproducesExactly) {
  const auto again = run_pack(*pack_);
  EXPECT_EQ(again.digest, result_->digest);
  EXPECT_EQ(again.blames_total, result_->blames_total);
}

TEST_F(OverlapRunTest, ManifestCarriesRerunCommandsAndSummary) {
  const auto manifest =
      manifest_jsonl(*pack_, *result_, "packs/overlap_probe.json");
  std::istringstream in{manifest};
  std::string line;
  int lines = 0;
  bool saw_rerun = false;
  bool saw_summary = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    // Every line is a standalone JSON object.
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    if (line.find("\"incident\":\"usa-whisper\"") != std::string::npos) {
      EXPECT_NE(line.find("\"passed\":false"), std::string::npos) << line;
      EXPECT_NE(line.find("\"rerun\":"), std::string::npos) << line;
      EXPECT_NE(
          line.find("scenario_runner --pack packs/overlap_probe.json"),
          std::string::npos)
          << line;
      saw_rerun = true;
    }
    if (line.find("\"digest\":\"" + result_->digest + "\"") !=
        std::string::npos) {
      saw_summary = true;
    }
  }
  // One line per incident plus the trailing summary.
  EXPECT_EQ(lines, static_cast<int>(result_->scores.size()) + 1);
  EXPECT_TRUE(saw_rerun);
  EXPECT_TRUE(saw_summary);

  // Passing incidents name their overlap partners instead of hiding the
  // ambiguity in the pass bit.
  EXPECT_NE(manifest.find("\"overlapped_with\":[\"europe-transit\"]"),
            std::string::npos);
}

}  // namespace
}  // namespace blameit::scenario
