#include "util/spsc_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace blameit::util {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>{1}.capacity(), 2u);
  EXPECT_EQ(SpscRing<int>{2}.capacity(), 2u);
  EXPECT_EQ(SpscRing<int>{3}.capacity(), 4u);
  EXPECT_EQ(SpscRing<int>{64}.capacity(), 64u);
  EXPECT_EQ(SpscRing<int>{65}.capacity(), 128u);
}

TEST(SpscRingTest, FifoSingleThread) {
  SpscRing<int> ring{8};
  for (int round = 0; round < 3; ++round) {
    int values[5];
    for (int i = 0; i < 5; ++i) values[i] = round * 10 + i;
    EXPECT_EQ(ring.try_push(values, 5), 5u);
    int out[8] = {};
    EXPECT_EQ(ring.try_pop(out, 8), 5u);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], round * 10 + i);
  }
  int out;
  EXPECT_EQ(ring.try_pop(&out, 1), 0u);  // drained
}

TEST(SpscRingTest, FullAndEmptyBoundary) {
  SpscRing<int> ring{4};
  int values[6] = {1, 2, 3, 4, 5, 6};
  // Only capacity items fit; the rest are refused, not overwritten.
  EXPECT_EQ(ring.try_push(values, 6), 4u);
  EXPECT_EQ(ring.try_push(values, 1), 0u);  // full
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.high_water(), 4u);

  int out[6] = {};
  EXPECT_EQ(ring.try_pop(out, 6), 4u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[3], 4);
  EXPECT_EQ(ring.try_pop(out, 1), 0u);  // empty
  EXPECT_EQ(ring.size(), 0u);
}

// Sequence numbers are monotone u64s; index math must survive many laps
// around a tiny ring (the wraparound case).
TEST(SpscRingTest, BulkAcrossWraparound) {
  SpscRing<std::uint64_t> ring{4};
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  std::uint64_t buf[3];
  for (int i = 0; i < 1000; ++i) {
    const std::size_t want = 1 + static_cast<std::size_t>(i % 3);
    for (std::size_t k = 0; k < want; ++k) buf[k] = next_push + k;
    const std::size_t pushed = ring.try_push(buf, want);
    next_push += pushed;
    std::uint64_t out[3];
    const std::size_t popped = ring.try_pop(out, 3);
    for (std::size_t k = 0; k < popped; ++k) {
      ASSERT_EQ(out[k], next_pop + k);
    }
    next_pop += popped;
  }
  EXPECT_EQ(ring.pushed(), next_push);
  EXPECT_EQ(ring.popped(), next_pop);
}

TEST(SpscRingTest, PushAllBlocksUntilConsumerDrains) {
  SpscRing<int> ring{2, /*spin_limit=*/4};
  std::vector<int> items(64);
  std::iota(items.begin(), items.end(), 0);
  std::thread consumer{[&] {
    int out[8];
    std::size_t seen = 0;
    while (seen < items.size()) {
      const std::size_t n = ring.pop_wait(out, 8);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], static_cast<int>(seen + i));
      }
      seen += n;
    }
  }};
  // 64 items through a 2-slot ring: the producer must stall and resume many
  // times, but every item arrives in order.
  const auto status = ring.push_all(items.data(), items.size());
  EXPECT_NE(status, RingPush::Closed);
  consumer.join();
  EXPECT_EQ(ring.pushed(), items.size());
  EXPECT_EQ(ring.popped(), items.size());
}

TEST(SpscRingTest, CloseUnblocksParkedProducerAndCountsDrops) {
  SpscRing<int> ring{2, /*spin_limit=*/1};
  int fill[2] = {1, 2};
  ASSERT_EQ(ring.try_push(fill, 2), 2u);  // ring now full, nobody popping
  RingPush status = RingPush::Ok;
  std::thread producer{[&] {
    int more[3] = {3, 4, 5};
    status = ring.push_all(more, 3);  // parks: ring is full
  }};
  // Give the producer time to reach the parked state, then close.
  while (ring.producer_parks() == 0) std::this_thread::yield();
  ring.close();
  producer.join();
  EXPECT_EQ(status, RingPush::Closed);
  EXPECT_EQ(ring.dropped_after_close(), 3u);  // the whole undelivered batch
  // Already-published items remain poppable after close.
  int out[4];
  EXPECT_EQ(ring.try_pop(out, 4), 2u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
}

TEST(SpscRingTest, CloseUnblocksParkedConsumer) {
  SpscRing<int> ring{4, /*spin_limit=*/1};
  std::size_t popped = 0;
  std::thread consumer{[&] {
    int out[4];
    popped = ring.pop_wait(out, 4);  // parks: ring is empty
  }};
  while (ring.consumer_parks() == 0) std::this_thread::yield();
  ring.close();
  consumer.join();
  EXPECT_EQ(popped, 0u);
  EXPECT_TRUE(ring.closed());
}

TEST(SpscRingTest, WakeMakesPopWaitReturnZeroOnce) {
  SpscRing<int> ring{4};
  ring.wake();
  int out[4];
  // The pending wake token is consumed by one pop_wait...
  EXPECT_EQ(ring.pop_wait(out, 4), 0u);
  // ...and data flows normally afterwards.
  int v = 7;
  ASSERT_EQ(ring.try_push(&v, 1), 1u);
  EXPECT_EQ(ring.pop_wait(out, 4), 1u);
  EXPECT_EQ(out[0], 7);
}

TEST(SpscRingTest, WakeUnparksConsumer) {
  SpscRing<int> ring{4, /*spin_limit=*/1};
  std::size_t result = 99;
  std::thread consumer{[&] {
    int out[4];
    result = ring.pop_wait(out, 4);
  }};
  while (ring.consumer_parks() == 0) std::this_thread::yield();
  ring.wake();
  consumer.join();
  EXPECT_EQ(result, 0u);  // woke with no data: the side-channel signal
}

TEST(SpscRingTest, PushAfterCloseDropsAndCounts) {
  SpscRing<int> ring{4};
  ring.close();
  int values[3] = {1, 2, 3};
  EXPECT_EQ(ring.try_push(values, 3), 0u);
  EXPECT_EQ(ring.push_all(values, 3), RingPush::Closed);
  EXPECT_EQ(ring.dropped_after_close(), 3u);
  EXPECT_EQ(ring.pushed(), 0u);
}

// Two threads hammer the ring with small random-ish batches; every item
// must arrive exactly once, in order. Run under TSan in CI, this is the
// memory-ordering proof for the acquire/release protocol.
TEST(SpscRingTest, ConcurrentTransferIsLosslessAndOrdered) {
  constexpr std::uint64_t kItems = 200000;
  SpscRing<std::uint64_t> ring{64, /*spin_limit=*/16};
  std::thread consumer{[&] {
    std::uint64_t out[37];
    std::uint64_t expect = 0;
    while (expect < kItems) {
      const std::size_t n = ring.pop_wait(out, 37);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], expect + i);
      }
      expect += n;
    }
  }};
  std::uint64_t buf[29];
  std::uint64_t next = 0;
  while (next < kItems) {
    const std::size_t want =
        std::min<std::uint64_t>(1 + next % 29, kItems - next);
    for (std::size_t i = 0; i < want; ++i) buf[i] = next + i;
    ASSERT_NE(ring.push_all(buf, want), RingPush::Closed);
    next += want;
  }
  consumer.join();
  EXPECT_EQ(ring.pushed(), kItems);
  EXPECT_EQ(ring.popped(), kItems);
  EXPECT_GE(ring.high_water(), 1u);
  EXPECT_LE(ring.high_water(), ring.capacity());
}

}  // namespace
}  // namespace blameit::util
