#include "util/time.h"

#include <gtest/gtest.h>

namespace blameit::util {
namespace {

TEST(MinuteTime, CalendarDecomposition) {
  const auto t = MinuteTime::from_day_hour(3, 14, 25);
  EXPECT_EQ(t.day(), 3);
  EXPECT_EQ(t.hour_of_day(), 14);
  EXPECT_EQ(t.minute_of_day(), 14 * 60 + 25);
}

TEST(MinuteTime, EpochIsMonday) {
  EXPECT_EQ(MinuteTime{0}.day_of_week(), 0);
  EXPECT_FALSE(MinuteTime{0}.is_weekend());
}

TEST(MinuteTime, WeekendDetection) {
  EXPECT_TRUE(MinuteTime::from_days(5).is_weekend());   // Saturday
  EXPECT_TRUE(MinuteTime::from_days(6).is_weekend());   // Sunday
  EXPECT_FALSE(MinuteTime::from_days(7).is_weekend());  // next Monday
}

TEST(MinuteTime, Arithmetic) {
  const auto t = MinuteTime::from_day_hour(1, 23, 50);
  EXPECT_EQ(t.plus_minutes(15).day(), 2);
  EXPECT_EQ(t.plus_minutes(15).hour_of_day(), 0);
  EXPECT_EQ(t.plus_days(2).day(), 3);
}

TEST(MinuteTime, Ordering) {
  EXPECT_LT(MinuteTime{5}, MinuteTime{6});
  EXPECT_EQ(MinuteTime{5}, MinuteTime{5});
}

TEST(TimeBucket, QuantizesToFiveMinutes) {
  EXPECT_EQ(TimeBucket::of(MinuteTime{0}).index, 0);
  EXPECT_EQ(TimeBucket::of(MinuteTime{4}).index, 0);
  EXPECT_EQ(TimeBucket::of(MinuteTime{5}).index, 1);
  EXPECT_EQ(TimeBucket::of(MinuteTime{7}).index, 1);
}

TEST(TimeBucket, StartIsBucketLowerEdge) {
  const auto b = TimeBucket::of(MinuteTime{17});
  EXPECT_EQ(b.start().minutes, 15);
}

TEST(TimeBucket, BucketOfDayMatchesAcrossDays) {
  const auto b = TimeBucket::of(MinuteTime::from_day_hour(0, 9, 15));
  const auto same_window_next_day = b.plus_days(1);
  EXPECT_EQ(b.bucket_of_day(), same_window_next_day.bucket_of_day());
  EXPECT_EQ(same_window_next_day.day(), 1);
}

TEST(TimeBucket, BucketsPerDayConstant) {
  EXPECT_EQ(kBucketsPerDay, 288);
  const auto last = TimeBucket::of(MinuteTime::from_day_hour(0, 23, 59));
  EXPECT_EQ(last.bucket_of_day(), kBucketsPerDay - 1);
}

TEST(TimeBucket, NextPrevRoundTrip) {
  const TimeBucket b{100};
  EXPECT_EQ(b.next().prev(), b);
}

TEST(TimeFormatting, RendersDayHourMinute) {
  EXPECT_EQ(to_string(MinuteTime::from_day_hour(2, 7, 5)), "d2 07:05");
  EXPECT_EQ(to_string(TimeBucket{0}), "d0 00:00");
}

}  // namespace
}  // namespace blameit::util
