// Strict-parser behaviors the scenario-pack validator depends on: precise
// line/column provenance, integral-number detection, duplicate-key and
// trailing-garbage rejection, and RFC 8259 string escapes.
#include "util/json_reader.h"

#include <gtest/gtest.h>

namespace blameit::util::json {
namespace {

TEST(JsonReaderTest, ParsesScalarsWithTypes) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("-2.5e2").as_number(), -250.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonReaderTest, IntegralDetection) {
  // Integer-valued numbers are available as int64 regardless of spelling.
  EXPECT_TRUE(parse("42").is_integer());
  EXPECT_EQ(parse("42").as_integer(), 42);
  EXPECT_TRUE(parse("12.0").is_integer());
  EXPECT_EQ(parse("12.0").as_integer(), 12);
  EXPECT_TRUE(parse("1e3").is_integer());
  EXPECT_EQ(parse("1e3").as_integer(), 1000);
  EXPECT_TRUE(parse("-7").is_integer());
  // Fractional or out-of-range numbers are numbers but not integers.
  EXPECT_FALSE(parse("12.5").is_integer());
  EXPECT_TRUE(parse("12.5").is_number());
  EXPECT_FALSE(parse("1e20").is_integer());
}

TEST(JsonReaderTest, ObjectsPreserveOrderAndSupportLookup) {
  const auto v = parse(R"({"b": 1, "a": 2, "nested": {"x": [1, 2, 3]}})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.members()[1].first, "a");

  ASSERT_NE(v.find("nested"), nullptr);
  const auto* x = v.find("nested")->find("x");
  ASSERT_NE(x, nullptr);
  ASSERT_TRUE(x->is_array());
  ASSERT_EQ(x->items().size(), 3u);
  EXPECT_EQ(x->items()[2].as_integer(), 3);

  EXPECT_EQ(v.find("missing"), nullptr);
  // find() on a non-object is a nullptr, not a throw.
  EXPECT_EQ(parse("[1]").find("x"), nullptr);
}

TEST(JsonReaderTest, ValuesRememberLineAndColumn) {
  const std::string doc = "{\n  \"a\": 1,\n  \"b\": [\n    \"deep\"\n  ]\n}";
  const auto v = parse(doc);
  EXPECT_EQ(v.line(), 1);
  EXPECT_EQ(v.column(), 1);
  const auto* a = v.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->line(), 2);
  EXPECT_EQ(a->column(), 8);
  const auto* deep = &v.find("b")->items()[0];
  EXPECT_EQ(deep->line(), 4);
  EXPECT_EQ(deep->column(), 5);
}

TEST(JsonReaderTest, StringEscapes) {
  EXPECT_EQ(parse(R"("a\nb\t\"c\"\\")").as_string(), "a\nb\t\"c\"\\");
  EXPECT_EQ(parse(R"("café")").as_string(), "caf\xc3\xa9");
  // Surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");
  EXPECT_THROW((void)parse(R"("\ud83d oops")"), ParseError);
  EXPECT_THROW((void)parse(R"("\ude00")"), ParseError);
  EXPECT_THROW((void)parse(R"("\uZZZZ")"), ParseError);
}

TEST(JsonReaderTest, DuplicateKeysRejected) {
  try {
    (void)parse("{\"a\": 1,\n \"a\": 2}");
    FAIL() << "duplicate key should throw";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string{e.what()}.find("duplicate member \"a\""),
              std::string::npos);
  }
}

TEST(JsonReaderTest, StrictnessRejectsExtensions) {
  EXPECT_THROW((void)parse("[1, 2,]"), ParseError);        // trailing comma
  EXPECT_THROW((void)parse("{\"a\": 1} x"), ParseError);   // trailing junk
  EXPECT_THROW((void)parse("// c\n1"), ParseError);        // comments
  EXPECT_THROW((void)parse("NaN"), ParseError);
  EXPECT_THROW((void)parse("Infinity"), ParseError);
  EXPECT_THROW((void)parse(""), ParseError);
  EXPECT_THROW((void)parse("{\"a\" 1}"), ParseError);      // missing colon
}

TEST(JsonReaderTest, ParseErrorCarriesLocation) {
  try {
    (void)parse("{\n  \"a\": nope\n}");
    FAIL() << "should throw";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.column(), 0);
    EXPECT_NE(std::string{e.what()}.find("2:"), std::string::npos);
  }
}

TEST(JsonReaderTest, AccessorsThrowOnTypeMismatch) {
  const auto v = parse("\"text\"");
  EXPECT_THROW((void)v.as_number(), std::logic_error);
  EXPECT_THROW((void)v.as_bool(), std::logic_error);
  EXPECT_THROW((void)v.items(), std::logic_error);
  EXPECT_THROW((void)parse("12.5").as_integer(), std::logic_error);
}

TEST(JsonReaderTest, ParseFileMissingIsAnError) {
  EXPECT_THROW((void)parse_file("/nonexistent/pack.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace blameit::util::json
