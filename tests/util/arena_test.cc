#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace blameit::util {
namespace {

TEST(ArenaTest, AllocationsAreDisjointAndWritable) {
  Arena arena{1024};
  auto* a = arena.allocate_array<std::uint64_t>(16);
  auto* b = arena.allocate_array<std::uint64_t>(16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (int i = 0; i < 16; ++i) a[i] = 0x1111111111111111ull;
  for (int i = 0; i < 16; ++i) b[i] = 0x2222222222222222ull;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a[i], 0x1111111111111111ull);  // b did not overlap a
  }
}

TEST(ArenaTest, GrowsByChunksAndTracksUsage) {
  Arena arena{256};
  EXPECT_EQ(arena.chunk_count(), 0u);
  arena.allocate(100, 8);
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.bytes_reserved(), 256u);
  arena.allocate(100, 8);  // still fits the first chunk
  EXPECT_EQ(arena.chunk_count(), 1u);
  arena.allocate(100, 8);  // does not fit: second chunk
  EXPECT_EQ(arena.chunk_count(), 2u);
  EXPECT_EQ(arena.bytes_reserved(), 512u);
  EXPECT_EQ(arena.bytes_used(), 300u);
}

TEST(ArenaTest, OversizeRequestGetsDedicatedChunk) {
  Arena arena{128};
  auto* big = arena.allocate_array<std::byte>(4096);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xAB, 4096);
  EXPECT_GE(arena.bytes_reserved(), 4096u);
}

TEST(ArenaTest, PointersStableAcrossGrowth) {
  Arena arena{256};
  std::vector<std::uint32_t*> ptrs;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    auto* p = arena.allocate_array<std::uint32_t>(1);
    *p = i;
    ptrs.push_back(p);
  }
  for (std::uint32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(*ptrs[i], i);  // no allocation ever moved an earlier one
  }
  EXPECT_GT(arena.chunk_count(), 1u);
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena{1024};
  arena.allocate(1, 1);  // misalign the bump pointer
  auto* d = arena.allocate_array<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  arena.allocate(3, 1);
  auto* q = arena.allocate_array<std::uint64_t>(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % alignof(std::uint64_t), 0u);
}

}  // namespace
}  // namespace blameit::util
