#include "util/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace blameit::util {
namespace {

TEST(Histogram, BinEdges) {
  Histogram h{0.0, 10.0, 5};
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(1.0);
  h.add(3.0);
  h.add(-5.0);   // clamps into first bin
  h.add(99.0);   // clamps into last bin
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, WeightedAdds) {
  Histogram h{0.0, 1.0, 2};
  h.add(0.1, 3.0);
  h.add(0.9, 1.0);
  EXPECT_DOUBLE_EQ(h.count(0), 3.0);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(1), 1.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
  EXPECT_THROW((Histogram{1.0, 1.0, 4}), std::invalid_argument);
  EXPECT_THROW((Histogram{2.0, 1.0, 4}), std::invalid_argument);
}

TEST(CdfSeries, EndpointsAndMonotonicity) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  const auto series = cdf_series(xs, 5);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series.front().x, 1.0);
  EXPECT_DOUBLE_EQ(series.front().fraction, 0.0);
  EXPECT_DOUBLE_EQ(series.back().x, 5.0);
  EXPECT_DOUBLE_EQ(series.back().fraction, 1.0);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].x, series[i - 1].x);
    EXPECT_GT(series[i].fraction, series[i - 1].fraction);
  }
}

TEST(CdfSeries, EmptyInput) {
  EXPECT_TRUE(cdf_series(std::vector<double>{}, 10).empty());
}

TEST(Sparkline, RendersOneGlyphPerValue) {
  const std::vector<double> xs{0.0, 0.5, 1.0};
  const auto line = sparkline(xs);
  EXPECT_FALSE(line.empty());
  // Each glyph is a 3-byte UTF-8 block character.
  EXPECT_EQ(line.size(), 9u);
}

TEST(Sparkline, ConstantSeriesDoesNotCrash) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  EXPECT_EQ(sparkline(xs).size(), 9u);
}

}  // namespace
}  // namespace blameit::util
