#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace blameit::util {
namespace {

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool{threads};
    EXPECT_EQ(pool.size(), threads);
    std::vector<std::atomic<int>> hits(257);
    pool.run(257, [&](int job) {
      hits[static_cast<std::size_t>(job)].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossGenerations) {
  ThreadPool pool{4};
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.run(100, [&](int job) { sum.fetch_add(job); });
    EXPECT_EQ(sum.load(), 99L * 100 / 2);
  }
}

TEST(ThreadPool, ZeroOrNegativeJobsIsNoop) {
  ThreadPool pool{2};
  pool.run(0, [](int) { FAIL(); });
  pool.run(-5, [](int) { FAIL(); });
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool{1};
  const auto caller = std::this_thread::get_id();
  pool.run(16, [&](int) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool{4};
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.run(64,
                        [&](int job) {
                          ran.fetch_add(1);
                          if (job == 13) throw std::runtime_error{"boom"};
                        }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 64);  // remaining jobs still executed
  // The pool stays usable after an exception.
  std::atomic<int> ok{0};
  pool.run(8, [&](int) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, AutoResolvesToHardware) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3);
  ThreadPool pool{0};
  EXPECT_GE(pool.size(), 1);
}

}  // namespace
}  // namespace blameit::util
