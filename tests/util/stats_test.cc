#include "util/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace blameit::util {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng{5};
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 7.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Quantiles, MedianOddEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Quantiles, EdgesAndInterpolation) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.125), 15.0);  // interpolated
}

TEST(Quantiles, EmptySampleYieldsZero) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(EmpiricalCdf, StepFunction) {
  EmpiricalCdf cdf{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.survival(2.5), 0.5);
}

TEST(EmpiricalCdf, InverseRoundTrip) {
  EmpiricalCdf cdf{{5.0, 10.0, 15.0, 20.0, 25.0}};
  EXPECT_DOUBLE_EQ(cdf.inverse(0.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(1.0), 25.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(0.5), 15.0);
}

TEST(EmpiricalCdf, EmptyIsSafe) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
}

TEST(KsTest, SameDistributionHighPValue) {
  Rng rng{41};
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.normal(0.0, 1.0));
    b.push_back(rng.normal(0.0, 1.0));
  }
  const auto result = ks_test(a, b);
  EXPECT_TRUE(result.same_distribution());
  EXPECT_LT(result.statistic, 0.15);
}

TEST(KsTest, ShiftedDistributionRejected) {
  Rng rng{43};
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.normal(0.0, 1.0));
    b.push_back(rng.normal(1.5, 1.0));
  }
  const auto result = ks_test(a, b);
  EXPECT_FALSE(result.same_distribution());
  EXPECT_GT(result.statistic, 0.4);
}

TEST(KsTest, IdenticalSamplesStatZero) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const auto result = ks_test(a, a);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(KsTest, ThrowsOnEmpty) {
  const std::vector<double> a{1.0};
  const std::vector<double> empty;
  EXPECT_THROW((void)ks_test(a, empty), std::invalid_argument);
  EXPECT_THROW((void)ks_test(empty, a), std::invalid_argument);
}

// Property: quantiles are monotone in q for arbitrary samples.
class QuantileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileMonotone, MonotoneInQ) {
  Rng rng{GetParam()};
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.lognormal(2.0, 1.0));
  double prev = quantile(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(xs, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace blameit::util
