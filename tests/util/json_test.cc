#include "util/json.h"

#include <gtest/gtest.h>

#include <charconv>
#include <clocale>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace blameit::util::json {
namespace {

TEST(JsonEscape, PassesPlainAsciiThrough) {
  EXPECT_EQ(escape("hello world 123 .-_/"), "hello world 123 .-_/");
}

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape("\\\""), "\\\\\\\"");
}

TEST(JsonEscape, ShortFormControlCharacters) {
  EXPECT_EQ(escape("a\bb"), "a\\bb");
  EXPECT_EQ(escape("a\fb"), "a\\fb");
  EXPECT_EQ(escape("a\nb"), "a\\nb");
  EXPECT_EQ(escape("a\rb"), "a\\rb");
  EXPECT_EQ(escape("a\tb"), "a\\tb");
}

TEST(JsonEscape, RemainingControlRangeAsUnicodeEscapes) {
  EXPECT_EQ(escape(std::string_view{"\x00", 1}), "\\u0000");
  EXPECT_EQ(escape("\x01"), "\\u0001");
  EXPECT_EQ(escape("\x1f"), "\\u001f");
  EXPECT_EQ(escape("\x0b"), "\\u000b");  // vertical tab has no short form
  // Every C0 control char must come out escaped one way or another.
  for (int c = 0; c < 0x20; ++c) {
    const std::string in(1, static_cast<char>(c));
    const auto out = escape(in);
    EXPECT_GE(out.size(), 2u) << "control char " << c << " not escaped";
    EXPECT_EQ(out[0], '\\');
  }
}

TEST(JsonEscape, Utf8BytesPassThroughUntouched) {
  // "héllo → 日本" — multi-byte sequences must not be mangled or escaped.
  const std::string utf8 = "h\xc3\xa9llo \xe2\x86\x92 \xe6\x97\xa5\xe6\x9c\xac";
  EXPECT_EQ(escape(utf8), utf8);
}

TEST(JsonEscape, DeleteCharIsNotEscaped) {
  // RFC 8259 only requires escaping below 0x20; 0x7f passes through.
  EXPECT_EQ(escape("\x7f"), "\x7f");
}

TEST(JsonNumber, IntegersAndSimpleDoubles) {
  EXPECT_EQ(number(0.0), "0");
  EXPECT_EQ(number(1.0), "1");
  EXPECT_EQ(number(-3.0), "-3");
  EXPECT_EQ(number(2.5), "2.5");
  EXPECT_EQ(number(-0.125), "-0.125");
}

TEST(JsonNumber, RoundTripsExactly) {
  const double values[] = {0.1,        1.0 / 3.0,  1e-300,     1e300,
                           123456.789, 2.2250738585072014e-308,
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::denorm_min()};
  for (const double v : values) {
    const auto s = number(v);
    double back = 0.0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), back);
    ASSERT_TRUE(ec == std::errc{} || ec == std::errc::result_out_of_range) << s;
    EXPECT_EQ(back, v) << s;
    EXPECT_EQ(ptr, s.data() + s.size()) << s;
  }
}

TEST(JsonNumber, NanAndInfinityBecomeNull) {
  EXPECT_EQ(number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonNumber, LocaleIndependentDecimalPoint) {
  // If a comma-decimal locale is installed, number() must still emit '.'
  // (std::to_chars is locale-independent by contract; this guards against
  // anyone "simplifying" it back to snprintf).
  const char* loc = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
  if (loc == nullptr) loc = std::setlocale(LC_NUMERIC, "fr_FR.UTF-8");
  const auto s = number(2.5);
  std::setlocale(LC_NUMERIC, "C");
  if (loc == nullptr) GTEST_SKIP() << "no comma-decimal locale installed";
  EXPECT_EQ(s, "2.5");
}

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(Writer{}.begin_object().end_object().str(), "{}");
  EXPECT_EQ(Writer{}.begin_array().end_array().str(), "[]");
}

TEST(JsonWriter, TopLevelScalars) {
  EXPECT_EQ(Writer{}.value("hi").str(), "\"hi\"");
  EXPECT_EQ(Writer{}.value(42).str(), "42");
  EXPECT_EQ(Writer{}.value(true).str(), "true");
  EXPECT_EQ(Writer{}.null().str(), "null");
}

TEST(JsonWriter, AutomaticCommasInObjects) {
  Writer w;
  w.begin_object()
      .member("a", 1)
      .member("b", "two")
      .member("c", 2.5)
      .member("d", false)
      .end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"two","c":2.5,"d":false})");
}

TEST(JsonWriter, AutomaticCommasInArrays) {
  Writer w;
  w.begin_array().value(1).value(2).value(3).end_array();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(JsonWriter, NestedStructures) {
  Writer w;
  w.begin_object()
      .key("runs")
      .begin_array()
      .begin_object()
      .member("config", "8t")
      .member("qps", 125000.5)
      .end_object()
      .begin_object()
      .member("config", "1t")
      .member("qps", std::numeric_limits<double>::quiet_NaN())
      .end_object()
      .end_array()
      .key("empty")
      .begin_array()
      .end_array()
      .end_object();
  EXPECT_EQ(w.str(),
            R"({"runs":[{"config":"8t","qps":125000.5},)"
            R"({"config":"1t","qps":null}],"empty":[]})");
}

TEST(JsonWriter, KeysAreEscapedToo) {
  Writer w;
  w.begin_object().member("we\"ird\nkey", 1).end_object();
  EXPECT_EQ(w.str(), R"({"we\"ird\nkey":1})");
}

TEST(JsonWriter, UnsignedSixtyFourBitValuesKeepFullRange) {
  Writer w;
  w.value(std::uint64_t{18446744073709551615ull});
  EXPECT_EQ(w.str(), "18446744073709551615");
  Writer neg;
  neg.value(std::int64_t{-9223372036854775807ll - 1});
  EXPECT_EQ(neg.str(), "-9223372036854775808");
}

TEST(JsonWriter, MisuseThrowsInsteadOfEmittingGarbage) {
  EXPECT_THROW(Writer{}.key("k"), std::logic_error);  // key outside object
  EXPECT_THROW(Writer{}.begin_object().value(1), std::logic_error);
  EXPECT_THROW(Writer{}.begin_object().end_array(), std::logic_error);
  EXPECT_THROW(Writer{}.begin_array().end_object(), std::logic_error);
  EXPECT_THROW(Writer{}.end_object(), std::logic_error);
  {
    Writer w;
    w.value(1);
    EXPECT_THROW(w.value(2), std::logic_error);  // second top-level value
  }
  {
    Writer w;
    w.begin_object().key("k");
    EXPECT_THROW(w.end_object(), std::logic_error);  // dangling key
  }
  {
    Writer w;
    w.begin_object().key("k");
    EXPECT_THROW(w.key("k2"), std::logic_error);  // key after key
  }
}

TEST(JsonWriter, StrOnIncompleteDocumentThrows) {
  Writer w;
  w.begin_object();
  EXPECT_FALSE(w.complete());
  EXPECT_THROW((void)w.str(), std::logic_error);
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(), "{}");
}

}  // namespace
}  // namespace blameit::util::json
