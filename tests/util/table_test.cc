#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace blameit::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t{{"name", "value"}};
  t.add_row({"a", "1"});
  t.add_row({"long-name", "23"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("| name      | value |"), std::string::npos);
  EXPECT_NE(s.find("| long-name | 23    |"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(TextTable, CsvEscapesSpecialCells) {
  TextTable t{{"k", "v"}};
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "k,v\n\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Formatting, FloatsAndPercents) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt_pct(0.1234, 1), "12.3%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(Formatting, CountsGroupDigits) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(123456789012ull), "123,456,789,012");
}

}  // namespace
}  // namespace blameit::util
