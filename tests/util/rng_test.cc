#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace blameit::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{11};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng{11};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng{13};
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ExponentialMean) {
  Rng rng{17};
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.15);
}

TEST(Rng, ParetoIsLongTailedAboveScale) {
  Rng rng{19};
  int above_10x = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.pareto(1.0, 1.2);
    EXPECT_GE(x, 1.0);
    above_10x += x > 10.0;
  }
  // P(X > 10) = 10^-1.2 ≈ 6.3% for Pareto(1, 1.2).
  EXPECT_GT(above_10x, kN / 40);
  EXPECT_LT(above_10x, kN / 8);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng{23};
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.zipf(100, 1.0)];
  EXPECT_GT(counts[0], counts[50] * 3);
  EXPECT_GT(counts[0], 0);
  // All draws must land in range (guaranteed by counts indexing not crashing).
}

TEST(Rng, ChanceExtremes) {
  Rng rng{29};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent{31};
  Rng child1 = parent.fork(7);
  (void)parent();  // advancing the parent must not change future forks' seeds
  Rng child2 = Rng{31}.fork(7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Rng, ForksWithDifferentKeysDiffer) {
  Rng parent{31};
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, StringForkMatchesHash) {
  Rng parent{37};
  Rng a = parent.fork("telemetry");
  Rng b = parent.fork(fnv1a("telemetry"));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
}

TEST(Hashing, Fnv1aDistinguishesStrings) {
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
}

TEST(Hashing, HashCombineSpreads) {
  const auto h1 = hash_combine(1, 1);
  const auto h2 = hash_combine(1, 2);
  const auto h3 = hash_combine(2, 1);
  EXPECT_NE(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_NE(h2, h3);
}

// Property sweep: uniform_int stays in bounds for varied ranges.
class UniformIntRange
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(UniformIntRange, StaysInBounds) {
  const auto [lo, hi] = GetParam();
  Rng rng{99};
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, UniformIntRange,
    ::testing::Values(std::pair<std::int64_t, std::int64_t>{0, 1},
                      std::pair<std::int64_t, std::int64_t>{-1000, 1000},
                      std::pair<std::int64_t, std::int64_t>{0, 0},
                      std::pair<std::int64_t, std::int64_t>{1, 1000000000},
                      std::pair<std::int64_t, std::int64_t>{-5, -5}));

}  // namespace
}  // namespace blameit::util
