#include "core/reverse.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/background.h"

namespace blameit::core {
namespace {

class ReverseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 1;
    cfg.eyeballs_per_region = 2;
    cfg.blocks_per_eyeball = 4;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  [[nodiscard]] static const net::ClientBlock& block() {
    return topo_->blocks().front();
  }
  [[nodiscard]] static net::CloudLocationId home() {
    return topo_->home_locations(block().block).front();
  }
  [[nodiscard]] static const net::RouteEntry& route(util::MinuteTime t) {
    return *topo_->routing().route_for(home(), block().block, t);
  }

  static const net::Topology* topo_;
};

const net::Topology* ReverseTest::topo_ = nullptr;

TEST_F(ReverseTest, ReverseHopsMirrorForwardPath) {
  sim::FaultInjector no_faults;
  const sim::RttModel model{topo_, &no_faults};
  SimulatedClientProber prober{topo_, &model};
  const auto t = util::MinuteTime::from_day_hour(0, 4);
  const auto result = prober.trace(block().block, home(), t);
  ASSERT_TRUE(result.reached);

  const auto middle = route(t).middle_ases();
  ASSERT_EQ(result.hops.size(), middle.size() + 1);
  // Nearest-to-client middle AS first, cloud AS last.
  for (std::size_t i = 0; i < middle.size(); ++i) {
    EXPECT_EQ(result.hops[i].as, middle[middle.size() - 1 - i]);
  }
  EXPECT_EQ(result.hops.back().as, topo_->cloud_as());
  // Cumulative RTTs monotone.
  double prev = result.cloud_ms;
  for (const auto& hop : result.hops) {
    EXPECT_GT(hop.cumulative_rtt_ms, prev);
    prev = hop.cumulative_rtt_ms;
  }
}

TEST_F(ReverseTest, ForwardAndReverseEndToEndAgree) {
  sim::FaultInjector no_faults;
  const sim::RttModel model{topo_, &no_faults};
  sim::TracerouteEngine forward{topo_, &model};
  SimulatedClientProber reverse{topo_, &model};
  const auto t = util::MinuteTime::from_day_hour(0, 4);
  const auto f = forward.trace(home(), block().block, t);
  const auto r = reverse.trace(block().block, home(), t);
  ASSERT_TRUE(f.reached);
  ASSERT_TRUE(r.reached);
  EXPECT_NEAR(f.hops.back().cumulative_rtt_ms,
              r.hops.back().cumulative_rtt_ms,
              f.hops.back().cumulative_rtt_ms * 0.2);
}

TEST_F(ReverseTest, DualViewCorroboratesMiddleFault) {
  const auto t0 = util::MinuteTime::from_day_hour(0, 3);
  const auto victim = route(t0).middle_ases()[0];

  // Healthy baseline for the forward localizer.
  BaselineStore store;
  {
    sim::FaultInjector no_faults;
    sim::RttModel clean{topo_, &no_faults};
    sim::TracerouteEngine probe{topo_, &clean};
    const auto result = probe.trace(home(), block().block, t0);
    store.update(home(), route(t0).middle,
                 Baseline{.when = t0,
                          .cloud_ms = result.cloud_ms,
                          .contributions = result.contributions()});
  }

  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                        .as = victim,
                        .added_ms = 80.0,
                        .start = t0.plus_minutes(30),
                        .duration_minutes = 120});
  sim::RttModel faulty{topo_, &faults};
  sim::TracerouteEngine engine{topo_, &faulty};
  ActiveLocalizer forward{topo_, &engine, &store};
  SimulatedClientProber reverse{topo_, &faulty};

  const auto dual =
      diagnose_dual(forward, reverse, home(), route(t0).middle,
                    block().block, t0.plus_minutes(60));
  ASSERT_TRUE(dual.forward.culprit.has_value());
  EXPECT_EQ(*dual.forward.culprit, victim);
  ASSERT_TRUE(dual.reverse_dominant.has_value());
  EXPECT_EQ(*dual.reverse_dominant, victim);
  EXPECT_TRUE(dual.corroborated);
}

TEST_F(ReverseTest, DualViewNotCorroboratedWithoutReverseSignal) {
  // Cloud fault: the forward diff implicates the cloud AS, but from the
  // client side the dominant contributor is usually still the access
  // segment unless the cloud inflation dominates absolutely.
  const auto t0 = util::MinuteTime::from_day_hour(0, 3);
  BaselineStore store;
  {
    sim::FaultInjector no_faults;
    sim::RttModel clean{topo_, &no_faults};
    sim::TracerouteEngine probe{topo_, &clean};
    const auto result = probe.trace(home(), block().block, t0);
    store.update(home(), route(t0).middle,
                 Baseline{.when = t0,
                          .cloud_ms = result.cloud_ms,
                          .contributions = result.contributions()});
  }
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::CloudLocation,
                        .cloud_location = home(),
                        .added_ms = 200.0,
                        .start = t0.plus_minutes(30),
                        .duration_minutes = 120});
  sim::RttModel faulty{topo_, &faults};
  sim::TracerouteEngine engine{topo_, &faulty};
  ActiveLocalizer forward{topo_, &engine, &store};
  SimulatedClientProber reverse{topo_, &faulty};
  const auto dual =
      diagnose_dual(forward, reverse, home(), route(t0).middle,
                    block().block, t0.plus_minutes(60));
  ASSERT_TRUE(dual.forward.culprit.has_value());
  EXPECT_EQ(*dual.forward.culprit, topo_->cloud_as());
  // With a +200ms cloud inflation the reverse view also sees the cloud AS
  // as dominant — corroboration succeeds even client-side.
  EXPECT_TRUE(dual.corroborated);
}

TEST_F(ReverseTest, UnknownBlockUnreached) {
  sim::FaultInjector no_faults;
  const sim::RttModel model{topo_, &no_faults};
  SimulatedClientProber prober{topo_, &model};
  const auto result =
      prober.trace(net::Slash24{0xFFFFFF}, home(), util::MinuteTime{0});
  EXPECT_FALSE(result.reached);
  EXPECT_EQ(prober.accountant().total(), 1u);
}

TEST_F(ReverseTest, NullDependenciesThrow) {
  sim::FaultInjector no_faults;
  const sim::RttModel model{topo_, &no_faults};
  EXPECT_THROW((SimulatedClientProber{nullptr, &model}),
               std::invalid_argument);
  EXPECT_THROW((SimulatedClientProber{topo_, nullptr}),
               std::invalid_argument);
}

}  // namespace
}  // namespace blameit::core
