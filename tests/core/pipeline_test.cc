// End-to-end integration: telemetry -> quartets -> Algorithm 1 -> incident
// tracking -> prioritized active probing, against injected ground truth.
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "analysis/quartet.h"
#include "sim/telemetry.h"
#include "store/snapshot.h"

namespace blameit::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 1;
    cfg.eyeballs_per_region = 3;
    // Enough /24s that middle groups clear the min-quartets gate.
    cfg.blocks_per_eyeball = 16;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  /// Builds the full stack around a fault schedule. Returns the pipeline;
  /// keeps the support objects alive via members.
  void build(BlameItConfig cfg = shortened_config(),
             obs::Registry* registry = nullptr) {
    generator_ = std::make_unique<sim::TelemetryGenerator>(topo_, &faults_);
    model_ = std::make_unique<sim::RttModel>(topo_, &faults_);
    engine_ = std::make_unique<sim::TracerouteEngine>(topo_, model_.get());
    auto source = [this](util::TimeBucket bucket) {
      analysis::QuartetBuilder builder{topo_, analysis::BadnessThresholds{}};
      generator_->generate_aggregates(
          bucket, [&](const analysis::QuartetKey& k, int n, double mean) {
            builder.add_aggregate(k, n, mean);
          });
      return builder.take_bucket(bucket);
    };
    pipeline_ = std::make_unique<BlameItPipeline>(topo_, engine_.get(),
                                                  source, cfg, registry);
  }

  static BlameItConfig shortened_config() {
    BlameItConfig cfg;
    cfg.expected_rtt_window_days = 2;  // cheap warmup for tests
    return cfg;
  }

  /// Learner warmup over `days` full days (every bucket, so the pipeline's
  /// internal cursor lands exactly on the first evaluation bucket).
  void warm(int days) {
    for (int day = 0; day < days; ++day) {
      for (int b = 0; b < util::kBucketsPerDay; ++b) {
        pipeline_->warmup_bucket(
            util::TimeBucket{day * util::kBucketsPerDay + b});
      }
    }
  }

  static net::Topology* topo_;
  sim::FaultInjector faults_;
  std::unique_ptr<sim::TelemetryGenerator> generator_;
  std::unique_ptr<sim::RttModel> model_;
  std::unique_ptr<sim::TracerouteEngine> engine_;
  std::unique_ptr<BlameItPipeline> pipeline_;
};

net::Topology* PipelineTest::topo_ = nullptr;

// A transit AS that in-region primary routes actually cross, but that does
// NOT dominate any location (share <= 0.6): a fault on a transit carrying
// >τ of a location's paths is indistinguishable from a cloud fault in the
// passive view, which is not what these tests exercise.
net::AsId used_transit(const net::Topology& topo, net::Region region) {
  std::map<std::uint32_t, std::map<std::uint32_t, int>> usage;  // as -> loc -> n
  std::map<std::uint32_t, int> loc_totals;
  for (const auto& block : topo.blocks()) {
    if (block.region != region) continue;
    const auto loc = topo.home_locations(block.block).front();
    const auto* route =
        topo.routing().route_for(loc, block.block, util::MinuteTime{0});
    ++loc_totals[loc.value];
    for (const auto as : route->middle_ases()) ++usage[as.value][loc.value];
  }
  std::uint32_t best = 0;
  int best_total = -1;
  for (const auto& [as, per_loc] : usage) {
    int total = 0;
    double max_share = 0.0;
    for (const auto& [loc, n] : per_loc) {
      total += n;
      max_share = std::max(
          max_share, static_cast<double>(n) / loc_totals[loc]);
    }
    if (max_share <= 0.6 && total > best_total) {
      best = as;
      best_total = total;
    }
  }
  if (best_total < 0) {  // fallback: most used overall
    for (const auto& [as, per_loc] : usage) {
      int total = 0;
      for (const auto& [loc, n] : per_loc) total += n;
      if (total > best_total) {
        best = as;
        best_total = total;
      }
    }
  }
  return net::AsId{best};
}

TEST_F(PipelineTest, QuietNetworkProducesFewBlames) {
  build();
  warm(2);
  std::size_t blames = 0;
  std::size_t quartets_seen = 0;
  for (int minute = 15; minute <= 120; minute += 15) {
    const auto report =
        pipeline_->step(util::MinuteTime::from_days(2).plus_minutes(minute));
    blames += report.blames.size();
    quartets_seen += 100;  // rough lower bound per step, for scale
    EXPECT_EQ(report.buckets_processed, 3);
    EXPECT_TRUE(report.diagnoses.empty());
  }
  EXPECT_LT(blames, quartets_seen / 5);
}

TEST_F(PipelineTest, ParallelAnalyticsMatchesSerialEndToEnd) {
  // A middle fault during the evaluation window gives the step something to
  // blame; the parallel analytics core must reproduce the serial pipeline's
  // blame stream exactly (same results, same order, bit-identical means).
  faults_.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                         .as = used_transit(*topo_, net::Region::Europe),
                         .added_ms = 120.0,
                         .start = util::MinuteTime::from_day_hour(2, 0),
                         .duration_minutes = 120});
  const auto run = [&](int threads) {
    BlameItConfig cfg = shortened_config();
    cfg.analytics_threads = threads;
    build(cfg);
    warm(2);
    std::vector<BlameResult> blames;
    for (int minute = 15; minute <= 120; minute += 15) {
      const auto report = pipeline_->step(
          util::MinuteTime::from_days(2).plus_minutes(minute));
      blames.insert(blames.end(), report.blames.begin(),
                    report.blames.end());
    }
    return blames;
  };
  const auto serial = run(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(run(4), serial);
}

TEST_F(PipelineTest, MiddleFaultDiagnosedEndToEnd) {
  const auto fault_start =
      util::MinuteTime::from_day_hour(2, 10);
  const auto victim = used_transit(*topo_, net::Region::Europe);
  faults_.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                         .as = victim,
                         .added_ms = 120.0,
                         .start = fault_start,
                         .duration_minutes = 120});
  build();
  warm(2);

  // Walk day 2 from 09:00 to 11:00 in 15-minute steps.
  bool saw_middle_blame = false;
  bool diagnosed_victim = false;
  int on_demand = 0;
  for (int minute = 9 * 60 + 15; minute <= 11 * 60; minute += 15) {
    const auto report =
        pipeline_->step(util::MinuteTime::from_days(2).plus_minutes(minute));
    on_demand += report.on_demand_probes;
    if (report.count(Blame::Middle) > 0) saw_middle_blame = true;
    for (const auto& diag : report.diagnoses) {
      if (diag.culprit && *diag.culprit == victim) diagnosed_victim = true;
    }
  }
  EXPECT_TRUE(saw_middle_blame);
  EXPECT_TRUE(diagnosed_victim);
  // Budgeted probing: a couple of issues, not a probe storm.
  EXPECT_LT(on_demand, 8 * pipeline_->config().probe_budget_per_run);
}

TEST_F(PipelineTest, CloudFaultBlamedWithoutProbes) {
  const auto loc = topo_->locations_in(net::Region::Brazil).front();
  faults_.add(sim::Fault{.kind = sim::FaultKind::CloudLocation,
                         .cloud_location = loc,
                         .added_ms = 90.0,
                         .start = util::MinuteTime::from_day_hour(2, 10),
                         .duration_minutes = 60});
  build();
  warm(2);
  int cloud_blames = 0;
  int middle_probes = 0;
  for (int minute = 10 * 60 + 15; minute <= 11 * 60; minute += 15) {
    const auto report =
        pipeline_->step(util::MinuteTime::from_days(2).plus_minutes(minute));
    cloud_blames += report.count(Blame::Cloud);
    for (const auto& diag : report.diagnoses) {
      if (diag.location == loc) ++middle_probes;
    }
  }
  EXPECT_GT(cloud_blames, 10);
  // Cloud faults are already localized passively; no on-demand traceroutes
  // should chase them.
  EXPECT_EQ(middle_probes, 0);
}

TEST_F(PipelineTest, IncidentRunsFeedDurationPredictor) {
  const auto victim = used_transit(*topo_, net::Region::India);
  faults_.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                         .as = victim,
                         .added_ms = 150.0,
                         .start = util::MinuteTime::from_day_hour(2, 10),
                         .duration_minutes = 30});
  build();
  warm(2);
  // Step through the fault and one hour past it so the run closes.
  for (int minute = 10 * 60 + 15; minute <= 12 * 60; minute += 15) {
    (void)pipeline_->step(
        util::MinuteTime::from_days(2).plus_minutes(minute));
  }
  // Some ⟨location, path⟩ key must have recorded a closed incident.
  const auto& durations = pipeline_->durations();
  bool any_history = false;
  for (const auto& loc : topo_->locations()) {
    for (const auto& block : topo_->blocks()) {
      const auto* route = topo_->routing().route_for(
          loc.id, block.block, util::MinuteTime::from_day_hour(2, 10));
      if (!route) continue;
      if (durations.history_count(
              middle_issue_key(loc.id, route->middle)) > 0) {
        any_history = true;
      }
    }
  }
  EXPECT_TRUE(any_history);
}

TEST_F(PipelineTest, BackgroundProbesAccrue) {
  build();
  warm(2);
  int background = 0;
  for (int minute = 15; minute <= 6 * 60; minute += 15) {
    background += pipeline_
                      ->step(util::MinuteTime::from_days(2).plus_minutes(
                          minute))
                      .background_probes;
  }
  // Six hours at 2 probes/day/path: roughly half the paths probed once.
  EXPECT_GT(background, 0);
  EXPECT_GT(pipeline_->baselines().size(), 0u);
}

TEST_F(PipelineTest, StepReportCountsMatchBlames) {
  build();
  warm(2);
  const auto report =
      pipeline_->step(util::MinuteTime::from_days(2).plus_minutes(15));
  int total = 0;
  for (const auto blame : kAllBlames) total += report.count(blame);
  EXPECT_EQ(static_cast<std::size_t>(total), report.blames.size());
}

TEST_F(PipelineTest, RegistryObservesEveryStage) {
  obs::Registry registry;
  build(shortened_config(), &registry);
  warm(2);
  const auto report =
      pipeline_->step(util::MinuteTime::from_days(2).plus_minutes(15));
  EXPECT_EQ(report.buckets_processed, 3);  // 15-min step = 3 buckets
  EXPECT_GT(report.stages.total_ms, 0.0);
  EXPECT_GT(report.stages.localize_ms, 0.0);
  // total covers the whole call, so it bounds the sum of the inner stages.
  EXPECT_GE(report.stages.total_ms,
            report.stages.learn_ms + report.stages.localize_ms +
                report.stages.active_ms + report.stages.background_ms);

  const auto snap = registry.snapshot();
  // The active span only runs when the step surfaced blames, so it may be
  // empty on a healthy day; the others record on every step.
  EXPECT_NE(snap.histogram("step.active_ms"), nullptr);
  for (const auto* name : {"step.learn_ms", "step.localize_ms",
                           "step.background_ms", "step.total_ms"}) {
    const auto* hist = snap.histogram(name);
    ASSERT_NE(hist, nullptr) << name;
    EXPECT_GT(hist->count, 0u) << name;
  }
  EXPECT_EQ(snap.counter_value("pipeline.buckets_processed"),
            static_cast<std::uint64_t>(report.buckets_processed));
  EXPECT_EQ(snap.gauge_value("pipeline.probe_budget_per_run"),
            static_cast<double>(pipeline_->config().probe_budget_per_run));
  // Learner + background instruments are wired through the same registry.
  EXPECT_GT(snap.counter_value("learner.memo_hits").value_or(0) +
                snap.counter_value("learner.memo_misses").value_or(0),
            0u);
  EXPECT_EQ(snap.counter_value("background.probes").value_or(0),
            static_cast<std::uint64_t>(report.background_probes));
}

TEST_F(PipelineTest, SnapshotRestoreContinuesBitIdentically) {
  // A pipeline killed mid-incident and restored from its snapshot must emit
  // the exact blame/diagnosis stream of an uninterrupted pipeline — for both
  // state backends. This is the contract live_pipeline --snapshot-dir and
  // the restart scenario packs stand on.
  faults_.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                         .as = used_transit(*topo_, net::Region::Europe),
                         .added_ms = 120.0,
                         .start = util::MinuteTime::from_day_hour(2, 10),
                         .duration_minutes = 120});
  for (const auto backend :
       {store::StateBackend::kHashMap, store::StateBackend::kColumnar}) {
    BlameItConfig cfg = shortened_config();
    cfg.state_backend = backend;

    const auto run = [&](std::optional<int> restart_after_minute) {
      build(cfg);
      warm(2);
      std::vector<std::vector<BlameResult>> blames;
      std::vector<std::uint32_t> diag_culprits;
      for (int minute = 9 * 60 + 15; minute <= 12 * 60; minute += 15) {
        const auto report = pipeline_->step(
            util::MinuteTime::from_days(2).plus_minutes(minute));
        blames.push_back(report.blames);
        for (const auto& diag : report.diagnoses) {
          diag_culprits.push_back(diag.culprit ? diag.culprit->value : 0);
        }
        if (restart_after_minute && minute == *restart_after_minute) {
          store::SnapshotWriter writer;
          pipeline_->save_snapshot(writer);
          auto reader = store::SnapshotReader::from_bytes(writer.serialize(),
                                                          "<restart>");
          auto source = [this](util::TimeBucket bucket) {
            analysis::QuartetBuilder builder{topo_,
                                             analysis::BadnessThresholds{}};
            generator_->generate_aggregates(
                bucket,
                [&](const analysis::QuartetKey& k, int n, double mean) {
                  builder.add_aggregate(k, n, mean);
                });
            return builder.take_bucket(bucket);
          };
          pipeline_.reset();  // kill mid-incident
          pipeline_ = std::make_unique<BlameItPipeline>(topo_, engine_.get(),
                                                        source, cfg);
          pipeline_->restore_snapshot(reader);
        }
      }
      return std::pair{blames, diag_culprits};
    };

    const auto reference = run(std::nullopt);
    const auto restarted = run(10 * 60 + 30);  // mid-fault
    EXPECT_FALSE(reference.first.empty());
    EXPECT_EQ(restarted.first, reference.first) << to_string(backend);
    EXPECT_EQ(restarted.second, reference.second) << to_string(backend);
  }
}

TEST_F(PipelineTest, InvalidConstructionThrows) {
  build();
  auto source = [](util::TimeBucket) {
    return std::vector<analysis::Quartet>{};
  };
  EXPECT_THROW((BlameItPipeline{nullptr, engine_.get(), source}),
               std::invalid_argument);
  EXPECT_THROW((BlameItPipeline{topo_, nullptr, source}),
               std::invalid_argument);
  BlameItConfig bad;
  bad.cadence_minutes = 1;
  EXPECT_THROW((BlameItPipeline{topo_, engine_.get(), source, bad}),
               std::invalid_argument);
}

}  // namespace
}  // namespace blameit::core
