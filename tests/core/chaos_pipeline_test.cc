// Pipeline behavior under measurement-plane chaos: bit-exact parity when
// chaos is off, thread-count-independent determinism when it is on, and
// graceful (crash-free, budget-bounded) degradation under heavy loss and
// engine outages.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/quartet.h"
#include "core/pipeline.h"
#include "sim/chaos.h"
#include "sim/telemetry.h"

namespace blameit::core {
namespace {

/// Bit-exact serialization of everything a StepReport decides (doubles in
/// hexfloat, so two fingerprints match only if the runs were identical).
/// Stage wall-times are excluded — they are measurements of the host, not
/// outputs of the pipeline.
std::string fingerprint(const StepReport& r) {
  std::ostringstream oss;
  oss << std::hexfloat;
  oss << r.now.minutes << '|' << r.buckets_processed << '|'
      << r.on_demand_probes << '|' << r.background_probes << '|'
      << r.active_retries << '|' << r.degraded_passive_only << '\n';
  for (const auto& b : r.blames) {
    oss << " B" << b.quartet.key.block.block << ','
        << b.quartet.key.location.value << ','
        << static_cast<int>(b.quartet.key.device) << ','
        << b.quartet.key.bucket.index << ',' << b.quartet.sample_count << ','
        << b.quartet.mean_rtt_ms << ',' << static_cast<int>(b.blame) << ','
        << (b.faulty_as ? b.faulty_as->value : 0) << '\n';
  }
  for (const auto& i : r.ranked_issues) {
    oss << " I" << i.location.value << ',' << i.middle.value << ','
        << i.representative_block.block << ',' << i.observed_users << ','
        << i.elapsed_buckets << ',' << i.predicted_remaining_buckets << ','
        << i.predicted_users << ',' << i.client_time_product << '\n';
  }
  for (const auto& d : r.diagnoses) {
    oss << " D" << d.location.value << ',' << d.middle.value << ','
        << d.probe_reached << d.have_baseline << d.baseline_predates_issue
        << d.baseline_stale << d.truncated << d.coarse_middle << ','
        << (d.culprit ? d.culprit->value : 0) << ',' << d.culprit_increase_ms
        << ',' << static_cast<int>(d.confidence) << ',' << d.probes_spent
        << ',' << d.retries << '\n';
  }
  return oss.str();
}

class ChaosPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 1;
    cfg.eyeballs_per_region = 3;
    cfg.blocks_per_eyeball = 16;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  /// Builds the full stack; with an enabled chaos config the engine gets an
  /// injector attached, otherwise it runs pristine.
  void build(BlameItConfig cfg = shortened_config(),
             sim::ChaosConfig chaos = {}) {
    generator_ = std::make_unique<sim::TelemetryGenerator>(topo_, &faults_);
    model_ = std::make_unique<sim::RttModel>(topo_, &faults_);
    chaos_ = chaos.enabled()
                 ? std::make_unique<sim::ChaosInjector>(chaos)
                 : nullptr;
    engine_ = std::make_unique<sim::TracerouteEngine>(
        topo_, model_.get(), sim::TracerouteConfig{}, chaos_.get());
    auto source = [this](util::TimeBucket bucket) {
      analysis::QuartetBuilder builder{topo_, analysis::BadnessThresholds{}};
      generator_->generate_aggregates(
          bucket, [&](const analysis::QuartetKey& k, int n, double mean) {
            builder.add_aggregate(k, n, mean);
          });
      return builder.take_bucket(bucket);
    };
    pipeline_ = std::make_unique<BlameItPipeline>(topo_, engine_.get(),
                                                  source, cfg);
  }

  static BlameItConfig shortened_config() {
    BlameItConfig cfg;
    cfg.expected_rtt_window_days = 2;
    return cfg;
  }

  void warm(int days) {
    for (int day = 0; day < days; ++day) {
      for (int b = 0; b < util::kBucketsPerDay; ++b) {
        pipeline_->warmup_bucket(
            util::TimeBucket{day * util::kBucketsPerDay + b});
      }
    }
  }

  /// Runs `steps` 15-minute steps starting on day 2 at 09:00 (busy hours —
  /// overnight buckets are too thin to clear the min-quartets gate) and
  /// fingerprints each.
  std::vector<std::string> run_steps(int steps) {
    std::vector<std::string> prints;
    prints.reserve(static_cast<std::size_t>(steps));
    for (int k = 1; k <= steps; ++k) {
      prints.push_back(fingerprint(pipeline_->step(step_time(k))));
    }
    return prints;
  }

  static util::MinuteTime step_time(int k) {
    return util::MinuteTime::from_day_hour(2, 9).plus_minutes(15 * k);
  }

  /// A transit AS that in-region routes cross without dominating any
  /// location (so its fault passively classifies as Middle, not Cloud).
  static net::AsId used_transit(net::Region region) {
    std::map<std::uint32_t, std::map<std::uint32_t, int>> usage;
    std::map<std::uint32_t, int> loc_totals;
    for (const auto& block : topo_->blocks()) {
      if (block.region != region) continue;
      const auto loc = topo_->home_locations(block.block).front();
      const auto* route =
          topo_->routing().route_for(loc, block.block, util::MinuteTime{0});
      ++loc_totals[loc.value];
      for (const auto as : route->middle_ases()) ++usage[as.value][loc.value];
    }
    std::uint32_t best = 0;
    int best_total = -1;
    for (const auto& [as, per_loc] : usage) {
      int total = 0;
      double max_share = 0.0;
      for (const auto& [loc, n] : per_loc) {
        total += n;
        max_share =
            std::max(max_share, static_cast<double>(n) / loc_totals[loc]);
      }
      if (max_share <= 0.6 && total > best_total) {
        best = as;
        best_total = total;
      }
    }
    return net::AsId{best};
  }

  void add_middle_fault(int duration_minutes) {
    faults_.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                           .as = used_transit(net::Region::Europe),
                           .added_ms = 120.0,
                           .start = util::MinuteTime::from_day_hour(2, 9),
                           .duration_minutes = duration_minutes});
  }

  static net::Topology* topo_;
  sim::FaultInjector faults_;
  std::unique_ptr<sim::TelemetryGenerator> generator_;
  std::unique_ptr<sim::RttModel> model_;
  std::unique_ptr<sim::ChaosInjector> chaos_;
  std::unique_ptr<sim::ChaosInjector> inert_injector_;
  std::unique_ptr<sim::TracerouteEngine> engine_;
  std::unique_ptr<BlameItPipeline> pipeline_;
};

net::Topology* ChaosPipelineTest::topo_ = nullptr;

TEST_F(ChaosPipelineTest, ChaosOffIsBitIdenticalToSeedPipeline) {
  // The acceptance bar for the whole robustness layer: with chaos disabled,
  // the hardened pipeline's StepReport stream is EXACTLY the seed
  // pipeline's — engine without an injector vs engine with an inert one.
  add_middle_fault(120);
  build();  // no injector at all (the pre-chaos construction)
  warm(2);
  const auto seed = run_steps(8);

  faults_ = {};
  add_middle_fault(120);
  sim::ChaosConfig inert;  // default: every rate zero, no outages
  ASSERT_FALSE(inert.enabled());
  build(shortened_config(), inert);
  // enabled()==false skips the injector; force one to prove inert == none.
  inert_injector_ = std::make_unique<sim::ChaosInjector>(inert);
  engine_->set_chaos(inert_injector_.get());
  warm(2);
  EXPECT_EQ(run_steps(8), seed);

  // Sanity: the stream actually exercised the active phase.
  bool any_diag = false;
  for (const auto& p : seed) any_diag |= p.find(" D") != std::string::npos;
  EXPECT_TRUE(any_diag);
}

TEST_F(ChaosPipelineTest, SameSeedSameReportsAcrossAnalyticsThreads) {
  // Chaos draws derive from event identity, not thread schedule: the full
  // report stream under 20% loss + 10% truncation is identical at 1/4/8
  // analytics threads.
  sim::ChaosConfig chaos;
  chaos.probe_loss_rate = 0.2;
  chaos.hop_timeout_rate = 0.1;
  const auto run = [&](int threads) {
    faults_ = {};
    add_middle_fault(120);
    BlameItConfig cfg = shortened_config();
    cfg.analytics_threads = threads;
    build(cfg, chaos);
    warm(2);
    return run_steps(8);
  };
  const auto serial = run(1);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(8), serial);
}

TEST_F(ChaosPipelineTest, HeavyChaosCompletes200StepsGracefully) {
  // 20% probe loss + 10% per-hop truncation for 200 consecutive steps with
  // a long-lived middle fault: no crashes, spend stays budget-bounded, and
  // every degraded diagnosis is honest about its confidence.
  sim::ChaosConfig chaos;
  chaos.probe_loss_rate = 0.2;
  chaos.hop_timeout_rate = 0.1;
  add_middle_fault(200 * 15 + 60);
  const auto cfg = shortened_config();
  build(cfg, chaos);
  warm(2);

  const int per_diag_cap =
      cfg.active_quorum_k * (1 + cfg.active_probe_retries);
  int total_diags = 0;
  int total_retries = 0;
  int degraded_evidence = 0;
  for (int k = 1; k <= 200; ++k) {
    const auto report = pipeline_->step(step_time(k));
    // The budget loop stops once spend reaches the budget; only the last
    // diagnosis can overshoot, by at most one diagnosis's worth of attempts.
    EXPECT_LE(report.on_demand_probes,
              cfg.probe_budget_per_run + per_diag_cap - 1);
    EXPECT_LE(report.active_retries, report.on_demand_probes);
    for (const auto& diag : report.diagnoses) {
      ++total_diags;
      total_retries += diag.retries;
      EXPECT_LE(diag.probes_spent, per_diag_cap);
      // Affected diagnoses carry an honest confidence downgrade.
      if (diag.truncated || !diag.have_baseline) {
        EXPECT_NE(diag.confidence, DiagnosisConfidence::High);
      }
      if (diag.coarse_middle) {
        EXPECT_FALSE(diag.culprit.has_value());
        EXPECT_EQ(diag.confidence, DiagnosisConfidence::Low);
        ++degraded_evidence;
      }
      if (!diag.probe_reached) ++degraded_evidence;
    }
  }
  // The fault was live the whole time: the active phase kept working...
  EXPECT_GT(total_diags, 0);
  // ...and the chaos actually bit (retries happened, some probes degraded).
  EXPECT_GT(total_retries, 0);
  EXPECT_GT(degraded_evidence, 0);
}

TEST_F(ChaosPipelineTest, OutageWindowDegradesToPassiveOnly) {
  sim::ChaosConfig chaos;
  chaos.outages.push_back(
      sim::OutageWindow{util::MinuteTime::from_day_hour(2, 10), 60});
  add_middle_fault(4 * 60);
  build(shortened_config(), chaos);
  warm(2);

  int degraded_steps = 0;
  int diagnosed_steps = 0;
  for (int k = 1; k <= 16; ++k) {
    const auto now = step_time(k);
    const auto report = pipeline_->step(now);
    if (report.degraded_passive_only) {
      ++degraded_steps;
      EXPECT_TRUE(engine_->in_outage(now));
      // Passive output survives (issues stay ranked) but no probes fire.
      EXPECT_FALSE(report.ranked_issues.empty());
      EXPECT_TRUE(report.diagnoses.empty());
      EXPECT_EQ(report.on_demand_probes, 0);
    } else if (!report.diagnoses.empty()) {
      ++diagnosed_steps;
      EXPECT_FALSE(engine_->in_outage(now));
    }
  }
  EXPECT_GT(degraded_steps, 0);   // the window was hit and flagged
  EXPECT_GT(diagnosed_steps, 0);  // probing resumed outside it
}

}  // namespace
}  // namespace blameit::core
