// Parameterized property sweeps over Algorithm 1 and the end-to-end chain:
// localization must behave correctly across regions, fault magnitudes, and
// τ settings — not just at the defaults the other suites pin down.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/passive.h"
#include "sim/telemetry.h"

namespace blameit::core {
namespace {

class PropertyWorld {
 public:
  PropertyWorld() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 2;
    cfg.eyeballs_per_region = 6;
    cfg.blocks_per_eyeball = 12;
    topo_ = net::make_topology(cfg);
    warm();
  }

  [[nodiscard]] const net::Topology& topo() const { return *topo_; }
  [[nodiscard]] const analysis::ExpectedRttLearner& learner() const {
    return learner_;
  }

  [[nodiscard]] std::vector<analysis::Quartet> quartets(
      const sim::FaultInjector& faults, util::TimeBucket bucket) const {
    const sim::TelemetryGenerator gen{topo_.get(), &faults};
    analysis::QuartetBuilder builder{topo_.get(),
                                     analysis::BadnessThresholds{}};
    gen.generate_aggregates(bucket,
                            [&](const analysis::QuartetKey& k, int n,
                                double mean) {
                              builder.add_aggregate(k, n, mean);
                            });
    return builder.take_bucket(bucket);
  }

  /// An eyeball in `region` whose /24s never dominate a ⟨location, middle⟩
  /// group (so a fault inside it cannot saturate a BGP path's fraction).
  [[nodiscard]] net::AsId non_dominant_eyeball(net::Region region) const {
    struct Group {
      int total = 0;
      std::map<std::uint32_t, int> per_as;
    };
    std::map<std::pair<std::uint16_t, std::uint32_t>, Group> groups;
    for (const auto& block : topo_->blocks()) {
      if (block.region != region) continue;
      for (const auto loc : topo_->home_locations(block.block)) {
        const auto* route =
            topo_->routing().route_for(loc, block.block, util::MinuteTime{0});
        auto& group = groups[{loc.value, route->middle.value}];
        ++group.total;
        ++group.per_as[block.client_as.value];
      }
    }
    for (const auto candidate : topo_->eyeballs_in(region)) {
      bool dominates = false;
      for (const auto& [key, group] : groups) {
        const auto it = group.per_as.find(candidate.value);
        if (it != group.per_as.end() && it->second > 0.5 * group.total) {
          dominates = true;
          break;
        }
      }
      if (!dominates) return candidate;
    }
    return topo_->eyeballs_in(region).front();
  }

  /// A transit AS in `region` that live routes cross but that does not
  /// dominate any location's path mix.
  [[nodiscard]] net::AsId visible_transit(net::Region region) const {
    std::map<std::uint32_t, std::map<std::uint16_t, int>> usage;
    std::map<std::uint16_t, int> totals;
    for (const auto& block : topo_->blocks()) {
      if (block.region != region) continue;
      const auto loc = topo_->home_locations(block.block).front();
      const auto* route =
          topo_->routing().route_for(loc, block.block, util::MinuteTime{0});
      ++totals[loc.value];
      for (const auto as : route->middle_ases()) ++usage[as.value][loc.value];
    }
    std::uint32_t best = 0;
    int best_total = -1;
    for (const auto& [as, per_loc] : usage) {
      int total = 0;
      double max_share = 0.0;
      for (const auto& [loc, n] : per_loc) {
        total += n;
        max_share = std::max(max_share,
                             static_cast<double>(n) / totals[loc]);
      }
      if (max_share <= 0.6 && total > best_total) {
        best = as;
        best_total = total;
      }
    }
    return net::AsId{best};
  }

 private:
  void warm() {
    const sim::FaultInjector no_faults;
    for (int day = 0; day < 3; ++day) {
      for (const int hour : {3, 9, 15, 21}) {
        const auto bucket =
            util::TimeBucket::of(util::MinuteTime::from_day_hour(day, hour));
        for (const auto& q : quartets(no_faults, bucket)) {
          learner_.observe(
              analysis::cloud_key(q.key.location, q.key.device), day,
              q.mean_rtt_ms);
          learner_.observe(analysis::middle_key(q.key.location, q.middle,
                                                q.key.device),
                           day, q.mean_rtt_ms);
        }
      }
    }
  }

  std::unique_ptr<net::Topology> topo_;
  analysis::ExpectedRttLearner learner_{analysis::ExpectedRttConfig{
      .window_days = 3, .reservoir_per_day = 128}};
};

PropertyWorld& world() {
  static PropertyWorld instance;
  return instance;
}

util::TimeBucket eval_bucket() {
  return util::TimeBucket::of(util::MinuteTime::from_day_hour(3, 12));
}

// ---------------------------------------------------------------------------
// Property 1: a client-AS fault in ANY region localizes to the client
// segment for the majority of that AS's dense quartets.
class ClientFaultPerRegion : public ::testing::TestWithParam<net::Region> {};

TEST_P(ClientFaultPerRegion, LocalizesToClient) {
  auto& w = world();
  const auto region = GetParam();
  const auto victim = w.non_dominant_eyeball(region);
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::ClientAs,
                        .as = victim,
                        .added_ms = net::region_profile(region).rtt_target_ms *
                                    2.0,
                        .start = util::MinuteTime::from_days(3),
                        .duration_minutes = util::kMinutesPerDay});
  const auto quartets = w.quartets(faults, eval_bucket());
  const PassiveLocalizer localizer{&w.topo(), &w.learner()};
  const auto results = localizer.localize(quartets, 3);
  int client = 0;
  int wrong_segment = 0;
  for (const auto& r : results) {
    if (r.quartet.client_as != victim ||
        r.quartet.key.device != net::DeviceClass::NonMobile) {
      continue;
    }
    if (r.blame == Blame::Client) {
      ++client;
    } else if (r.blame == Blame::Cloud || r.blame == Blame::Middle) {
      ++wrong_segment;
    }
  }
  EXPECT_GT(client, 0) << net::to_string(region);
  EXPECT_GE(client, wrong_segment * 2) << net::to_string(region);
}

INSTANTIATE_TEST_SUITE_P(
    AllRegions, ClientFaultPerRegion,
    ::testing::ValuesIn(net::kAllRegions.begin(), net::kAllRegions.end()),
    [](const auto& info) {
      return std::string{net::to_string(info.param)};
    });

// ---------------------------------------------------------------------------
// Property 2: middle-fault blame count grows monotonically (weakly) with
// fault magnitude, and no magnitude produces cloud misblames for a
// non-dominant transit.
class MiddleFaultMagnitude : public ::testing::TestWithParam<double> {};

TEST_P(MiddleFaultMagnitude, NoCloudMisblame) {
  auto& w = world();
  const auto victim = w.visible_transit(net::Region::Europe);
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                        .as = victim,
                        .added_ms = GetParam(),
                        .start = util::MinuteTime::from_days(3),
                        .duration_minutes = util::kMinutesPerDay});
  const auto quartets = w.quartets(faults, eval_bucket());
  const PassiveLocalizer localizer{&w.topo(), &w.learner()};
  const auto results = localizer.localize(quartets, 3);
  int cloud = 0;
  for (const auto& r : results) {
    if (r.quartet.region == net::Region::Europe && r.blame == Blame::Cloud) {
      ++cloud;
    }
  }
  EXPECT_EQ(cloud, 0) << "magnitude " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, MiddleFaultMagnitude,
                         ::testing::Values(40.0, 80.0, 160.0, 320.0));

// ---------------------------------------------------------------------------
// Property 3: raising τ can only move blame away from cloud/middle (the
// group rules fire less often), never toward them.
class TauMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(TauMonotonicity, GroupBlamesShrinkWithTau) {
  auto& w = world();
  const auto victim = w.visible_transit(net::Region::India);
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                        .as = victim,
                        .added_ms = 180.0,
                        .start = util::MinuteTime::from_days(3),
                        .duration_minutes = util::kMinutesPerDay});
  const auto quartets = w.quartets(faults, eval_bucket());

  auto group_blames = [&](double tau) {
    BlameItConfig cfg;
    cfg.tau = tau;
    cfg.expected_rtt_window_days = 3;
    const PassiveLocalizer localizer{&w.topo(), &w.learner(), cfg};
    int n = 0;
    for (const auto& r : localizer.localize(quartets, 3)) {
      n += r.blame == Blame::Cloud || r.blame == Blame::Middle;
    }
    return n;
  };
  const double tau = GetParam();
  EXPECT_GE(group_blames(tau), group_blames(std::min(1.0, tau + 0.15)));
}

INSTANTIATE_TEST_SUITE_P(Taus, TauMonotonicity,
                         ::testing::Values(0.5, 0.65, 0.8, 0.85));

// ---------------------------------------------------------------------------
// Property 4: every blame result's category is consistent with its payload —
// cloud blames carry the cloud AS, client blames the quartet's client AS,
// middle blames no AS (until the active phase).
class ResultInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResultInvariants, PayloadMatchesCategory) {
  auto& w = world();
  sim::FaultInjector faults;
  util::Rng rng{GetParam()};
  // Random mixed fault.
  const auto region =
      net::kAllRegions[rng.zipf(net::kAllRegions.size(), 0.5)];
  faults.add(sim::Fault{.kind = sim::FaultKind::ClientAs,
                        .as = w.topo().eyeballs_in(region).front(),
                        .added_ms = 150.0,
                        .start = util::MinuteTime::from_days(3),
                        .duration_minutes = util::kMinutesPerDay});
  faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                        .as = w.visible_transit(region),
                        .added_ms = 120.0,
                        .start = util::MinuteTime::from_days(3),
                        .duration_minutes = util::kMinutesPerDay});
  const auto quartets = w.quartets(faults, eval_bucket());
  const PassiveLocalizer localizer{&w.topo(), &w.learner()};
  for (const auto& r : localizer.localize(quartets, 3)) {
    switch (r.blame) {
      case Blame::Cloud:
        ASSERT_TRUE(r.faulty_as.has_value());
        EXPECT_EQ(*r.faulty_as, w.topo().cloud_as());
        break;
      case Blame::Client:
        ASSERT_TRUE(r.faulty_as.has_value());
        EXPECT_EQ(*r.faulty_as, r.quartet.client_as);
        break;
      default:
        EXPECT_FALSE(r.faulty_as.has_value());
        break;
    }
    EXPECT_TRUE(r.quartet.bad);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResultInvariants,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace blameit::core
