#include "core/prioritizer.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace blameit::core {
namespace {

BlameResult middle_result(std::uint16_t loc, std::uint32_t middle,
                          std::uint32_t block, int samples) {
  BlameResult r;
  r.blame = Blame::Middle;
  r.quartet.key.location = net::CloudLocationId{loc};
  r.quartet.key.block = net::Slash24{block};
  r.quartet.middle = net::MiddleSegmentId{middle};
  r.quartet.sample_count = samples;
  return r;
}

TEST(MiddleIssueKey, PacksUniquely) {
  const auto a = middle_issue_key(net::CloudLocationId{1},
                                  net::MiddleSegmentId{2});
  const auto b = middle_issue_key(net::CloudLocationId{2},
                                  net::MiddleSegmentId{1});
  const auto c = middle_issue_key(net::CloudLocationId{1},
                                  net::MiddleSegmentId{3});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(CollectMiddleIssues, GroupsByLocationAndPath) {
  std::vector<BlameResult> results;
  results.push_back(middle_result(1, 10, 100, 16));
  results.push_back(middle_result(1, 10, 101, 16));  // same issue
  results.push_back(middle_result(2, 10, 102, 32));  // other location
  results.push_back(middle_result(1, 11, 103, 8));   // other path
  // Non-middle blames are ignored.
  BlameResult cloud = middle_result(1, 10, 104, 99);
  cloud.blame = Blame::Cloud;
  results.push_back(cloud);

  const auto issues = collect_middle_issues(results, 1.6);
  ASSERT_EQ(issues.size(), 3u);
  const auto& first = issues[0];  // (loc1, mid10)
  EXPECT_EQ(first.location, net::CloudLocationId{1});
  EXPECT_EQ(first.middle, net::MiddleSegmentId{10});
  EXPECT_NEAR(first.observed_users, 32 / 1.6, 1e-9);
  EXPECT_EQ(first.representative_block, net::Slash24{100});
}

TEST(CollectMiddleIssues, InvalidSamplesPerClient) {
  EXPECT_THROW((void)collect_middle_issues({}, 0.0), std::invalid_argument);
}

class PrioritizerTest : public ::testing::Test {
 protected:
  PrioritizerTest() : prioritizer_(&durations_, &clients_) {}

  static MiddleIssue issue(std::uint16_t loc, std::uint32_t middle,
                           double users, int elapsed = 1) {
    MiddleIssue i;
    i.location = net::CloudLocationId{loc};
    i.middle = net::MiddleSegmentId{middle};
    i.observed_users = users;
    i.elapsed_buckets = elapsed;
    return i;
  }

  DurationPredictor durations_;
  ClientVolumePredictor clients_;
  ProbePrioritizer prioritizer_;
};

TEST_F(PrioritizerTest, RanksByClientTimeProduct) {
  // Key A: long-lived history, many predicted clients. Key B: short-lived.
  const auto key_a = middle_issue_key(net::CloudLocationId{1},
                                      net::MiddleSegmentId{1});
  const auto key_b = middle_issue_key(net::CloudLocationId{2},
                                      net::MiddleSegmentId{2});
  for (int i = 0; i < 20; ++i) durations_.record_duration(key_a, 24);
  for (int i = 0; i < 20; ++i) durations_.record_duration(key_b, 1);
  const util::TimeBucket now{3 * util::kBucketsPerDay + 100};
  for (int day = 0; day < 3; ++day) {
    const util::TimeBucket past{day * util::kBucketsPerDay + 100};
    clients_.observe(key_a, past, 1000.0);
    clients_.observe(key_b, past, 10.0);
  }

  auto ranked = prioritizer_.rank({issue(2, 2, 10.0), issue(1, 1, 1000.0)},
                                  now);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].middle, net::MiddleSegmentId{1});
  EXPECT_GT(ranked[0].client_time_product,
            ranked[1].client_time_product * 10.0);
  EXPECT_DOUBLE_EQ(ranked[0].predicted_users, 1000.0);
}

TEST_F(PrioritizerTest, FallsBackToObservedUsersWithoutHistory) {
  const util::TimeBucket now{100};
  auto ranked = prioritizer_.rank({issue(1, 1, 42.0)}, now);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_DOUBLE_EQ(ranked[0].predicted_users, 42.0);
  // No duration history → prior of 1 bucket remaining.
  EXPECT_DOUBLE_EQ(ranked[0].predicted_remaining_buckets, 1.0);
  EXPECT_DOUBLE_EQ(ranked[0].client_time_product, 42.0);
}

TEST_F(PrioritizerTest, ElapsedTimeBoostsLongTailIssues) {
  const auto key = middle_issue_key(net::CloudLocationId{1},
                                    net::MiddleSegmentId{1});
  for (int i = 0; i < 45; ++i) durations_.record_duration(key, 1);
  for (int i = 0; i < 5; ++i) durations_.record_duration(key, 40);
  const util::TimeBucket now{100};
  const auto fresh = prioritizer_.rank({issue(1, 1, 10.0, 1)}, now);
  const auto seasoned = prioritizer_.rank({issue(1, 1, 10.0, 12)}, now);
  EXPECT_GT(seasoned[0].client_time_product,
            fresh[0].client_time_product * 3.0);
}

TEST_F(PrioritizerTest, DeterministicTieBreak) {
  const util::TimeBucket now{100};
  const auto a = prioritizer_.rank({issue(2, 2, 5.0), issue(1, 1, 5.0)}, now);
  const auto b = prioritizer_.rank({issue(1, 1, 5.0), issue(2, 2, 5.0)}, now);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].middle, b[i].middle);
  }
}

TEST_F(PrioritizerTest, NullPredictorsThrow) {
  EXPECT_THROW((ProbePrioritizer{nullptr, &clients_}), std::invalid_argument);
  EXPECT_THROW((ProbePrioritizer{&durations_, nullptr}),
               std::invalid_argument);
}

}  // namespace
}  // namespace blameit::core
