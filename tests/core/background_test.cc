#include "core/background.h"

#include <gtest/gtest.h>

#include "core/prioritizer.h"

#include <memory>

namespace blameit::core {
namespace {

class BackgroundTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 1;
    cfg.eyeballs_per_region = 2;
    cfg.blocks_per_eyeball = 4;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  BackgroundTest()
      : model_(topo_, &faults_), engine_(topo_, &model_) {}

  static net::Topology* topo_;
  sim::FaultInjector faults_;
  sim::RttModel model_;
  sim::TracerouteEngine engine_;
  BaselineStore store_;
};

net::Topology* BackgroundTest::topo_ = nullptr;

TEST_F(BackgroundTest, BaselineStoreRoundTrip) {
  const auto loc = topo_->locations().front().id;
  const net::MiddleSegmentId mid{3};
  EXPECT_EQ(store_.get(loc, mid), nullptr);
  store_.update(loc, mid,
                Baseline{.when = util::MinuteTime{5},
                         .cloud_ms = 4.0,
                         .contributions = {{net::AsId{10}, 2.0}}});
  const auto* baseline = store_.get(loc, mid);
  ASSERT_NE(baseline, nullptr);
  EXPECT_DOUBLE_EQ(baseline->cloud_ms, 4.0);
  // Update overwrites.
  store_.update(loc, mid, Baseline{.when = util::MinuteTime{9}});
  EXPECT_EQ(store_.get(loc, mid)->when, util::MinuteTime{9});
  EXPECT_EQ(store_.size(), 1u);
}

TEST_F(BackgroundTest, FullPeriodCoversEveryPath) {
  BlameItConfig cfg;
  cfg.background_period_minutes = 12 * 60;
  BackgroundProber prober{topo_, &engine_, &store_, cfg};
  // Run one full period: every ⟨location, middle⟩ must get a baseline.
  const int probes = prober.step(util::MinuteTime{0},
                                 util::MinuteTime{12 * 60});
  EXPECT_GT(probes, 0);
  // Count distinct (loc, middle) pairs in the topology's current routing.
  std::size_t expected = 0;
  {
    std::unordered_map<std::uint64_t, bool> seen;
    for (const auto& loc : topo_->locations()) {
      for (const auto& block : topo_->blocks()) {
        const auto* route =
            topo_->routing().route_for(loc.id, block.block,
                                       util::MinuteTime{0});
        if (route &&
            seen.emplace(middle_issue_key(loc.id, route->middle), true)
                .second) {
          ++expected;
        }
      }
    }
  }
  EXPECT_EQ(store_.size(), expected);
  EXPECT_EQ(static_cast<std::size_t>(probes), expected);
}

TEST_F(BackgroundTest, TwoPerDayCadence) {
  BlameItConfig cfg;
  cfg.background_period_minutes = 12 * 60;
  cfg.churn_triggered_probes = false;
  BackgroundProber prober{topo_, &engine_, &store_, cfg};
  int total = 0;
  // Walk a day in 15-minute steps, as the pipeline would.
  for (int minute = 15; minute <= util::kMinutesPerDay; minute += 15) {
    total += prober.step(util::MinuteTime{minute - 15},
                         util::MinuteTime{minute});
  }
  EXPECT_EQ(static_cast<std::uint64_t>(total),
            prober.periodic_probes_per_day());
  // 2 probes per path per day.
  EXPECT_EQ(static_cast<std::uint64_t>(total), 2 * store_.size());
}

TEST_F(BackgroundTest, GetBeforeRejectsBaselinesAtOrAfterIssueStart) {
  const auto loc = topo_->locations().front().id;
  const net::MiddleSegmentId mid{3};
  store_.update(loc, mid, Baseline{.when = util::MinuteTime{100}});

  // Every retained baseline postdates the issue: no silent fallback to the
  // oldest entry (the old behavior) — the caller must see "no baseline".
  EXPECT_EQ(store_.get_before(loc, mid, util::MinuteTime{50}), nullptr);
  // Strictly before: a baseline captured AT the issue start is not usable.
  EXPECT_EQ(store_.get_before(loc, mid, util::MinuteTime{100}), nullptr);
  EXPECT_NE(store_.get_before(loc, mid, util::MinuteTime{101}), nullptr);

  // With a mix, the newest strictly-older baseline is selected.
  store_.update(loc, mid, Baseline{.when = util::MinuteTime{200}});
  const auto* baseline = store_.get_before(loc, mid, util::MinuteTime{150});
  ASSERT_NE(baseline, nullptr);
  EXPECT_EQ(baseline->when, util::MinuteTime{100});
}

TEST_F(BackgroundTest, ProbeCostMatchesFiringLoopAtSevenHourPeriod) {
  // 7 h does not divide a day (1440 / 420 = 3.43): the truncating estimate
  // claimed 3 probes per target while the firing loop issues 3 or 4
  // depending on the target's phase. The accounting must match what fires.
  BlameItConfig cfg;
  cfg.background_period_minutes = 7 * 60;
  cfg.churn_triggered_probes = false;
  BackgroundProber prober{topo_, &engine_, &store_, cfg};
  int total = 0;
  for (int minute = 15; minute <= util::kMinutesPerDay; minute += 15) {
    total += prober.step(util::MinuteTime{minute - 15},
                         util::MinuteTime{minute});
  }
  EXPECT_EQ(static_cast<std::uint64_t>(total),
            prober.periodic_probes_per_day());
  // Every target fires at least the truncated count.
  EXPECT_GE(static_cast<std::size_t>(total), 3 * store_.size());
  EXPECT_LE(static_cast<std::size_t>(total), 4 * store_.size());
}

TEST_F(BackgroundTest, ChurnTriggersProbe) {
  BlameItConfig cfg;
  cfg.background_period_minutes = 100000;  // effectively disable periodic
  BackgroundProber prober{topo_, &engine_, &store_, cfg};

  const auto loc = topo_->locations().front().id;
  const auto prefix = topo_->routing().prefixes_at(loc).front();
  const auto& alts = topo_->alternates(loc, prefix);
  ASSERT_GE(alts.size(), 2u);
  topo_->routing().change_path(loc, prefix, util::MinuteTime{50}, alts[1]);

  const int probes =
      prober.step(util::MinuteTime{0}, util::MinuteTime{60});
  EXPECT_EQ(probes, 1);
  // The new path's baseline must exist.
  const auto* route = topo_->routing().route_for(
      loc, net::Slash24{prefix.network >> 8}, util::MinuteTime{60});
  ASSERT_NE(route, nullptr);
  EXPECT_NE(store_.get(loc, route->middle), nullptr);
}

TEST_F(BackgroundTest, ChurnDisabledByConfig) {
  BlameItConfig cfg;
  cfg.background_period_minutes = 100000;
  cfg.churn_triggered_probes = false;
  BackgroundProber prober{topo_, &engine_, &store_, cfg};
  const auto loc = topo_->locations().front().id;
  const auto prefix = topo_->routing().prefixes_at(loc).front();
  const auto& alts = topo_->alternates(loc, prefix);
  ASSERT_GE(alts.size(), 2u);
  topo_->routing().change_path(loc, prefix, util::MinuteTime{70}, alts.back());
  EXPECT_EQ(prober.step(util::MinuteTime{65}, util::MinuteTime{80}), 0);
}

TEST_F(BackgroundTest, NoWorkForEmptyInterval) {
  BackgroundProber prober{topo_, &engine_, &store_};
  EXPECT_EQ(prober.step(util::MinuteTime{100}, util::MinuteTime{100}), 0);
  EXPECT_EQ(prober.step(util::MinuteTime{100}, util::MinuteTime{50}), 0);
}

TEST_F(BackgroundTest, InvalidConfigThrows) {
  BlameItConfig bad;
  bad.background_period_minutes = 1;
  EXPECT_THROW((BackgroundProber{topo_, &engine_, &store_, bad}),
               std::invalid_argument);
  EXPECT_THROW((BackgroundProber{nullptr, &engine_, &store_}),
               std::invalid_argument);
}

}  // namespace
}  // namespace blameit::core
