#include "core/predictors.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace blameit::core {
namespace {

TEST(DurationPredictor, NoHistoryGivesOneBucketPrior) {
  const DurationPredictor pred;
  EXPECT_DOUBLE_EQ(pred.expected_remaining(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(pred.expected_remaining(1, 10), 1.0);
}

TEST(DurationPredictor, AllShortIncidentsPredictShortRemaining) {
  DurationPredictor pred;
  for (int i = 0; i < 50; ++i) pred.record_duration(1, 1);
  // Every historical issue lasted exactly 1 bucket; after 1 observed bucket
  // nothing more is expected.
  EXPECT_DOUBLE_EQ(pred.expected_remaining(1, 1), 0.0);
}

TEST(DurationPredictor, LongTailRaisesExpectationWithElapsedTime) {
  DurationPredictor pred{96};
  // Long-tailed history: mostly 1-bucket issues, a few 48-bucket ones.
  for (int i = 0; i < 90; ++i) pred.record_duration(2, 1);
  for (int i = 0; i < 10; ++i) pred.record_duration(2, 48);
  const double fresh = pred.expected_remaining(2, 1);
  const double seasoned = pred.expected_remaining(2, 10);
  // Fresh issue: 10% chance of being long-lived → E ≈ 47·0.1 = 4.7.
  EXPECT_NEAR(fresh, 4.7, 0.5);
  // Having survived 10 buckets, the issue is necessarily one of the
  // long-lived ones, so much more time remains (the §5.3 insight).
  EXPECT_GT(seasoned, fresh * 3.0);
  EXPECT_NEAR(seasoned, 38.0, 1.0);  // all survivors last to 48
}

TEST(DurationPredictor, ConditionalSurvival) {
  DurationPredictor pred;
  for (int i = 0; i < 50; ++i) pred.record_duration(3, 2);
  for (int i = 0; i < 50; ++i) pred.record_duration(3, 10);
  // P(D >= 3 | D >= 2) = 50/100: only the 10-bucket incidents continue.
  EXPECT_DOUBLE_EQ(pred.conditional_survival(3, 2, 1), 0.5);
  // P(D >= 2 | D >= 1) = 1.0: every incident lasts at least 2 buckets.
  EXPECT_DOUBLE_EQ(pred.conditional_survival(3, 1, 1), 1.0);
  // P(D >= 11 | D >= 10) = 0: nothing outlives 10 buckets.
  EXPECT_DOUBLE_EQ(pred.conditional_survival(3, 10, 1), 0.0);
}

TEST(DurationPredictor, PerKeyHistoryPreferredWhenRich) {
  DurationPredictor pred;
  // Key 7 has plenty of long incidents; the global pool is short-lived.
  for (int i = 0; i < 20; ++i) pred.record_duration(7, 20);
  for (int i = 0; i < 500; ++i) pred.record_duration(8, 1);
  EXPECT_GT(pred.expected_remaining(7, 1), 10.0);
  // Key 9 has no history: falls back to the global pool (dominated by 1s).
  EXPECT_LT(pred.expected_remaining(9, 1), 3.0);
  EXPECT_EQ(pred.history_count(7), 20u);
  EXPECT_EQ(pred.history_count(9), 0u);
}

TEST(DurationPredictor, SparseKeyFallsBackToGlobal) {
  DurationPredictor pred;
  pred.record_duration(5, 48);  // one long incident, below kMinKeyHistory
  for (int i = 0; i < 100; ++i) pred.record_duration(6, 1);
  // Key 5's single observation must not dominate; global pool governs.
  EXPECT_LT(pred.expected_remaining(5, 1), 5.0);
}

TEST(DurationPredictor, InvalidInputsThrow) {
  DurationPredictor pred;
  EXPECT_THROW(pred.record_duration(1, 0), std::invalid_argument);
  EXPECT_THROW(DurationPredictor{0}, std::invalid_argument);
}

TEST(ClientVolumePredictor, MeanOfSameWindowAcrossDays) {
  ClientVolumePredictor pred{3};
  const int bod = 100;  // bucket-of-day index
  for (int day = 0; day < 3; ++day) {
    pred.observe(1, util::TimeBucket{day * util::kBucketsPerDay + bod},
                 100.0 + day * 10.0);
  }
  const double predicted =
      pred.predict(1, util::TimeBucket{3 * util::kBucketsPerDay + bod});
  EXPECT_DOUBLE_EQ(predicted, 110.0);  // mean of 100, 110, 120
}

TEST(ClientVolumePredictor, ExcludesCurrentDay) {
  ClientVolumePredictor pred{3};
  const int bod = 10;
  pred.observe(1, util::TimeBucket{bod}, 50.0);
  pred.observe(1, util::TimeBucket{util::kBucketsPerDay + bod}, 5000.0);
  // Predicting for day 1 must ignore day 1's own (incident-inflated) value.
  EXPECT_DOUBLE_EQ(
      pred.predict(1, util::TimeBucket{util::kBucketsPerDay + bod}), 50.0);
}

TEST(ClientVolumePredictor, DifferentWindowsIndependent) {
  ClientVolumePredictor pred{3};
  pred.observe(1, util::TimeBucket{10}, 100.0);
  // Asking about a different bucket-of-day finds nothing.
  EXPECT_DOUBLE_EQ(
      pred.predict(1, util::TimeBucket{util::kBucketsPerDay + 11}), 0.0);
}

TEST(ClientVolumePredictor, OldDaysAgeOut) {
  ClientVolumePredictor pred{3};
  const int bod = 7;
  pred.observe(1, util::TimeBucket{bod}, 100.0);  // day 0
  // Day 10: day 0 is outside the 3-day window.
  EXPECT_DOUBLE_EQ(
      pred.predict(1, util::TimeBucket{10 * util::kBucketsPerDay + bod}),
      0.0);
}

TEST(ClientVolumePredictor, RefeedsKeepMax) {
  ClientVolumePredictor pred{3};
  pred.observe(1, util::TimeBucket{10}, 100.0);
  pred.observe(1, util::TimeBucket{10}, 60.0);  // re-feed, smaller
  EXPECT_DOUBLE_EQ(
      pred.predict(1, util::TimeBucket{util::kBucketsPerDay + 10}), 100.0);
}

TEST(ClientVolumePredictor, EvictStaleKeepsRecent) {
  ClientVolumePredictor pred{3};
  const int bod = 3;
  pred.observe(1, util::TimeBucket{bod}, 10.0);                           // d0
  pred.observe(1, util::TimeBucket{9 * util::kBucketsPerDay + bod}, 20.0);  // d9
  pred.evict_stale(10);
  EXPECT_DOUBLE_EQ(
      pred.predict(1, util::TimeBucket{10 * util::kBucketsPerDay + bod}),
      20.0);
}

TEST(ClientVolumePredictor, InvalidWindowThrows) {
  EXPECT_THROW(ClientVolumePredictor{0}, std::invalid_argument);
}

}  // namespace
}  // namespace blameit::core
