#include "core/active.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/chaos.h"

namespace blameit::core {
namespace {

class ActiveTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 1;
    cfg.eyeballs_per_region = 2;
    cfg.blocks_per_eyeball = 4;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  [[nodiscard]] static const net::ClientBlock& block() {
    return topo_->blocks().front();
  }
  [[nodiscard]] static net::CloudLocationId home() {
    return topo_->home_locations(block().block).front();
  }
  [[nodiscard]] static const net::RouteEntry& route(util::MinuteTime t) {
    return *topo_->routing().route_for(home(), block().block, t);
  }

  /// Records a clean baseline for the block's path at `t`.
  void capture_baseline(util::MinuteTime t) {
    sim::FaultInjector no_faults;
    sim::RttModel clean{topo_, &no_faults};
    sim::TracerouteEngine probe{topo_, &clean};
    const auto result = probe.trace(home(), block().block, t);
    ASSERT_TRUE(result.reached);
    store_.update(home(), route(t).middle,
                  Baseline{.when = t,
                           .cloud_ms = result.cloud_ms,
                           .contributions = result.contributions()});
  }

  static const net::Topology* topo_;
  BaselineStore store_;
};

const net::Topology* ActiveTest::topo_ = nullptr;

TEST_F(ActiveTest, LocalizesFaultyMiddleAs) {
  const auto t0 = util::MinuteTime::from_day_hour(0, 3);
  capture_baseline(t0);

  const auto victim = route(t0).middle_ases()[0];
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                        .as = victim,
                        .added_ms = 54.0,
                        .start = t0.plus_minutes(30),
                        .duration_minutes = 120});
  sim::RttModel faulty{topo_, &faults};
  sim::TracerouteEngine engine{topo_, &faulty};
  ActiveLocalizer localizer{topo_, &engine, &store_};

  const auto diag = localizer.diagnose(home(), route(t0).middle,
                                       block().block, t0.plus_minutes(60));
  ASSERT_TRUE(diag.probe_reached);
  ASSERT_TRUE(diag.have_baseline);
  ASSERT_TRUE(diag.culprit.has_value());
  EXPECT_EQ(*diag.culprit, victim);
  EXPECT_NEAR(diag.culprit_increase_ms, 54.0, 10.0);
}

TEST_F(ActiveTest, CloudIncreaseImplicatesCloudAs) {
  const auto t0 = util::MinuteTime::from_day_hour(0, 3);
  capture_baseline(t0);

  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::CloudLocation,
                        .cloud_location = home(),
                        .added_ms = 60.0,
                        .start = t0.plus_minutes(30),
                        .duration_minutes = 120});
  sim::RttModel faulty{topo_, &faults};
  sim::TracerouteEngine engine{topo_, &faulty};
  ActiveLocalizer localizer{topo_, &engine, &store_};

  const auto diag = localizer.diagnose(home(), route(t0).middle,
                                       block().block, t0.plus_minutes(60));
  ASSERT_TRUE(diag.culprit.has_value());
  EXPECT_EQ(*diag.culprit, topo_->cloud_as());
}

TEST_F(ActiveTest, ClientFaultImplicatesClientAs) {
  const auto t0 = util::MinuteTime::from_day_hour(0, 3);
  capture_baseline(t0);

  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::ClientAs,
                        .as = block().client_as,
                        .added_ms = 90.0,
                        .start = t0.plus_minutes(30),
                        .duration_minutes = 120});
  sim::RttModel faulty{topo_, &faults};
  sim::TracerouteEngine engine{topo_, &faulty};
  ActiveLocalizer localizer{topo_, &engine, &store_};

  const auto diag = localizer.diagnose(home(), route(t0).middle,
                                       block().block, t0.plus_minutes(60));
  ASSERT_TRUE(diag.culprit.has_value());
  EXPECT_EQ(*diag.culprit, block().client_as);
}

TEST_F(ActiveTest, NoBaselineFallsBackToAbsoluteContribution) {
  sim::FaultInjector no_faults;
  sim::RttModel model{topo_, &no_faults};
  sim::TracerouteEngine engine{topo_, &model};
  ActiveLocalizer localizer{topo_, &engine, &store_};  // empty store
  const auto t = util::MinuteTime::from_day_hour(0, 3);
  const auto diag =
      localizer.diagnose(home(), route(t).middle, block().block, t);
  ASSERT_TRUE(diag.probe_reached);
  EXPECT_FALSE(diag.have_baseline);
  ASSERT_TRUE(diag.culprit.has_value());
  // Without a baseline, the largest absolute contributor is named — the
  // client AS (access latency dominates healthy paths).
  EXPECT_EQ(*diag.culprit, block().client_as);
}

TEST_F(ActiveTest, NoBaselineCanBlameCloudSegment) {
  // A massive cloud-side inflation with an empty baseline store: the
  // largest-absolute-contributor fallback must consider the cloud segment,
  // not only the middle/client ASes on the path.
  const auto t0 = util::MinuteTime::from_day_hour(0, 3);
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::CloudLocation,
                        .cloud_location = home(),
                        .added_ms = 500.0,
                        .start = t0,
                        .duration_minutes = 120});
  sim::RttModel faulty{topo_, &faults};
  sim::TracerouteEngine engine{topo_, &faulty};
  ActiveLocalizer localizer{topo_, &engine, &store_};  // empty store
  const auto diag = localizer.diagnose(home(), route(t0).middle,
                                       block().block, t0.plus_minutes(30));
  ASSERT_TRUE(diag.probe_reached);
  EXPECT_FALSE(diag.have_baseline);
  ASSERT_TRUE(diag.culprit.has_value());
  EXPECT_EQ(*diag.culprit, topo_->cloud_as());
  EXPECT_GE(diag.culprit_increase_ms, 500.0);
}

TEST_F(ActiveTest, MidIncidentBaselineIsRejected) {
  const auto t0 = util::MinuteTime::from_day_hour(0, 3);
  const auto issue_start = t0.plus_minutes(30);
  // The ONLY retained baseline was captured after the issue began — using
  // it would hide the inflation (the diff would read ~0). The diagnosis
  // must take the explicit no-baseline path instead.
  capture_baseline(t0.plus_minutes(60));

  sim::FaultInjector no_faults;
  sim::RttModel model{topo_, &no_faults};
  sim::TracerouteEngine engine{topo_, &model};
  ActiveLocalizer localizer{topo_, &engine, &store_};
  const auto diag =
      localizer.diagnose(home(), route(t0).middle, block().block,
                         t0.plus_minutes(90), issue_start);
  ASSERT_TRUE(diag.probe_reached);
  EXPECT_FALSE(diag.have_baseline);
  EXPECT_FALSE(diag.baseline_predates_issue);
  // The low-confidence fallback still names a culprit.
  EXPECT_TRUE(diag.culprit.has_value());
}

TEST_F(ActiveTest, BaselinePredatesIssueFlag) {
  const auto t0 = util::MinuteTime::from_day_hour(0, 3);
  capture_baseline(t0);

  sim::FaultInjector no_faults;
  sim::RttModel model{topo_, &no_faults};
  sim::TracerouteEngine engine{topo_, &model};
  ActiveLocalizer localizer{topo_, &engine, &store_};

  // issue_start given and an older baseline exists: the guarantee holds.
  const auto with_start =
      localizer.diagnose(home(), route(t0).middle, block().block,
                         t0.plus_minutes(60), t0.plus_minutes(30));
  EXPECT_TRUE(with_start.have_baseline);
  EXPECT_TRUE(with_start.baseline_predates_issue);

  // No issue_start: plain get() makes no predating promise.
  const auto without_start = localizer.diagnose(
      home(), route(t0).middle, block().block, t0.plus_minutes(60));
  EXPECT_TRUE(without_start.have_baseline);
  EXPECT_FALSE(without_start.baseline_predates_issue);
}

TEST_F(ActiveTest, UnreachableTargetYieldsNoCulprit) {
  sim::FaultInjector no_faults;
  sim::RttModel model{topo_, &no_faults};
  sim::TracerouteEngine engine{topo_, &model};
  ActiveLocalizer localizer{topo_, &engine, &store_};
  const auto diag = localizer.diagnose(home(), net::MiddleSegmentId{0},
                                       net::Slash24{0xFFFFFF},
                                       util::MinuteTime{0});
  EXPECT_FALSE(diag.probe_reached);
  EXPECT_FALSE(diag.culprit.has_value());
}

TEST_F(ActiveTest, RetriesRecoverLostProbes) {
  const auto t0 = util::MinuteTime::from_day_hour(0, 3);
  capture_baseline(t0);
  const auto victim = route(t0).middle_ases()[0];
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                        .as = victim,
                        .added_ms = 54.0,
                        .start = t0.plus_minutes(30),
                        .duration_minutes = 600});
  sim::RttModel faulty{topo_, &faults};
  sim::ChaosConfig ccfg;
  ccfg.probe_loss_rate = 0.5;
  const sim::ChaosInjector chaos{ccfg};
  sim::TracerouteEngine engine{topo_, &faulty, {}, &chaos};
  BlameItConfig cfg;
  cfg.active_probe_retries = 4;
  ActiveLocalizer localizer{topo_, &engine, &store_, cfg};

  bool recovered = false;
  for (int m = 0; m < 30 && !recovered; ++m) {
    const auto diag = localizer.diagnose(home(), route(t0).middle,
                                         block().block, t0.plus_minutes(40 + m));
    // Bounded spend: one quorum slot, at most 1 + retries attempts, and
    // every attempt past the first IS a retry.
    ASSERT_LE(diag.probes_spent, 1 + cfg.active_probe_retries);
    EXPECT_EQ(diag.probes_spent, diag.retries + 1);
    if (diag.retries > 0 && diag.probe_reached) {
      recovered = true;
      ASSERT_TRUE(diag.culprit.has_value());
      EXPECT_EQ(*diag.culprit, victim);
    }
  }
  // At 50% loss with 4 retries, some diagnosis must have lost its first
  // attempt and still named the culprit on a retry.
  EXPECT_TRUE(recovered);
}

TEST_F(ActiveTest, AllProbesLostYieldsLowConfidence) {
  const auto t0 = util::MinuteTime::from_day_hour(0, 3);
  capture_baseline(t0);
  sim::FaultInjector no_faults;
  sim::RttModel model{topo_, &no_faults};
  sim::ChaosConfig ccfg;
  ccfg.probe_loss_rate = 1.0;
  const sim::ChaosInjector chaos{ccfg};
  sim::TracerouteEngine engine{topo_, &model, {}, &chaos};
  BlameItConfig cfg;
  cfg.active_probe_retries = 2;
  ActiveLocalizer localizer{topo_, &engine, &store_, cfg};
  const auto diag = localizer.diagnose(home(), route(t0).middle,
                                       block().block, t0.plus_minutes(10));
  EXPECT_EQ(diag.probes_spent, 3);
  EXPECT_EQ(diag.retries, 2);
  EXPECT_FALSE(diag.probe_reached);
  EXPECT_FALSE(diag.culprit.has_value());
  EXPECT_TRUE(diag.probe.lost);
  EXPECT_EQ(diag.confidence, DiagnosisConfidence::Low);
}

TEST_F(ActiveTest, OutageIsNotRetried) {
  const auto t0 = util::MinuteTime::from_day_hour(0, 3);
  sim::FaultInjector no_faults;
  sim::RttModel model{topo_, &no_faults};
  sim::ChaosConfig ccfg;
  ccfg.outages.push_back(sim::OutageWindow{t0, 120});
  const sim::ChaosInjector chaos{ccfg};
  sim::TracerouteEngine engine{topo_, &model, {}, &chaos};
  BlameItConfig cfg;
  cfg.active_probe_retries = 3;
  cfg.active_quorum_k = 3;
  ActiveLocalizer localizer{topo_, &engine, &store_, cfg};
  const auto diag = localizer.diagnose(home(), route(t0).middle,
                                       block().block, t0.plus_minutes(10));
  // An engine-wide outage outlasts any backoff: neither the retry loop nor
  // the remaining quorum slots burn budget on it.
  EXPECT_EQ(diag.probes_spent, 1);
  EXPECT_EQ(diag.retries, 0);
  EXPECT_TRUE(diag.probe.in_outage);
  EXPECT_EQ(diag.confidence, DiagnosisConfidence::Low);
}

TEST_F(ActiveTest, QuorumProbesAggregateByMedian) {
  const auto t0 = util::MinuteTime::from_day_hour(0, 3);
  capture_baseline(t0);
  const auto victim = route(t0).middle_ases()[0];
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                        .as = victim,
                        .added_ms = 54.0,
                        .start = t0.plus_minutes(30),
                        .duration_minutes = 120});
  sim::RttModel faulty{topo_, &faults};
  sim::TracerouteEngine engine{topo_, &faulty};
  BlameItConfig cfg;
  cfg.active_quorum_k = 3;
  ActiveLocalizer localizer{topo_, &engine, &store_, cfg};
  const auto diag = localizer.diagnose(home(), route(t0).middle,
                                       block().block, t0.plus_minutes(60));
  EXPECT_EQ(diag.probes_spent, 3);
  EXPECT_EQ(diag.retries, 0);
  ASSERT_TRUE(diag.probe_reached);
  ASSERT_TRUE(diag.culprit.has_value());
  EXPECT_EQ(*diag.culprit, victim);
  EXPECT_NEAR(diag.culprit_increase_ms, 54.0, 10.0);
  EXPECT_EQ(diag.confidence, DiagnosisConfidence::High);
}

TEST_F(ActiveTest, FullTruncationDegradesToCoarseMiddle) {
  const auto t0 = util::MinuteTime::from_day_hour(0, 3);
  capture_baseline(t0);
  sim::FaultInjector no_faults;
  sim::RttModel model{topo_, &no_faults};
  sim::ChaosConfig ccfg;
  ccfg.hop_timeout_rate = 1.0;  // every traceroute dies at the first hop
  const sim::ChaosInjector chaos{ccfg};
  sim::TracerouteEngine engine{topo_, &model, {}, &chaos};
  BlameItConfig cfg;
  cfg.active_probe_retries = 1;
  ActiveLocalizer localizer{topo_, &engine, &store_, cfg};
  const auto diag = localizer.diagnose(home(), route(t0).middle,
                                       block().block, t0.plus_minutes(10));
  EXPECT_EQ(diag.probes_spent, 2);  // truncation is retried (and recounted)
  EXPECT_EQ(diag.retries, 1);
  EXPECT_FALSE(diag.probe_reached);
  EXPECT_TRUE(diag.truncated);
  EXPECT_TRUE(diag.have_baseline);
  // The empty reached prefix looks healthy, so no AS is named: blame stays
  // at coarse middle-segment granularity.
  EXPECT_TRUE(diag.coarse_middle);
  EXPECT_FALSE(diag.culprit.has_value());
  EXPECT_EQ(diag.confidence, DiagnosisConfidence::Low);
}

TEST_F(ActiveTest, TruncatedPrefixNamesCulpritWithMediumConfidence) {
  const auto t0 = util::MinuteTime::from_day_hour(0, 3);
  capture_baseline(t0);
  const auto victim = route(t0).middle_ases()[0];
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                        .as = victim,
                        .added_ms = 54.0,
                        .start = t0.plus_minutes(30),
                        .duration_minutes = 600});
  sim::RttModel faulty{topo_, &faults};
  sim::ChaosConfig ccfg;
  ccfg.hop_timeout_rate = 0.4;
  const sim::ChaosInjector chaos{ccfg};
  sim::TracerouteEngine engine{topo_, &faulty, {}, &chaos};
  BlameItConfig cfg;
  cfg.active_probe_retries = 0;  // keep truncated results truncated
  ActiveLocalizer localizer{topo_, &engine, &store_, cfg};

  bool named_from_prefix = false;
  for (int m = 0; m < 80 && !named_from_prefix; ++m) {
    const auto diag = localizer.diagnose(home(), route(t0).middle,
                                         block().block, t0.plus_minutes(40 + m));
    if (diag.truncated && diag.culprit.has_value()) {
      // The victim sits at hop 0, inside any non-empty reached prefix.
      EXPECT_EQ(*diag.culprit, victim);
      EXPECT_EQ(diag.confidence, DiagnosisConfidence::Medium);
      named_from_prefix = true;
    }
  }
  EXPECT_TRUE(named_from_prefix);
}

TEST_F(ActiveTest, StaleBaselineDowngradesConfidence) {
  const auto t0 = util::MinuteTime::from_day_hour(0, 3);
  capture_baseline(t0);
  const auto victim = route(t0).middle_ases()[0];
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                        .as = victim,
                        .added_ms = 54.0,
                        .start = t0.plus_minutes(30),
                        .duration_minutes = 120});
  sim::RttModel faulty{topo_, &faults};
  sim::TracerouteEngine engine{topo_, &faulty};
  BlameItConfig cfg;
  cfg.baseline_stale_minutes = 30;  // tightened so the t0 baseline is stale
  ActiveLocalizer localizer{topo_, &engine, &store_, cfg};
  const auto diag = localizer.diagnose(home(), route(t0).middle,
                                       block().block, t0.plus_minutes(60));
  ASSERT_TRUE(diag.probe_reached);
  ASSERT_TRUE(diag.have_baseline);
  EXPECT_TRUE(diag.baseline_stale);
  ASSERT_TRUE(diag.culprit.has_value());
  EXPECT_EQ(*diag.culprit, victim);
  EXPECT_EQ(diag.confidence, DiagnosisConfidence::Medium);
}

TEST_F(ActiveTest, InvalidRetryQuorumConfigThrows) {
  sim::FaultInjector no_faults;
  sim::RttModel model{topo_, &no_faults};
  sim::TracerouteEngine engine{topo_, &model};
  BlameItConfig bad;
  bad.active_probe_retries = -1;
  EXPECT_THROW((ActiveLocalizer{topo_, &engine, &store_, bad}),
               std::invalid_argument);
  bad = {};
  bad.active_quorum_k = 0;
  EXPECT_THROW((ActiveLocalizer{topo_, &engine, &store_, bad}),
               std::invalid_argument);
}

TEST_F(ActiveTest, NullDependenciesThrow) {
  sim::FaultInjector no_faults;
  sim::RttModel model{topo_, &no_faults};
  sim::TracerouteEngine engine{topo_, &model};
  EXPECT_THROW((ActiveLocalizer{nullptr, &engine, &store_}),
               std::invalid_argument);
  EXPECT_THROW((ActiveLocalizer{topo_, nullptr, &store_}),
               std::invalid_argument);
  EXPECT_THROW((ActiveLocalizer{topo_, &engine, nullptr}),
               std::invalid_argument);
}

}  // namespace
}  // namespace blameit::core
