#include "core/passive.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/fault.h"
#include "sim/scenario.h"
#include "sim/telemetry.h"

namespace blameit::core {
namespace {

// Shared environment: a small topology plus helpers that run the full
// telemetry -> quartets -> Algorithm 1 chain for a bucket, with the learner
// warmed up on fault-free history.
class PassiveTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 2;
    cfg.eyeballs_per_region = 6;
    // Middle groups need comfortably more than min_group_quartets (5)
    // co-located /24s per ⟨location, BGP path⟩, drawn from several client
    // ASes, for Algorithm 1's fractions to behave as at production scale.
    cfg.blocks_per_eyeball = 12;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  /// Generates the quartets of `bucket` under `faults`.
  static std::vector<analysis::Quartet> quartets_for(
      const sim::FaultInjector& faults, util::TimeBucket bucket) {
    const sim::TelemetryGenerator gen{topo_, &faults};
    analysis::QuartetBuilder builder{topo_, analysis::BadnessThresholds{}};
    gen.generate_aggregates(bucket,
                            [&](const analysis::QuartetKey& k, int n,
                                double mean) {
                              builder.add_aggregate(k, n, mean);
                            });
    return builder.take_bucket(bucket);
  }

  /// Warms a learner with `days` of fault-free history for every group.
  static void warm(analysis::ExpectedRttLearner& learner, int days) {
    const sim::FaultInjector no_faults;
    for (int day = 0; day < days; ++day) {
      // A few buckets per day keep the cost low while covering diurnal
      // variation.
      for (const int hour : {3, 9, 15, 21}) {
        const auto bucket = util::TimeBucket::of(
            util::MinuteTime::from_day_hour(day, hour));
        for (const auto& q : quartets_for(no_faults, bucket)) {
          learner.observe(
              analysis::cloud_key(q.key.location, q.key.device), day,
              q.mean_rtt_ms);
          learner.observe(analysis::middle_key(q.key.location, q.middle,
                                               q.key.device),
                          day, q.mean_rtt_ms);
        }
      }
    }
  }

  /// Majority blame for bad quartets matching a predicate.
  template <typename Pred>
  static std::map<Blame, int> blame_histogram(
      std::span<const BlameResult> results, Pred pred) {
    std::map<Blame, int> hist;
    for (const auto& r : results) {
      if (pred(r)) ++hist[r.blame];
    }
    return hist;
  }

  static const net::Topology* topo_;
};

const net::Topology* PassiveTest::topo_ = nullptr;

// The evaluation bucket: day 14 at noon (after learner warmup window).
util::TimeBucket eval_bucket() {
  return util::TimeBucket::of(util::MinuteTime::from_day_hour(14, 12));
}

// A transit AS that in-region primary routes actually cross, but that does
// not dominate any location (per-location path share <= 0.6): a transit
// carrying more than τ of a location's paths is passively indistinguishable
// from a cloud fault, which is not what this test exercises.
net::AsId most_used_transit(const net::Topology& topo, net::Region region) {
  std::map<std::uint32_t, std::map<std::uint32_t, int>> usage;
  std::map<std::uint32_t, int> loc_totals;
  for (const auto& block : topo.blocks()) {
    if (block.region != region) continue;
    const auto loc = topo.home_locations(block.block).front();
    const auto* route =
        topo.routing().route_for(loc, block.block, util::MinuteTime{0});
    ++loc_totals[loc.value];
    for (const auto as : route->middle_ases()) ++usage[as.value][loc.value];
  }
  std::uint32_t best = 0;
  int best_total = -1;
  for (const auto& [as, per_loc] : usage) {
    int total = 0;
    double max_share = 0.0;
    for (const auto& [loc, n] : per_loc) {
      total += n;
      max_share =
          std::max(max_share, static_cast<double>(n) / loc_totals[loc]);
    }
    if (max_share <= 0.6 && total > best_total) {
      best = as;
      best_total = total;
    }
  }
  if (best_total < 0) {
    for (const auto& [as, per_loc] : usage) {
      int total = 0;
      for (const auto& [loc, n] : per_loc) total += n;
      if (total > best_total) {
        best = as;
        best_total = total;
      }
    }
  }
  return net::AsId{best};
}

TEST_F(PassiveTest, NoFaultsFewBadQuartets) {
  analysis::ExpectedRttLearner learner;
  warm(learner, 14);
  const sim::FaultInjector no_faults;
  const auto quartets = quartets_for(no_faults, eval_bucket());
  const PassiveLocalizer localizer{topo_, &learner};
  const auto results = localizer.localize(quartets, 14);
  // Healthy network: only noise-driven badness; must be a tiny fraction.
  EXPECT_LT(results.size(), quartets.size() / 10);
}

TEST_F(PassiveTest, CloudFaultBlamedOnCloud) {
  analysis::ExpectedRttLearner learner;
  warm(learner, 14);
  const auto loc = topo_->locations_in(net::Region::Europe).front();
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::CloudLocation,
                        .cloud_location = loc,
                        .added_ms = 80.0,
                        .start = util::MinuteTime::from_days(14),
                        .duration_minutes = util::kMinutesPerDay});
  const auto quartets = quartets_for(faults, eval_bucket());
  const PassiveLocalizer localizer{topo_, &learner};
  const auto results = localizer.localize(quartets, 14);

  const auto hist = blame_histogram(results, [&](const BlameResult& r) {
    return r.quartet.key.location == loc;
  });
  int total = 0;
  for (const auto& [blame, n] : hist) total += n;
  ASSERT_GT(total, 10);
  EXPECT_GT(hist.at(Blame::Cloud), total * 9 / 10);
  // Cloud blames carry the cloud AS.
  for (const auto& r : results) {
    if (r.blame == Blame::Cloud) {
      ASSERT_TRUE(r.faulty_as.has_value());
      EXPECT_EQ(*r.faulty_as, topo_->cloud_as());
    }
  }
}

TEST_F(PassiveTest, MiddleFaultBlamedOnMiddle) {
  analysis::ExpectedRttLearner learner;
  warm(learner, 14);
  const auto region = net::Region::India;
  const auto victim = most_used_transit(*topo_, region);
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                        .as = victim,
                        .added_ms = 130.0,
                        .start = util::MinuteTime::from_days(14),
                        .duration_minutes = util::kMinutesPerDay});
  const auto quartets = quartets_for(faults, eval_bucket());
  const PassiveLocalizer localizer{topo_, &learner};
  const auto results = localizer.localize(quartets, 14);

  // Bad quartets whose path crosses the victim must be blamed Middle.
  const auto hist = blame_histogram(results, [&](const BlameResult& r) {
    const auto& mids = topo_->interner().ases(r.quartet.middle);
    return std::find(mids.begin(), mids.end(), victim) != mids.end();
  });
  int total = 0;
  for (const auto& [blame, n] : hist) total += n;
  ASSERT_GT(total, 5);
  EXPECT_GT(hist.at(Blame::Middle), total * 3 / 4);
}

// Picks an eyeball that never dominates a ⟨location, BGP path⟩ group: its
// /24s must stay under ~55% of every middle group they appear in, mirroring
// the production-scale structural property (§4.1) that a client-AS fault
// cannot saturate a middle group (which serves many client ASes).
net::AsId shared_middle_eyeball(const net::Topology& topo, net::Region region) {
  struct Group {
    int total = 0;
    std::map<std::uint32_t, int> per_as;
  };
  std::map<std::pair<std::uint16_t, std::uint32_t>, Group> groups;
  for (const auto& block : topo.blocks()) {
    if (block.region != region) continue;
    // Every home location matters: secondary-location quartets also feed
    // Algorithm 1's middle groups.
    for (const auto loc : topo.home_locations(block.block)) {
      const auto* route =
          topo.routing().route_for(loc, block.block, util::MinuteTime{0});
      auto& group = groups[{loc.value, route->middle.value}];
      ++group.total;
      ++group.per_as[block.client_as.value];
    }
  }
  for (const auto candidate : topo.eyeballs_in(region)) {
    bool dominates = false;
    for (const auto& [key, group] : groups) {
      const auto it = group.per_as.find(candidate.value);
      if (it != group.per_as.end() &&
          it->second > 0.55 * group.total) {
        dominates = true;
        break;
      }
    }
    if (!dominates) return candidate;
  }
  return topo.eyeballs_in(region).front();
}

TEST_F(PassiveTest, ClientAsFaultBlamedOnClient) {
  analysis::ExpectedRttLearner learner;
  warm(learner, 14);
  const auto victim = shared_middle_eyeball(*topo_, net::Region::Europe);
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::ClientAs,
                        .as = victim,
                        .added_ms = 150.0,
                        .start = util::MinuteTime::from_days(14),
                        .duration_minutes = util::kMinutesPerDay});
  const auto quartets = quartets_for(faults, eval_bucket());
  const PassiveLocalizer localizer{topo_, &learner};
  const auto results = localizer.localize(quartets, 14);

  // Assert on non-mobile quartets: mobile volumes are sparse enough that
  // some of their groups fall under the min-quartet gate (the same data-
  // density limits behind the paper's "insufficient" fractions, Fig 9).
  const auto hist = blame_histogram(results, [&](const BlameResult& r) {
    return r.quartet.client_as == victim &&
           r.quartet.key.device == net::DeviceClass::NonMobile;
  });
  int total = 0;
  for (const auto& [blame, n] : hist) total += n;
  ASSERT_GT(total, 5);
  EXPECT_GT(hist.at(Blame::Client), total * 3 / 4);
  for (const auto& r : results) {
    if (r.blame == Blame::Client && r.quartet.client_as == victim) {
      ASSERT_TRUE(r.faulty_as.has_value());
      EXPECT_EQ(*r.faulty_as, victim);
    }
  }
}

TEST_F(PassiveTest, AustraliaOverloadNotBlamedOnSharedPaths) {
  // §6.3 case 3 / Insight-2: a cloud fault at one location must be blamed on
  // the cloud even though every BGP path into that location is "bad" — the
  // hierarchical order (cloud first) resolves the ambiguity.
  analysis::ExpectedRttLearner learner;
  warm(learner, 14);
  const auto locs = topo_->locations_in(net::Region::Australia);
  ASSERT_GE(locs.size(), 2u);
  sim::FaultInjector faults;
  // The paper's incident took the median 25 ms -> 82 ms; our synthetic
  // Australia has a higher healthy base, so the same story needs a larger
  // inflation to breach the (roomier) regional target.
  faults.add(sim::Fault{.kind = sim::FaultKind::CloudLocation,
                        .cloud_location = locs[0],
                        .added_ms = 80.0,
                        .start = util::MinuteTime::from_days(14),
                        .duration_minutes = util::kMinutesPerDay});
  const auto quartets = quartets_for(faults, eval_bucket());
  const PassiveLocalizer localizer{topo_, &learner};
  const auto results = localizer.localize(quartets, 14);
  int cloud = 0;
  int middle = 0;
  for (const auto& r : results) {
    if (r.quartet.key.location != locs[0]) continue;
    cloud += r.blame == Blame::Cloud;
    middle += r.blame == Blame::Middle;
  }
  ASSERT_GT(cloud + middle, 5);
  EXPECT_GT(cloud, middle * 5);
  // Clients of the same region connecting to the *other* location stay good,
  // so no blame lands there.
  for (const auto& r : results) {
    EXPECT_NE(r.quartet.key.location, locs[1]);
  }
}

TEST_F(PassiveTest, SingleBlockIssueBlamedOnClientNotMiddle) {
  analysis::ExpectedRttLearner learner;
  warm(learner, 14);
  // Use the most active block so its quartets comfortably clear the 10
  // RTT-sample floor at the evaluation bucket.
  const auto& block = *std::max_element(
      topo_->blocks().begin(), topo_->blocks().end(),
      [](const auto& a, const auto& b) {
        return a.activity_weight < b.activity_weight;
      });
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::ClientBlock,
                        .block = block.block,
                        .added_ms = 200.0,
                        .start = util::MinuteTime::from_days(14),
                        .duration_minutes = util::kMinutesPerDay});
  const auto quartets = quartets_for(faults, eval_bucket());
  const PassiveLocalizer localizer{topo_, &learner};
  const auto results = localizer.localize(quartets, 14);
  int client = 0;
  int other = 0;
  for (const auto& r : results) {
    if (r.quartet.key.block != block.block) continue;
    client += r.blame == Blame::Client;
    other += r.blame != Blame::Client;
  }
  ASSERT_GT(client + other, 0);
  EXPECT_GE(client, other);
}

TEST_F(PassiveTest, InsufficientWhenGroupTooThin) {
  analysis::ExpectedRttLearner learner;
  // Hand-build a bucket with a single bad quartet at a location: the cloud
  // group has 1 quartet <= 5 → insufficient.
  analysis::Quartet q;
  q.key = analysis::QuartetKey{.block = topo_->blocks().front().block,
                               .location = topo_->locations().front().id,
                               .device = net::DeviceClass::NonMobile,
                               .bucket = util::TimeBucket{100}};
  q.sample_count = 20;
  q.mean_rtt_ms = 500.0;
  q.middle = topo_->routing()
                 .route_for(q.key.location, q.key.block, util::MinuteTime{0})
                 ->middle;
  q.client_as = topo_->blocks().front().client_as;
  q.region = topo_->blocks().front().region;
  q.bad = true;
  const PassiveLocalizer localizer{topo_, &learner};
  const auto results = localizer.localize(std::vector<analysis::Quartet>{q},
                                          0);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].blame, Blame::Insufficient);
}

TEST_F(PassiveTest, AmbiguousWhenGoodElsewhere) {
  analysis::ExpectedRttLearner learner;
  warm(learner, 14);
  // Synthetic bucket: one block bad at location A but good at location B,
  // with enough healthy co-located quartets that neither the cloud nor the
  // middle group crosses τ.
  const sim::FaultInjector no_faults;
  auto quartets = quartets_for(no_faults, eval_bucket());
  ASSERT_FALSE(quartets.empty());
  // Find a block with quartets at two locations in this bucket.
  std::map<std::uint32_t, std::vector<std::size_t>> by_block;
  for (std::size_t i = 0; i < quartets.size(); ++i) {
    if (quartets[i].key.device == net::DeviceClass::NonMobile) {
      by_block[quartets[i].key.block.block].push_back(i);
    }
  }
  std::size_t victim_idx = quartets.size();
  for (const auto& [block, indices] : by_block) {
    if (indices.size() >= 2 &&
        quartets[indices[0]].key.location !=
            quartets[indices[1]].key.location) {
      victim_idx = indices[0];
      break;
    }
  }
  ASSERT_LT(victim_idx, quartets.size()) << "need a dual-homed bucket";
  quartets[victim_idx].mean_rtt_ms += 300.0;  // only this quartet goes bad
  quartets[victim_idx].bad = true;

  const PassiveLocalizer localizer{topo_, &learner};
  const auto results = localizer.localize(quartets, 14);
  bool found = false;
  for (const auto& r : results) {
    if (r.quartet.key == quartets[victim_idx].key) {
      EXPECT_EQ(r.blame, Blame::Ambiguous);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PassiveTest, ParallelLocalizeBitIdenticalAcrossThreadCounts) {
  analysis::ExpectedRttLearner learner;
  warm(learner, 14);

  // A bucket with every decision path live: a middle fault in India, a
  // cloud fault in Europe, plus a hand-injected ambiguous quartet on a
  // dual-homed block in an unaffected region.
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                        .as = most_used_transit(*topo_, net::Region::India),
                        .added_ms = 130.0,
                        .start = util::MinuteTime::from_days(14),
                        .duration_minutes = util::kMinutesPerDay});
  faults.add(sim::Fault{.kind = sim::FaultKind::CloudLocation,
                        .cloud_location =
                            topo_->locations_in(net::Region::Europe).front(),
                        .added_ms = 80.0,
                        .start = util::MinuteTime::from_days(14),
                        .duration_minutes = util::kMinutesPerDay});
  auto quartets = quartets_for(faults, eval_bucket());

  // Inject the ambiguity. Prefer a dual-homed block whose home locations
  // differ by an odd amount: with shard = location % threads, such a pair
  // lands in different shards at every even thread count, so the good-
  // elsewhere signal must cross the shard merge to be seen.
  std::map<std::uint32_t, std::vector<std::size_t>> by_block;
  for (std::size_t i = 0; i < quartets.size(); ++i) {
    if (quartets[i].key.device == net::DeviceClass::NonMobile &&
        quartets[i].region == net::Region::UnitedStates && !quartets[i].bad) {
      by_block[quartets[i].key.block.block].push_back(i);
    }
  }
  std::size_t victim = quartets.size();
  for (const auto& [block, indices] : by_block) {
    for (std::size_t a = 0; a < indices.size() && victim == quartets.size();
         ++a) {
      for (std::size_t b = a + 1; b < indices.size(); ++b) {
        const auto la = quartets[indices[a]].key.location.value;
        const auto lb = quartets[indices[b]].key.location.value;
        if (((la ^ lb) & 1) != 0) {
          victim = indices[a];
          break;
        }
      }
    }
    if (victim != quartets.size()) break;
  }
  ASSERT_LT(victim, quartets.size()) << "need a dual-homed odd-pair block";
  quartets[victim].mean_rtt_ms += 300.0;  // bad here, still good elsewhere
  quartets[victim].bad = true;

  BlameItConfig cfg;
  const PassiveLocalizer serial{topo_, &learner, cfg};
  const auto reference = serial.localize(quartets, 14);

  // Sanity: multiple decision paths fired, including the ambiguity rule.
  std::map<Blame, int> hist;
  for (const auto& r : reference) ++hist[r.blame];
  EXPECT_GT(hist[Blame::Middle], 0);
  EXPECT_GT(hist[Blame::Cloud], 0);
  EXPECT_GT(hist[Blame::Ambiguous], 0);
  bool victim_ambiguous = false;
  for (const auto& r : reference) {
    if (r.quartet.key == quartets[victim].key) {
      victim_ambiguous = r.blame == Blame::Ambiguous;
    }
  }
  EXPECT_TRUE(victim_ambiguous);

  for (const int threads : {2, 4, 8}) {
    cfg.analytics_threads = threads;
    const PassiveLocalizer parallel{topo_, &learner, cfg};
    EXPECT_EQ(parallel.threads(), threads);
    // Exact equality: same results in the same (input) order, bit-identical
    // means — the guarantee that makes the thread count a pure perf knob.
    const auto results = parallel.localize(quartets, 14);
    EXPECT_EQ(results, reference) << "thread count " << threads;
  }

  // The auto knob (0 = hardware cores) must agree too.
  cfg.analytics_threads = 0;
  const PassiveLocalizer auto_threads{topo_, &learner, cfg};
  EXPECT_EQ(auto_threads.localize(quartets, 14), reference);
}

TEST_F(PassiveTest, ParallelLocalizeHandlesEmptyAndTinyInput) {
  analysis::ExpectedRttLearner learner;
  BlameItConfig cfg;
  cfg.analytics_threads = 4;
  const PassiveLocalizer localizer{topo_, &learner, cfg};
  EXPECT_TRUE(localizer.localize({}, 0).empty());

  // Fewer quartets than shards: one bad quartet alone -> Insufficient.
  analysis::Quartet q;
  q.key = analysis::QuartetKey{.block = topo_->blocks().front().block,
                               .location = topo_->locations().front().id,
                               .device = net::DeviceClass::NonMobile,
                               .bucket = util::TimeBucket{100}};
  q.sample_count = 20;
  q.mean_rtt_ms = 500.0;
  q.middle = topo_->routing()
                 .route_for(q.key.location, q.key.block, util::MinuteTime{0})
                 ->middle;
  q.client_as = topo_->blocks().front().client_as;
  q.region = topo_->blocks().front().region;
  q.bad = true;
  const auto results =
      localizer.localize(std::vector<analysis::Quartet>{q}, 0);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].blame, Blame::Insufficient);
}

TEST_F(PassiveTest, ComparisonRttFallsBackToThreshold) {
  analysis::ExpectedRttLearner learner;  // empty
  const PassiveLocalizer localizer{topo_, &learner};
  const auto key = analysis::cloud_key(topo_->locations().front().id,
                                       net::DeviceClass::NonMobile);
  const double cmp = localizer.comparison_rtt(
      key, 0, net::Region::Europe, net::DeviceClass::NonMobile);
  EXPECT_DOUBLE_EQ(
      cmp, analysis::BadnessThresholds{}.threshold(
               net::Region::Europe, net::DeviceClass::NonMobile));
}

TEST_F(PassiveTest, LearnedExpectedRttCatchesSubThresholdShift) {
  // §4.3 worked example at system level: a +15 ms cloud shift that keeps
  // many RTTs below the 50 ms badness threshold is still caught because the
  // group fraction compares against the learned ~40 ms median.
  analysis::ExpectedRttLearner learner;
  const auto loc = net::CloudLocationId{77};
  const auto key = analysis::cloud_key(loc, net::DeviceClass::NonMobile);
  util::Rng rng{5};
  for (int day = 0; day < 14; ++day) {
    for (int i = 0; i < 50; ++i) {
      learner.observe(key, day, rng.uniform(35.0, 45.0));
    }
  }
  const PassiveLocalizer localizer{topo_, &learner};
  const double cmp = localizer.comparison_rtt(
      key, 14, net::Region::UnitedStates, net::DeviceClass::NonMobile);
  EXPECT_NEAR(cmp, 40.0, 1.5);
  // Post-fault distribution [40, 70]: fraction above cmp clears τ=0.8.
  int above = 0;
  for (int i = 0; i < 1000; ++i) above += rng.uniform(40.0, 70.0) > cmp;
  EXPECT_GT(above, 950);
}

TEST_F(PassiveTest, RegistryNeverAffectsOutputAndCountsBlames) {
  analysis::ExpectedRttLearner learner;
  warm(learner, 14);
  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                        .as = most_used_transit(*topo_, net::Region::India),
                        .added_ms = 130.0,
                        .start = util::MinuteTime::from_days(14),
                        .duration_minutes = util::kMinutesPerDay});
  const auto quartets = quartets_for(faults, eval_bucket());

  BlameItConfig cfg;
  const PassiveLocalizer plain{topo_, &learner, cfg};
  const auto reference = plain.localize(quartets, 14);
  ASSERT_FALSE(reference.empty());

  // A live registry on a multi-threaded localizer must leave the blame
  // output bit-identical: metrics observe, they never participate.
  obs::Registry registry;
  cfg.analytics_threads = 4;
  const PassiveLocalizer instrumented{topo_, &learner, cfg, &registry};
  EXPECT_EQ(instrumented.localize(quartets, 14), reference);

  const auto snap = registry.snapshot();
  for (const auto blame : kAllBlames) {
    std::uint64_t expected = 0;
    for (const auto& r : reference) expected += r.blame == blame;
    EXPECT_EQ(snap.counter_value(std::string{"passive.blame."} +
                                 std::string{to_string(blame)}),
              expected)
        << to_string(blame);
  }
  const auto* span = snap.histogram("passive.localize_ms");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, 1u);
}

TEST_F(PassiveTest, ReSteeredBlocksNeedUnshieldedCloudCorroboration) {
  // §13 re-steer rule: an anycast steer moves a set of /24s to a different
  // serving location, and their RTT jumps purely because the new location
  // is farther — no cloud fault anywhere. Churn-blind, those quartets
  // saturate the destination's cloud group and Algorithm 1 slanders the
  // Cloud; with the steer shield, Cloud blame needs corroboration from the
  // location's un-steered quartets.
  analysis::ExpectedRttLearner learner;
  warm(learner, 14);
  const sim::FaultInjector no_faults;
  auto quartets = quartets_for(no_faults, eval_bucket());
  const auto loc = topo_->locations_in(net::Region::Europe).front();

  std::vector<std::size_t> at_loc;
  for (std::size_t i = 0; i < quartets.size(); ++i) {
    if (quartets[i].key.location == loc &&
        quartets[i].key.device == net::DeviceClass::NonMobile) {
      at_loc.push_back(i);
    }
  }
  // Keep an un-steered healthy minority big enough to clear the min-quartet
  // gate on its own, while the steered majority still pushes the full-group
  // fraction past τ.
  constexpr std::size_t kKeepHealthy = 6;
  ASSERT_GT(at_loc.size(), kKeepHealthy + 30);
  SteerShield shield;
  for (std::size_t j = 0; j + kKeepHealthy < at_loc.size(); ++j) {
    auto& q = quartets[at_loc[j]];
    q.mean_rtt_ms += 120.0;  // destination-edge shift of the longer path
    q.bad = true;
    shield.insert(steer_shield_key(q.key.location, q.key.block));
  }

  const PassiveLocalizer localizer{topo_, &learner};

  // Churn-blind baseline: the steered quartets dominate the cloud group and
  // get blamed Cloud — the misattribution this rule exists to stop.
  const auto blind = localizer.localize(quartets, 14);
  int blind_cloud = 0;
  int blind_total = 0;
  for (const auto& r : blind) {
    if (r.quartet.key.location != loc ||
        r.quartet.key.device != net::DeviceClass::NonMobile) {
      continue;
    }
    ++blind_total;
    blind_cloud += r.blame == Blame::Cloud;
  }
  ASSERT_GT(blind_total, 10);
  EXPECT_GT(blind_cloud, blind_total * 9 / 10);

  // Shielded: the cloud check judges only the un-steered evidence (healthy),
  // so not one steered quartet may be blamed Cloud.
  const auto shielded = localizer.localize(quartets, 14, &shield);
  int shielded_cloud = 0;
  int shielded_total = 0;
  for (const auto& r : shielded) {
    if (r.quartet.key.location != loc) continue;
    ++shielded_total;
    shielded_cloud += r.blame == Blame::Cloud;
  }
  ASSERT_GT(shielded_total, 10);
  EXPECT_EQ(shielded_cloud, 0);

  // Corroboration restores Cloud blame: when the un-steered quartets go bad
  // too (a real destination-side fault), the shield must not mask it.
  for (std::size_t j = at_loc.size() - kKeepHealthy; j < at_loc.size(); ++j) {
    auto& q = quartets[at_loc[j]];
    q.mean_rtt_ms += 120.0;
    q.bad = true;
  }
  const auto corroborated = localizer.localize(quartets, 14, &shield);
  int corroborated_cloud = 0;
  for (const auto& r : corroborated) {
    corroborated_cloud +=
        r.quartet.key.location == loc && r.blame == Blame::Cloud;
  }
  EXPECT_GT(corroborated_cloud, blind_total * 9 / 10);
}

TEST_F(PassiveTest, InvalidConfigRejected) {
  analysis::ExpectedRttLearner learner;
  BlameItConfig bad;
  bad.tau = 0.0;
  EXPECT_THROW((PassiveLocalizer{topo_, &learner, bad}),
               std::invalid_argument);
  bad = {};
  bad.min_group_quartets = 0;
  EXPECT_THROW((PassiveLocalizer{topo_, &learner, bad}),
               std::invalid_argument);
  bad = {};
  bad.analytics_threads = -1;
  EXPECT_THROW((PassiveLocalizer{topo_, &learner, bad}),
               std::invalid_argument);
  EXPECT_THROW((PassiveLocalizer{nullptr, &learner}), std::invalid_argument);
  EXPECT_THROW((PassiveLocalizer{topo_, nullptr}), std::invalid_argument);
}

}  // namespace
}  // namespace blameit::core
