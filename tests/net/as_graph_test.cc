#include "net/as_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace blameit::net {
namespace {

// Small fixture: cloud buys from two regional transits T1, T2; both are
// customers of global G; eyeball E is a customer of T2; eyeball F is a
// customer of G only. T1 and T2 peer.
class AsGraphTest : public ::testing::Test {
 protected:
  AsGraphTest() : graph_(&reg_) {
    reg_.add(AsInfo{kCloud, AsType::Cloud, Region::UnitedStates, "cloud"});
    reg_.add(AsInfo{kT1, AsType::Transit, Region::UnitedStates, "t1"});
    reg_.add(AsInfo{kT2, AsType::Transit, Region::UnitedStates, "t2"});
    reg_.add(AsInfo{kG, AsType::Transit, Region::UnitedStates, "g"});
    reg_.add(AsInfo{kE, AsType::Eyeball, Region::UnitedStates, "e"});
    reg_.add(AsInfo{kF, AsType::Eyeball, Region::UnitedStates, "f"});
    graph_.add_link({kCloud, kT1, LinkKind::CustomerOf, 2.0});
    graph_.add_link({kCloud, kT2, LinkKind::CustomerOf, 3.0});
    graph_.add_link({kT1, kG, LinkKind::CustomerOf, 4.0});
    graph_.add_link({kT2, kG, LinkKind::CustomerOf, 5.0});
    graph_.add_link({kT1, kT2, LinkKind::Peer, 1.0});
    graph_.add_link({kE, kT2, LinkKind::CustomerOf, 6.0});
    graph_.add_link({kF, kG, LinkKind::CustomerOf, 7.0});
  }

  static constexpr AsId kCloud{1};
  static constexpr AsId kT1{2};
  static constexpr AsId kT2{3};
  static constexpr AsId kG{4};
  static constexpr AsId kE{5};
  static constexpr AsId kF{6};

  AsRegistry reg_;
  AsGraph graph_;
};

TEST_F(AsGraphTest, BestPathPrefersFewestHops) {
  const auto path = graph_.best_path(kCloud, kE);
  ASSERT_TRUE(path.has_value());
  // cloud -> T2 -> E is the 3-node path.
  EXPECT_EQ(*path, (AsPath{kCloud, kT2, kE}));
}

TEST_F(AsGraphTest, KPathsReturnsAlternatives) {
  const auto paths = graph_.k_paths(kCloud, kE, 5);
  ASSERT_GE(paths.size(), 2u);
  EXPECT_EQ(paths[0], (AsPath{kCloud, kT2, kE}));
  // The alternate via T1 peering: cloud -up-> T1 -peer-> T2 -down-> E.
  EXPECT_TRUE(std::find(paths.begin(), paths.end(),
                        AsPath{kCloud, kT1, kT2, kE}) != paths.end());
  // All returned paths must be simple and start/end correctly.
  for (const auto& p : paths) {
    EXPECT_EQ(p.front(), kCloud);
    EXPECT_EQ(p.back(), kE);
  }
}

TEST_F(AsGraphTest, ValleyFreeRejectsPeerThenUphill) {
  // Path cloud -> T1 -peer-> T2 -up-> G -down-> F would cross a peer link and
  // then ascend; it must NOT be returned. The only valid routes to F climb
  // to G directly.
  const auto paths = graph_.k_paths(kCloud, kF, 10);
  for (const auto& p : paths) {
    EXPECT_TRUE(std::find(p.begin(), p.end(), kG) != p.end());
    // After any T1->T2 peer step, G must not follow.
    for (std::size_t i = 0; i + 2 < p.size(); ++i) {
      const bool peer_step = (p[i] == kT1 && p[i + 1] == kT2) ||
                             (p[i] == kT2 && p[i + 1] == kT1);
      if (peer_step) {
        EXPECT_NE(p[i + 2], kG);
      }
    }
  }
  ASSERT_FALSE(paths.empty());
  // Shortest legal route is cloud -> T1/T2 -> G -> F (4 nodes).
  EXPECT_EQ(paths[0].size(), 4u);
}

TEST_F(AsGraphTest, PathLatencySumsLinks) {
  EXPECT_DOUBLE_EQ(graph_.path_latency(AsPath{kCloud, kT2, kE}), 9.0);
  EXPECT_DOUBLE_EQ(graph_.path_latency(AsPath{kCloud, kT1, kT2, kE}), 9.0);
}

TEST_F(AsGraphTest, PathLatencyThrowsOnMissingLink) {
  EXPECT_THROW((void)graph_.path_latency(AsPath{kCloud, kE}),
               std::invalid_argument);
}

TEST_F(AsGraphTest, LinkLatencyLookup) {
  EXPECT_DOUBLE_EQ(graph_.link_latency(kCloud, kT1).value(), 2.0);
  EXPECT_DOUBLE_EQ(graph_.link_latency(kT1, kCloud).value(), 2.0);
  EXPECT_FALSE(graph_.link_latency(kCloud, kE).has_value());
}

TEST_F(AsGraphTest, UnreachableReturnsEmpty) {
  reg_.add(AsInfo{AsId{99}, AsType::Eyeball, Region::Europe, "island"});
  EXPECT_TRUE(graph_.k_paths(kCloud, AsId{99}, 3).empty());
  EXPECT_FALSE(graph_.best_path(kCloud, AsId{99}).has_value());
}

TEST_F(AsGraphTest, InvalidLinksThrow) {
  EXPECT_THROW(graph_.add_link({kCloud, kCloud, LinkKind::Peer, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(graph_.add_link({kCloud, AsId{404}, LinkKind::Peer, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(graph_.add_link({kCloud, kT1, LinkKind::Peer, 1.0}),
               std::invalid_argument);  // duplicate
  EXPECT_THROW(graph_.add_link({kE, kF, LinkKind::Peer, -1.0}),
               std::invalid_argument);
}

TEST_F(AsGraphTest, KZeroAndSelfPathEmpty) {
  EXPECT_TRUE(graph_.k_paths(kCloud, kE, 0).empty());
  EXPECT_TRUE(graph_.k_paths(kCloud, kCloud, 3).empty());
}

TEST(AsGraphStandalone, NullRegistryThrows) {
  EXPECT_THROW(AsGraph{nullptr}, std::invalid_argument);
}

TEST_F(AsGraphTest, EyeballPathsMatchPerEyeballKPathsExactly) {
  // The all-eyeballs DFS must return the SAME paths in the SAME order as
  // the per-eyeball enumeration — including for an eyeball that is only
  // reachable through a peering entry and one hanging off the apex.
  reg_.add(AsInfo{AsId{7}, AsType::Eyeball, Region::UnitedStates, "peer-e"});
  graph_.add_link({AsId{7}, kT1, LinkKind::Peer, 2.5});  // peer entry only
  reg_.add(AsInfo{AsId{99}, AsType::Eyeball, Region::Europe, "island"});

  for (const std::size_t k : {std::size_t{1}, std::size_t{3},
                              std::size_t{16}}) {
    const auto all = graph_.eyeball_paths(kCloud, k);
    for (const AsId e : {kE, kF, AsId{7}, AsId{99}}) {
      const auto reference = graph_.k_paths(kCloud, e, k);
      const auto it = all.find(e);
      if (reference.empty()) {
        EXPECT_TRUE(it == all.end() || it->second.empty())
            << "e=" << e.value << " k=" << k;
        continue;
      }
      ASSERT_TRUE(it != all.end()) << "e=" << e.value << " k=" << k;
      EXPECT_EQ(it->second, reference) << "e=" << e.value << " k=" << k;
    }
  }
}

TEST_F(AsGraphTest, EyeballPathsHonorsPhaseOnPeerEntries) {
  // An eyeball peered with T2 can be entered from an Ascending prefix
  // (cloud -> T2) but NOT from a Descending one (cloud -> T1 -> G -> T2
  // descends into T2, and a descending walk cannot cross a peer link).
  reg_.add(AsInfo{AsId{8}, AsType::Eyeball, Region::UnitedStates, "p2"});
  graph_.add_link({AsId{8}, kT2, LinkKind::Peer, 1.0});
  const auto all = graph_.eyeball_paths(kCloud, 32);
  const auto reference = graph_.k_paths(kCloud, AsId{8}, 32);
  const auto it = all.find(AsId{8});
  ASSERT_TRUE(it != all.end());
  EXPECT_EQ(it->second, reference);
  for (const auto& path : it->second) {
    // Any path ending ...G -> T2 -> 8 would be a valley; none may appear.
    ASSERT_GE(path.size(), 3u);
    EXPECT_FALSE(path[path.size() - 3] == kG &&
                 path[path.size() - 2] == kT2);
  }
}

}  // namespace
}  // namespace blameit::net
