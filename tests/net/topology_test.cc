#include "net/topology.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <unordered_set>

namespace blameit::net {
namespace {

// One shared default topology: generation is the expensive part, so the suite
// builds it once and asserts many invariants against it.
class TopologyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { topo_ = make_topology().release(); }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  static const Topology* topo_;
};

const Topology* TopologyTest::topo_ = nullptr;

TEST_F(TopologyTest, ExpectedEntityCounts) {
  const auto& cfg = topo_->config();
  EXPECT_EQ(topo_->locations().size(),
            kAllRegions.size() *
                static_cast<std::size_t>(cfg.locations_per_region));
  EXPECT_EQ(topo_->metros().size(),
            kAllRegions.size() *
                static_cast<std::size_t>(cfg.metros_per_region));
  EXPECT_EQ(topo_->blocks().size(),
            kAllRegions.size() *
                static_cast<std::size_t>(cfg.eyeballs_per_region) *
                static_cast<std::size_t>(cfg.blocks_per_eyeball));
  // 1 cloud + per-region transits + per-region eyeballs.
  EXPECT_EQ(topo_->registry().size(),
            1 + kAllRegions.size() *
                    static_cast<std::size_t>(cfg.transits_per_region +
                                             cfg.eyeballs_per_region));
}

TEST_F(TopologyTest, EveryRegionHasLocations) {
  for (const Region r : kAllRegions) {
    EXPECT_FALSE(topo_->locations_in(r).empty()) << to_string(r);
  }
}

TEST_F(TopologyTest, EveryLocationHasRoutesToAllPrefixes) {
  std::unordered_set<std::uint64_t> prefixes;
  for (const auto& block : topo_->blocks()) {
    prefixes.insert((std::uint64_t{block.announced.network} << 8) |
                    block.announced.length);
  }
  for (const auto& loc : topo_->locations()) {
    EXPECT_EQ(topo_->routing().prefixes_at(loc.id).size(), prefixes.size())
        << loc.name;
  }
}

TEST_F(TopologyTest, RoutesStartAtCloudAndEndAtClientAs) {
  const util::MinuteTime t0{0};
  for (const auto& loc : topo_->locations()) {
    for (const auto& block : topo_->blocks()) {
      const auto* route = topo_->routing().route_for(loc.id, block.block, t0);
      ASSERT_NE(route, nullptr) << loc.name;
      EXPECT_EQ(route->cloud_as(), topo_->cloud_as());
      EXPECT_EQ(route->client_as(), block.client_as);
      EXPECT_FALSE(route->middle_ases().empty());
    }
  }
}

TEST_F(TopologyTest, FirstHopRespectsEgressPeers) {
  const util::MinuteTime t0{0};
  for (const auto& loc : topo_->locations()) {
    for (const auto& block : topo_->blocks()) {
      const auto* route = topo_->routing().route_for(loc.id, block.block, t0);
      ASSERT_NE(route, nullptr);
      const AsId first_hop = route->full_path[1];
      EXPECT_TRUE(std::find(loc.egress_peers.begin(), loc.egress_peers.end(),
                            first_hop) != loc.egress_peers.end())
          << loc.name << " -> " << first_hop.to_string();
    }
  }
}

TEST_F(TopologyTest, AlternatesIncludeInstalledRoute) {
  const util::MinuteTime t0{0};
  for (const auto& loc : topo_->locations()) {
    for (const auto& prefix : topo_->routing().prefixes_at(loc.id)) {
      const auto& alts = topo_->alternates(loc.id, prefix);
      ASSERT_FALSE(alts.empty());
      // The installed route is the first alternate.
      const auto* route = topo_->routing().route_for(
          loc.id, Slash24{prefix.network >> 8}, t0);
      ASSERT_NE(route, nullptr);
      EXPECT_EQ(alts.front(), route->full_path);
    }
  }
}

TEST_F(TopologyTest, BlocksHaveValidGeography) {
  for (const auto& block : topo_->blocks()) {
    const auto& as_info = topo_->registry().at(block.client_as);
    EXPECT_EQ(as_info.type, AsType::Eyeball);
    EXPECT_EQ(as_info.region, block.region);
    EXPECT_TRUE(block.announced.contains(block.block));
    EXPECT_GT(block.access_latency_ms, 0.0);
    EXPECT_GT(block.activity_weight, 0.0);
    EXPECT_GE(block.enterprise_fraction, 0.0);
    EXPECT_LE(block.enterprise_fraction, 1.0);
  }
}

TEST_F(TopologyTest, HomeLocationsAreInRegion) {
  for (const auto& block : topo_->blocks()) {
    const auto& homes = topo_->home_locations(block.block);
    ASSERT_FALSE(homes.empty());
    for (const auto id : homes) {
      EXPECT_EQ(topo_->location(id).region, block.region);
    }
  }
}

TEST_F(TopologyTest, PrimariesAreBalancedAcrossRegionEdges) {
  // Rotation by block index must spread primary locations within each region.
  std::unordered_map<std::uint16_t, int> primary_counts;
  for (const auto& block : topo_->blocks()) {
    ++primary_counts[topo_->home_locations(block.block).front().value];
  }
  for (const auto& loc : topo_->locations()) {
    EXPECT_GT(primary_counts[loc.id.value], 0) << loc.name;
  }
}

TEST_F(TopologyTest, FindBlockRoundTrip) {
  for (const auto& block : topo_->blocks()) {
    const auto* found = topo_->find_block(block.block);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->client_as, block.client_as);
  }
  EXPECT_EQ(topo_->find_block(Slash24{0xFFFFFF}), nullptr);
}

TEST_F(TopologyTest, MiddleSegmentsShareAcrossClientAses) {
  // Fig 6 requires "BGP path" grouping to be coarser than per-prefix
  // grouping: at least one middle segment must serve multiple client ASes.
  const util::MinuteTime t0{0};
  std::unordered_map<std::uint32_t, std::set<std::uint32_t>> middle_to_ases;
  const auto loc = topo_->locations().front().id;
  for (const auto& block : topo_->blocks()) {
    const auto* route = topo_->routing().route_for(loc, block.block, t0);
    ASSERT_NE(route, nullptr);
    middle_to_ases[route->middle.value].insert(block.client_as.value);
  }
  bool some_shared = false;
  for (const auto& [mid, ases] : middle_to_ases) {
    if (ases.size() > 1) some_shared = true;
  }
  EXPECT_TRUE(some_shared);
}

TEST_F(TopologyTest, DeterministicForSameSeed) {
  const auto again = make_topology();
  ASSERT_EQ(again->blocks().size(), topo_->blocks().size());
  for (std::size_t i = 0; i < again->blocks().size(); ++i) {
    EXPECT_EQ(again->blocks()[i].block, topo_->blocks()[i].block);
    EXPECT_DOUBLE_EQ(again->blocks()[i].access_latency_ms,
                     topo_->blocks()[i].access_latency_ms);
  }
  const util::MinuteTime t0{0};
  for (const auto& loc : topo_->locations()) {
    for (const auto& block : topo_->blocks()) {
      EXPECT_EQ(
          again->routing().route_for(loc.id, block.block, t0)->full_path,
          topo_->routing().route_for(loc.id, block.block, t0)->full_path);
    }
  }
}

TEST(TopologyConfigValidation, RejectsBadSizes) {
  TopologyConfig bad;
  bad.locations_per_region = 0;
  EXPECT_THROW(make_topology(bad), std::invalid_argument);
  bad = {};
  bad.blocks_per_prefix = 3;  // not a power of two
  EXPECT_THROW(make_topology(bad), std::invalid_argument);
  bad = {};
  bad.transits_per_region = 1;  // need at least gateway + one regional
  EXPECT_THROW(make_topology(bad), std::invalid_argument);
}

TEST(TopologyConfigValidation, SmallConfigWorks) {
  TopologyConfig small;
  small.locations_per_region = 1;
  small.transits_per_region = 2;
  small.eyeballs_per_region = 2;
  small.metros_per_region = 1;
  small.blocks_per_eyeball = 2;
  small.blocks_per_prefix = 2;
  const auto topo = make_topology(small);
  EXPECT_EQ(topo->locations().size(), kAllRegions.size());
  EXPECT_EQ(topo->blocks().size(), kAllRegions.size() * 4);
}

TEST(TopologyConfigValidation, DifferentSeedsChangeLatencies) {
  TopologyConfig a;
  a.seed = 1;
  TopologyConfig b;
  b.seed = 2;
  const auto ta = make_topology(a);
  const auto tb = make_topology(b);
  bool any_difference = false;
  for (std::size_t i = 0; i < ta->blocks().size(); ++i) {
    if (ta->blocks()[i].access_latency_ms != tb->blocks()[i].access_latency_ms) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace blameit::net
