#include "net/asn.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace blameit::net {
namespace {

TEST(AsRegistry, AddAndLookup) {
  AsRegistry reg;
  reg.add(AsInfo{AsId{100}, AsType::Transit, Region::Europe, "T1"});
  ASSERT_TRUE(reg.contains(AsId{100}));
  EXPECT_EQ(reg.at(AsId{100}).name, "T1");
  EXPECT_EQ(reg.at(AsId{100}).type, AsType::Transit);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(AsRegistry, DuplicateThrows) {
  AsRegistry reg;
  reg.add(AsInfo{AsId{1}, AsType::Cloud, Region::UnitedStates, "c"});
  EXPECT_THROW(
      reg.add(AsInfo{AsId{1}, AsType::Transit, Region::Europe, "dup"}),
      std::invalid_argument);
}

TEST(AsRegistry, MissingLookup) {
  AsRegistry reg;
  EXPECT_EQ(reg.find(AsId{9}), nullptr);
  EXPECT_THROW((void)reg.at(AsId{9}), std::out_of_range);
}

TEST(AsRegistry, IdsOfTypeFilters) {
  AsRegistry reg;
  reg.add(AsInfo{AsId{1}, AsType::Cloud, Region::UnitedStates, "c"});
  reg.add(AsInfo{AsId{2}, AsType::Eyeball, Region::Europe, "e1"});
  reg.add(AsInfo{AsId{3}, AsType::Eyeball, Region::Europe, "e2"});
  const auto eyeballs = reg.ids_of_type(AsType::Eyeball);
  ASSERT_EQ(eyeballs.size(), 2u);
  EXPECT_EQ(eyeballs[0], AsId{2});
  EXPECT_EQ(eyeballs[1], AsId{3});
}

TEST(AsId, Formatting) {
  EXPECT_EQ(AsId{8075}.to_string(), "AS8075");
}

TEST(Geo, RegionNamesAndProfiles) {
  for (const Region r : kAllRegions) {
    EXPECT_FALSE(to_string(r).empty());
    const auto& profile = region_profile(r);
    EXPECT_EQ(profile.region, r);
    EXPECT_GT(profile.rtt_target_ms, 0.0);
    EXPECT_GT(profile.base_rtt_ms, 0.0);
    // Targets must leave headroom above the typical good RTT, or everything
    // would classify as bad.
    EXPECT_GT(profile.rtt_target_ms, profile.base_rtt_ms);
  }
}

TEST(Geo, UsaTargetIsAggressive) {
  // The paper attributes the USA's high bad-quartet share to aggressive
  // targets: the US threshold/base ratio must be the tightest of all regions.
  const auto& us = region_profile(Region::UnitedStates);
  const double us_headroom = us.rtt_target_ms / us.base_rtt_ms;
  for (const Region r : kAllRegions) {
    if (r == Region::UnitedStates) continue;
    const auto& other = region_profile(r);
    EXPECT_LE(us_headroom, other.rtt_target_ms / other.base_rtt_ms)
        << to_string(r);
  }
}

}  // namespace
}  // namespace blameit::net
