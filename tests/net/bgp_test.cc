#include "net/bgp.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace blameit::net {
namespace {

using util::MinuteTime;

AsPath path3(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  return AsPath{AsId{a}, AsId{b}, AsId{c}};
}

TEST(MiddleSegmentInterner, InternIsIdempotent) {
  MiddleSegmentInterner interner;
  const AsPath mid{AsId{10}, AsId{20}};
  const auto id1 = interner.intern(mid);
  const auto id2 = interner.intern(mid);
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(interner.size(), 1u);
  EXPECT_EQ(interner.ases(id1), mid);
}

TEST(MiddleSegmentInterner, DistinctSequencesGetDistinctIds) {
  MiddleSegmentInterner interner;
  const auto a = interner.intern(AsPath{AsId{1}, AsId{2}});
  const auto b = interner.intern(AsPath{AsId{2}, AsId{1}});  // order matters
  const auto c = interner.intern(AsPath{AsId{1}});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(MiddleSegmentInterner, EmptyMiddleIsValid) {
  // Direct cloud-to-client-AS paths (no middle ASes) occur when the cloud
  // peers directly with the eyeball.
  MiddleSegmentInterner interner;
  const auto id = interner.intern(AsPath{});
  EXPECT_TRUE(interner.ases(id).empty());
}

TEST(MiddleSegmentInterner, FindDoesNotCreate) {
  MiddleSegmentInterner interner;
  EXPECT_FALSE(interner.find(AsPath{AsId{5}}).has_value());
  const auto id = interner.intern(AsPath{AsId{5}});
  ASSERT_TRUE(interner.find(AsPath{AsId{5}}).has_value());
  EXPECT_EQ(*interner.find(AsPath{AsId{5}}), id);
}

TEST(MiddleSegmentInterner, UnknownIdThrows) {
  MiddleSegmentInterner interner;
  EXPECT_THROW((void)interner.ases(MiddleSegmentId{3}), std::out_of_range);
}

TEST(RouteTimeline, RouteAtPicksLatestChange) {
  MiddleSegmentInterner interner;
  RouteTimeline timeline;
  RouteEntry r1{.announced = *Prefix::parse("10.0.0.0/22"),
                .full_path = path3(1, 2, 3),
                .middle = interner.intern(AsPath{AsId{2}})};
  RouteEntry r2 = r1;
  r2.full_path = path3(1, 4, 3);
  r2.middle = interner.intern(AsPath{AsId{4}});

  timeline.set_route(MinuteTime{0}, r1);
  timeline.set_route(MinuteTime{100}, r2);

  EXPECT_EQ(timeline.route_at(MinuteTime{0})->middle, r1.middle);
  EXPECT_EQ(timeline.route_at(MinuteTime{99})->middle, r1.middle);
  EXPECT_EQ(timeline.route_at(MinuteTime{100})->middle, r2.middle);
  EXPECT_EQ(timeline.route_at(MinuteTime{5000})->middle, r2.middle);
  EXPECT_EQ(timeline.route_at(MinuteTime{-1}), nullptr);
}

TEST(RouteTimeline, OutOfOrderChangeThrows) {
  MiddleSegmentInterner interner;
  RouteTimeline timeline;
  RouteEntry r{.announced = *Prefix::parse("10.0.0.0/22"),
               .full_path = path3(1, 2, 3),
               .middle = interner.intern(AsPath{AsId{2}})};
  timeline.set_route(MinuteTime{50}, r);
  EXPECT_THROW(timeline.set_route(MinuteTime{49}, r), std::invalid_argument);
}

TEST(RouteEntry, MiddleAsesExcludesEndpoints) {
  MiddleSegmentInterner interner;
  RouteEntry r{.announced = *Prefix::parse("10.0.0.0/22"),
               .full_path = AsPath{AsId{1}, AsId{2}, AsId{3}, AsId{4}},
               .middle = interner.intern(AsPath{AsId{2}, AsId{3}})};
  const auto mid = r.middle_ases();
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0], AsId{2});
  EXPECT_EQ(mid[1], AsId{3});
  EXPECT_EQ(r.cloud_as(), AsId{1});
  EXPECT_EQ(r.client_as(), AsId{4});
}

class RoutingStateTest : public ::testing::Test {
 protected:
  RoutingStateTest() : state_(&interner_) {}

  MiddleSegmentInterner interner_;
  RoutingState state_;
  const CloudLocationId loc_{CloudLocationId{1}};
  const Prefix prefix_ = *Prefix::parse("10.1.4.0/22");
};

TEST_F(RoutingStateTest, AnnounceThenRouteFor) {
  state_.announce(loc_, prefix_, path3(1, 2, 3));
  const auto client = Slash24::of(*Ipv4Addr::parse("10.1.5.0"));
  const auto* route = state_.route_for(loc_, client, MinuteTime{10});
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->announced, prefix_);
  EXPECT_EQ(route->client_as(), AsId{3});
}

TEST_F(RoutingStateTest, RouteForMissesOutsidePrefix) {
  state_.announce(loc_, prefix_, path3(1, 2, 3));
  const auto outside = Slash24::of(*Ipv4Addr::parse("10.1.8.0"));
  EXPECT_EQ(state_.route_for(loc_, outside, MinuteTime{10}), nullptr);
}

TEST_F(RoutingStateTest, LongestPrefixMatchWins) {
  state_.announce(loc_, *Prefix::parse("10.1.0.0/16"), path3(1, 9, 3));
  state_.announce(loc_, prefix_, path3(1, 2, 3));
  const auto client = Slash24::of(*Ipv4Addr::parse("10.1.5.0"));
  const auto* route = state_.route_for(loc_, client, MinuteTime{10});
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->announced.length, 22);
  const auto other = Slash24::of(*Ipv4Addr::parse("10.1.200.0"));
  const auto* fallback = state_.route_for(loc_, other, MinuteTime{10});
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(fallback->announced.length, 16);
}

TEST_F(RoutingStateTest, ChangePathRecordsChurnAndUpdatesRoute) {
  state_.announce(loc_, prefix_, path3(1, 2, 3));
  state_.change_path(loc_, prefix_, MinuteTime{500}, path3(1, 7, 3));

  const auto client = Slash24::of(*Ipv4Addr::parse("10.1.4.0"));
  EXPECT_EQ(state_.route_for(loc_, client, MinuteTime{499})->full_path[1],
            AsId{2});
  EXPECT_EQ(state_.route_for(loc_, client, MinuteTime{500})->full_path[1],
            AsId{7});

  const auto churn = state_.churn_between(MinuteTime{1}, MinuteTime{1000});
  ASSERT_EQ(churn.size(), 1u);
  EXPECT_EQ(churn[0].kind, ChurnKind::PathChange);
  ASSERT_TRUE(churn[0].old_route.has_value());
  ASSERT_TRUE(churn[0].new_route.has_value());
  EXPECT_EQ(churn[0].old_route->full_path[1], AsId{2});
  EXPECT_EQ(churn[0].new_route->full_path[1], AsId{7});
}

TEST_F(RoutingStateTest, AnnounceEventsAtTimeZero) {
  state_.announce(loc_, prefix_, path3(1, 2, 3));
  const auto churn = state_.churn_between(MinuteTime{0}, MinuteTime{1});
  ASSERT_EQ(churn.size(), 1u);
  EXPECT_EQ(churn[0].kind, ChurnKind::Announce);
}

TEST_F(RoutingStateTest, DoubleAnnounceThrows) {
  state_.announce(loc_, prefix_, path3(1, 2, 3));
  EXPECT_THROW(state_.announce(loc_, prefix_, path3(1, 2, 3)),
               std::invalid_argument);
}

TEST_F(RoutingStateTest, ChangeOnUnannouncedThrows) {
  EXPECT_THROW(
      state_.change_path(loc_, prefix_, MinuteTime{5}, path3(1, 2, 3)),
      std::invalid_argument);
}

TEST_F(RoutingStateTest, TooShortPathThrows) {
  EXPECT_THROW(state_.announce(loc_, prefix_, AsPath{AsId{1}}),
               std::invalid_argument);
}

TEST_F(RoutingStateTest, PerLocationIsolation) {
  const CloudLocationId other{CloudLocationId{2}};
  state_.announce(loc_, prefix_, path3(1, 2, 3));
  const auto client = Slash24::of(*Ipv4Addr::parse("10.1.4.0"));
  EXPECT_EQ(state_.route_for(other, client, MinuteTime{10}), nullptr);
  EXPECT_TRUE(state_.prefixes_at(other).empty());
  EXPECT_EQ(state_.prefixes_at(loc_).size(), 1u);
}

}  // namespace
}  // namespace blameit::net
