#include "net/ipv4.h"

#include <gtest/gtest.h>

namespace blameit::net {
namespace {

TEST(Ipv4Addr, ParseValid) {
  const auto a = Ipv4Addr::parse("192.168.1.2");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value, 0xC0A80102u);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 ").has_value());
}

TEST(Ipv4Addr, RoundTrip) {
  for (const char* s : {"0.0.0.0", "255.255.255.255", "10.1.2.3"}) {
    const auto a = Ipv4Addr::parse(s);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->to_string(), s);
  }
}

TEST(Ipv4Addr, FromOctets) {
  EXPECT_EQ(Ipv4Addr::from_octets(1, 2, 3, 4).to_string(), "1.2.3.4");
}

TEST(Slash24, OfAddressDropsLastOctet) {
  const auto a = *Ipv4Addr::parse("10.5.7.200");
  const auto b = Slash24::of(a);
  EXPECT_EQ(b.base().to_string(), "10.5.7.0");
  EXPECT_EQ(b.host(9).to_string(), "10.5.7.9");
  EXPECT_EQ(b.to_string(), "10.5.7.0/24");
}

TEST(Slash24, SameBlockForAllHosts) {
  const auto b = Slash24::of(*Ipv4Addr::parse("10.5.7.0"));
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(Slash24::of(b.host(static_cast<std::uint8_t>(i))), b);
  }
}

TEST(Prefix, OfMasksHostBits) {
  const auto p = Prefix::of(*Ipv4Addr::parse("10.5.7.200"), 22);
  EXPECT_EQ(p.to_string(), "10.5.4.0/22");
}

TEST(Prefix, ParseAndContains) {
  const auto p = Prefix::parse("10.0.0.0/8");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->contains(*Ipv4Addr::parse("10.255.1.2")));
  EXPECT_FALSE(p->contains(*Ipv4Addr::parse("11.0.0.0")));
}

TEST(Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0/8").has_value());
}

TEST(Prefix, ContainsSlash24) {
  const auto p = *Prefix::parse("10.1.4.0/22");
  EXPECT_TRUE(p.contains(Slash24::of(*Ipv4Addr::parse("10.1.5.0"))));
  EXPECT_FALSE(p.contains(Slash24::of(*Ipv4Addr::parse("10.1.8.0"))));
  // A /25 can never cover a whole /24.
  const auto sub = *Prefix::parse("10.1.5.0/25");
  EXPECT_FALSE(sub.contains(Slash24::of(*Ipv4Addr::parse("10.1.5.0"))));
}

TEST(Prefix, Slash24Count) {
  EXPECT_EQ(Prefix::parse("10.0.0.0/24")->slash24_count(), 1u);
  EXPECT_EQ(Prefix::parse("10.0.0.0/22")->slash24_count(), 4u);
  EXPECT_EQ(Prefix::parse("10.0.0.0/16")->slash24_count(), 256u);
  EXPECT_EQ(Prefix::parse("10.0.0.0/25")->slash24_count(), 1u);
}

TEST(Prefix, ZeroLengthContainsEverything) {
  const auto p = *Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(p.contains(*Ipv4Addr::parse("255.255.255.255")));
  EXPECT_TRUE(p.contains(*Ipv4Addr::parse("0.0.0.1")));
}

}  // namespace
}  // namespace blameit::net
