#include "svc/http.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

namespace blameit::svc {
namespace {

// ---------------------------------------------------------------------------
// Parser unit tests (no sockets).
// ---------------------------------------------------------------------------

TEST(HttpParseTest, UrlDecode) {
  std::string out;
  EXPECT_TRUE(url_decode("/v1/verdict", out, false));
  EXPECT_EQ(out, "/v1/verdict");
  EXPECT_TRUE(url_decode("a%20b%2Fc", out, false));
  EXPECT_EQ(out, "a b/c");
  EXPECT_TRUE(url_decode("a+b", out, true));
  EXPECT_EQ(out, "a b");
  EXPECT_TRUE(url_decode("a+b", out, false));
  EXPECT_EQ(out, "a+b");  // '+' is literal outside query values
  EXPECT_FALSE(url_decode("bad%2", out, false));   // truncated escape
  EXPECT_FALSE(url_decode("bad%zz", out, false));  // non-hex escape
}

TEST(HttpParseTest, ParsesRequestLineQueryAndHeaders) {
  HttpRequest request;
  std::size_t head = 0, body = 0;
  const std::string raw =
      "GET /v1/verdict?client=10.0.0.1&cloud=edge-3&flag HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "X-Trace: abc\r\n"
      "\r\n";
  ASSERT_EQ(parse_request_head(raw, {}, request, head, body),
            ParseStatus::Ok);
  EXPECT_EQ(head, raw.size());
  EXPECT_EQ(body, 0u);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/v1/verdict");
  ASSERT_NE(request.query_param("client"), nullptr);
  EXPECT_EQ(*request.query_param("client"), "10.0.0.1");
  ASSERT_NE(request.query_param("cloud"), nullptr);
  EXPECT_EQ(*request.query_param("cloud"), "edge-3");
  ASSERT_NE(request.query_param("flag"), nullptr);
  EXPECT_EQ(*request.query_param("flag"), "");
  ASSERT_NE(request.header("host"), nullptr);  // case-insensitive
  EXPECT_EQ(*request.header("HOST"), "localhost");
  EXPECT_TRUE(request.keep_alive);
}

TEST(HttpParseTest, NeedMoreUntilBlankLine) {
  HttpRequest request;
  std::size_t head = 0, body = 0;
  EXPECT_EQ(parse_request_head("GET / HTTP/1.1\r\nHost: x\r\n", {}, request,
                               head, body),
            ParseStatus::NeedMore);
  EXPECT_EQ(parse_request_head("", {}, request, head, body),
            ParseStatus::NeedMore);
}

TEST(HttpParseTest, MalformedInputsAreBadRequests) {
  HttpRequest request;
  std::size_t head = 0, body = 0;
  const HttpLimits limits;
  for (const std::string_view raw : {
           "GARBAGE\r\n\r\n",                         // no spaces
           "GET /\r\n\r\n",                           // missing version
           "GET / SMTP/1.0\r\n\r\n",                  // wrong protocol
           "GET / HTTP/2.0\r\n\r\n",                  // unsupported version
           " / HTTP/1.1\r\n\r\n",                     // empty method
           "GET relative HTTP/1.1\r\n\r\n",           // target not absolute
           "GET /%zz HTTP/1.1\r\n\r\n",               // bad path escape
           "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",   // header, no colon
           "GET / HTTP/1.1\r\n: empty\r\n\r\n",       // empty header name
           "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",   // space in name
           "GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n",
           "GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
           "GET / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
           "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
       }) {
    EXPECT_EQ(parse_request_head(raw, limits, request, head, body),
              ParseStatus::BadRequest)
        << raw;
  }
}

TEST(HttpParseTest, EnforcesLimits) {
  HttpRequest request;
  std::size_t head = 0, body = 0;
  HttpLimits limits;
  limits.max_head_bytes = 64;
  limits.max_body_bytes = 10;
  limits.max_headers = 2;

  // A head that can no longer fit is rejected even before the blank line.
  const std::string huge = "GET /" + std::string(100, 'a') + " HTTP/1.1\r\n";
  EXPECT_EQ(parse_request_head(huge, limits, request, head, body),
            ParseStatus::HeadTooLarge);

  EXPECT_EQ(parse_request_head(
                "GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n", limits,
                request, head, body),
            ParseStatus::HeadTooLarge);

  EXPECT_EQ(parse_request_head("GET / HTTP/1.1\r\nContent-Length: 11\r\n\r\n",
                               limits, request, head, body),
            ParseStatus::BodyTooLarge);
}

TEST(HttpParseTest, ConnectionSemantics) {
  HttpRequest request;
  std::size_t head = 0, body = 0;
  ASSERT_EQ(parse_request_head("GET / HTTP/1.0\r\n\r\n", {}, request, head,
                               body),
            ParseStatus::Ok);
  EXPECT_FALSE(request.keep_alive);  // 1.0 defaults to close
  ASSERT_EQ(parse_request_head(
                "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", {},
                request, head, body),
            ParseStatus::Ok);
  EXPECT_TRUE(request.keep_alive);
  ASSERT_EQ(parse_request_head(
                "GET / HTTP/1.1\r\nConnection: close\r\n\r\n", {}, request,
                head, body),
            ParseStatus::Ok);
  EXPECT_FALSE(request.keep_alive);
}

TEST(HttpParseTest, RenderResponse) {
  const auto wire =
      render_response(HttpResponse::json(200, R"({"ok":true})"), true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n\r\n{\"ok\":true}"));
  const auto closed = render_response(HttpResponse::text(404, ""), false);
  EXPECT_NE(closed.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(closed.find("Connection: close\r\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live-socket tests against a real server.
// ---------------------------------------------------------------------------

/// Minimal blocking test client for one connection to 127.0.0.1:port.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }

  void send_all(std::string_view data) const {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const auto rc =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(rc, 0);
      sent += static_cast<std::size_t>(rc);
    }
  }
  void half_close() const { ::shutdown(fd_, SHUT_WR); }

  /// Reads exactly one response (headers + Content-Length body).
  [[nodiscard]] std::string read_response() {
    while (buffer_.find("\r\n\r\n") == std::string::npos) {
      if (!fill()) return std::exchange(buffer_, {});
    }
    const auto head_end = buffer_.find("\r\n\r\n") + 4;
    const auto cl_pos = buffer_.find("Content-Length: ");
    std::size_t body = 0;
    if (cl_pos != std::string::npos && cl_pos < head_end) {
      body = std::stoul(buffer_.substr(cl_pos + 16));
    }
    while (buffer_.size() < head_end + body) {
      if (!fill()) break;
    }
    std::string response = buffer_.substr(0, head_end + body);
    buffer_.erase(0, head_end + body);
    return response;
  }

  /// Reads until the server closes the connection.
  [[nodiscard]] std::string read_to_eof() {
    while (fill()) {
    }
    return std::exchange(buffer_, {});
  }

 private:
  bool fill() {
    char chunk[4096];
    const auto rc = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (rc <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(rc));
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HttpServerConfig config;
    config.workers = 2;
    config.limits.max_head_bytes = 1024;
    config.limits.max_body_bytes = 2048;
    config.limits.read_timeout_ms = 60000;  // tests drive I/O explicitly
    server_ = std::make_unique<HttpServer>(
        [](const HttpRequest& request) {
          if (request.path == "/boom") throw std::runtime_error{"boom"};
          std::string body = "path=" + request.path;
          if (const auto* q = request.query_param("q")) body += " q=" + *q;
          if (!request.body.empty()) {
            body += " body_bytes=" + std::to_string(request.body.size());
          }
          return HttpResponse::text(200, std::move(body));
        },
        config);
    ASSERT_TRUE(server_->start());
    ASSERT_NE(server_->port(), 0);
  }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, ServesSimpleGet) {
  TestClient client{server_->port()};
  ASSERT_TRUE(client.connected());
  client.send_all("GET /hello?q=a%20b HTTP/1.1\r\nHost: x\r\n\r\n");
  const auto response = client.read_response();
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("path=/hello q=a b"), std::string::npos);
  EXPECT_EQ(server_->requests_served(), 1u);
}

TEST_F(HttpServerTest, KeepAliveServesPipelinedRequests) {
  TestClient client{server_->port()};
  ASSERT_TRUE(client.connected());
  // Three requests in one write; responses must come back in order on the
  // same connection.
  client.send_all(
      "GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /b HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /c HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_NE(client.read_response().find("path=/a"), std::string::npos);
  EXPECT_NE(client.read_response().find("path=/b"), std::string::npos);
  const auto last = client.read_response();
  EXPECT_NE(last.find("path=/c"), std::string::npos);
  EXPECT_NE(last.find("Connection: close"), std::string::npos);
  EXPECT_EQ(server_->requests_served(), 3u);
  EXPECT_EQ(server_->connections_accepted(), 1u);
}

TEST_F(HttpServerTest, PostBodyIsDelivered) {
  TestClient client{server_->port()};
  ASSERT_TRUE(client.connected());
  client.send_all(
      "POST /submit HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello");
  const auto response = client.read_response();
  EXPECT_NE(response.find("body_bytes=5"), std::string::npos);
}

TEST_F(HttpServerTest, MalformedRequestLineGets400) {
  TestClient client{server_->port()};
  ASSERT_TRUE(client.connected());
  client.send_all("NOT A VALID REQUEST LINE AT ALL\r\n\r\n");
  const auto response = client.read_to_eof();
  EXPECT_NE(response.find("HTTP/1.1 400 Bad Request"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
}

TEST_F(HttpServerTest, OversizedHeadGets431) {
  TestClient client{server_->port()};
  ASSERT_TRUE(client.connected());
  client.send_all("GET / HTTP/1.1\r\nX-Big: " + std::string(2000, 'a') +
                  "\r\n\r\n");
  EXPECT_NE(client.read_to_eof().find("HTTP/1.1 431 "), std::string::npos);
}

TEST_F(HttpServerTest, OversizedBodyGets413) {
  TestClient client{server_->port()};
  ASSERT_TRUE(client.connected());
  client.send_all("POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n");
  EXPECT_NE(client.read_to_eof().find("HTTP/1.1 413 "), std::string::npos);
}

TEST_F(HttpServerTest, TruncatedBodyGets400) {
  TestClient client{server_->port()};
  ASSERT_TRUE(client.connected());
  client.send_all("POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly this");
  client.half_close();  // peer gives up mid-body but still reads
  EXPECT_NE(client.read_to_eof().find("HTTP/1.1 400 "), std::string::npos);
}

TEST_F(HttpServerTest, TruncatedHeadGets400) {
  TestClient client{server_->port()};
  ASSERT_TRUE(client.connected());
  client.send_all("GET / HTTP/1.1\r\nHost: half");
  client.half_close();
  EXPECT_NE(client.read_to_eof().find("HTTP/1.1 400 "), std::string::npos);
}

TEST_F(HttpServerTest, HandlerExceptionsBecome500) {
  TestClient client{server_->port()};
  ASSERT_TRUE(client.connected());
  client.send_all("GET /boom HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(client.read_response().find("HTTP/1.1 500 "), std::string::npos);
}

TEST_F(HttpServerTest, ConcurrentClients) {
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 20;
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      TestClient client{server_->port()};
      ASSERT_TRUE(client.connected());
      for (int i = 0; i < kRequestsEach; ++i) {
        client.send_all("GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
        EXPECT_NE(client.read_response().find("path=/ping"),
                  std::string::npos);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(server_->requests_served(),
            static_cast<std::uint64_t>(kClients) * kRequestsEach);
}

TEST_F(HttpServerTest, StopDrainsCleanly) {
  TestClient idle{server_->port()};  // connected but never writes
  ASSERT_TRUE(idle.connected());
  TestClient active{server_->port()};
  ASSERT_TRUE(active.connected());
  active.send_all("GET /x HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(active.read_response().find("200 OK"), std::string::npos);
  server_->stop();  // must not hang on the idle keep-alive connection
  EXPECT_FALSE(server_->running());
  // Idempotent; restartable server object is not required, but a second
  // stop must be harmless.
  server_->stop();
}

TEST(HttpServerLifecycleTest, EphemeralPortsAndRestart) {
  const auto handler = [](const HttpRequest&) {
    return HttpResponse::text(200, "ok");
  };
  HttpServer a{handler};
  HttpServer b{handler};
  ASSERT_TRUE(a.start());
  ASSERT_TRUE(b.start());
  EXPECT_NE(a.port(), b.port());  // both ephemeral, both bound
  a.stop();
  b.stop();
}

}  // namespace
}  // namespace blameit::svc
