#include "svc/verdict_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace blameit::svc {
namespace {

core::BlameResult make_blame(std::uint32_t block, std::uint16_t location,
                             std::int64_t bucket, core::Blame blame,
                             std::uint32_t middle = 1,
                             std::uint32_t client_as = 100) {
  core::BlameResult result;
  result.quartet.key.block = net::Slash24{block};
  result.quartet.key.location = net::CloudLocationId{location};
  result.quartet.key.bucket = util::TimeBucket{bucket};
  result.quartet.sample_count = 20;
  result.quartet.mean_rtt_ms = 80.0;
  result.quartet.middle = net::MiddleSegmentId{middle};
  result.quartet.client_as = net::AsId{client_as};
  result.quartet.bad = true;
  result.blame = blame;
  if (blame == core::Blame::Cloud) result.faulty_as = net::AsId{1};
  if (blame == core::Blame::Client) result.faulty_as = net::AsId{client_as};
  return result;
}

core::StepReport make_report(std::int64_t bucket,
                             std::vector<core::BlameResult> blames) {
  core::StepReport report;
  report.now = util::TimeBucket{bucket}.start().plus_minutes(5);
  report.buckets_processed = 1;
  report.blames = std::move(blames);
  return report;
}

TEST(VerdictStoreTest, EmptyStoreAnswersEverything) {
  const VerdictStore store;
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_FALSE(
      store.lookup(net::Slash24{7}, net::CloudLocationId{1}).has_value());
  EXPECT_TRUE(store.lookup(net::Slash24{7}).empty());
  EXPECT_TRUE(store.incidents_since(util::MinuteTime{0}).empty());
  EXPECT_TRUE(store.recent_diagnoses().empty());
  EXPECT_EQ(store.health().epoch, 0u);
}

TEST(VerdictStoreTest, ConfidenceMappingFollowsTheHierarchy) {
  VerdictStore store;
  store.publish(make_report(
      10, {make_blame(1, 1, 10, core::Blame::Cloud),
           make_blame(2, 1, 10, core::Blame::Client),
           make_blame(3, 1, 10, core::Blame::Middle),
           make_blame(4, 1, 10, core::Blame::Ambiguous)}));
  EXPECT_EQ(store.epoch(), 1u);

  const auto cloud = store.lookup(net::Slash24{1}, net::CloudLocationId{1});
  ASSERT_TRUE(cloud.has_value());
  EXPECT_EQ(cloud->blame, core::Blame::Cloud);
  EXPECT_EQ(cloud->confidence, core::DiagnosisConfidence::High);
  ASSERT_TRUE(cloud->faulty_as.has_value());
  EXPECT_EQ(cloud->faulty_as->value, 1u);
  EXPECT_FALSE(cloud->from_active);

  const auto client = store.lookup(net::Slash24{2}, net::CloudLocationId{1});
  ASSERT_TRUE(client.has_value());
  EXPECT_EQ(client->confidence, core::DiagnosisConfidence::High);

  // Middle with no active diagnosis: AS unknown, Low confidence.
  const auto middle = store.lookup(net::Slash24{3}, net::CloudLocationId{1});
  ASSERT_TRUE(middle.has_value());
  EXPECT_EQ(middle->confidence, core::DiagnosisConfidence::Low);
  EXPECT_FALSE(middle->faulty_as.has_value());

  const auto ambiguous =
      store.lookup(net::Slash24{4}, net::CloudLocationId{1});
  ASSERT_TRUE(ambiguous.has_value());
  EXPECT_EQ(ambiguous->confidence, core::DiagnosisConfidence::Low);
}

TEST(VerdictStoreTest, ActiveDiagnosisUpgradesMiddleVerdicts) {
  VerdictStore store;
  auto report =
      make_report(10, {make_blame(3, 1, 10, core::Blame::Middle, 7)});
  core::ActiveDiagnosis diag;
  diag.location = net::CloudLocationId{1};
  diag.middle = net::MiddleSegmentId{7};
  diag.probe_reached = true;
  diag.have_baseline = true;
  diag.baseline_predates_issue = true;
  diag.culprit = net::AsId{4242};
  diag.confidence = core::DiagnosisConfidence::High;
  report.diagnoses.push_back(diag);
  store.publish(report);

  const auto v = store.lookup(net::Slash24{3}, net::CloudLocationId{1});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->blame, core::Blame::Middle);
  EXPECT_TRUE(v->from_active);
  EXPECT_TRUE(v->baseline_predates_issue);
  EXPECT_EQ(v->confidence, core::DiagnosisConfidence::High);
  ASSERT_TRUE(v->faulty_as.has_value());
  EXPECT_EQ(v->faulty_as->value, 4242u);

  // The diagnosis is also served on its own feed.
  const auto diagnoses = store.recent_diagnoses();
  ASSERT_EQ(diagnoses.size(), 1u);
  EXPECT_EQ(diagnoses[0].diagnosis.culprit->value, 4242u);

  // A diagnosis for a DIFFERENT path must not upgrade this verdict.
  VerdictStore other;
  auto mismatched =
      make_report(10, {make_blame(3, 1, 10, core::Blame::Middle, 7)});
  diag.middle = net::MiddleSegmentId{8};
  mismatched.diagnoses.push_back(diag);
  other.publish(mismatched);
  const auto unmatched =
      other.lookup(net::Slash24{3}, net::CloudLocationId{1});
  ASSERT_TRUE(unmatched.has_value());
  EXPECT_FALSE(unmatched->from_active);
  EXPECT_EQ(unmatched->confidence, core::DiagnosisConfidence::Low);
}

TEST(VerdictStoreTest, VerdictsAgeOutAfterRetention) {
  VerdictStore store{{.verdict_retention_buckets = 3}};
  store.publish(make_report(10, {make_blame(1, 1, 10, core::Blame::Cloud)}));
  ASSERT_TRUE(
      store.lookup(net::Slash24{1}, net::CloudLocationId{1}).has_value());

  // A later publish inside the window keeps the old verdict alive...
  store.publish(make_report(12, {make_blame(2, 1, 12, core::Blame::Cloud)}));
  EXPECT_TRUE(
      store.lookup(net::Slash24{1}, net::CloudLocationId{1}).has_value());

  // ...but once the newest bucket is past block 1's bucket + retention,
  // the stale verdict is gone.
  store.publish(make_report(14, {make_blame(2, 1, 14, core::Blame::Cloud)}));
  EXPECT_FALSE(
      store.lookup(net::Slash24{1}, net::CloudLocationId{1}).has_value());
  EXPECT_EQ(store.epoch(), 3u);
}

TEST(VerdictStoreTest, LookupByBlockAndPrefix) {
  VerdictStore store;
  // 10.0.0.0/24 is block 0x0A0000, 10.0.1.0/24 is 0x0A0001.
  const auto block_a = net::Slash24{0x0A0000};
  const auto block_b = net::Slash24{0x0A0001};
  store.publish(make_report(
      10, {make_blame(block_a.block, 2, 10, core::Blame::Cloud),
           make_blame(block_a.block, 1, 10, core::Blame::Middle),
           make_blame(block_b.block, 1, 10, core::Blame::Client)}));

  const auto per_block = store.lookup(block_a);
  ASSERT_EQ(per_block.size(), 2u);
  EXPECT_EQ(per_block[0].location.value, 1u);  // location-ordered
  EXPECT_EQ(per_block[1].location.value, 2u);

  const auto prefix = net::Prefix::parse("10.0.0.0/23");
  ASSERT_TRUE(prefix.has_value());
  const auto covered = store.lookup(*prefix);
  ASSERT_EQ(covered.size(), 3u);
  EXPECT_EQ(covered[0].block, block_a);  // block-then-location ordered
  EXPECT_EQ(covered[2].block, block_b);

  const auto elsewhere = net::Prefix::parse("192.168.0.0/16");
  ASSERT_TRUE(elsewhere.has_value());
  EXPECT_TRUE(store.lookup(*elsewhere).empty());
}

TEST(VerdictStoreTest, IncidentRunsExtendAndClose) {
  VerdictStore store;
  // Same middle issue across buckets 10 and 11 -> one open run.
  store.publish(
      make_report(10, {make_blame(3, 1, 10, core::Blame::Middle, 7)}));
  store.publish(
      make_report(11, {make_blame(3, 1, 11, core::Blame::Middle, 7)}));
  auto incidents = store.incidents_since(util::MinuteTime{0});
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].category, core::Blame::Middle);
  EXPECT_EQ(incidents[0].buckets, 2);
  EXPECT_TRUE(incidents[0].open);
  ASSERT_TRUE(incidents[0].middle.has_value());
  EXPECT_EQ(incidents[0].middle->value, 7u);

  // Bucket 12 blames something else: the middle run closes, a cloud run
  // opens.
  store.publish(
      make_report(12, {make_blame(9, 1, 12, core::Blame::Cloud)}));
  incidents = store.incidents_since(util::MinuteTime{0});
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_FALSE(incidents[0].open);  // first_seen order: middle run first
  EXPECT_EQ(incidents[0].buckets, 2);
  EXPECT_TRUE(incidents[1].open);
  EXPECT_EQ(incidents[1].category, core::Blame::Cloud);

  // `since` filters on last_seen.
  const auto recent =
      store.incidents_since(util::TimeBucket{12}.start());
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].category, core::Blame::Cloud);

  // Ambiguous/Insufficient never form incidents.
  VerdictStore quiet;
  quiet.publish(
      make_report(10, {make_blame(1, 1, 10, core::Blame::Ambiguous),
                       make_blame(2, 1, 10, core::Blame::Insufficient)}));
  EXPECT_TRUE(quiet.incidents_since(util::MinuteTime{0}).empty());
}

TEST(VerdictStoreTest, HealthTracksDegradedSteps) {
  VerdictStore store;
  store.publish(make_report(10, {}));
  auto report = make_report(11, {});
  report.degraded_passive_only = true;
  store.publish(report);

  auto health = store.health();
  EXPECT_EQ(health.epoch, 2u);
  EXPECT_EQ(health.steps, 2u);
  EXPECT_EQ(health.degraded_steps, 1u);
  EXPECT_TRUE(health.degraded);
  EXPECT_EQ(health.last_step, report.now);

  store.publish(make_report(12, {}));
  health = store.health();
  EXPECT_FALSE(health.degraded);
  EXPECT_EQ(health.degraded_steps, 1u);
}

TEST(VerdictStoreTest, RegistryInstrumentsCount) {
  obs::Registry registry;
  VerdictStore store{{.registry = &registry}};
  store.publish(make_report(10, {make_blame(1, 1, 10, core::Blame::Cloud)}));
  (void)store.lookup(net::Slash24{1}, net::CloudLocationId{1});
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("svc.store.publishes"), 1u);
  EXPECT_EQ(snap.counter_value("svc.store.lookups"), 1u);
  EXPECT_EQ(snap.gauge_value("svc.store.verdicts"), 1.0);
}

// The RCU contract: readers on many threads race one publisher and must
// always see internally-consistent snapshots. Run under TSan in CI.
TEST(VerdictStoreTest, ConcurrentReadersNeverBlockOrTear) {
  VerdictStore store;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto epoch = store.epoch();
        EXPECT_GE(epoch, last_epoch);
        last_epoch = epoch;
        const auto v = store.lookup(net::Slash24{1}, net::CloudLocationId{1});
        if (v) {
          // A verdict is immutable once read: block/location always match
          // the key it was indexed under.
          EXPECT_EQ(v->block.block, 1u);
          EXPECT_EQ(v->location.value, 1u);
          EXPECT_EQ(v->blame, core::Blame::Cloud);
        }
        (void)store.lookup(net::Slash24{1});
        (void)store.incidents_since(util::MinuteTime{0});
        (void)store.health();
        lookups.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Don't start (or finish) publishing until the readers are actually
  // looping, so the 200 publishes genuinely race the lookups.
  while (lookups.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  const auto lookups_at_start = lookups.load(std::memory_order_relaxed);
  for (std::int64_t bucket = 10; bucket < 210; ++bucket) {
    store.publish(make_report(
        bucket, {make_blame(1, 1, bucket, core::Blame::Cloud),
                 make_blame(2, 1, bucket, core::Blame::Middle, 7)}));
  }
  while (lookups.load(std::memory_order_relaxed) <= lookups_at_start) {
    std::this_thread::yield();
  }
  stop = true;
  for (auto& r : readers) r.join();
  EXPECT_EQ(store.epoch(), 200u);
  EXPECT_GT(lookups.load(), 0u);
}

// --- Columnar backend: identical answers, bounded memory, save/restore. ---

/// A publish sequence exercising every row-state transition: inserts,
/// same-key updates, active upgrades, aging past retention, and incident
/// open/extend/close — fed identically to both backends.
void parity_publish(VerdictStore& store) {
  store.publish(make_report(
      10, {make_blame(1, 1, 10, core::Blame::Cloud),
           make_blame(2, 1, 10, core::Blame::Client),
           make_blame(3, 1, 10, core::Blame::Middle, 7),
           make_blame(3, 2, 10, core::Blame::Middle, 7)}));
  auto upgraded =
      make_report(11, {make_blame(3, 1, 11, core::Blame::Middle, 7),
                       make_blame(1, 1, 11, core::Blame::Cloud)});
  core::ActiveDiagnosis diag;
  diag.location = net::CloudLocationId{1};
  diag.middle = net::MiddleSegmentId{7};
  diag.probe_reached = true;
  diag.have_baseline = true;
  diag.culprit = net::AsId{4242};
  diag.confidence = core::DiagnosisConfidence::High;
  upgraded.diagnoses.push_back(diag);
  store.publish(upgraded);
  // Quiet steps age out everything but block 2 (bucket-16 rows) later on.
  store.publish(make_report(16, {make_blame(2, 1, 16, core::Blame::Client),
                                 make_blame(9, 3, 16, core::Blame::Ambiguous)}));
}

void expect_same_answers(const VerdictStore& a, const VerdictStore& b) {
  for (std::uint32_t block : {1u, 2u, 3u, 9u, 77u}) {
    for (std::uint16_t loc : {std::uint16_t{1}, std::uint16_t{2},
                              std::uint16_t{3}}) {
      const auto va = a.lookup(net::Slash24{block}, net::CloudLocationId{loc});
      const auto vb = b.lookup(net::Slash24{block}, net::CloudLocationId{loc});
      ASSERT_EQ(va.has_value(), vb.has_value())
          << "block " << block << " loc " << loc;
      if (!va) continue;
      EXPECT_EQ(va->blame, vb->blame);
      EXPECT_EQ(va->confidence, vb->confidence);
      EXPECT_EQ(va->faulty_as, vb->faulty_as);
      EXPECT_EQ(va->bucket, vb->bucket);
      EXPECT_EQ(va->from_active, vb->from_active);
      EXPECT_EQ(va->mean_rtt_ms, vb->mean_rtt_ms);
    }
    const auto la = a.lookup(net::Slash24{block});
    const auto lb = b.lookup(net::Slash24{block});
    ASSERT_EQ(la.size(), lb.size()) << "block " << block;
    for (std::size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i].location.value, lb[i].location.value);
      EXPECT_EQ(la[i].blame, lb[i].blame);
    }
  }
  const auto ia = a.incidents_since(util::MinuteTime{0});
  const auto ib = b.incidents_since(util::MinuteTime{0});
  EXPECT_EQ(ia.size(), ib.size());
  EXPECT_EQ(a.recent_diagnoses().size(), b.recent_diagnoses().size());
}

TEST(VerdictStoreBackends, ColumnarMatchesHashMapIncludingAging) {
  VerdictStore hash{{.verdict_retention_buckets = 4,
                     .backend = store::StateBackend::kHashMap}};
  VerdictStore columnar{{.verdict_retention_buckets = 4,
                         .backend = store::StateBackend::kColumnar}};
  parity_publish(hash);
  parity_publish(columnar);
  expect_same_answers(hash, columnar);

  // Aging applied: bucket-10/11 rows are past 16 - 4.
  EXPECT_FALSE(
      columnar.lookup(net::Slash24{1}, net::CloudLocationId{1}).has_value());
  EXPECT_TRUE(
      columnar.lookup(net::Slash24{2}, net::CloudLocationId{1}).has_value());
  // Both backends account their state; the columnar-undercuts-hash ratio
  // only materialises at scale (block overheads dominate a handful of
  // rows), so bench_scale owns that gate — here both must just be honest.
  EXPECT_GT(columnar.verdict_state_bytes(), 0u);
  EXPECT_GT(hash.verdict_state_bytes(), 0u);
}

TEST(VerdictStoreBackends, SaveRestoreRoundTripsAndCrossesBackends) {
  // The snapshot normal form is backend-independent: save from one backend,
  // restore into either, and every query must answer the same.
  for (const auto save_backend :
       {store::StateBackend::kHashMap, store::StateBackend::kColumnar}) {
    VerdictStore original{{.verdict_retention_buckets = 8,
                           .backend = save_backend}};
    parity_publish(original);

    store::SnapshotWriter writer;
    original.save_state(writer);
    const auto reader =
        store::SnapshotReader::from_bytes(writer.serialize(), "<rt>");

    for (const auto restore_backend :
         {store::StateBackend::kHashMap, store::StateBackend::kColumnar}) {
      VerdictStore restored{{.verdict_retention_buckets = 8,
                             .backend = restore_backend}};
      restored.restore_state(reader);
      expect_same_answers(original, restored);
      EXPECT_EQ(restored.epoch(), original.epoch());
      EXPECT_EQ(restored.health().steps, original.health().steps);

      // The restored store continues accepting publishes.
      restored.publish(
          make_report(17, {make_blame(5, 1, 17, core::Blame::Cloud)}));
      EXPECT_TRUE(restored.lookup(net::Slash24{5}, net::CloudLocationId{1})
                      .has_value());
    }
  }
}

}  // namespace
}  // namespace blameit::svc
