// End-to-end service tests: VerdictStore -> VerdictService -> HttpServer,
// exercised over real loopback sockets with pipeline-shaped step reports.
#include "svc/service.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>

namespace blameit::svc {
namespace {

core::BlameResult make_blame(std::uint32_t block, std::uint16_t location,
                             std::int64_t bucket, core::Blame blame,
                             std::uint32_t middle = 1,
                             std::uint32_t client_as = 100) {
  core::BlameResult result;
  result.quartet.key.block = net::Slash24{block};
  result.quartet.key.location = net::CloudLocationId{location};
  result.quartet.key.bucket = util::TimeBucket{bucket};
  result.quartet.sample_count = 20;
  result.quartet.mean_rtt_ms = 80.0;
  result.quartet.middle = net::MiddleSegmentId{middle};
  result.quartet.client_as = net::AsId{client_as};
  result.quartet.bad = true;
  result.blame = blame;
  if (blame == core::Blame::Cloud) result.faulty_as = net::AsId{1};
  return result;
}

/// One-shot GET over a fresh loopback connection; returns the raw response.
std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const auto rc = ::send(fd, request.data() + sent, request.size() - sent,
                           MSG_NOSIGNAL);
    if (rc <= 0) break;
    sent += static_cast<std::size_t>(rc);
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    const auto rc = ::recv(fd, chunk, sizeof(chunk), 0);
    if (rc <= 0) break;
    response.append(chunk, static_cast<std::size_t>(rc));
  }
  ::close(fd);
  return response;
}

class VerdictServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<VerdictStore>(
        VerdictStore::Config{.registry = &registry_});

    // Two steps of pipeline-shaped history: a cloud issue on 10.0.0.0/24
    // at edge-1 across buckets 10-11, plus a middle issue with an active
    // diagnosis naming AS4242.
    auto first = make_report(10);
    first.blames = {make_blame(0x0A0000, 1, 10, core::Blame::Cloud),
                    make_blame(0x0A0001, 2, 10, core::Blame::Middle, 7)};
    core::ActiveDiagnosis diag;
    diag.location = net::CloudLocationId{2};
    diag.middle = net::MiddleSegmentId{7};
    diag.probe_reached = true;
    diag.have_baseline = true;
    diag.baseline_predates_issue = true;
    diag.culprit = net::AsId{4242};
    diag.confidence = core::DiagnosisConfidence::High;
    first.diagnoses.push_back(diag);
    store_->publish(first);

    auto second = make_report(11);
    second.blames = {make_blame(0x0A0000, 1, 11, core::Blame::Cloud)};
    store_->publish(second);

    service_ = std::make_unique<VerdictService>(store_.get(), &registry_);
    HttpServerConfig config;
    config.workers = 2;
    server_ = std::make_unique<HttpServer>(service_->handler(), config);
    ASSERT_TRUE(server_->start());
  }

  static core::StepReport make_report(std::int64_t bucket) {
    core::StepReport report;
    report.now = util::TimeBucket{bucket}.start().plus_minutes(5);
    report.buckets_processed = 1;
    return report;
  }

  [[nodiscard]] std::string get(const std::string& target) const {
    return http_get(server_->port(), target);
  }

  obs::Registry registry_;
  std::unique_ptr<VerdictStore> store_;
  std::unique_ptr<VerdictService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(VerdictServiceTest, VerdictByClientAndCloud) {
  const auto response = get("/v1/verdict?client=10.0.0.77&cloud=edge-1");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"client\":\"10.0.0.0/24\""), std::string::npos);
  EXPECT_NE(response.find("\"cloud\":\"edge-1\""), std::string::npos);
  EXPECT_NE(response.find("\"blame\":\"cloud\""), std::string::npos);
  EXPECT_NE(response.find("\"confidence\":\"high\""), std::string::npos);
  // Numeric cloud ids are accepted too.
  EXPECT_NE(get("/v1/verdict?client=10.0.0.0/24&cloud=1")
                .find("\"blame\":\"cloud\""),
            std::string::npos);
}

TEST_F(VerdictServiceTest, VerdictListsAndActiveUpgrade) {
  const auto all = get("/v1/verdict?client=10.0.1.5");
  EXPECT_NE(all.find("\"count\":1"), std::string::npos);
  EXPECT_NE(all.find("\"blame\":\"middle\""), std::string::npos);
  EXPECT_NE(all.find("\"faulty_as\":\"AS4242\""), std::string::npos);
  EXPECT_NE(all.find("\"from_active\":true"), std::string::npos);
  EXPECT_NE(all.find("\"baseline_predates_issue\":true"), std::string::npos);

  const auto swept = get("/v1/verdict?client=10.0.0.0/16");
  EXPECT_NE(swept.find("\"count\":2"), std::string::npos);
}

TEST_F(VerdictServiceTest, VerdictErrors) {
  EXPECT_NE(get("/v1/verdict").find("HTTP/1.1 400 "), std::string::npos);
  EXPECT_NE(get("/v1/verdict?client=not-an-ip").find("HTTP/1.1 400 "),
            std::string::npos);
  EXPECT_NE(get("/v1/verdict?client=10.0.0.1&cloud=zzz").find("400 "),
            std::string::npos);
  EXPECT_NE(
      get("/v1/verdict?client=10.0.0.0/16&cloud=edge-1").find("400 "),
      std::string::npos);
  // Valid query, no live verdict.
  EXPECT_NE(
      get("/v1/verdict?client=99.99.99.1&cloud=edge-1").find("404 "),
      std::string::npos);
}

TEST_F(VerdictServiceTest, IncidentsSince) {
  const auto all = get("/v1/incidents");
  EXPECT_NE(all.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(all.find("\"count\":2"), std::string::npos);
  EXPECT_NE(all.find("\"category\":\"cloud\""), std::string::npos);
  EXPECT_NE(all.find("\"category\":\"middle\""), std::string::npos);

  // since filters on last_seen: only the still-open cloud run remains.
  const auto since = get("/v1/incidents?since=" + std::to_string(
                             util::TimeBucket{11}.start().minutes));
  EXPECT_NE(since.find("\"count\":1"), std::string::npos);
  EXPECT_NE(get("/v1/incidents?since=abc").find("400 "), std::string::npos);
}

TEST_F(VerdictServiceTest, IncidentsSinceBoundaryIsInclusive) {
  // The middle incident was last seen in bucket 10; a cutoff EQUAL to its
  // last_seen must still include it (>= semantics, not >).
  const auto boundary = util::TimeBucket{10}.start().minutes;
  const auto at = get("/v1/incidents?since=" + std::to_string(boundary));
  EXPECT_NE(at.find("\"count\":2"), std::string::npos) << at;
  const auto past = get("/v1/incidents?since=" + std::to_string(boundary + 1));
  EXPECT_NE(past.find("\"count\":1"), std::string::npos) << past;
}

TEST_F(VerdictServiceTest, IncidentsSinceRejectsNonsenseCutoffs) {
  // Negative cutoffs: simulated clocks start at minute 0.
  const auto negative = get("/v1/incidents?since=-1");
  EXPECT_NE(negative.find("HTTP/1.1 400 "), std::string::npos) << negative;
  EXPECT_NE(negative.find("must be >= 0"), std::string::npos) << negative;

  // Absurdly large cutoffs are almost always a unit bug (epoch seconds or
  // milliseconds pasted into a minutes field) — reject with a hint.
  const auto huge = get("/v1/incidents?since=9999999999999");
  EXPECT_NE(huge.find("HTTP/1.1 400 "), std::string::npos) << huge;
  EXPECT_NE(huge.find("minutes, not"), std::string::npos) << huge;

  // The sane maximum itself still works.
  const auto max_ok = get("/v1/incidents?since=105120000");
  EXPECT_NE(max_ok.find("HTTP/1.1 200 OK"), std::string::npos) << max_ok;
  EXPECT_NE(max_ok.find("\"count\":0"), std::string::npos) << max_ok;
}

TEST_F(VerdictServiceTest, DiagnosesFeed) {
  const auto response = get("/v1/diagnoses");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"culprit\":\"AS4242\""), std::string::npos);
  EXPECT_NE(response.find("\"confidence\":\"high\""), std::string::npos);
  EXPECT_NE(response.find("\"baseline_predates_issue\":true"),
            std::string::npos);
}

TEST_F(VerdictServiceTest, MetricsEndpoints) {
  const auto json = get("/metrics.json");
  EXPECT_NE(json.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(json.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(json.find("\"svc.store.publishes\":2"), std::string::npos);

  const auto text = get("/metrics");
  EXPECT_NE(text.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(text.find("blameit,metric=svc.store.publishes,kind=counter"),
            std::string::npos);
}

TEST_F(VerdictServiceTest, HealthzReflectsDegradedSteps) {
  auto response = get("/healthz");
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(response.find("\"epoch\":2"), std::string::npos);

  auto degraded_report = make_report(12);
  degraded_report.degraded_passive_only = true;
  store_->publish(degraded_report);
  response = get("/healthz");
  EXPECT_NE(response.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(response.find("\"degraded_steps\":1"), std::string::npos);
}

TEST_F(VerdictServiceTest, DegradationGradeSurfacesInEveryFeed) {
  // The fixture's verdicts were computed against fresh baselines.
  EXPECT_NE(get("/v1/verdict?client=10.0.0.1&cloud=edge-1")
                .find("\"grade\":\"fresh\""),
            std::string::npos);

  // Publish a step whose middle blame leaned on a churn-transferred
  // baseline and whose active diagnosis ran off a cold-probed one: §13's
  // grades must come through verbatim in all three JSON feeds.
  auto report = make_report(12);
  auto degraded = make_blame(0x0A0002, 3, 12, core::Blame::Middle, 9);
  degraded.grade = core::BaselineGrade::Transferred;
  report.blames = {degraded};
  // Deliberately NOT matching the blame's ⟨location, middle⟩: a matching
  // diagnosis would upgrade the verdict and replace its grade with the
  // probe's own, masking the transferred grade this test pins down.
  core::ActiveDiagnosis diag;
  diag.location = net::CloudLocationId{4};
  diag.middle = net::MiddleSegmentId{99};
  diag.probe_reached = true;
  diag.have_baseline = true;
  diag.culprit = net::AsId{777};
  diag.confidence = core::DiagnosisConfidence::Medium;
  diag.grade = core::BaselineGrade::ProbedCold;
  report.diagnoses.push_back(diag);
  store_->publish(report);

  const auto verdict = get("/v1/verdict?client=10.0.2.1&cloud=edge-3");
  EXPECT_NE(verdict.find("\"grade\":\"transferred\""), std::string::npos)
      << verdict;

  const auto incidents = get("/v1/incidents");
  EXPECT_NE(incidents.find("\"grade\":\"transferred\""), std::string::npos)
      << incidents;
  // The pre-existing fresh-graded runs keep their grade alongside.
  EXPECT_NE(incidents.find("\"grade\":\"fresh\""), std::string::npos);

  const auto diagnoses = get("/v1/diagnoses");
  EXPECT_NE(diagnoses.find("\"grade\":\"probed-cold\""), std::string::npos)
      << diagnoses;
}

TEST_F(VerdictServiceTest, RouterErrors) {
  EXPECT_NE(get("/nope").find("HTTP/1.1 404 "), std::string::npos);

  // POST to a known path: 405.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      "POST /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  for (;;) {
    const auto rc = ::recv(fd, chunk, sizeof(chunk), 0);
    if (rc <= 0) break;
    response.append(chunk, static_cast<std::size_t>(rc));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.1 405 "), std::string::npos);
}

TEST_F(VerdictServiceTest, ServesWhilePublisherRuns) {
  // Readers over HTTP while the store keeps publishing: responses stay
  // valid; nothing tears or blocks.
  std::atomic<bool> stop{false};
  std::thread publisher{[&] {
    std::int64_t bucket = 20;
    while (!stop.load(std::memory_order_relaxed)) {
      auto report = make_report(bucket);
      report.blames = {
          make_blame(0x0A0000, 1, bucket, core::Blame::Cloud)};
      store_->publish(report);
      ++bucket;
    }
  }};
  for (int i = 0; i < 50; ++i) {
    const auto response = get("/v1/verdict?client=10.0.0.1&cloud=edge-1");
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("\"blame\":\"cloud\""), std::string::npos);
  }
  stop = true;
  publisher.join();
}

}  // namespace
}  // namespace blameit::svc
