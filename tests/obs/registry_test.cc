#include "obs/registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace blameit::obs {
namespace {

TEST(ObsRegistryTest, CounterAndGaugeBasics) {
  Registry registry;
  Counter* c = registry.counter("test.events");
  c->add();
  c->add(4);
  EXPECT_EQ(c->value(), 5u);

  Gauge* g = registry.gauge("test.depth");
  g->set(3.5);
  EXPECT_DOUBLE_EQ(g->value(), 3.5);
  g->set_max(2.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g->value(), 3.5);
  g->set_max(9.0);  // higher: taken
  EXPECT_DOUBLE_EQ(g->value(), 9.0);
}

TEST(ObsRegistryTest, SameNameResolvesToSameInstrument) {
  Registry registry;
  EXPECT_EQ(registry.counter("x"), registry.counter("x"));
  EXPECT_EQ(registry.gauge("x"), registry.gauge("x"));
  EXPECT_EQ(registry.histogram("x"), registry.histogram("x"));
  // Distinct names are distinct instruments.
  EXPECT_NE(registry.counter("x"), registry.counter("y"));
}

TEST(ObsRegistryTest, HistogramBucketBoundaries) {
  Registry registry;
  constexpr double kBounds[] = {1.0, 2.0, 4.0};
  Histogram* h = registry.histogram("test.h", kBounds);
  h->record(0.5);  // <= 1.0
  h->record(1.0);  // <= 1.0 (boundary lands in its bucket)
  h->record(1.5);  // <= 2.0
  h->record(4.0);  // <= 4.0
  h->record(9.0);  // overflow
  const auto counts = h->bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->max(), 9.0);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(ObsRegistryTest, ConcurrentIncrementsAreExact) {
  Registry registry;
  Counter* c = registry.counter("concurrent.count");
  Gauge* g = registry.gauge("concurrent.max");
  Histogram* h = registry.histogram("concurrent.h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->add();
        g->set_max(static_cast<double>(t * kPerThread + i));
        h->record(1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c->value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(g->value(),
                   static_cast<double>(kThreads * kPerThread - 1));
  EXPECT_EQ(h->count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h->sum(), static_cast<double>(kThreads) * kPerThread);
}

TEST(ObsRegistryTest, SnapshotUnderConcurrentWritersAndExactAfterQuiesce) {
  Registry registry;
  Counter* c = registry.counter("snap.count");
  std::atomic<bool> stop{false};
  std::thread writer{[&] {
    while (!stop.load(std::memory_order_relaxed)) c->add();
  }};
  // Snapshots taken while a writer runs must be monotonically consistent.
  std::uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const auto snap = registry.snapshot();
    const auto value = snap.counter_value("snap.count");
    ASSERT_TRUE(value.has_value());
    EXPECT_GE(*value, prev);
    prev = *value;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  // After writers quiesce the snapshot is exact.
  EXPECT_EQ(registry.snapshot().counter_value("snap.count"), c->value());
}

TEST(ObsRegistryTest, SnapshotFinders) {
  Registry registry;
  registry.counter("a.count")->add(7);
  registry.gauge("a.gauge")->set(1.25);
  registry.histogram("a.hist")->record(3.0);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("a.count"), 7u);
  EXPECT_EQ(snap.gauge_value("a.gauge"), 1.25);
  const auto* h = snap.histogram("a.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_DOUBLE_EQ(h->mean(), 3.0);
  EXPECT_FALSE(snap.counter_value("missing").has_value());
  EXPECT_FALSE(snap.gauge_value("missing").has_value());
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

TEST(ObsRegistryTest, NullSafeHelpers) {
  EXPECT_EQ(counter(nullptr, "x"), nullptr);
  EXPECT_EQ(gauge(nullptr, "x"), nullptr);
  EXPECT_EQ(histogram(nullptr, "x"), nullptr);
  // Updates through null instruments are no-ops, not crashes.
  add(nullptr);
  set(nullptr, 1.0);
  set_max(nullptr, 1.0);
  record(nullptr, 1.0);
  double out = 0.0;
  { const ScopedTimer timer{nullptr, &out}; }
  EXPECT_GE(out, 0.0);
  { const ScopedTimer timer{nullptr, nullptr}; }  // fully disabled
}

TEST(ObsRegistryTest, ScopedTimerRecordsIntoHistogramAndAccumulator) {
  Registry registry;
  Histogram* h = registry.histogram("timer.ms");
  double accumulated = 0.0;
  { const ScopedTimer timer{h, &accumulated}; }
  { const ScopedTimer timer{h, &accumulated}; }
  EXPECT_EQ(h->count(), 2u);
  EXPECT_GE(accumulated, 0.0);
  EXPECT_NEAR(h->sum(), accumulated, 1.0);
}

TEST(ObsRegistryTest, RenderTextAndJson) {
  Registry registry;
  registry.counter("render.count")->add(3);
  registry.gauge("render.gauge")->set(2.5);
  registry.histogram("render.hist")->record(0.2);
  const auto snap = registry.snapshot();

  const auto text = render_text(snap);
  EXPECT_NE(text.find("render.count"), std::string::npos);
  EXPECT_NE(text.find("render.gauge"), std::string::npos);
  EXPECT_NE(text.find("render.hist"), std::string::npos);

  const auto json = to_json(snap);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"render.count\":3"), std::string::npos);

  const auto lines = render_line_protocol(snap);
  EXPECT_NE(lines.find("blameit,metric=render.count,kind=counter value=3i"),
            std::string::npos);
  EXPECT_NE(lines.find("blameit,metric=render.gauge,kind=gauge value=2.5"),
            std::string::npos);
  EXPECT_NE(lines.find("blameit,metric=render.hist,kind=histogram count=1i"),
            std::string::npos);
}

// Regression (service-layer bugfix): a snapshot racing histogram record()
// used to read the total count and the bucket counts as two independent
// relaxed loads, so /metrics.json could report count != sum(buckets) —
// visible to any scraper arriving mid-record. The snapshot now derives the
// count from the buckets it read. Hammer it from several recording threads.
TEST(ObsRegistryTest, SnapshotCountMatchesBucketSumUnderConcurrentRecords) {
  Registry registry;
  auto* h = registry.histogram("hammer.hist");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      double v = 0.01 * (t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        h->record(v);
        v = v > 1000.0 ? 0.01 : v * 1.7;  // sweep across buckets
      }
    });
  }
  std::uint64_t last_count = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto snap = registry.snapshot();
    const auto* sample = snap.histogram("hammer.hist");
    ASSERT_NE(sample, nullptr);
    std::uint64_t bucket_sum = 0;
    for (const auto n : sample->counts) bucket_sum += n;
    EXPECT_EQ(sample->count, bucket_sum) << "snapshot " << i;
    EXPECT_GE(sample->count, last_count) << "count went backwards";
    last_count = sample->count;
  }
  stop = true;
  for (auto& w : writers) w.join();
  // After quiesce the derived count equals the live total exactly.
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.histogram("hammer.hist")->count, h->count());
}

}  // namespace
}  // namespace blameit::obs
