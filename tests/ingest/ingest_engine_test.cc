#include "ingest/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <tuple>
#include <vector>

#include "analysis/quartet.h"
#include "ingest/sharded_builder.h"
#include "sim/fault.h"
#include "sim/telemetry.h"

namespace blameit::ingest {
namespace {

class IngestEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 1;
    cfg.eyeballs_per_region = 2;
    cfg.blocks_per_eyeball = 4;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  static util::TimeBucket noon_bucket() {
    return util::TimeBucket::of(util::MinuteTime::from_day_hour(0, 12));
  }

  /// Canonical comparable form of a finalized quartet set.
  static std::vector<std::tuple<std::uint32_t, std::uint16_t, int,
                                std::int64_t, int, double, bool>>
  canonical(std::vector<analysis::Quartet> quartets) {
    std::vector<std::tuple<std::uint32_t, std::uint16_t, int, std::int64_t,
                           int, double, bool>>
        out;
    out.reserve(quartets.size());
    for (const auto& q : quartets) {
      out.emplace_back(q.key.block.block, q.key.location.value,
                       static_cast<int>(q.key.device), q.key.bucket.index,
                       q.sample_count, q.mean_rtt_ms, q.bad);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  static const net::Topology* topo_;
  sim::FaultInjector faults_;
};

const net::Topology* IngestEngineTest::topo_ = nullptr;

// The ISSUE's key acceptance test: 4 shards fed shuffled records produce
// the same finalized quartet set — keys, counts, and bit-exact means — as
// the single-threaded QuartetBuilder fed the identical sequence.
TEST_F(IngestEngineTest, ShardedOutputMatchesSingleThreadedBitExact) {
  const sim::TelemetryGenerator gen{topo_, &faults_};
  const auto first = noon_bucket();
  constexpr int kBuckets = 3;

  analysis::QuartetBuilder reference{topo_, analysis::BadnessThresholds{}};
  std::vector<std::vector<analysis::Quartet>> expected;
  for (int i = 0; i < kBuckets; ++i) {
    const auto bucket = util::TimeBucket{first.index + i};
    gen.generate_records_shuffled(
        bucket, [&](const analysis::RttRecord& r) { reference.add(r); });
    expected.push_back(reference.take_bucket(bucket));
  }

  IngestConfig cfg;
  cfg.shards = 4;
  cfg.batch_records = 64;  // force multiple batches per bucket
  IngestEngine engine{topo_, analysis::BadnessThresholds{}, cfg};
  for (int i = 0; i < kBuckets; ++i) {
    const auto bucket = util::TimeBucket{first.index + i};
    gen.generate_records_shuffled(
        bucket, [&](const analysis::RttRecord& r) { engine.submit(r); });
    engine.advance_watermark(engine.watermark_to_finalize(bucket));
  }
  engine.flush();

  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const auto bucket = util::TimeBucket{first.index + i};
    const auto got = engine.take_bucket(bucket);
    ASSERT_FALSE(got.empty());
    total += got.size();
    // Means compared with EXPECT_EQ via the tuple: bit-exact, not NEAR —
    // per-key accumulation order is identical on both paths.
    EXPECT_EQ(canonical(got),
              canonical(expected[static_cast<std::size_t>(i)]))
        << "bucket " << i;
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.late_dropped, 0u);
  EXPECT_EQ(stats.unknown_dropped, reference.dropped_unknown_blocks());
  EXPECT_EQ(stats.quartets_finalized, total);
  EXPECT_EQ(stats.min_samples_dropped, reference.dropped_min_samples());
}

// Shard-count independence: 1, 2, and 8 shards all agree.
TEST_F(IngestEngineTest, OutputIndependentOfShardCount) {
  const sim::TelemetryGenerator gen{topo_, &faults_};
  const auto bucket = noon_bucket();
  std::vector<std::vector<analysis::Quartet>> results;
  for (const int shards : {1, 2, 8}) {
    IngestConfig cfg;
    cfg.shards = shards;
    IngestEngine engine{topo_, analysis::BadnessThresholds{}, cfg};
    gen.generate_records_shuffled(
        bucket, [&](const analysis::RttRecord& r) { engine.submit(r); });
    engine.advance_watermark(engine.watermark_to_finalize(bucket));
    engine.flush();
    results.push_back(engine.take_bucket(bucket));
  }
  ASSERT_FALSE(results[0].empty());
  EXPECT_EQ(canonical(results[0]), canonical(results[1]));
  EXPECT_EQ(canonical(results[0]), canonical(results[2]));
}

TEST_F(IngestEngineTest, WatermarkGatesFinalization) {
  IngestConfig cfg;
  cfg.shards = 2;
  cfg.lateness_minutes = util::kBucketMinutes;
  cfg.builder.min_samples = 1;
  IngestEngine engine{topo_, analysis::BadnessThresholds{}, cfg};
  const auto& block = topo_->blocks().front();
  const auto loc = topo_->home_locations(block.block).front();
  for (int i = 0; i < 5; ++i) {
    engine.submit(analysis::RttRecord{.time = util::MinuteTime{2},
                                      .location = loc,
                                      .client_ip = block.block.host(10),
                                      .device = net::DeviceClass::NonMobile,
                                      .rtt_ms = 20.0});
  }
  // Watermark at the bucket's end: within the lateness allowance, so the
  // bucket must stay open.
  engine.advance_watermark(util::MinuteTime{util::kBucketMinutes});
  engine.flush();
  EXPECT_TRUE(engine.finalized_buckets().empty());
  EXPECT_TRUE(engine.take_bucket(util::TimeBucket{0}).empty());

  // Past end + allowance: finalized.
  engine.advance_watermark(util::MinuteTime{2 * util::kBucketMinutes});
  engine.flush();
  ASSERT_EQ(engine.finalized_buckets().size(), 1u);
  const auto quartets = engine.take_bucket(util::TimeBucket{0});
  ASSERT_EQ(quartets.size(), 1u);
  EXPECT_EQ(quartets[0].sample_count, 5);
  EXPECT_EQ(engine.take_bucket(util::TimeBucket{0}).size(), 0u);  // taken
}

TEST_F(IngestEngineTest, LateRecordCountersAreExact) {
  IngestConfig cfg;
  cfg.shards = 4;
  cfg.lateness_minutes = util::kBucketMinutes;
  cfg.builder.min_samples = 1;
  IngestEngine engine{topo_, analysis::BadnessThresholds{}, cfg};
  const auto& block = topo_->blocks().front();
  const auto loc = topo_->home_locations(block.block).front();
  const auto record = [&](std::int64_t minute) {
    return analysis::RttRecord{.time = util::MinuteTime{minute},
                               .location = loc,
                               .client_ip = block.block.host(10),
                               .device = net::DeviceClass::NonMobile,
                               .rtt_ms = 25.0};
  };
  engine.submit(record(1));
  engine.submit(record(3));
  engine.advance_watermark(util::MinuteTime{util::kBucketMinutes});
  // Out-of-order but within the allowance: accepted.
  engine.submit(record(2));
  engine.advance_watermark(util::MinuteTime{2 * util::kBucketMinutes});
  // Bucket 0 is finalized now: exactly these three are late.
  engine.submit(record(0));
  engine.submit(record(2));
  engine.submit(record(4));
  // A record for the still-open bucket 1 is not late.
  engine.submit(record(util::kBucketMinutes + 1));
  engine.flush();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.late_dropped, 3u);
  EXPECT_EQ(stats.records_in, 7u);
  const auto quartets = engine.take_bucket(util::TimeBucket{0});
  ASSERT_EQ(quartets.size(), 1u);
  EXPECT_EQ(quartets[0].sample_count, 3);  // minutes 1, 3, and the late-ok 2
}

TEST_F(IngestEngineTest, UnknownBlocksCountedNotSilentlyLost) {
  IngestConfig cfg;
  cfg.builder.min_samples = 1;
  IngestEngine engine{topo_, analysis::BadnessThresholds{}, cfg};
  engine.submit(
      analysis::RttRecord{.time = util::MinuteTime{0},
                          .location = topo_->locations().front().id,
                          .client_ip = *net::Ipv4Addr::parse("203.0.113.7"),
                          .device = net::DeviceClass::NonMobile,
                          .rtt_ms = 10.0});
  engine.close();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.records_in, 1u);
  EXPECT_EQ(stats.unknown_dropped, 1u);
  EXPECT_EQ(stats.quartets_finalized, 0u);
}

TEST_F(IngestEngineTest, StatsAccounting) {
  const sim::TelemetryGenerator gen{topo_, &faults_};
  IngestConfig cfg;
  cfg.shards = 4;
  cfg.batch_records = 32;
  cfg.queue_batches = 2;  // tiny queues: high-water must register
  cfg.builder.min_samples = 1;
  IngestEngine engine{topo_, analysis::BadnessThresholds{}, cfg};
  const auto bucket = noon_bucket();
  std::uint64_t fed = 0;
  gen.generate_records(bucket, [&](const analysis::RttRecord& r) {
    engine.submit(r);
    ++fed;
  });
  engine.close();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.records_in, fed);
  EXPECT_EQ(stats.shards.size(), 4u);
  std::uint64_t accepted = 0;
  for (const auto& shard : stats.shards) accepted += shard.records;
  EXPECT_EQ(accepted + stats.late_dropped, fed);
  // With min_samples=1 and no late/unknown drops, every record ends up in
  // a finalized quartet.
  EXPECT_EQ(stats.records_out, fed);
  EXPECT_GT(stats.quartets_finalized, 0u);
  EXPECT_GE(stats.ring_high_water, 1u);
  EXPECT_GT(stats.batches_submitted, 4u);
  // Per-shard delivery accounting is exact once quiescent.
  std::uint64_t delivered = 0;
  for (const auto& shard : stats.shards) {
    EXPECT_EQ(shard.records + shard.late_dropped, shard.delivered);
    delivered += shard.delivered;
  }
  EXPECT_EQ(delivered, fed);
}

TEST_F(IngestEngineTest, CloseFinalizesEverything) {
  IngestConfig cfg;
  cfg.builder.min_samples = 1;
  cfg.lateness_minutes = 60;  // generous allowance; close overrides it
  IngestEngine engine{topo_, analysis::BadnessThresholds{}, cfg};
  const auto& block = topo_->blocks().front();
  const auto loc = topo_->home_locations(block.block).front();
  engine.submit(analysis::RttRecord{.time = util::MinuteTime{1},
                                    .location = loc,
                                    .client_ip = block.block.host(9),
                                    .device = net::DeviceClass::Mobile,
                                    .rtt_ms = 31.0});
  engine.close();
  EXPECT_EQ(engine.take_bucket(util::TimeBucket{0}).size(), 1u);
}

TEST_F(IngestEngineTest, InvalidConfigThrows) {
  IngestConfig bad;
  bad.shards = 0;
  EXPECT_THROW((IngestEngine{topo_, analysis::BadnessThresholds{}, bad}),
               std::invalid_argument);
  IngestConfig negative;
  negative.lateness_minutes = -1;
  EXPECT_THROW(
      (IngestEngine{topo_, analysis::BadnessThresholds{}, negative}),
      std::invalid_argument);
}

TEST(ShardedQuartetBuilderTest, PartitionIsStableAndCovering) {
  net::TopologyConfig cfg;
  cfg.locations_per_region = 1;
  cfg.eyeballs_per_region = 2;
  cfg.blocks_per_eyeball = 4;
  const auto topo = net::make_topology(cfg);
  ShardedQuartetBuilder builder{topo.get(), analysis::BadnessThresholds{}, 4};
  std::map<std::size_t, int> per_shard;
  for (const auto& block : topo->blocks()) {
    const auto shard = builder.shard_of(block.block);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(shard, builder.shard_of(block.block));  // stable
    ++per_shard[shard];
  }
  // The hash must actually spread the (sequentially allocated) /24s.
  EXPECT_GT(per_shard.size(), 1u);
}

TEST_F(IngestEngineTest, SubmitAfterCloseDropsAndCounts) {
  const sim::TelemetryGenerator gen{topo_, &faults_};
  IngestConfig cfg;
  cfg.shards = 2;
  IngestEngine engine{topo_, analysis::BadnessThresholds{}, cfg};
  std::vector<analysis::RttRecord> records;
  gen.generate_records_shuffled(noon_bucket(), [&](const auto& record) {
    records.push_back(record);
  });
  ASSERT_GT(records.size(), 4u);

  engine.submit(records[0]);
  engine.close();
  // A closed engine never blocks or loses records silently: each late
  // submit is dropped and accounted.
  engine.submit(records[1]);
  engine.submit(records[2]);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.records_in, 1u);
  EXPECT_EQ(stats.closed_dropped, 2u);
  // close() is idempotent (the destructor calls it again).
  engine.close();
}

TEST_F(IngestEngineTest, RegistryMirrorsIngestCounters) {
  const sim::TelemetryGenerator gen{topo_, &faults_};
  obs::Registry registry;
  IngestConfig cfg;
  cfg.shards = 2;
  cfg.registry = &registry;
  IngestEngine engine{topo_, analysis::BadnessThresholds{}, cfg};
  std::size_t submitted = 0;
  gen.generate_records_shuffled(noon_bucket(), [&](const auto& record) {
    engine.submit(record);
    ++submitted;
  });
  engine.advance_watermark(
      engine.watermark_to_finalize(noon_bucket()).plus_minutes(1));
  engine.flush();
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("ingest.records_in"),
            static_cast<std::uint64_t>(submitted));
  EXPECT_EQ(snap.counter_value("ingest.late_dropped").value_or(0), 0u);
  // The ring high-water gauge saw at least one published batch.
  EXPECT_GE(snap.gauge_value("ingest.ring_high_water").value_or(0.0), 1.0);
}

// Determinism across the ring/batch knobs: every combination of shard
// count, batch size, and ring capacity produces the exact quartet set of
// the single-threaded QuartetBuilder — including bit-identical means. This
// is the acceptance criterion for the lock-free handoff: the ring and the
// barrier-sequenced control channel may change WHEN work happens, never
// WHAT is computed.
TEST_F(IngestEngineTest, DeterministicAcrossBatchAndCapacityKnobs) {
  const sim::TelemetryGenerator gen{topo_, &faults_};
  const auto bucket = noon_bucket();

  analysis::QuartetBuilder reference{topo_, analysis::BadnessThresholds{}};
  gen.generate_records_shuffled(
      bucket, [&](const analysis::RttRecord& r) { reference.add(r); });
  const auto expected = canonical(reference.take_bucket(bucket));
  ASSERT_FALSE(expected.empty());

  struct Knobs {
    std::size_t batch_records;
    std::size_t queue_batches;
  };
  for (const int shards : {1, 2, 4, 8}) {
    for (const Knobs knobs : {Knobs{1, 2}, Knobs{7, 1}, Knobs{64, 2},
                              Knobs{256, 64}}) {
      IngestConfig cfg;
      cfg.shards = shards;
      cfg.batch_records = knobs.batch_records;
      cfg.queue_batches = knobs.queue_batches;
      IngestEngine engine{topo_, analysis::BadnessThresholds{}, cfg};
      gen.generate_records_shuffled(
          bucket, [&](const analysis::RttRecord& r) { engine.submit(r); });
      engine.advance_watermark(engine.watermark_to_finalize(bucket));
      engine.flush();
      EXPECT_EQ(canonical(engine.take_bucket(bucket)), expected)
          << "shards=" << shards << " batch=" << knobs.batch_records
          << " queue_batches=" << knobs.queue_batches;
    }
  }
}

// Hammers stats() from a reader thread while the producer feeds and
// watermarks: every snapshot must satisfy the tear-free invariants — no
// torn slice may ever surface, even mid-flight.
TEST_F(IngestEngineTest, StatsSnapshotsAreTearFreeUnderLoad) {
  const sim::TelemetryGenerator gen{topo_, &faults_};
  IngestConfig cfg;
  cfg.shards = 4;
  cfg.batch_records = 16;  // many small batches: frequent slice updates
  cfg.queue_batches = 2;
  cfg.builder.min_samples = 1;
  IngestEngine engine{topo_, analysis::BadnessThresholds{}, cfg};

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> snapshots{0};
  std::thread reader{[&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto stats = engine.stats();
      std::uint64_t delivered = 0;
      for (const auto& shard : stats.shards) {
        // The per-shard slice invariant: accepted + late == handed over.
        ASSERT_EQ(shard.records + shard.late_dropped, shard.delivered);
        delivered += shard.delivered;
      }
      // Producer counters are published before records become poppable and
      // read after the slices: delivery can never outrun admission.
      ASSERT_LE(delivered, stats.records_in);
      snapshots.fetch_add(1, std::memory_order_relaxed);
    }
  }};

  const auto first = noon_bucket();
  for (int b = 0; b < 4; ++b) {
    const auto bucket = util::TimeBucket{first.index + b};
    gen.generate_records_shuffled(
        bucket, [&](const analysis::RttRecord& r) { engine.submit(r); });
    engine.advance_watermark(engine.watermark_to_finalize(bucket));
  }
  engine.close();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(snapshots.load(), 0u);

  // Quiescent totals are exact.
  const auto stats = engine.stats();
  std::uint64_t delivered = 0;
  for (const auto& shard : stats.shards) delivered += shard.delivered;
  EXPECT_EQ(delivered, stats.records_in);
  EXPECT_EQ(stats.records_out, stats.records_in);
}

}  // namespace
}  // namespace blameit::ingest
