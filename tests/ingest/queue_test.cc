#include "ingest/queue.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace blameit::ingest {
namespace {

TEST(BoundedQueueTest, FifoOrderAndPushStatus) {
  BoundedQueue<int> queue{4};
  EXPECT_EQ(queue.push(1), PushStatus::Ok);
  EXPECT_EQ(queue.push(2), PushStatus::Ok);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.high_water(), 2u);
  EXPECT_EQ(queue.blocked_pushes(), 0u);
}

TEST(BoundedQueueTest, PopDrainsQueuedItemsAfterClose) {
  BoundedQueue<int> queue{4};
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_TRUE(queue.closed());
  // Items queued before close() are still delivered, in order...
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  // ...then pop reports exhaustion instead of blocking forever.
  EXPECT_EQ(queue.pop(), std::nullopt);
  // New pushes are refused and counted.
  EXPECT_EQ(queue.push(3), PushStatus::Closed);
  EXPECT_EQ(queue.dropped_pushes(), 1u);
}

TEST(BoundedQueueTest, CloseWakesBlockedPush) {
  BoundedQueue<int> queue{1};
  ASSERT_EQ(queue.push(1), PushStatus::Ok);
  PushStatus status = PushStatus::Ok;
  std::thread producer{[&] { status = queue.push(2); }};
  // Let the producer reach the full-queue wait, then close underneath it.
  while (queue.blocked_pushes() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  queue.close();
  producer.join();
  EXPECT_EQ(status, PushStatus::Closed);
  EXPECT_EQ(queue.dropped_pushes(), 1u);
  EXPECT_EQ(queue.blocked_pushes(), 1u);
  // The item queued before close survives.
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueueTest, CloseWakesBlockedPop) {
  BoundedQueue<int> queue{1};
  std::optional<int> got{-1};
  std::thread consumer{[&] { got = queue.pop(); }};
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  consumer.join();
  EXPECT_EQ(got, std::nullopt);
}

TEST(BoundedQueueTest, BackpressureReportsOkAfterBlocking) {
  BoundedQueue<int> queue{1};
  ASSERT_EQ(queue.push(1), PushStatus::Ok);
  PushStatus status = PushStatus::Ok;
  std::thread producer{[&] { status = queue.push(2); }};
  while (queue.blocked_pushes() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(queue.pop(), 1);  // frees a slot, waking the producer
  producer.join();
  EXPECT_EQ(status, PushStatus::OkAfterBlocking);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.blocked_pushes(), 1u);
  EXPECT_EQ(queue.dropped_pushes(), 0u);
}

TEST(BoundedQueueTest, CloseIsIdempotent) {
  BoundedQueue<int> queue{2};
  queue.close();
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.pop(), std::nullopt);
}

}  // namespace
}  // namespace blameit::ingest
