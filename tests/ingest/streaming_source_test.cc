#include "ingest/source.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/pipeline.h"
#include "sim/telemetry.h"
#include "sim/traceroute.h"

namespace blameit::ingest {
namespace {

class StreamingSourceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 1;
    cfg.eyeballs_per_region = 2;
    cfg.blocks_per_eyeball = 4;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  static std::vector<analysis::Quartet> sorted_by_key(
      std::vector<analysis::Quartet> quartets) {
    std::sort(quartets.begin(), quartets.end(),
              [](const analysis::Quartet& a, const analysis::Quartet& b) {
                return std::tuple{a.key.block.block, a.key.location.value,
                                  static_cast<int>(a.key.device),
                                  a.key.bucket.index} <
                       std::tuple{b.key.block.block, b.key.location.value,
                                  static_cast<int>(b.key.device),
                                  b.key.bucket.index};
              });
    return quartets;
  }

  static const net::Topology* topo_;
  sim::FaultInjector faults_;
};

const net::Topology* StreamingSourceTest::topo_ = nullptr;

TEST_F(StreamingSourceTest, ServesFinalizedQuartetsPerBucket) {
  const sim::TelemetryGenerator gen{topo_, &faults_};
  IngestConfig cfg;
  cfg.shards = 2;
  IngestEngine engine{topo_, analysis::BadnessThresholds{}, cfg};
  const auto first =
      util::TimeBucket::of(util::MinuteTime::from_day_hour(0, 12));
  StreamingQuartetSource source{
      &engine,
      [&](util::TimeBucket b,
          const std::function<void(const analysis::RttRecord&)>& sink) {
        gen.generate_records_shuffled(b, sink);
      },
      first};

  analysis::QuartetBuilder reference{topo_, analysis::BadnessThresholds{}};
  gen.generate_records_shuffled(
      first, [&](const analysis::RttRecord& r) { reference.add(r); });
  const auto expected = sorted_by_key(reference.take_bucket(first));

  const auto got = source(first);
  ASSERT_FALSE(got.empty());
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, expected[i].key);
    EXPECT_EQ(got[i].sample_count, expected[i].sample_count);
    EXPECT_EQ(got[i].mean_rtt_ms, expected[i].mean_rtt_ms);  // bit-exact
    EXPECT_EQ(got[i].bad, expected[i].bad);
  }
  // A bucket served once is gone; earlier buckets were never fed.
  EXPECT_TRUE(source(first).empty());
  EXPECT_TRUE(source(first.prev()).empty());
}

// BlameItPipeline runs unchanged on the streaming source and agrees with a
// pipeline fed by the single-threaded builder over the same record stream.
TEST_F(StreamingSourceTest, PipelineRunsUnchangedOnStreamingSource) {
  const sim::TelemetryGenerator gen{topo_, &faults_};
  core::BlameItConfig pipeline_cfg;
  pipeline_cfg.expected_rtt_window_days = 2;

  sim::RttModel model{topo_, &faults_};
  sim::TracerouteEngine probes_a{topo_, &model};
  sim::TracerouteEngine probes_b{topo_, &model};

  IngestConfig cfg;
  cfg.shards = 4;
  IngestEngine engine{topo_, analysis::BadnessThresholds{}, cfg};
  StreamingQuartetSource streaming{
      &engine,
      [&](util::TimeBucket b,
          const std::function<void(const analysis::RttRecord&)>& sink) {
        gen.generate_records_shuffled(b, sink);
      }};
  core::BlameItPipeline with_streaming{topo_, &probes_a,
                                       std::move(streaming), pipeline_cfg};

  core::BlameItPipeline with_builder{
      topo_, &probes_b,
      [&](util::TimeBucket b) {
        analysis::QuartetBuilder builder{topo_,
                                         analysis::BadnessThresholds{}};
        gen.generate_records_shuffled(
            b, [&](const analysis::RttRecord& r) { builder.add(r); });
        return sorted_by_key(builder.take_bucket(b));
      },
      pipeline_cfg};

  // Half a day: warm both pipelines on the morning, then step the midday.
  const int warm_buckets = 10 * util::kMinutesPerHour / util::kBucketMinutes;
  for (int b = 0; b < warm_buckets; ++b) {
    with_streaming.warmup_bucket(util::TimeBucket{b});
    with_builder.warmup_bucket(util::TimeBucket{b});
  }
  for (int minute = 10 * util::kMinutesPerHour + 15;
       minute <= 12 * util::kMinutesPerHour; minute += 15) {
    const auto now = util::MinuteTime{minute};
    const auto a = with_streaming.step(now);
    const auto b = with_builder.step(now);
    EXPECT_EQ(a.buckets_processed, b.buckets_processed);
    EXPECT_EQ(a.blames.size(), b.blames.size());
    for (const auto blame : core::kAllBlames) {
      EXPECT_EQ(a.count(blame), b.count(blame)) << "minute " << minute;
    }
    EXPECT_EQ(a.ranked_issues.size(), b.ranked_issues.size());
  }
}

TEST_F(StreamingSourceTest, NullDependenciesThrow) {
  IngestEngine engine{topo_, analysis::BadnessThresholds{}};
  EXPECT_THROW((StreamingQuartetSource{nullptr, [](util::TimeBucket,
                                                   const auto&) {}}),
               std::invalid_argument);
  EXPECT_THROW((StreamingQuartetSource{&engine, nullptr}),
               std::invalid_argument);
}

}  // namespace
}  // namespace blameit::ingest
