// Measurement-plane chaos: deterministic fault draws, engine integration
// (loss / truncation / silent hops / outages), and the telemetry record
// feed's duplication and late re-delivery.
#include "sim/chaos.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/traceroute.h"

namespace blameit::sim {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 1;
    cfg.eyeballs_per_region = 2;
    cfg.blocks_per_eyeball = 4;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  ChaosTest() : model_(topo_, &faults_) {}

  [[nodiscard]] const net::ClientBlock& block() const {
    return topo_->blocks().front();
  }
  [[nodiscard]] net::CloudLocationId home() const {
    return topo_->home_locations(block().block).front();
  }

  static const net::Topology* topo_;
  FaultInjector faults_;
  RttModel model_;
};

const net::Topology* ChaosTest::topo_ = nullptr;

TEST_F(ChaosTest, InvalidRatesThrow) {
  ChaosConfig bad;
  bad.probe_loss_rate = 1.5;
  EXPECT_THROW((ChaosInjector{bad}), std::invalid_argument);
  bad = {};
  bad.hop_timeout_rate = -0.1;
  EXPECT_THROW((ChaosInjector{bad}), std::invalid_argument);
  bad = {};
  bad.late_record_delay_buckets = 0;
  EXPECT_THROW((ChaosInjector{bad}), std::invalid_argument);
}

TEST_F(ChaosTest, DefaultConfigIsInert) {
  const ChaosConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  const ChaosInjector chaos{cfg};
  for (int m = 0; m < 200; ++m) {
    const util::MinuteTime t{m};
    EXPECT_FALSE(chaos.in_outage(t));
    EXPECT_FALSE(chaos.probe_lost(home(), block().block, t, 0));
    EXPECT_EQ(chaos.hop_fate(home(), block().block, t, 0, 0),
              ChaosInjector::HopFate::Respond);
  }
}

TEST_F(ChaosTest, DrawsAreDeterministicAndAttemptIndependent) {
  ChaosConfig cfg;
  cfg.seed = 42;
  cfg.probe_loss_rate = 0.4;
  cfg.hop_timeout_rate = 0.2;
  cfg.silent_as_rate = 0.2;
  const ChaosInjector a{cfg};
  const ChaosInjector b{cfg};
  bool attempts_differ = false;
  for (int m = 0; m < 300; ++m) {
    const util::MinuteTime t{m};
    for (int attempt = 0; attempt < 3; ++attempt) {
      EXPECT_EQ(a.probe_lost(home(), block().block, t, attempt),
                b.probe_lost(home(), block().block, t, attempt));
      EXPECT_EQ(a.hop_fate(home(), block().block, t, attempt, 1),
                b.hop_fate(home(), block().block, t, attempt, 1));
    }
    if (a.probe_lost(home(), block().block, t, 0) !=
        a.probe_lost(home(), block().block, t, 1)) {
      attempts_differ = true;
    }
  }
  // Retries must re-roll: the attempt index changes the fate sometimes.
  EXPECT_TRUE(attempts_differ);
}

TEST_F(ChaosTest, LossRateIsStatisticallyHonored) {
  ChaosConfig cfg;
  cfg.probe_loss_rate = 0.3;
  const ChaosInjector chaos{cfg};
  int lost = 0;
  const int n = 4000;
  for (int m = 0; m < n; ++m) {
    lost += chaos.probe_lost(home(), block().block, util::MinuteTime{m}, 0);
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.3, 0.05);
}

TEST_F(ChaosTest, OutageWindows) {
  ChaosConfig cfg;
  cfg.outages.push_back(
      OutageWindow{util::MinuteTime{100}, 60});
  const ChaosInjector chaos{cfg};
  EXPECT_FALSE(chaos.in_outage(util::MinuteTime{99}));
  EXPECT_TRUE(chaos.in_outage(util::MinuteTime{100}));
  EXPECT_TRUE(chaos.in_outage(util::MinuteTime{159}));
  EXPECT_FALSE(chaos.in_outage(util::MinuteTime{160}));
}

TEST_F(ChaosTest, EngineLossAndOutage) {
  ChaosConfig cfg;
  cfg.probe_loss_rate = 1.0;
  const ChaosInjector chaos{cfg};
  TracerouteEngine engine{topo_, &model_, {}, &chaos};
  const auto lost = engine.trace(home(), block().block, util::MinuteTime{30});
  EXPECT_TRUE(lost.lost);
  EXPECT_FALSE(lost.reached);
  EXPECT_FALSE(lost.in_outage);
  EXPECT_TRUE(lost.hops.empty());
  EXPECT_TRUE(lost.contributions().empty());

  ChaosConfig out_cfg;
  out_cfg.outages.push_back(OutageWindow{util::MinuteTime{0}, 120});
  const ChaosInjector outage{out_cfg};
  TracerouteEngine engine2{topo_, &model_, {}, &outage};
  EXPECT_TRUE(engine2.in_outage(util::MinuteTime{30}));
  const auto r = engine2.trace(home(), block().block, util::MinuteTime{30});
  EXPECT_TRUE(r.lost);
  EXPECT_TRUE(r.in_outage);
}

TEST_F(ChaosTest, EngineTruncationProducesPartialPaths) {
  ChaosConfig cfg;
  cfg.hop_timeout_rate = 0.35;
  const ChaosInjector chaos{cfg};
  TracerouteEngine engine{topo_, &model_, {}, &chaos};
  int truncated = 0;
  int reached = 0;
  for (int m = 0; m < 400; ++m) {
    const auto t = util::MinuteTime{m};
    const auto* route = topo_->routing().route_for(home(), block().block, t);
    ASSERT_NE(route, nullptr);
    const std::size_t full_len = route->middle_ases().size() + 1;
    const auto r = engine.trace(home(), block().block, t);
    EXPECT_FALSE(r.reached && r.truncated);
    if (r.truncated) {
      ++truncated;
      EXPECT_LT(r.hops.size(), full_len);
      // The prefix is still a prefix of the route, in order.
      for (std::size_t i = 0; i < r.hops.size(); ++i) {
        EXPECT_EQ(r.hops[i].as, route->middle_ases()[i]);
      }
    } else if (r.reached) {
      ++reached;
      EXPECT_EQ(r.hops.size(), full_len);
    }
  }
  EXPECT_GT(truncated, 0);
  EXPECT_GT(reached, 0);
}

TEST_F(ChaosTest, SilentAsFoldsContributionIntoNextHop) {
  ChaosConfig cfg;
  cfg.silent_as_rate = 0.5;
  const ChaosInjector chaos{cfg};
  TracerouteEngine engine{topo_, &model_, {}, &chaos};
  bool saw_missing_hop = false;
  for (int m = 0; m < 300; ++m) {
    const auto t = util::MinuteTime{m};
    const auto* route = topo_->routing().route_for(home(), block().block, t);
    ASSERT_NE(route, nullptr);
    const std::size_t full_len = route->middle_ases().size() + 1;
    const auto r = engine.trace(home(), block().block, t);
    if (!r.reached) continue;  // client hop drew Silent → truncated
    if (r.hops.size() < full_len) saw_missing_hop = true;
    // Whatever hops answered, the cumulative arithmetic stays consistent:
    // contributions + cloud_ms sum to the final cumulative RTT.
    double sum = r.cloud_ms;
    for (const auto& [as, ms] : r.contributions()) sum += ms;
    EXPECT_NEAR(sum, r.hops.back().cumulative_rtt_ms, 1e-9);
  }
  EXPECT_TRUE(saw_missing_hop);
}

TEST_F(ChaosTest, AccountantSeparatesSpendFromYield) {
  ChaosConfig cfg;
  cfg.probe_loss_rate = 0.5;
  const ChaosInjector chaos{cfg};
  TracerouteEngine engine{topo_, &model_, {}, &chaos};
  for (int m = 0; m < 100; ++m) {
    (void)engine.trace(home(), block().block, util::MinuteTime{m});
  }
  const auto& acct = engine.accountant();
  EXPECT_EQ(acct.total(), 100u);
  EXPECT_GT(acct.succeeded(), 0u);
  EXPECT_LT(acct.succeeded(), 100u);
  EXPECT_EQ(acct.failed(), acct.total() - acct.succeeded());
  engine.accountant().reset();
  EXPECT_EQ(engine.accountant().total(), 0u);
  EXPECT_EQ(engine.accountant().succeeded(), 0u);
}

TEST_F(ChaosTest, ChaosCountersReportedToRegistry) {
  obs::Registry registry;
  ChaosConfig cfg;
  cfg.probe_loss_rate = 0.3;
  cfg.hop_timeout_rate = 0.1;
  cfg.silent_as_rate = 0.1;
  const ChaosInjector chaos{cfg, &registry};
  TracerouteEngine engine{topo_, &model_, {}, &chaos};
  for (int m = 0; m < 300; ++m) {
    (void)engine.trace(home(), block().block, util::MinuteTime{m});
  }
  const auto snap = registry.snapshot();
  EXPECT_GT(snap.counter_value("chaos.probes_lost").value_or(0), 0u);
  EXPECT_GT(snap.counter_value("chaos.hop_timeouts").value_or(0), 0u);
  EXPECT_GT(snap.counter_value("chaos.silent_hops").value_or(0), 0u);
}

// --- telemetry record feed ------------------------------------------------

analysis::RttRecord record_at(int minute, int n) {
  analysis::RttRecord r;
  r.time = util::MinuteTime{minute};
  r.location = net::CloudLocationId{1};
  r.client_ip = net::Ipv4Addr{static_cast<std::uint32_t>(n)};
  r.rtt_ms = 50.0 + n;
  return r;
}

TEST_F(ChaosTest, RecordFeedDuplicates) {
  ChaosConfig cfg;
  cfg.duplicate_record_rate = 1.0;
  const ChaosInjector chaos{cfg};
  ChaosRecordFeed feed{&chaos, [](util::TimeBucket bucket,
                                  const ChaosRecordFeed::Sink& sink) {
                         for (int i = 0; i < 10; ++i) {
                           sink(record_at(
                               static_cast<int>(bucket.start().minutes), i));
                         }
                       }};
  int emitted = 0;
  feed(util::TimeBucket{0}, [&](const analysis::RttRecord&) { ++emitted; });
  EXPECT_EQ(emitted, 20);
  EXPECT_EQ(feed.duplicated(), 10u);
}

TEST_F(ChaosTest, RecordFeedDelaysAndRedelivers) {
  ChaosConfig cfg;
  cfg.late_record_rate = 1.0;
  cfg.late_record_delay_buckets = 2;
  const ChaosInjector chaos{cfg};
  ChaosRecordFeed feed{&chaos, [](util::TimeBucket bucket,
                                  const ChaosRecordFeed::Sink& sink) {
                         // Only bucket 0 carries records.
                         if (bucket.index == 0) {
                           for (int i = 0; i < 5; ++i) sink(record_at(0, i));
                         }
                       }};
  std::vector<analysis::RttRecord> got;
  const auto sink = [&](const analysis::RttRecord& r) { got.push_back(r); };
  feed(util::TimeBucket{0}, sink);
  EXPECT_TRUE(got.empty());  // all held back
  feed(util::TimeBucket{1}, sink);
  EXPECT_TRUE(got.empty());  // not due yet
  feed(util::TimeBucket{2}, sink);
  ASSERT_EQ(got.size(), 5u);  // re-delivered two buckets late, payload intact
  EXPECT_EQ(got.front().time, util::MinuteTime{0});
  EXPECT_EQ(feed.delayed(), 5u);
}

TEST_F(ChaosTest, RecordFeedIsDeterministic) {
  ChaosConfig cfg;
  cfg.duplicate_record_rate = 0.3;
  cfg.late_record_rate = 0.2;
  const ChaosInjector chaos{cfg};
  const auto run = [&] {
    ChaosRecordFeed feed{&chaos, [](util::TimeBucket bucket,
                                    const ChaosRecordFeed::Sink& sink) {
                           for (int i = 0; i < 50; ++i) {
                             sink(record_at(
                                 static_cast<int>(bucket.start().minutes), i));
                           }
                         }};
    std::vector<double> rtts;
    for (int b = 0; b < 8; ++b) {
      feed(util::TimeBucket{b},
           [&](const analysis::RttRecord& r) { rtts.push_back(r.rtt_ms); });
    }
    return rtts;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(ChaosTest, UnreachedResultContributionsAreEmpty) {
  // Regression: contributions() on results that never produced a hop —
  // default-constructed, lost, no-route — must return empty, not read
  // nonexistent hops.
  TracerouteResult empty;
  EXPECT_TRUE(empty.contributions().empty());

  TracerouteEngine engine{topo_, &model_};
  const auto no_route =
      engine.trace(home(), net::Slash24{0xFFFFFF}, util::MinuteTime{0});
  EXPECT_FALSE(no_route.reached);
  EXPECT_TRUE(no_route.no_route);
  EXPECT_TRUE(no_route.contributions().empty());
}

/// A routing state with a synthetic churn log: three /16s at one location,
/// each changing paths once per hour over four hours (12 PathChange events
/// plus the 3 time-0 Announces).
struct ChurnFixture {
  net::MiddleSegmentInterner interner;
  net::RoutingState routing{&interner};
  const net::CloudLocationId loc{1};

  ChurnFixture() {
    const net::AsId cloud{8075};
    const net::AsId client{64500};
    std::vector<net::Prefix> prefixes;
    for (std::uint32_t p = 0; p < 3; ++p) {
      const net::Prefix prefix{(10u << 24) | (p << 16), 16};
      prefixes.push_back(prefix);
      routing.announce(loc, prefix, {cloud, net::AsId{100 + p}, client});
    }
    for (int hour = 1; hour <= 4; ++hour) {
      for (std::uint32_t p = 0; p < 3; ++p) {
        routing.change_path(
            loc, prefixes[p],
            util::MinuteTime{hour * 60 + static_cast<int>(p)},
            {cloud, net::AsId{200 + 10 * hour + p}, client});
      }
    }
  }

  /// Identity key for exactly-once accounting across fetch windows.
  static std::uint64_t key_of(const net::ChurnEvent& ev) {
    return (static_cast<std::uint64_t>(ev.time.minutes) << 40) ^
           (static_cast<std::uint64_t>(ev.prefix.network) << 8) ^
           static_cast<std::uint64_t>(ev.kind);
  }
};

TEST_F(ChaosTest, ChurnFeedInertInjectorMatchesRawLog) {
  const ChurnFixture fx;
  const util::MinuteTime from{0};
  const util::MinuteTime to{300};
  const auto raw = fx.routing.churn_between(from, to);
  ASSERT_EQ(raw.size(), 15u);  // 3 announces + 12 path changes

  const auto with_null = fetch_churn(fx.routing, nullptr, from, to);
  const ChaosInjector inert{ChaosConfig{}};
  const auto with_inert = fetch_churn(fx.routing, &inert, from, to);
  ASSERT_EQ(with_null.size(), raw.size());
  ASSERT_EQ(with_inert.size(), raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(ChurnFixture::key_of(with_null[i]),
              ChurnFixture::key_of(raw[i]));
    EXPECT_EQ(ChurnFixture::key_of(with_inert[i]),
              ChurnFixture::key_of(raw[i]));
  }
}

TEST_F(ChaosTest, ChurnFeedTotalLossDegradesToEmptyFeed) {
  // A fully lossy listener feed silences every event; the routing plane
  // itself is untouched, so consumers degrade to churn-blind behavior
  // rather than seeing corrupt events.
  const ChurnFixture fx;
  ChaosConfig cfg;
  cfg.churn_feed_loss_rate = 1.0;
  const ChaosInjector chaos{cfg};
  EXPECT_TRUE(
      fetch_churn(fx.routing, &chaos, util::MinuteTime{0},
                  util::MinuteTime{300}).empty());
  // Ground truth unaffected: the raw log still has every event.
  EXPECT_EQ(fx.routing.churn_between(util::MinuteTime{0},
                                     util::MinuteTime{300}).size(), 15u);
}

TEST_F(ChaosTest, ChurnFeedDelayDeliversExactlyOnceLate) {
  // delay_rate 1.0: every event surfaces exactly once, in the fetch window
  // covering time + delay, never in its own window.
  const ChurnFixture fx;
  ChaosConfig cfg;
  cfg.churn_feed_delay_rate = 1.0;
  cfg.churn_feed_delay_minutes = 30;
  const ChaosInjector chaos{cfg};

  std::map<std::uint64_t, int> seen;
  std::map<std::uint64_t, int> window_of;
  for (int w = 0; w < 6; ++w) {
    const util::MinuteTime from{w * 60};
    const util::MinuteTime to{(w + 1) * 60};
    for (const auto& ev : fetch_churn(fx.routing, &chaos, from, to)) {
      ++seen[ChurnFixture::key_of(ev)];
      window_of[ChurnFixture::key_of(ev)] = w;
      // Deferred delivery: the event's own time predates this window.
      EXPECT_LT(ev.time.minutes + 30, to.minutes);
      EXPECT_GE(ev.time.minutes + 30, from.minutes);
    }
  }
  const auto all = fx.routing.churn_between(util::MinuteTime{0},
                                            util::MinuteTime{360});
  ASSERT_EQ(seen.size(), all.size());
  for (const auto& ev : all) {
    const auto key = ChurnFixture::key_of(ev);
    EXPECT_EQ(seen[key], 1) << "event must surface exactly once";
    EXPECT_EQ(window_of[key], (ev.time.minutes + 30) / 60);
  }
}

TEST_F(ChaosTest, ChurnFeedMixedChaosIsDeterministicAndAtMostOnce) {
  // Partial loss + delay: every event surfaces at most once across
  // contiguous windows, fates are stable across injector instances, and
  // at these rates both outcomes actually occur.
  const ChurnFixture fx;
  ChaosConfig cfg;
  cfg.seed = 7;
  cfg.churn_feed_loss_rate = 0.3;
  cfg.churn_feed_delay_rate = 0.3;
  cfg.churn_feed_delay_minutes = 45;
  const ChaosInjector a{cfg};
  const ChaosInjector b{cfg};

  std::map<std::uint64_t, int> seen;
  for (int w = 0; w < 6; ++w) {
    const util::MinuteTime from{w * 60};
    const util::MinuteTime to{(w + 1) * 60};
    const auto got_a = fetch_churn(fx.routing, &a, from, to);
    const auto got_b = fetch_churn(fx.routing, &b, from, to);
    ASSERT_EQ(got_a.size(), got_b.size());
    for (std::size_t i = 0; i < got_a.size(); ++i) {
      EXPECT_EQ(ChurnFixture::key_of(got_a[i]),
                ChurnFixture::key_of(got_b[i]));
      ++seen[ChurnFixture::key_of(got_a[i])];
    }
  }
  const auto all = fx.routing.churn_between(util::MinuteTime{0},
                                            util::MinuteTime{360});
  EXPECT_LE(seen.size(), all.size());
  EXPECT_GT(seen.size(), 0u);
  EXPECT_LT(seen.size(), all.size());  // some events were dropped
  for (const auto& [key, n] : seen) EXPECT_EQ(n, 1);
}

TEST_F(ChaosTest, ChurnRateValidation) {
  ChaosConfig bad;
  bad.churn_feed_loss_rate = 1.5;
  EXPECT_THROW((ChaosInjector{bad}), std::invalid_argument);
  bad = {};
  bad.churn_feed_delay_rate = -0.1;
  EXPECT_THROW((ChaosInjector{bad}), std::invalid_argument);
  bad = {};
  bad.churn_feed_delay_minutes = 0;
  EXPECT_THROW((ChaosInjector{bad}), std::invalid_argument);
  ChaosConfig churn_only;
  churn_only.churn_feed_loss_rate = 0.1;
  EXPECT_TRUE(churn_only.any_control_plane_chaos());
  EXPECT_TRUE(churn_only.enabled());
  EXPECT_FALSE(churn_only.any_probe_chaos());
  EXPECT_FALSE(churn_only.any_telemetry_chaos());
}

}  // namespace
}  // namespace blameit::sim
