#include "sim/scenario.h"

#include <gtest/gtest.h>

#include <map>

namespace blameit::sim {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { topo_ = net::make_topology().release(); }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  static const net::Topology* topo_;
};

const net::Topology* ScenarioTest::topo_ = nullptr;

TEST_F(ScenarioTest, CaseStudiesMatchThePaper) {
  const auto incidents =
      make_case_studies(*topo_, util::MinuteTime::from_days(1));
  ASSERT_EQ(incidents.size(), 5u);

  EXPECT_EQ(incidents[0].name, "brazil-maintenance");
  EXPECT_EQ(incidents[0].kind, FaultKind::CloudLocation);
  EXPECT_EQ(incidents[0].culprit_as, topo_->cloud_as());
  EXPECT_EQ(topo_->location(incidents[0].cloud_location).region,
            net::Region::Brazil);

  EXPECT_EQ(incidents[1].name, "us-peering-fault");
  EXPECT_EQ(incidents[1].kind, FaultKind::MiddleAs);
  EXPECT_EQ(topo_->registry().at(incidents[1].target_as).type,
            net::AsType::Transit);

  EXPECT_EQ(incidents[2].name, "australia-overload");
  EXPECT_EQ(incidents[2].kind, FaultKind::CloudLocation);

  EXPECT_EQ(incidents[3].name, "east-asia-traffic-shift");
  EXPECT_TRUE(incidents[3].via_override);
  EXPECT_FALSE(incidents[3].culprit_as.has_value());
  EXPECT_EQ(topo_->location(incidents[3].override_to).region,
            net::Region::UnitedStates);

  EXPECT_EQ(incidents[4].name, "italy-client-isp");
  EXPECT_EQ(incidents[4].kind, FaultKind::ClientAs);
  EXPECT_EQ(topo_->registry().at(incidents[4].target_as).type,
            net::AsType::Eyeball);

  // Sequential, non-overlapping schedule.
  for (std::size_t i = 1; i < incidents.size(); ++i) {
    EXPECT_GE(incidents[i].start, incidents[i - 1].end());
  }
}

TEST_F(ScenarioTest, ApplyIncidentInstallsFault) {
  const auto incidents =
      make_case_studies(*topo_, util::MinuteTime::from_days(1));
  FaultInjector injector;
  TelemetryGenerator generator{topo_, &injector};
  apply_incidents(incidents, injector, &generator);
  // 4 fault-based incidents installed; the override one went to the
  // generator.
  EXPECT_EQ(injector.faults().size(), 4u);
  const auto mid = incidents[1].start.plus_minutes(30);
  EXPECT_TRUE(injector.any_active(mid));
}

TEST_F(ScenarioTest, OverrideIncidentNeedsGenerator) {
  const auto incidents =
      make_case_studies(*topo_, util::MinuteTime::from_days(1));
  FaultInjector injector;
  EXPECT_THROW(apply_incident(incidents[3], injector, nullptr),
               std::invalid_argument);
}

TEST_F(ScenarioTest, SuiteHasRequestedCountAndMix) {
  IncidentSuiteConfig cfg;
  cfg.count = 88;
  cfg.first_start = util::MinuteTime::from_days(1);
  const auto suite = make_incident_suite(*topo_, cfg);
  ASSERT_EQ(suite.size(), 88u);

  std::map<FaultKind, int> mix;
  for (const auto& inc : suite) ++mix[inc.kind];
  // All four categories present, middle the most common (cfg weights).
  EXPECT_GT(mix[FaultKind::CloudLocation], 0);
  EXPECT_GT(mix[FaultKind::MiddleAs], mix[FaultKind::CloudLocation]);
  EXPECT_GT(mix[FaultKind::ClientAs], 0);
  EXPECT_GT(mix[FaultKind::ClientBlock], 0);
}

TEST_F(ScenarioTest, SuiteIncidentsNeverOverlapWithinRegion) {
  IncidentSuiteConfig cfg;
  cfg.count = 60;
  cfg.first_start = util::MinuteTime::from_days(1);
  const auto suite = make_incident_suite(*topo_, cfg);
  std::map<net::Region, util::MinuteTime> last_end;
  for (const auto& inc : suite) {
    const auto it = last_end.find(inc.region);
    if (it != last_end.end()) {
      EXPECT_GE(inc.start, it->second) << inc.name;
    }
    const auto end = inc.end();
    if (!last_end.contains(inc.region) || end > last_end[inc.region]) {
      last_end[inc.region] = end;
    }
  }
}

TEST_F(ScenarioTest, SuiteGroundTruthConsistent) {
  IncidentSuiteConfig cfg;
  cfg.count = 40;
  cfg.first_start = util::MinuteTime::from_days(1);
  const auto suite = make_incident_suite(*topo_, cfg);
  for (const auto& inc : suite) {
    ASSERT_TRUE(inc.culprit_as.has_value()) << inc.name;
    switch (inc.kind) {
      case FaultKind::CloudLocation:
        EXPECT_EQ(*inc.culprit_as, topo_->cloud_as());
        EXPECT_EQ(topo_->location(inc.cloud_location).region, inc.region);
        break;
      case FaultKind::MiddleAs:
        EXPECT_EQ(topo_->registry().at(*inc.culprit_as).type,
                  net::AsType::Transit);
        break;
      case FaultKind::ClientAs:
        EXPECT_EQ(topo_->registry().at(*inc.culprit_as).type,
                  net::AsType::Eyeball);
        break;
      case FaultKind::ClientBlock: {
        const auto* block = topo_->find_block(inc.block);
        ASSERT_NE(block, nullptr);
        EXPECT_EQ(*inc.culprit_as, block->client_as);
        break;
      }
    }
    EXPECT_GE(inc.duration_minutes, cfg.min_duration_minutes);
    EXPECT_LE(inc.duration_minutes, cfg.max_duration_minutes);
    // Magnitude clears the region target so badness triggers.
    EXPECT_GT(inc.added_ms,
              net::region_profile(inc.region).rtt_target_ms * 0.8);
  }
}

TEST_F(ScenarioTest, SuiteDeterministicPerSeed) {
  IncidentSuiteConfig cfg;
  cfg.count = 20;
  cfg.first_start = util::MinuteTime::from_days(1);
  const auto a = make_incident_suite(*topo_, cfg);
  const auto b = make_incident_suite(*topo_, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_DOUBLE_EQ(a[i].added_ms, b[i].added_ms);
  }
  cfg.seed = 777;
  const auto c = make_incident_suite(*topo_, cfg);
  bool different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != c[i].kind || a[i].added_ms != c[i].added_ms) {
      different = true;
      break;
    }
  }
  EXPECT_TRUE(different);
}

TEST_F(ScenarioTest, ApplyIncidentErrorsNameTheIncident) {
  // A missing required sink must hard-error WITH the incident's name —
  // silently skipping would let the run score against a ground truth that
  // was never injected.
  Incident plain;
  plain.name = "forgotten-fault";
  plain.kind = FaultKind::MiddleAs;
  try {
    apply_incident(plain, ApplyTargets{});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("forgotten-fault"),
              std::string::npos)
        << e.what();
  }

  FaultInjector injector;
  Incident steer;
  steer.name = "silent-resteer";
  steer.via_override = true;
  try {
    apply_incident(steer, ApplyTargets{.injector = &injector});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("silent-resteer"), std::string::npos) << msg;
    EXPECT_NE(msg.find("TelemetryGenerator"), std::string::npos) << msg;
  }

  Incident hijack;
  hijack.name = "routeless-hijack";
  hijack.kind = FaultKind::MiddleAs;
  hijack.disruption = RouteDisruption::Hijack;
  try {
    apply_incident(hijack, ApplyTargets{.injector = &injector});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("routeless-hijack"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Topology"), std::string::npos) << msg;
  }
}

TEST_F(ScenarioTest, ResolveRouteDisruptionFillsGroundTruth) {
  Incident inc;
  inc.name = "hijack";
  inc.region = net::Region::Europe;
  inc.disruption = RouteDisruption::Hijack;
  inc.start = util::MinuteTime::from_days(1);
  inc.duration_minutes = 120;
  resolve_route_disruption(*topo_, inc);
  EXPECT_EQ(inc.kind, FaultKind::MiddleAs);
  ASSERT_TRUE(inc.culprit_as.has_value());
  EXPECT_EQ(inc.target_as, *inc.culprit_as);
  EXPECT_EQ(topo_->location(inc.disrupt_location).region,
            net::Region::Europe);
  // Resolution is deterministic: same incident, same culprit.
  Incident again = inc;
  again.culprit_as.reset();
  again.target_as = net::AsId{};
  resolve_route_disruption(*topo_, again);
  EXPECT_EQ(again.target_as, inc.target_as);

  // Flap storms: no single AS failed, only the category is well-defined.
  Incident flap = inc;
  flap.name = "flap";
  flap.disruption = RouteDisruption::FlapStorm;
  flap.culprit_as.reset();
  flap.target_as = net::AsId{};
  resolve_route_disruption(*topo_, flap);
  EXPECT_FALSE(flap.culprit_as.has_value());
  EXPECT_NE(flap.target_as, net::AsId{});

  Incident none;
  none.name = "not-a-disruption";
  EXPECT_THROW(resolve_route_disruption(*topo_, none),
               std::invalid_argument);
}

TEST_F(ScenarioTest, RouteDisruptionsInstallChurn) {
  // Mutating test: use a private topology, not the shared fixture.
  const auto topo = net::make_topology();
  FaultInjector injector;
  const ApplyTargets targets{.injector = &injector, .topology = topo.get()};

  Incident hijack;
  hijack.name = "hijack";
  hijack.region = net::Region::Europe;
  hijack.disruption = RouteDisruption::Hijack;
  hijack.start = util::MinuteTime::from_days(1);
  hijack.duration_minutes = 120;
  resolve_route_disruption(*topo, hijack);
  apply_incident(hijack, targets);
  const auto hijack_churn =
      topo->routing().churn_between(hijack.start, hijack.end());
  EXPECT_FALSE(hijack_churn.empty());

  // A flap storm churns repeatedly: period 30 over 120 minutes means each
  // disrupted pair flips away and back twice inside the window.
  Incident flap;
  flap.name = "flap";
  flap.region = net::Region::India;
  flap.disruption = RouteDisruption::FlapStorm;
  flap.flap_period_minutes = 30;
  flap.start = util::MinuteTime::from_days(2);
  flap.duration_minutes = 120;
  resolve_route_disruption(*topo, flap);
  apply_incident(flap, targets);
  const auto flap_churn =
      topo->routing().churn_between(flap.start, flap.end());
  EXPECT_GE(flap_churn.size(), 4u);
  // No latency fault rides along when added_ms == 0: only the routing plane
  // moved.
  EXPECT_TRUE(injector.faults().empty());
}

TEST_F(ScenarioTest, TrafficSurgeScalesVolumeOnlyInsideWindow) {
  FaultInjector injector;
  TelemetryGenerator plain{topo_, &injector};
  TelemetryGenerator surged{topo_, &injector};
  const auto start = util::MinuteTime::from_days(1).plus_minutes(10 * 60);
  surged.add_surge(TrafficSurge{.start = start,
                                .duration_minutes = 60,
                                .region = net::Region::UnitedStates,
                                .multiplier = 4.0});
  EXPECT_DOUBLE_EQ(
      surged.surge_factor(net::Region::UnitedStates, start.plus_minutes(5)),
      4.0);
  EXPECT_DOUBLE_EQ(surged.surge_factor(net::Region::India, start), 1.0);
  EXPECT_DOUBLE_EQ(surged.surge_factor(net::Region::UnitedStates,
                                       start.plus_minutes(60)),
                   1.0);

  const auto volumes = [&](const TelemetryGenerator& g,
                           util::TimeBucket bucket) {
    std::map<net::Region, long> per_region;
    g.generate_aggregates(bucket, [&](const analysis::QuartetKey& key, int n,
                                      double) {
      const auto* block = topo_->find_block(key.block);
      ASSERT_NE(block, nullptr);
      per_region[block->region] += n;
    });
    return per_region;
  };

  const auto in_window = util::TimeBucket::of(start.plus_minutes(5));
  const auto before = util::TimeBucket::of(start.plus_minutes(-60));
  // Inside the window only the surged region grows (~4x).
  const auto plain_in = volumes(plain, in_window);
  const auto surged_in = volumes(surged, in_window);
  EXPECT_GT(surged_in.at(net::Region::UnitedStates),
            3 * plain_in.at(net::Region::UnitedStates));
  EXPECT_EQ(surged_in.at(net::Region::India),
            plain_in.at(net::Region::India));
  // Outside the window the no-surge path is untouched.
  EXPECT_EQ(volumes(plain, before), volumes(surged, before));

  EXPECT_THROW(surged.add_surge(TrafficSurge{.start = start,
                                             .duration_minutes = 0,
                                             .region = net::Region::India,
                                             .multiplier = 2.0}),
               std::invalid_argument);
  EXPECT_THROW(surged.add_surge(TrafficSurge{.start = start,
                                             .duration_minutes = 30,
                                             .region = net::Region::India,
                                             .multiplier = 0.0}),
               std::invalid_argument);
}

TEST_F(ScenarioTest, SuiteConfigValidation) {
  IncidentSuiteConfig bad;
  bad.count = 0;
  EXPECT_THROW((void)make_incident_suite(*topo_, bad), std::invalid_argument);
  bad = {};
  bad.min_duration_minutes = 1;  // below bucket size
  EXPECT_THROW((void)make_incident_suite(*topo_, bad), std::invalid_argument);
  bad = {};
  bad.cloud_weight = bad.middle_weight = bad.client_as_weight =
      bad.client_block_weight = 0.0;
  EXPECT_THROW((void)make_incident_suite(*topo_, bad), std::invalid_argument);
}

}  // namespace
}  // namespace blameit::sim
