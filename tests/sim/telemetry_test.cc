#include "sim/telemetry.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "analysis/quartet.h"

namespace blameit::sim {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 2;
    cfg.eyeballs_per_region = 2;
    cfg.blocks_per_eyeball = 4;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  static util::TimeBucket noon_bucket() {
    return util::TimeBucket::of(util::MinuteTime::from_day_hour(0, 12));
  }

  static const net::Topology* topo_;
  FaultInjector faults_;
};

const net::Topology* TelemetryTest::topo_ = nullptr;

TEST_F(TelemetryTest, AggregatesCoverActiveBlocks) {
  const TelemetryGenerator gen{topo_, &faults_};
  std::unordered_map<std::uint32_t, int> per_block;
  gen.generate_aggregates(noon_bucket(),
                          [&](const analysis::QuartetKey& key, int n,
                              double mean) {
                            EXPECT_GT(n, 0);
                            EXPECT_GT(mean, 0.0);
                            ++per_block[key.block.block];
                          });
  // At midday nearly every block should produce at least one quartet.
  EXPECT_GT(per_block.size(), topo_->blocks().size() * 3 / 4);
}

TEST_F(TelemetryTest, AggregatesDeterministic) {
  const TelemetryGenerator a{topo_, &faults_};
  const TelemetryGenerator b{topo_, &faults_};
  std::vector<std::tuple<std::uint32_t, int, double>> ra;
  std::vector<std::tuple<std::uint32_t, int, double>> rb;
  a.generate_aggregates(noon_bucket(),
                        [&](const analysis::QuartetKey& k, int n, double m) {
                          ra.emplace_back(k.block.block, n, m);
                        });
  b.generate_aggregates(noon_bucket(),
                        [&](const analysis::QuartetKey& k, int n, double m) {
                          rb.emplace_back(k.block.block, n, m);
                        });
  EXPECT_EQ(ra, rb);
}

TEST_F(TelemetryTest, RecordsMatchAggregateCounts) {
  const TelemetryGenerator gen{topo_, &faults_};
  const auto bucket = noon_bucket();
  std::unordered_map<std::uint64_t, int> record_counts;
  gen.generate_records(bucket, [&](const analysis::RttRecord& r) {
    EXPECT_GE(r.time, bucket.start());
    EXPECT_LT(r.time.minutes, bucket.start().minutes + util::kBucketMinutes);
    const auto key =
        (std::uint64_t{net::Slash24::of(r.client_ip).block} << 24) |
        (std::uint64_t{r.location.value} << 8) |
        static_cast<std::uint64_t>(r.device);
    ++record_counts[key];
  });
  std::unordered_map<std::uint64_t, int> agg_counts;
  gen.generate_aggregates(bucket, [&](const analysis::QuartetKey& k, int n,
                                      double) {
    const auto key = (std::uint64_t{k.block.block} << 24) |
                     (std::uint64_t{k.location.value} << 8) |
                     static_cast<std::uint64_t>(k.device);
    agg_counts[key] = n;
  });
  EXPECT_EQ(record_counts.size(), agg_counts.size());
  for (const auto& [key, n] : agg_counts) {
    EXPECT_EQ(record_counts[key], n);
  }
}

TEST_F(TelemetryTest, RecordsFeedQuartetBuilderConsistently) {
  // Record path -> QuartetBuilder must give means close to the aggregate
  // path (same model, different noise draws).
  const TelemetryGenerator gen{topo_, &faults_};
  const auto bucket = noon_bucket();
  analysis::QuartetBuilder builder{topo_, analysis::BadnessThresholds{}};
  gen.generate_records(bucket, [&](const analysis::RttRecord& r) {
    builder.add(r);
  });
  std::unordered_map<std::uint64_t, double> agg_means;
  gen.generate_aggregates(bucket, [&](const analysis::QuartetKey& k, int n,
                                      double mean) {
    if (n >= 40) {  // high-sample quartets: outlier draws wash out
      agg_means[analysis::QuartetKeyHash{}(k)] = mean;
    }
  });
  const auto quartets = builder.take_bucket(bucket);
  ASSERT_FALSE(quartets.empty());
  int compared = 0;
  for (const auto& q : quartets) {
    const auto it = agg_means.find(analysis::QuartetKeyHash{}(q.key));
    if (it == agg_means.end()) continue;
    // The two paths draw independent noise (including rare 2-5x outliers),
    // so means of ~40 samples can differ by tens of percent.
    EXPECT_NEAR(q.mean_rtt_ms, it->second,
                std::max(q.mean_rtt_ms * 0.4, 15.0));
    ++compared;
  }
  EXPECT_GT(compared, 3);
}

TEST_F(TelemetryTest, OverrideRedirectsRegion) {
  TelemetryGenerator gen{topo_, &faults_};
  const auto us_loc = topo_->locations_in(net::Region::UnitedStates).front();
  const auto bucket = noon_bucket();
  gen.add_override(TrafficOverride{.start = bucket.start(),
                                   .duration_minutes = 60,
                                   .client_region = net::Region::EastAsia,
                                   .to_location = us_loc});
  for (const auto& block : topo_->blocks()) {
    const auto locs = gen.connected_locations(block, bucket);
    if (block.region == net::Region::EastAsia) {
      ASSERT_EQ(locs.size(), 1u);
      EXPECT_EQ(locs[0], us_loc);
    } else {
      EXPECT_EQ(topo_->location(locs[0]).region, block.region);
    }
  }
  // Outside the override window, East Asia goes home again.
  const auto later =
      util::TimeBucket::of(util::MinuteTime::from_day_hour(0, 14));
  for (const auto& block : topo_->blocks()) {
    if (block.region != net::Region::EastAsia) continue;
    EXPECT_EQ(topo_->location(gen.connected_locations(block, later)[0]).region,
              net::Region::EastAsia);
  }
}

TEST_F(TelemetryTest, OverrideInflatesRtt) {
  TelemetryGenerator gen{topo_, &faults_};
  const auto us_loc = topo_->locations_in(net::Region::UnitedStates).front();
  const auto bucket = noon_bucket();
  gen.add_override(TrafficOverride{.start = bucket.start(),
                                   .duration_minutes = 60,
                                   .client_region = net::Region::EastAsia,
                                   .to_location = us_loc});
  const TelemetryGenerator plain{topo_, &faults_};
  double shifted_sum = 0.0;
  int shifted_n = 0;
  double home_sum = 0.0;
  int home_n = 0;
  auto collect = [&](const TelemetryGenerator& g, double& sum, int& n) {
    g.generate_aggregates(bucket, [&](const analysis::QuartetKey& k, int cnt,
                                      double mean) {
      const auto* cb = topo_->find_block(k.block);
      if (cb && cb->region == net::Region::EastAsia &&
          k.device == net::DeviceClass::NonMobile) {
        sum += mean * cnt;
        n += cnt;
      }
    });
  };
  collect(gen, shifted_sum, shifted_n);
  collect(plain, home_sum, home_n);
  ASSERT_GT(shifted_n, 0);
  ASSERT_GT(home_n, 0);
  // Transpacific detour must add tens of milliseconds.
  EXPECT_GT(shifted_sum / shifted_n, home_sum / home_n + 30.0);
}

TEST_F(TelemetryTest, NightVolumeLowerThanNoon) {
  const TelemetryGenerator gen{topo_, &faults_};
  auto volume = [&](util::TimeBucket b) {
    long total = 0;
    gen.generate_aggregates(
        b, [&](const analysis::QuartetKey&, int n, double) { total += n; });
    return total;
  };
  const auto night =
      util::TimeBucket::of(util::MinuteTime::from_day_hour(0, 4));
  EXPECT_GT(volume(noon_bucket()), volume(night));
}

TEST_F(TelemetryTest, InvalidConfigThrows) {
  TelemetryConfig bad;
  bad.secondary_volume_fraction = 2.0;
  EXPECT_THROW((TelemetryGenerator{topo_, &faults_, bad}),
               std::invalid_argument);
  TelemetryGenerator gen{topo_, &faults_};
  EXPECT_THROW(gen.add_override(TrafficOverride{}), std::invalid_argument);
}

}  // namespace
}  // namespace blameit::sim
