#include "sim/population.h"

#include <gtest/gtest.h>

#include <memory>

namespace blameit::sim {
namespace {

class PopulationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 1;
    cfg.eyeballs_per_region = 2;
    cfg.blocks_per_eyeball = 4;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  static const net::Topology* topo_;
};

const net::Topology* PopulationTest::topo_ = nullptr;

TEST_F(PopulationTest, DiurnalFactorInUnitRange) {
  const Population pop{topo_, {}, 1};
  const auto& block = topo_->blocks().front();
  for (int minute = 0; minute < util::kMinutesPerDay; minute += 30) {
    const double f = pop.diurnal_factor(block, util::MinuteTime{minute});
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST_F(PopulationTest, EnterpriseBlocksPeakMidday) {
  PopulationConfig cfg;
  const Population pop{topo_, cfg, 1};
  net::ClientBlock enterprise = topo_->blocks().front();
  enterprise.enterprise_fraction = 1.0;
  const double midday =
      pop.diurnal_factor(enterprise, util::MinuteTime::from_day_hour(0, 13));
  const double late_evening =
      pop.diurnal_factor(enterprise, util::MinuteTime::from_day_hour(0, 22));
  EXPECT_GT(midday, late_evening);
}

TEST_F(PopulationTest, HomeBlocksPeakEvening) {
  const Population pop{topo_, {}, 1};
  net::ClientBlock home = topo_->blocks().front();
  home.enterprise_fraction = 0.0;
  const double midday =
      pop.diurnal_factor(home, util::MinuteTime::from_day_hour(0, 13));
  const double evening =
      pop.diurnal_factor(home, util::MinuteTime::from_day_hour(0, 21));
  EXPECT_GT(evening, midday);
}

TEST_F(PopulationTest, WeekendDampsEnterprise) {
  const Population pop{topo_, {}, 1};
  net::ClientBlock enterprise = topo_->blocks().front();
  enterprise.enterprise_fraction = 1.0;
  const double weekday =
      pop.diurnal_factor(enterprise, util::MinuteTime::from_day_hour(0, 13));
  const double weekend =
      pop.diurnal_factor(enterprise, util::MinuteTime::from_day_hour(5, 13));
  EXPECT_GT(weekday, weekend * 2.0);
}

TEST_F(PopulationTest, DeviceSplitSumsToTotal) {
  const Population pop{topo_, {}, 1};
  const auto& block = topo_->blocks().front();
  const util::TimeBucket bucket{100};
  const double total = pop.active_clients(block, bucket);
  const double mobile =
      pop.active_clients(block, bucket, DeviceClass::Mobile);
  const double nonmobile =
      pop.active_clients(block, bucket, DeviceClass::NonMobile);
  EXPECT_NEAR(mobile + nonmobile, total, 1e-9);
  EXPECT_GT(total, 0.0);
}

TEST_F(PopulationTest, SampleCountsDeterministic) {
  const Population a{topo_, {}, 9};
  const Population b{topo_, {}, 9};
  const auto& block = topo_->blocks().front();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.sample_count(block, util::TimeBucket{i}, DeviceClass::Mobile),
              b.sample_count(block, util::TimeBucket{i}, DeviceClass::Mobile));
  }
}

TEST_F(PopulationTest, SampleCountsScaleWithActivityWeight) {
  const Population pop{topo_, {}, 1};
  net::ClientBlock heavy = topo_->blocks().front();
  net::ClientBlock light = heavy;
  heavy.activity_weight = 10.0;
  light.activity_weight = 0.1;
  const util::TimeBucket noon{
      util::TimeBucket::of(util::MinuteTime::from_day_hour(0, 12))};
  EXPECT_GT(pop.sample_count(heavy, noon, DeviceClass::NonMobile),
            pop.sample_count(light, noon, DeviceClass::NonMobile));
}

TEST_F(PopulationTest, SecondaryConnectionRateNearConfig) {
  PopulationConfig cfg;
  cfg.secondary_connect_probability = 0.3;
  const Population pop{topo_, cfg, 4};
  const auto& block = topo_->blocks().front();
  int connects = 0;
  constexpr int kBuckets = 2000;
  for (int i = 0; i < kBuckets; ++i) {
    connects += pop.connects_to_secondary(block, util::TimeBucket{i});
  }
  EXPECT_NEAR(connects / static_cast<double>(kBuckets), 0.3, 0.05);
}

TEST_F(PopulationTest, InvalidConfigsThrow) {
  PopulationConfig bad;
  bad.peak_clients_per_block = 0.0;
  EXPECT_THROW((Population{topo_, bad, 1}), std::invalid_argument);
  bad = {};
  bad.mobile_share = 1.5;
  EXPECT_THROW((Population{topo_, bad, 1}), std::invalid_argument);
  EXPECT_THROW((Population{nullptr, {}, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace blameit::sim
