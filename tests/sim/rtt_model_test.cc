#include "sim/rtt_model.h"

#include <gtest/gtest.h>

#include <memory>

namespace blameit::sim {
namespace {

class RttModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 1;
    cfg.eyeballs_per_region = 2;
    cfg.blocks_per_eyeball = 4;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  [[nodiscard]] const net::ClientBlock& block() const {
    return topo_->blocks().front();
  }
  [[nodiscard]] net::CloudLocationId home() const {
    return topo_->home_locations(block().block).front();
  }

  static const net::Topology* topo_;
  FaultInjector faults_;
};

const net::Topology* RttModelTest::topo_ = nullptr;

TEST_F(RttModelTest, BreakdownStructureMatchesRoute) {
  const RttModel model{topo_, &faults_};
  const auto t = util::MinuteTime::from_day_hour(0, 4);
  const auto bd = model.breakdown(home(), block(), DeviceClass::NonMobile, t);
  const auto* route = topo_->routing().route_for(home(), block().block, t);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(bd.middle_ms.size(), route->middle_ases().size());
  EXPECT_GT(bd.cloud_ms, 0.0);
  EXPECT_GT(bd.client_ms, 0.0);
  for (const double m : bd.middle_ms) EXPECT_GT(m, 0.0);
}

TEST_F(RttModelTest, HealthyRttBelowRegionTarget) {
  // Without faults, typical (early-morning) RTTs must sit below the region
  // badness threshold — otherwise everything would always be "bad".
  const RttModel model{topo_, &faults_};
  const auto t = util::MinuteTime::from_day_hour(0, 4);
  for (const auto& cb : topo_->blocks()) {
    const auto loc = topo_->home_locations(cb.block).front();
    const auto bd = model.breakdown(loc, cb, DeviceClass::NonMobile, t);
    const auto& profile = net::region_profile(cb.region);
    EXPECT_LT(bd.total(), profile.rtt_target_ms)
        << cb.block.to_string() << " in " << net::to_string(cb.region);
  }
}

TEST_F(RttModelTest, MobileAddsAccessLatency) {
  const RttModel model{topo_, &faults_};
  const auto t = util::MinuteTime::from_day_hour(0, 4);
  const auto nm = model.breakdown(home(), block(), DeviceClass::NonMobile, t);
  const auto mo = model.breakdown(home(), block(), DeviceClass::Mobile, t);
  EXPECT_GT(mo.client_ms, nm.client_ms + 10.0);
  EXPECT_DOUBLE_EQ(mo.cloud_ms, nm.cloud_ms);
}

TEST_F(RttModelTest, FaultShowsUpInRightSegment) {
  FaultInjector faults;
  const auto t = util::MinuteTime::from_day_hour(0, 4);
  const auto* route = topo_->routing().route_for(home(), block().block, t);
  ASSERT_NE(route, nullptr);
  const auto victim = route->middle_ases()[0];
  faults.add(Fault{.kind = FaultKind::MiddleAs,
                   .as = victim,
                   .added_ms = 33.0,
                   .start = util::MinuteTime{0},
                   .duration_minutes = util::kMinutesPerDay});
  const RttModel faulty{topo_, &faults};
  const RttModel clean{topo_, &faults_};
  const auto bd_faulty =
      faulty.breakdown(home(), block(), DeviceClass::NonMobile, t);
  const auto bd_clean =
      clean.breakdown(home(), block(), DeviceClass::NonMobile, t);
  EXPECT_NEAR(bd_faulty.middle_ms[0] - bd_clean.middle_ms[0], 33.0, 1e-9);
  EXPECT_DOUBLE_EQ(bd_faulty.cloud_ms, bd_clean.cloud_ms);
  EXPECT_DOUBLE_EQ(bd_faulty.client_ms, bd_clean.client_ms);
}

TEST_F(RttModelTest, EveningCongestionRaisesClientSegment) {
  const RttModel model{topo_, &faults_};
  net::ClientBlock home_block = block();
  home_block.enterprise_fraction = 0.0;  // pure home ISP
  const auto morning = model.breakdown(
      home(), home_block, DeviceClass::NonMobile,
      util::MinuteTime::from_day_hour(0, 4));
  const auto evening = model.breakdown(
      home(), home_block, DeviceClass::NonMobile,
      util::MinuteTime::from_day_hour(0, 21));
  // Default amplitude is modest (10% on a pure home block at peak).
  EXPECT_GT(evening.client_ms, morning.client_ms * 1.05);
}

TEST_F(RttModelTest, SamplesCenterOnBreakdownTotal) {
  const RttModel model{topo_, &faults_};
  const auto t = util::MinuteTime::from_day_hour(0, 4);
  const auto bd = model.breakdown(home(), block(), DeviceClass::NonMobile, t);
  util::Rng rng{17};
  const double mean = model.sample_mean(bd, 20000, rng);
  // Lognormal jitter is mean-preserving only approximately; outliers add a
  // small upward bias. Allow a few percent.
  EXPECT_NEAR(mean, bd.total(), bd.total() * 0.06);
}

TEST_F(RttModelTest, SampleMeanOfZeroCountIsZero) {
  const RttModel model{topo_, &faults_};
  util::Rng rng{17};
  const auto bd = model.breakdown(home(), block(), DeviceClass::NonMobile,
                                  util::MinuteTime{0});
  EXPECT_DOUBLE_EQ(model.sample_mean(bd, 0, rng), 0.0);
}

TEST_F(RttModelTest, TotalsAreAdditive) {
  const RttModel model{topo_, &faults_};
  const auto bd = model.breakdown(home(), block(), DeviceClass::NonMobile,
                                  util::MinuteTime{0});
  double manual = bd.cloud_ms + bd.client_ms;
  for (const double m : bd.middle_ms) manual += m;
  EXPECT_DOUBLE_EQ(bd.total(), manual);
}

TEST_F(RttModelTest, NullDependenciesThrow) {
  EXPECT_THROW((RttModel{nullptr, &faults_}), std::invalid_argument);
  EXPECT_THROW((RttModel{topo_, nullptr}), std::invalid_argument);
}

}  // namespace
}  // namespace blameit::sim
