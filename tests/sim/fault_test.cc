#include "sim/fault.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace blameit::sim {
namespace {

using util::MinuteTime;

net::RouteEntry make_route(net::MiddleSegmentInterner& interner) {
  net::AsPath full{net::AsId{1}, net::AsId{10}, net::AsId{20}, net::AsId{30}};
  return net::RouteEntry{
      .announced = *net::Prefix::parse("10.0.0.0/22"),
      .full_path = full,
      .middle = interner.intern(
          std::vector<net::AsId>{net::AsId{10}, net::AsId{20}})};
}

class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest() : route_(make_route(interner_)) {}

  [[nodiscard]] PathFaultDelays query(MinuteTime t) const {
    return injector_.delays_for(net::CloudLocationId{1}, route_,
                                net::Slash24{0x0A0000}, net::AsId{30}, t);
  }

  net::MiddleSegmentInterner interner_;
  net::RouteEntry route_;
  FaultInjector injector_;
};

TEST_F(FaultInjectorTest, NoFaultsMeansZeroDelays) {
  const auto delays = query(MinuteTime{10});
  EXPECT_DOUBLE_EQ(delays.total(), 0.0);
  EXPECT_EQ(delays.middle_ms.size(), 2u);
  EXPECT_FALSE(injector_.any_active(MinuteTime{10}));
}

TEST_F(FaultInjectorTest, CloudFaultAppliesToLocationOnly) {
  injector_.add(Fault{.kind = FaultKind::CloudLocation,
                      .cloud_location = net::CloudLocationId{1},
                      .added_ms = 40.0,
                      .start = MinuteTime{100},
                      .duration_minutes = 60});
  EXPECT_DOUBLE_EQ(query(MinuteTime{120}).cloud_ms, 40.0);
  EXPECT_DOUBLE_EQ(query(MinuteTime{99}).cloud_ms, 0.0);
  EXPECT_DOUBLE_EQ(query(MinuteTime{160}).cloud_ms, 0.0);  // end exclusive
  // A different location is untouched.
  const auto other = injector_.delays_for(net::CloudLocationId{2}, route_,
                                          net::Slash24{0x0A0000},
                                          net::AsId{30}, MinuteTime{120});
  EXPECT_DOUBLE_EQ(other.cloud_ms, 0.0);
}

TEST_F(FaultInjectorTest, MiddleFaultLandsOnRightAs) {
  injector_.add(Fault{.kind = FaultKind::MiddleAs,
                      .as = net::AsId{20},
                      .added_ms = 25.0,
                      .start = MinuteTime{0},
                      .duration_minutes = 100});
  const auto delays = query(MinuteTime{50});
  EXPECT_DOUBLE_EQ(delays.middle_ms[0], 0.0);
  EXPECT_DOUBLE_EQ(delays.middle_ms[1], 25.0);
  EXPECT_DOUBLE_EQ(delays.cloud_ms, 0.0);
  EXPECT_DOUBLE_EQ(delays.client_ms, 0.0);
}

TEST_F(FaultInjectorTest, MiddleFaultScopedToLocation) {
  injector_.add(Fault{.kind = FaultKind::MiddleAs,
                      .as = net::AsId{10},
                      .added_ms = 30.0,
                      .start = MinuteTime{0},
                      .duration_minutes = 100,
                      .only_via_location = net::CloudLocationId{7}});
  // Queried from location 1: the scoped fault must not apply.
  EXPECT_DOUBLE_EQ(query(MinuteTime{50}).middle_ms[0], 0.0);
  const auto scoped = injector_.delays_for(net::CloudLocationId{7}, route_,
                                           net::Slash24{0x0A0000},
                                           net::AsId{30}, MinuteTime{50});
  EXPECT_DOUBLE_EQ(scoped.middle_ms[0], 30.0);
}

TEST_F(FaultInjectorTest, ClientAsFaultHitsClientSegment) {
  injector_.add(Fault{.kind = FaultKind::ClientAs,
                      .as = net::AsId{30},
                      .added_ms = 80.0,
                      .start = MinuteTime{0},
                      .duration_minutes = 10});
  EXPECT_DOUBLE_EQ(query(MinuteTime{5}).client_ms, 80.0);
  EXPECT_DOUBLE_EQ(query(MinuteTime{15}).client_ms, 0.0);
}

TEST_F(FaultInjectorTest, ClientBlockFaultScopedToBlock) {
  injector_.add(Fault{.kind = FaultKind::ClientBlock,
                      .block = net::Slash24{0x0A0000},
                      .added_ms = 15.0,
                      .start = MinuteTime{0},
                      .duration_minutes = 10});
  EXPECT_DOUBLE_EQ(query(MinuteTime{5}).client_ms, 15.0);
  const auto other = injector_.delays_for(net::CloudLocationId{1}, route_,
                                          net::Slash24{0x0A0001},
                                          net::AsId{30}, MinuteTime{5});
  EXPECT_DOUBLE_EQ(other.client_ms, 0.0);
}

TEST_F(FaultInjectorTest, OverlappingFaultsAccumulate) {
  injector_.add(Fault{.kind = FaultKind::MiddleAs,
                      .as = net::AsId{10},
                      .added_ms = 10.0,
                      .start = MinuteTime{0},
                      .duration_minutes = 100});
  injector_.add(Fault{.kind = FaultKind::MiddleAs,
                      .as = net::AsId{10},
                      .added_ms = 5.0,
                      .start = MinuteTime{40},
                      .duration_minutes = 10});
  EXPECT_DOUBLE_EQ(query(MinuteTime{45}).middle_ms[0], 15.0);
  EXPECT_DOUBLE_EQ(query(MinuteTime{60}).middle_ms[0], 10.0);
}

TEST_F(FaultInjectorTest, Insight1SingleSegmentDominance) {
  // Generated faults target exactly one segment (the paper's Insight-1);
  // a middle fault must leave the other segments' delays untouched.
  injector_.add(Fault{.kind = FaultKind::MiddleAs,
                      .as = net::AsId{20},
                      .added_ms = 100.0,
                      .start = MinuteTime{0},
                      .duration_minutes = 50});
  const auto delays = query(MinuteTime{25});
  const double middle_total = delays.middle_ms[0] + delays.middle_ms[1];
  EXPECT_DOUBLE_EQ(delays.total(), middle_total);
}

TEST_F(FaultInjectorTest, InvalidFaultsRejected) {
  EXPECT_THROW(injector_.add(Fault{.kind = FaultKind::MiddleAs,
                                   .as = net::AsId{1},
                                   .added_ms = -1.0,
                                   .start = MinuteTime{0},
                                   .duration_minutes = 10}),
               std::invalid_argument);
  EXPECT_THROW(injector_.add(Fault{.kind = FaultKind::MiddleAs,
                                   .as = net::AsId{1},
                                   .added_ms = 5.0,
                                   .start = MinuteTime{0},
                                   .duration_minutes = 0}),
               std::invalid_argument);
}

TEST_F(FaultInjectorTest, AnyActiveWindow) {
  injector_.add(Fault{.kind = FaultKind::ClientAs,
                      .as = net::AsId{30},
                      .added_ms = 1.0,
                      .start = MinuteTime{50},
                      .duration_minutes = 10});
  EXPECT_FALSE(injector_.any_active(MinuteTime{49}));
  EXPECT_TRUE(injector_.any_active(MinuteTime{50}));
  EXPECT_TRUE(injector_.any_active(MinuteTime{59}));
  EXPECT_FALSE(injector_.any_active(MinuteTime{60}));
}

}  // namespace
}  // namespace blameit::sim
