#include "sim/traceroute.h"

#include <gtest/gtest.h>

namespace blameit::sim {
namespace {

class TracerouteTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 1;
    cfg.eyeballs_per_region = 2;
    cfg.blocks_per_eyeball = 4;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  TracerouteTest() : model_(topo_, &faults_) {}

  [[nodiscard]] const net::ClientBlock& block() const {
    return topo_->blocks().front();
  }
  [[nodiscard]] net::CloudLocationId home() const {
    return topo_->home_locations(block().block).front();
  }

  static const net::Topology* topo_;
  FaultInjector faults_;
  RttModel model_;
};

const net::Topology* TracerouteTest::topo_ = nullptr;

TEST_F(TracerouteTest, HopsFollowRoute) {
  TracerouteEngine engine{topo_, &model_};
  const auto t = util::MinuteTime::from_day_hour(0, 4);
  const auto result = engine.trace(home(), block().block, t);
  ASSERT_TRUE(result.reached);
  const auto* route = topo_->routing().route_for(home(), block().block, t);
  ASSERT_NE(route, nullptr);
  ASSERT_EQ(result.hops.size(), route->middle_ases().size() + 1);
  for (std::size_t i = 0; i < route->middle_ases().size(); ++i) {
    EXPECT_EQ(result.hops[i].as, route->middle_ases()[i]);
  }
  EXPECT_EQ(result.hops.back().as, route->client_as());
}

TEST_F(TracerouteTest, CumulativeRttsMonotone) {
  TracerouteEngine engine{topo_, &model_};
  const auto result = engine.trace(home(), block().block,
                                   util::MinuteTime::from_day_hour(0, 4));
  double prev = result.cloud_ms;
  EXPECT_GT(prev, 0.0);
  for (const auto& hop : result.hops) {
    EXPECT_GT(hop.cumulative_rtt_ms, prev);
    prev = hop.cumulative_rtt_ms;
  }
}

TEST_F(TracerouteTest, FinalHopMatchesPassiveModel) {
  TracerouteEngine engine{topo_, &model_};
  const auto t = util::MinuteTime::from_day_hour(0, 4);
  const auto result = engine.trace(home(), block().block, t);
  const auto bd = model_.breakdown(home(), block(), DeviceClass::NonMobile, t);
  EXPECT_NEAR(result.hops.back().cumulative_rtt_ms, bd.total(),
              bd.total() * 0.2);
}

TEST_F(TracerouteTest, ContributionsSumToTotal) {
  TracerouteEngine engine{topo_, &model_};
  const auto result = engine.trace(home(), block().block,
                                   util::MinuteTime::from_day_hour(0, 4));
  const auto contribs = result.contributions();
  double sum = result.cloud_ms;
  for (const auto& [as, ms] : contribs) {
    EXPECT_GE(ms, 0.0);
    sum += ms;
  }
  EXPECT_NEAR(sum, result.hops.back().cumulative_rtt_ms, 1e-9);
}

TEST_F(TracerouteTest, FaultVisibleInCulpritContribution) {
  // The §5.2 worked example: after a middle fault, that AS's contribution
  // jumps while others stay put.
  const auto t = util::MinuteTime::from_day_hour(0, 4);
  const auto* route = topo_->routing().route_for(home(), block().block, t);
  ASSERT_NE(route, nullptr);
  ASSERT_GE(route->middle_ases().size(), 1u);
  const auto victim = route->middle_ases()[0];

  FaultInjector faults;
  faults.add(Fault{.kind = FaultKind::MiddleAs,
                   .as = victim,
                   .added_ms = 54.0,
                   .start = t,
                   .duration_minutes = 60});
  const RttModel faulty_model{topo_, &faults};
  TracerouteEngine baseline_engine{topo_, &model_};
  TracerouteEngine incident_engine{topo_, &faulty_model};

  const auto before = baseline_engine.trace(home(), block().block,
                                            t.plus_minutes(-60));
  const auto during = incident_engine.trace(home(), block().block,
                                            t.plus_minutes(10));
  const auto cb = before.contributions();
  const auto cd = during.contributions();
  ASSERT_EQ(cb.size(), cd.size());
  // The victim's delta dominates everything else.
  double victim_delta = 0.0;
  double max_other_delta = 0.0;
  for (std::size_t i = 0; i < cb.size(); ++i) {
    const double delta = cd[i].second - cb[i].second;
    if (cb[i].first == victim) {
      victim_delta = delta;
    } else {
      max_other_delta = std::max(max_other_delta, std::abs(delta));
    }
  }
  EXPECT_GT(victim_delta, 40.0);
  EXPECT_LT(max_other_delta, 10.0);
}

TEST_F(TracerouteTest, UnknownTargetUnreached) {
  TracerouteEngine engine{topo_, &model_};
  const auto result =
      engine.trace(home(), net::Slash24{0xFFFFFF}, util::MinuteTime{0});
  EXPECT_FALSE(result.reached);
  EXPECT_TRUE(result.no_route);
  EXPECT_TRUE(result.hops.empty());
  // Regression: contributions() on a hopless result must not touch hops.
  EXPECT_TRUE(result.contributions().empty());
  // Probe still counted (the packet was sent) but yielded nothing.
  EXPECT_EQ(engine.accountant().total(), 1u);
  EXPECT_EQ(engine.accountant().succeeded(), 0u);
  EXPECT_EQ(engine.accountant().failed(), 1u);
}

TEST_F(TracerouteTest, AccountantCountsFullPathsAsSucceeded) {
  TracerouteEngine engine{topo_, &model_};
  const auto r = engine.trace(home(), block().block, util::MinuteTime{10});
  ASSERT_TRUE(r.reached);
  EXPECT_EQ(engine.accountant().total(), 1u);
  EXPECT_EQ(engine.accountant().succeeded(), 1u);
  EXPECT_EQ(engine.accountant().failed(), 0u);
}

TEST_F(TracerouteTest, AccountantTracksLocationAndDay) {
  TracerouteEngine engine{topo_, &model_};
  const auto loc = home();
  (void)engine.trace(loc, block().block, util::MinuteTime::from_days(0));
  (void)engine.trace(loc, block().block, util::MinuteTime::from_days(1));
  (void)engine.trace(loc, block().block, util::MinuteTime::from_days(1));
  EXPECT_EQ(engine.accountant().total(), 3u);
  EXPECT_EQ(engine.accountant().on_day(0), 1u);
  EXPECT_EQ(engine.accountant().on_day(1), 2u);
  EXPECT_EQ(engine.accountant().on_day(2), 0u);
  EXPECT_EQ(engine.accountant().at_location(loc), 3u);
  engine.accountant().reset();
  EXPECT_EQ(engine.accountant().total(), 0u);
}

TEST_F(TracerouteTest, DeterministicPerProbe) {
  TracerouteEngine a{topo_, &model_};
  TracerouteEngine b{topo_, &model_};
  const auto ra = a.trace(home(), block().block, util::MinuteTime{500});
  const auto rb = b.trace(home(), block().block, util::MinuteTime{500});
  ASSERT_EQ(ra.hops.size(), rb.hops.size());
  for (std::size_t i = 0; i < ra.hops.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.hops[i].cumulative_rtt_ms,
                     rb.hops[i].cumulative_rtt_ms);
  }
}

TEST_F(TracerouteTest, NullDependenciesThrow) {
  EXPECT_THROW((TracerouteEngine{nullptr, &model_}), std::invalid_argument);
  EXPECT_THROW((TracerouteEngine{topo_, nullptr}), std::invalid_argument);
}

}  // namespace
}  // namespace blameit::sim
