// Edge cases for the columnar state store and its snapshot container: the
// scenarios most likely to corrupt state silently — empty snapshots, single-
// key blocks, memtable→block merges right at the grow boundary, and torn or
// bit-flipped snapshot files (which must fail loudly, naming the offset).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "store/encoding.h"
#include "store/reservoir_store.h"
#include "store/snapshot.h"

namespace blameit::store {
namespace {

TEST(SnapshotContainer, EmptySnapshotRoundTrips) {
  SnapshotWriter writer;
  const std::string bytes = writer.serialize();
  const auto reader = SnapshotReader::from_bytes(bytes, "<empty>");
  EXPECT_FALSE(reader.has_section("anything"));
}

TEST(SnapshotContainer, SectionsRoundTripByName) {
  SnapshotWriter writer;
  put_varint(writer.section("alpha"), 42);
  auto& beta = writer.section("beta");
  put_svarint(beta, -7);
  put_f64(beta, 2.5);

  const auto reader = SnapshotReader::from_bytes(writer.serialize(), "<rt>");
  EXPECT_TRUE(reader.has_section("alpha"));
  EXPECT_TRUE(reader.has_section("beta"));
  EXPECT_FALSE(reader.has_section("gamma"));

  auto a = reader.section("alpha");
  EXPECT_EQ(a.varint(), 42u);
  a.expect_done();
  auto b = reader.section("beta");
  EXPECT_EQ(b.svarint(), -7);
  EXPECT_EQ(b.f64(), 2.5);
  b.expect_done();
}

TEST(SnapshotContainer, MissingSectionNamesItAndTheOrigin) {
  SnapshotWriter writer;
  writer.section("present");
  const auto reader =
      SnapshotReader::from_bytes(writer.serialize(), "<origin>");
  try {
    (void)reader.section("absent");
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string{e.what()}.find("absent"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("<origin>"), std::string::npos);
  }
}

TEST(SnapshotContainer, CorruptPayloadFailsChecksumNamingSectionAndOffset) {
  SnapshotWriter writer;
  auto& payload = writer.section("learner");
  for (int i = 0; i < 64; ++i) put_varint(payload, 1000 + i);
  std::string bytes = writer.serialize();

  // Flip one bit inside the payload (past the 12-byte header and the
  // section preamble).
  bytes[bytes.size() - 5] ^= 0x10;
  try {
    (void)SnapshotReader::from_bytes(bytes, "<corrupt>");
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("learner"), std::string::npos) << what;
    EXPECT_NE(what.find("checksum"), std::string::npos) << what;
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
  }
}

TEST(SnapshotContainer, TruncatedStreamIsRejected) {
  SnapshotWriter writer;
  auto& payload = writer.section("verdicts");
  for (int i = 0; i < 64; ++i) put_u64(payload, 7777);
  const std::string bytes = writer.serialize();

  // Any truncation point — inside the header, the preamble, or the payload —
  // must be rejected, never parsed as a shorter-but-valid snapshot.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{11}, std::size_t{13},
        bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW((void)SnapshotReader::from_bytes(bytes.substr(0, keep),
                                                  "<truncated>"),
                 SnapshotError)
        << "kept " << keep << " of " << bytes.size();
  }
}

TEST(SnapshotContainer, WrongMagicAndVersionAreRejected) {
  SnapshotWriter writer;
  writer.section("s");
  std::string bytes = writer.serialize();

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)SnapshotReader::from_bytes(bad_magic, "<magic>"),
               SnapshotError);

  std::string bad_version = bytes;
  bad_version[8] = static_cast<char>(0xEE);  // version u32, little-endian
  EXPECT_THROW((void)SnapshotReader::from_bytes(bad_version, "<version>"),
               SnapshotError);
}

std::vector<double> window(const ReservoirStore& store, std::uint64_t key,
                           int day, int window_days) {
  std::vector<double> pool;
  store.collect_window(key, day, window_days, pool);
  return pool;
}

TEST(ReservoirStore, SingleKeySingleDayBlock) {
  ReservoirStore store{{.background_merge = false}};
  store.observe(99, 0, 10.0);
  store.observe(99, 0, 11.0);
  store.observe(99, 1, 12.0);  // rolls day 0 into a one-key immutable block

  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.tracked_keys(), 1u);
  EXPECT_EQ(window(store, 99, 1, 14), (std::vector<double>{10.0, 11.0}));
  EXPECT_EQ(window(store, 99, 2, 14),
            (std::vector<double>{10.0, 11.0, 12.0}));
  EXPECT_TRUE(window(store, 12345, 2, 14).empty());
}

TEST(ReservoirStore, MergeAtGrowBoundaryPreservesEveryRow) {
  // max_blocks = 2: the third frozen day triggers a merge of the block list
  // into one run. Feed exactly enough days to land ON the boundary and one
  // past it, and verify no row is lost or reordered either time.
  ReservoirStore store{{.max_blocks = 2, .background_merge = false}};
  const std::uint64_t kA = 5;
  const std::uint64_t kB = 6;
  for (int day = 0; day < 4; ++day) {
    store.observe(kA, day, 100.0 + day);
    if (day % 2 == 0) store.observe(kB, day, 200.0 + day);
  }
  // Days 0..2 are frozen (3 blocks > max 2 → merged); day 3 is the memtable.
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(window(store, kA, 4, 14),
            (std::vector<double>{100.0, 101.0, 102.0, 103.0}));
  EXPECT_EQ(window(store, kB, 4, 14), (std::vector<double>{200.0, 202.0}));

  // One more rollover: the merged run + the day-3 block again exceed the
  // bound the NEXT freeze, exercising merge-of-merged.
  store.observe(kA, 4, 104.0);
  store.observe(kA, 5, 105.0);
  EXPECT_EQ(window(store, kA, 6, 14),
            (std::vector<double>{100.0, 101.0, 102.0, 103.0, 104.0, 105.0}));
  EXPECT_EQ(store.total_rows(), 8u);  // includes the day-5 memtable row
}

TEST(ReservoirStore, BackgroundMergeContentMatchesInline) {
  // Same feed through both merge modes must yield identical window pools
  // and identical save() bytes (the normal form hides merge timing).
  const auto feed = [](ReservoirStore& store) {
    for (int day = 0; day < 12; ++day) {
      for (std::uint64_t key = 0; key < 16; ++key) {
        store.observe(key, day, static_cast<double>(day * 100 + key));
      }
    }
    store.flush_merges();
  };
  ReservoirStore inline_store{{.max_blocks = 3, .background_merge = false}};
  ReservoirStore bg_store{{.max_blocks = 3, .background_merge = true}};
  feed(inline_store);
  feed(bg_store);

  for (std::uint64_t key = 0; key < 16; ++key) {
    EXPECT_EQ(window(inline_store, key, 12, 14), window(bg_store, key, 12, 14))
        << "key " << key;
  }
  std::string a;
  std::string b;
  inline_store.save(a);
  bg_store.save(b);
  EXPECT_EQ(a, b);
}

TEST(ReservoirStore, SaveRestoreRoundTripIncludingMemtable) {
  ReservoirStore store{{.max_blocks = 2, .background_merge = false}};
  for (int day = 0; day < 5; ++day) {
    for (std::uint64_t key = 0; key < 8; ++key) {
      store.observe(key, day, static_cast<double>(day * 10 + key));
    }
  }
  std::string bytes;
  store.save(bytes);

  ReservoirStore restored{{.max_blocks = 2, .background_merge = false}};
  ByteReader reader{bytes, 0, "<mem>"};
  restored.restore(reader);
  reader.expect_done();

  EXPECT_EQ(restored.tracked_keys(), store.tracked_keys());
  for (std::uint64_t key = 0; key < 8; ++key) {
    EXPECT_EQ(window(restored, key, 5, 14), window(store, key, 5, 14));
  }
  // The restored store keeps accepting day-ordered writes where it left off.
  restored.observe(0, 5, 999.0);
  EXPECT_THROW(restored.observe(0, 4, 1.0), std::invalid_argument);
}

TEST(ReservoirStore, EvictStaleDropsWholeWindowAndForgetsKeys) {
  ReservoirStore store{{.background_merge = false}};
  store.observe(1, 0, 1.0);
  store.observe(2, 0, 2.0);
  store.observe(1, 5, 3.0);  // key 2 never reappears
  store.observe(1, 6, 4.0);

  EXPECT_EQ(store.tracked_keys(), 2u);
  const std::size_t dropped = store.evict_stale(5);
  EXPECT_EQ(dropped, 2u);  // both day-0 rows
  EXPECT_EQ(store.tracked_keys(), 1u);
  EXPECT_FALSE(store.contains(2));
  EXPECT_EQ(window(store, 1, 7, 14), (std::vector<double>{3.0, 4.0}));
}

TEST(ReservoirStore, RejectsOutOfOrderDays) {
  ReservoirStore store;
  store.observe(1, 3, 1.0);
  EXPECT_THROW(store.observe(1, 2, 1.0), std::invalid_argument);
  store.observe(1, 3, 2.0);  // same day is fine
  store.observe(1, 4, 3.0);
}

}  // namespace
}  // namespace blameit::store
