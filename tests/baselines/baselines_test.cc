#include <gtest/gtest.h>

#include "baselines/active_only.h"
#include "baselines/as_metro.h"
#include "baselines/tomography.h"
#include "baselines/trinocular.h"
#include "core/passive.h"
#include "sim/telemetry.h"

namespace blameit::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::TopologyConfig cfg;
    cfg.locations_per_region = 1;
    cfg.eyeballs_per_region = 3;
    cfg.blocks_per_eyeball = 8;
    topo_ = net::make_topology(cfg).release();
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  BaselinesTest() : model_(topo_, &faults_), engine_(topo_, &model_) {}

  static const net::Topology* topo_;
  sim::FaultInjector faults_;
  sim::RttModel model_;
  sim::TracerouteEngine engine_;
};

const net::Topology* BaselinesTest::topo_ = nullptr;

TEST_F(BaselinesTest, ActiveOnlyProbesEveryPathEveryPeriod) {
  ActiveOnlyMonitor monitor{topo_, &engine_, ActiveOnlyConfig{.period_minutes = 10}};
  const int probes = monitor.step(util::MinuteTime{0}, util::MinuteTime{30});
  // 3 rounds × #paths.
  EXPECT_EQ(static_cast<std::uint64_t>(probes) * (1440 / 10) / 3,
            monitor.probes_per_day());
  EXPECT_GT(probes, 0);
}

TEST_F(BaselinesTest, ActiveOnlyLocalizesMiddleFault) {
  const auto& block = topo_->blocks().front();
  const auto loc = topo_->home_locations(block.block).front();
  const auto* route =
      topo_->routing().route_for(loc, block.block, util::MinuteTime{0});
  const auto victim = route->middle_ases()[0];

  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                        .as = victim,
                        .added_ms = 60.0,
                        .start = util::MinuteTime{25},
                        .duration_minutes = 60});
  sim::RttModel model{topo_, &faults};
  sim::TracerouteEngine engine{topo_, &model};
  ActiveOnlyMonitor monitor{topo_, &engine,
                            ActiveOnlyConfig{.period_minutes = 10}};
  (void)monitor.step(util::MinuteTime{0}, util::MinuteTime{30});
  const auto culprit = monitor.culprit(loc, route->middle);
  ASSERT_TRUE(culprit.has_value());
  EXPECT_EQ(*culprit, victim);
}

TEST_F(BaselinesTest, ActiveOnlyCulpritNeedsTwoProbes) {
  ActiveOnlyMonitor monitor{topo_, &engine_};
  const auto& block = topo_->blocks().front();
  const auto loc = topo_->home_locations(block.block).front();
  const auto* route =
      topo_->routing().route_for(loc, block.block, util::MinuteTime{0});
  EXPECT_FALSE(monitor.culprit(loc, route->middle).has_value());
  (void)monitor.step(util::MinuteTime{0}, util::MinuteTime{10});
  EXPECT_FALSE(monitor.culprit(loc, route->middle).has_value());
  (void)monitor.step(util::MinuteTime{10}, util::MinuteTime{20});
  EXPECT_TRUE(monitor.culprit(loc, route->middle).has_value());
}

TEST_F(BaselinesTest, TrinocularDetectsDegradationAdaptively) {
  const auto& block = topo_->blocks().front();
  const auto loc = topo_->home_locations(block.block).front();
  const auto* route =
      topo_->routing().route_for(loc, block.block, util::MinuteTime{0});
  const auto victim = route->middle_ases()[0];

  sim::FaultInjector faults;
  faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                        .as = victim,
                        .added_ms = 100.0,
                        .start = util::MinuteTime{60},
                        .duration_minutes = 120});
  sim::RttModel model{topo_, &faults};
  sim::TracerouteEngine engine{topo_, &model};
  TrinocularMonitor monitor{topo_, &engine};

  (void)monitor.step(util::MinuteTime{0}, util::MinuteTime{55});
  EXPECT_FALSE(monitor.believes_degraded(loc, route->middle));
  (void)monitor.step(util::MinuteTime{55}, util::MinuteTime{90});
  EXPECT_TRUE(monitor.believes_degraded(loc, route->middle));
  // After the fault clears, belief reverts.
  (void)monitor.step(util::MinuteTime{90}, util::MinuteTime{240});
  EXPECT_FALSE(monitor.believes_degraded(loc, route->middle));
}

TEST_F(BaselinesTest, TrinocularCostsMoreThanTwiceDailyBackground) {
  TrinocularMonitor trinocular{topo_, &engine_};
  // 11-minute cycling vs 2/day: the probe bill ratio is ~65x per path.
  const auto daily = trinocular.probes_per_day();
  std::uint64_t paths = daily / (1440 / 11);
  EXPECT_GT(daily, paths * 2 * 20);  // at least 20x the background bill
}

TEST_F(BaselinesTest, TomographyCleanBucketIsTriviallyConsistent) {
  std::vector<analysis::Quartet> quartets(3);
  for (auto& q : quartets) q.bad = false;
  const auto result = boolean_tomography(quartets);
  EXPECT_TRUE(result.consistent);
  EXPECT_TRUE(result.unique);
  EXPECT_TRUE(result.blamed.empty());
}

TEST_F(BaselinesTest, TomographyIdentifiesIsolatedClientFault) {
  // Two locations; client AS 9 bad everywhere, others good: the client
  // segment is the unique explanation.
  std::vector<analysis::Quartet> quartets;
  for (std::uint16_t loc = 1; loc <= 2; ++loc) {
    for (std::uint32_t as = 8; as <= 10; ++as) {
      analysis::Quartet q;
      q.key.location = net::CloudLocationId{loc};
      q.key.block = net::Slash24{as * 256};
      q.middle = net::MiddleSegmentId{loc};  // distinct middles per loc
      q.client_as = net::AsId{as};
      q.bad = as == 9;
      quartets.push_back(q);
    }
  }
  const auto result = boolean_tomography(quartets);
  ASSERT_TRUE(result.consistent);
  EXPECT_TRUE(result.unique);
  ASSERT_EQ(result.blamed.size(), 1u);
  EXPECT_EQ(result.blamed[0].kind, TomographySegment::Kind::Client);
  EXPECT_EQ(result.blamed[0].id, 9u);
}

TEST_F(BaselinesTest, TomographyAmbiguousWhenSegmentsConfound) {
  // One bad path, and none of its segments appear on any good path: the
  // cloud, middle, and client explanations are all minimal — §4.1's
  // under-determination.
  std::vector<analysis::Quartet> quartets;
  analysis::Quartet q;
  q.key.location = net::CloudLocationId{1};
  q.key.block = net::Slash24{1 * 256};
  q.middle = net::MiddleSegmentId{1};
  q.client_as = net::AsId{1};
  q.bad = true;
  quartets.push_back(q);
  const auto result = boolean_tomography(quartets);
  EXPECT_TRUE(result.consistent);
  EXPECT_FALSE(result.unique);
  EXPECT_EQ(result.solutions, 3);
}

TEST_F(BaselinesTest, TomographyInconsistentWhenNoiseContradicts) {
  // The same segment triple appears both good and bad (measurement noise):
  // no boolean explanation exists.
  std::vector<analysis::Quartet> quartets(2);
  for (auto& q : quartets) {
    q.key.location = net::CloudLocationId{1};
    q.key.block = net::Slash24{256};
    q.middle = net::MiddleSegmentId{1};
    q.client_as = net::AsId{1};
  }
  quartets[0].bad = true;
  quartets[1].bad = false;
  const auto result = boolean_tomography(quartets);
  EXPECT_FALSE(result.consistent);
}

TEST_F(BaselinesTest, AsMetroGroupKeyDistinct) {
  const auto a = AsMetroLocalizer::group_key(
      net::CloudLocationId{1}, net::AsId{100}, net::MetroId{1},
      net::DeviceClass::NonMobile);
  const auto b = AsMetroLocalizer::group_key(
      net::CloudLocationId{1}, net::AsId{100}, net::MetroId{2},
      net::DeviceClass::NonMobile);
  const auto c = AsMetroLocalizer::group_key(
      net::CloudLocationId{1}, net::AsId{101}, net::MetroId{1},
      net::DeviceClass::NonMobile);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  // Distinct from the BGP-path namespace.
  EXPECT_NE(a, analysis::middle_key(net::CloudLocationId{1},
                                    net::MiddleSegmentId{0},
                                    net::DeviceClass::NonMobile));
}

TEST_F(BaselinesTest, AsMetroLocalizerRunsAndBlamesSameCloudFaults) {
  // Cloud-step behaviour is shared with BlameIt: a cloud fault must be
  // blamed Cloud under both groupings.
  sim::FaultInjector faults;
  const auto loc = topo_->locations_in(net::Region::Europe).front();
  faults.add(sim::Fault{.kind = sim::FaultKind::CloudLocation,
                        .cloud_location = loc,
                        .added_ms = 90.0,
                        .start = util::MinuteTime::from_days(0),
                        .duration_minutes = util::kMinutesPerDay});
  const sim::TelemetryGenerator gen{topo_, &faults};
  analysis::QuartetBuilder builder{topo_, analysis::BadnessThresholds{}};
  const auto bucket =
      util::TimeBucket::of(util::MinuteTime::from_day_hour(0, 12));
  gen.generate_aggregates(bucket,
                          [&](const analysis::QuartetKey& k, int n,
                              double m) { builder.add_aggregate(k, n, m); });
  const auto quartets = builder.take_bucket(bucket);

  analysis::ExpectedRttLearner learner;  // empty: threshold fallback
  const AsMetroLocalizer metro{topo_, &learner};
  const core::PassiveLocalizer blameit{topo_, &learner};
  const auto metro_results = metro.localize(quartets, 0);
  const auto blameit_results = blameit.localize(quartets, 0);

  auto cloud_count = [&](const std::vector<core::BlameResult>& results) {
    int n = 0;
    for (const auto& r : results) {
      n += r.blame == core::Blame::Cloud && r.quartet.key.location == loc;
    }
    return n;
  };
  EXPECT_GT(cloud_count(metro_results), 0);
  EXPECT_EQ(cloud_count(metro_results), cloud_count(blameit_results));
}

}  // namespace
}  // namespace blameit::baselines
