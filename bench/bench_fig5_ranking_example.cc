// Figure 5: the paper's illustrative example of why ranking ⟨cloud location,
// BGP path⟩ tuples by problematic-prefix count and by actual client-time
// impact produce opposite orders. Reproduced literally:
//   tuple #1: three /24s of 10 users with short bad windows -> 3 prefixes,
//             350 user-minutes of impact;
//   tuple #2: two /24s of 100 users bad for 30/20 minutes   -> 1(+1)
//             prefixes, 2000+ user-minutes. (The figure counts one
//             problematic prefix for #2's first /24 group.)
#include "analysis/impact.h"
#include "bench/common.h"

int main() {
  using namespace blameit;
  bench::header("Figure 5: ranking example — prefix count vs client-time",
                "tuple #1 wins on prefix count (3 vs 1); tuple #2 wins on "
                "impact (2000 vs 350)");

  // Tuple #1: three /24s of 10 users each, bad for 20, 10, and 5 minutes
  // respectively — 350 user-minutes across 3 problematic prefixes.
  const double impact_1 = 10 * 20 + 10 * 10 + 10 * 5;  // = 350
  const double prefixes_1 = 3;
  // Tuple #2: IP/24 D bad 10 min (100 users), E bad 10 min (100 users) —
  // 2000 user-minutes over 1 problematic prefix group.
  const double impact_2 = 100 * 10 + 100 * 10;  // = 2000
  const double prefixes_2 = 1;

  std::vector<analysis::RankedAggregate> tuples{
      {.key = 1, .impact = impact_1, .prefix_count = prefixes_1},
      {.key = 2, .impact = impact_2, .prefix_count = prefixes_2},
  };

  util::TextTable table{{"tuple", "# problematic /24s",
                         "client-time impact (user-min)"}};
  table.add_row({"#1", util::fmt(prefixes_1, 0), util::fmt(impact_1, 0)});
  table.add_row({"#2", util::fmt(prefixes_2, 0), util::fmt(impact_2, 0)});
  std::printf("%s\n", table.to_string().c_str());

  const auto by_impact = analysis::impact_coverage_curve(tuples, true);
  const auto by_prefix = analysis::impact_coverage_curve(tuples, false);
  std::printf("top-1 coverage, impact ranking : %s (tuple #2 first)\n",
              util::fmt_pct(by_impact[0]).c_str());
  std::printf("top-1 coverage, prefix ranking : %s (tuple #1 first)\n",
              util::fmt_pct(by_prefix[0]).c_str());
  std::puts("\nWith one probe to spend, prefix-count ranking wastes it on "
            "the 350\nuser-minute issue; impact ranking covers 85% of the "
            "pain immediately.");
  return 0;
}
