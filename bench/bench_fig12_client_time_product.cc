// Figure 12: CDF of the client-time product of middle-segment issues when
// ranked by an oracle (true impact), and how BlameIt's predicted ranking
// compares. Paper: the top 5% of issues cover ~83% of cumulative client-time
// impact, and BlameIt's prediction-based prioritization tracks the oracle.
#include "bench/common.h"
#include "core/predictors.h"
#include "core/prioritizer.h"

int main() {
  using namespace blameit;
  bench::header("Figure 12: client-time product of middle issues, oracle "
                "ranking vs BlameIt's predictions",
                "top ~5% of issues cover ~83% of impact; predicted ranking "
                "matches the oracle's budget coverage");

  auto stack = bench::make_stack();
  const auto& topo = *stack->topology;
  const int warmup = 3;
  const int eval_days = 4;
  // Ambient mix, middle-heavy so there are many middle issues to rank.
  auto incidents = bench::ambient_incidents(topo, warmup, eval_days, 1.6);
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());

  bench::warm_pipeline(*stack, warmup);

  // Replay the window bucket-by-bucket, measuring ORACLE impact per middle
  // issue run (users summed over its true bad buckets) and capturing
  // BlameIt's predicted client-time product at each issue's first bucket.
  core::DurationPredictor durations;
  core::ClientVolumePredictor clients;
  // Predictors are fed from the same pipeline the issues come from; reuse
  // the pipeline's own learner state by running it and reading its ranked
  // issues, which carry the prediction.
  struct Issue {
    double oracle_impact = 0.0;
    double predicted = 0.0;
    bool have_prediction = false;
    bool probed = false;  ///< ever within the per-run probe budget
  };
  std::map<std::pair<std::uint64_t, std::int64_t>, Issue> issues;
  // Open runs: key -> (start bucket, accumulated users).
  std::map<std::uint64_t, std::pair<std::int64_t, double>> open;

  for (int day = warmup; day < warmup + eval_days; ++day) {
    for (int minute = 15; minute <= util::kMinutesPerDay; minute += 15) {
      const auto now = util::MinuteTime::from_days(day).plus_minutes(minute);
      const auto report = stack->pipeline->step(now);

      // Oracle accounting from the blames themselves (users per middle
      // issue per bucket).
      std::map<std::pair<std::uint64_t, std::int64_t>, double> users_now;
      for (const auto& blame : report.blames) {
        if (blame.blame != core::Blame::Middle) continue;
        const auto key = core::middle_issue_key(blame.quartet.key.location,
                                                blame.quartet.middle);
        users_now[{key, blame.quartet.key.bucket.index}] +=
            blame.quartet.sample_count / 2.5;
      }
      for (const auto& [key_bucket, users] : users_now) {
        const auto [key, bucket] = key_bucket;
        auto it = open.find(key);
        if (it == open.end() || bucket > it->second.first + 1000) {
          open[key] = {bucket, users};
        } else {
          it->second.second += users;
        }
        issues[{key, open[key].first}].oracle_impact = open[key].second;
      }
      // Runs that stopped appearing close (coarse: prune stale).
      for (auto it = open.begin(); it != open.end();) {
        bool active = false;
        for (const auto& [key_bucket, users] : users_now) {
          if (key_bucket.first == it->first) active = true;
        }
        if (!active) {
          it = open.erase(it);
        } else {
          ++it;
        }
      }

      // Predictions: the pipeline's ranked issues carry client-time
      // products. Record the most mature prediction per issue run, and
      // whether the issue ever made it into the probe budget (the budget is
      // re-spent every run, so a long-lived issue can be probed once its
      // predicted product matures).
      const auto budget = static_cast<std::size_t>(
          stack->pipeline->config().probe_budget_per_run);
      for (std::size_t rank = 0; rank < report.ranked_issues.size();
           ++rank) {
        const auto& ranked = report.ranked_issues[rank];
        const auto key =
            core::middle_issue_key(ranked.location, ranked.middle);
        const auto oit = open.find(key);
        if (oit == open.end()) continue;
        auto& issue = issues[{key, oit->second.first}];
        issue.predicted = ranked.client_time_product;
        issue.have_prediction = true;
        issue.probed |= rank < budget;
      }
    }
  }

  std::vector<double> oracle_impacts;
  std::vector<std::pair<double, double>> predicted_vs_oracle;
  double probed_impact = 0.0;
  std::size_t probed_count = 0;
  for (const auto& [key, issue] : issues) {
    if (issue.oracle_impact <= 0.0) continue;
    oracle_impacts.push_back(issue.oracle_impact);
    if (issue.have_prediction) {
      predicted_vs_oracle.emplace_back(issue.predicted, issue.oracle_impact);
    }
    if (issue.probed) {
      probed_impact += issue.oracle_impact;
      ++probed_count;
    }
  }
  std::sort(oracle_impacts.rbegin(), oracle_impacts.rend());
  double total = 0.0;
  for (const double x : oracle_impacts) total += x;

  util::TextTable table{{"top % of issues (oracle rank)",
                         "cumulative impact covered"}};
  double acc = 0.0;
  std::size_t idx = 0;
  for (const double frac : {0.05, 0.1, 0.2, 0.5, 1.0}) {
    const auto upto = static_cast<std::size_t>(
        frac * static_cast<double>(oracle_impacts.size()));
    for (; idx < upto && idx < oracle_impacts.size(); ++idx) {
      acc += oracle_impacts[idx];
    }
    table.add_row({util::fmt_pct(frac, 0),
                   total > 0 ? util::fmt_pct(acc / total) : "-"});
  }
  std::printf("%s", table.to_string().c_str());

  // Budget coverage: impact captured by the top-k issues under the
  // predicted ranking vs under the oracle ranking, k = 5% of issues.
  if (!predicted_vs_oracle.empty()) {
    const auto k = std::max<std::size_t>(
        1, predicted_vs_oracle.size() / 20);
    auto by_pred = predicted_vs_oracle;
    std::sort(by_pred.begin(), by_pred.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    auto by_oracle = predicted_vs_oracle;
    std::sort(by_oracle.begin(), by_oracle.end(), [](const auto& a,
                                                     const auto& b) {
      return a.second > b.second;
    });
    double pred_cover = 0.0;
    double oracle_cover = 0.0;
    double denom = 0.0;
    for (const auto& [p, o] : predicted_vs_oracle) denom += o;
    for (std::size_t i = 0; i < k; ++i) {
      pred_cover += by_pred[i].second;
      oracle_cover += by_oracle[i].second;
    }
    std::printf("\nissues observed: %zu (%zu with predictions)\n",
                oracle_impacts.size(), predicted_vs_oracle.size());
    std::printf("top-5%% snapshot coverage: oracle %s, BlameIt prediction %s\n",
                util::fmt_pct(oracle_cover / denom).c_str(),
                util::fmt_pct(pred_cover / denom).c_str());
    // Operational coverage: impact of issues that ever received an
    // on-demand probe vs what an oracle would cover with the same number
    // of probed issues.
    std::sort(oracle_impacts.rbegin(), oracle_impacts.rend());
    double oracle_same_n = 0.0;
    for (std::size_t i = 0; i < probed_count && i < oracle_impacts.size();
         ++i) {
      oracle_same_n += oracle_impacts[i];
    }
    std::printf(
        "probed-issue coverage  : BlameIt %s of all middle-issue impact "
        "(%zu issues probed); oracle with %zu issues: %s\n",
        util::fmt_pct(total > 0 ? probed_impact / total : 0.0).c_str(),
        probed_count, probed_count,
        util::fmt_pct(total > 0 ? oracle_same_n / total : 0.0).c_str());
    std::puts("Expected (paper): the predicted ranking's coverage tracks "
              "the oracle's\n(Fig 12: prioritization 'as good as an "
              "oracle').");
  }
  return 0;
}
