// Figure 3: bad-quartet percentage by the hour over one week — the USA-wide
// series (top of the paper's figure) and two ISPs with different profiles
// (bottom). The paper's observations: a diurnal pattern with badness higher
// at night (home ISPs dominate off-work hours), a damped pattern on the
// weekend, and per-ISP amplitudes that differ enough that temporal
// predictability cannot be assumed.
#include "bench/common.h"
#include "util/histogram.h"

int main() {
  using namespace blameit;
  bench::header("Figure 3: bad quartets (%) by hour, 1 week, USA + two ISPs",
                "diurnal badness, higher at night; ISP amplitudes differ; "
                "weekend pattern flattens");

  auto stack = bench::make_stack();
  const auto& topo = *stack->topology;
  const auto incidents = bench::ambient_incidents(topo, 0, 7, 1.2);
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());

  // Pick the most home-heavy and most enterprise-heavy US eyeballs as the
  // two contrasting ISPs.
  const auto us_eyeballs = topo.eyeballs_in(net::Region::UnitedStates);
  auto mean_enterprise = [&](net::AsId isp) {
    double sum = 0.0;
    int n = 0;
    for (const auto& b : topo.blocks()) {
      if (b.client_as == isp) {
        sum += b.enterprise_fraction;
        ++n;
      }
    }
    return n ? sum / n : 0.0;
  };
  net::AsId isp_home = us_eyeballs.front();
  net::AsId isp_work = us_eyeballs.front();
  for (const auto isp : us_eyeballs) {
    if (mean_enterprise(isp) < mean_enterprise(isp_home)) isp_home = isp;
    if (mean_enterprise(isp) > mean_enterprise(isp_work)) isp_work = isp;
  }

  constexpr int kHours = 7 * 24;
  struct HourCount {
    long total = 0;
    long bad = 0;
  };
  std::vector<HourCount> usa(kHours);
  std::vector<HourCount> home(kHours);
  std::vector<HourCount> work(kHours);

  for (int hour = 0; hour < kHours; ++hour) {
    for (int b = 0; b < 12; b += 2) {  // sample 6 of 12 buckets per hour
      const util::TimeBucket bucket{hour * 12 + b};
      for (const auto& q : stack->quartets(bucket)) {
        if (q.region != net::Region::UnitedStates) continue;
        auto bump = [&](std::vector<HourCount>& series) {
          ++series[hour].total;
          series[hour].bad += q.bad;
        };
        bump(usa);
        if (q.client_as == isp_home) bump(home);
        if (q.client_as == isp_work) bump(work);
      }
    }
  }

  auto pct_series = [](const std::vector<HourCount>& series) {
    std::vector<double> out;
    out.reserve(series.size());
    for (const auto& h : series) {
      out.push_back(h.total ? 100.0 * h.bad / h.total : 0.0);
    }
    return out;
  };
  const auto usa_pct = pct_series(usa);
  const auto home_pct = pct_series(home);
  const auto work_pct = pct_series(work);

  std::puts("hourly bad% sparklines (168 hours; weekend = hours 120-168):");
  std::printf("  USA  : %s\n", util::sparkline(usa_pct).c_str());
  std::printf("  ISP1*: %s  (*home-heavy, evening peaks)\n",
              util::sparkline(home_pct).c_str());
  std::printf("  ISP2*: %s  (*enterprise-heavy, flatter)\n",
              util::sparkline(work_pct).c_str());

  // Day vs night comparison (paper: night consistently worse).
  auto day_night = [&](const std::vector<double>& series) {
    double day_sum = 0.0;
    double night_sum = 0.0;
    int day_n = 0;
    int night_n = 0;
    for (int hour = 0; hour < kHours; ++hour) {
      const int h = hour % 24;
      if (h >= 9 && h < 18) {
        day_sum += series[hour];
        ++day_n;
      } else if (h >= 20 || h < 4) {
        night_sum += series[hour];
        ++night_n;
      }
    }
    return std::pair{day_sum / day_n, night_sum / night_n};
  };
  util::TextTable table{{"series", "work-hours bad%", "night bad%"}};
  const auto [usa_day, usa_night] = day_night(usa_pct);
  const auto [home_day, home_night] = day_night(home_pct);
  const auto [work_day, work_night] = day_night(work_pct);
  table.add_row({"USA", util::fmt(usa_day, 2), util::fmt(usa_night, 2)});
  table.add_row({"ISP1 (home)", util::fmt(home_day, 2),
                 util::fmt(home_night, 2)});
  table.add_row({"ISP2 (enterprise)", util::fmt(work_day, 2),
                 util::fmt(work_night, 2)});
  std::printf("%s", table.to_string().c_str());
  std::puts("\nExpected: night >= work-hours for the aggregate series (home-"
            "ISP\ncongestion), with the home-heavy ISP showing the larger "
            "amplitude.");
  return 0;
}
