// Figure 10: CDFs of issue durations split by blame category (consecutive
// 5-minute buckets). Paper: all three categories keep the long-tailed shape
// of Fig 4a, and cloud issues are generally the shortest (a dedicated team
// fixes them fastest).
#include "bench/common.h"
#include "util/histogram.h"

int main() {
  using namespace blameit;
  bench::header("Figure 10: duration of cloud/middle/client issues",
                "long-tailed in all categories; cloud issues shortest");

  auto stack = bench::make_stack();
  const auto& topo = *stack->topology;
  const int warmup = 3;
  const int eval_days = 6;
  const auto incidents =
      bench::ambient_incidents(topo, warmup, eval_days, 1.3);
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());

  bench::warm_pipeline(*stack, warmup);
  auto result = bench::run_window(*stack, warmup, eval_days);

  util::TextTable table{{"CDF", "cloud (buckets)", "middle (buckets)",
                         "client (buckets)"}};
  for (const double q : {0.25, 0.5, 0.75, 0.9, 0.99}) {
    auto cell = [&](core::Blame blame) {
      const auto& xs = result.durations[blame];
      return xs.empty() ? std::string{"-"}
                        : util::fmt(util::quantile(xs, q), 1);
    };
    table.add_row({util::fmt_pct(q, 0), cell(core::Blame::Cloud),
                   cell(core::Blame::Middle), cell(core::Blame::Client)});
  }
  std::printf("%s", table.to_string().c_str());

  auto mean_of = [&](core::Blame blame) {
    return util::mean(result.durations[blame]);
  };
  std::printf("\nruns observed: cloud=%zu middle=%zu client=%zu\n",
              result.durations[core::Blame::Cloud].size(),
              result.durations[core::Blame::Middle].size(),
              result.durations[core::Blame::Client].size());
  std::printf("mean duration (buckets): cloud=%.2f middle=%.2f client=%.2f\n",
              mean_of(core::Blame::Cloud), mean_of(core::Blame::Middle),
              mean_of(core::Blame::Client));
  std::puts("Expected (paper): cloud mean <= middle/client means, all "
            "distributions\nlong-tailed (most runs 1-2 buckets, a tail of "
            "hours).");
  return 0;
}
