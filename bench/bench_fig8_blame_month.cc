// Figure 8: blame fractions worldwide over a month of production operation.
// Paper: stable day-to-day fractions; middle-segment issues slightly above
// client issues; cloud generally below ~4% — except a visible bump around
// day 24 caused by scheduled cloud maintenance.
//
// Bench scale: 12 evaluation days (plus warmup) with ambient incidents, and
// a scheduled maintenance window injected on "day 24" of the run (offset 9).
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace blameit;
  const int eval_days = argc > 1 ? std::atoi(argv[1]) : 12;
  const int maintenance_offset = eval_days * 3 / 4;
  bench::header("Figure 8: blame fractions over " +
                    std::to_string(eval_days) + " days",
                "stable fractions, middle >= client >> cloud (<4%), with a "
                "cloud bump on the maintenance day");

  auto stack = bench::make_stack();
  const auto& topo = *stack->topology;
  const int warmup = 3;
  const auto incidents =
      bench::ambient_incidents(topo, warmup, eval_days, 1.0);
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());

  // Scheduled maintenance: several hours of elevated RTT at two locations.
  for (const auto loc : topo.locations_in(net::Region::Europe)) {
    stack->faults.add(sim::Fault{
        .kind = sim::FaultKind::CloudLocation,
        .cloud_location = loc,
        .added_ms = 80.0,
        .start = util::MinuteTime::from_day_hour(
            warmup + maintenance_offset, 2),
        .duration_minutes = 5 * 60,
        .label = "scheduled-maintenance"});
  }

  bench::warm_pipeline(*stack, warmup);
  const auto result = bench::run_window(*stack, warmup, eval_days);

  util::TextTable table{{"day", "cloud", "middle", "client", "ambiguous",
                         "insufficient", "note"}};
  for (int day = 0; day < eval_days; ++day) {
    const auto& counts = result.day_counts[static_cast<std::size_t>(day)];
    long total = 0;
    for (const long n : counts) total += n;
    auto pct = [&](core::Blame blame) {
      return total ? util::fmt_pct(
                         static_cast<double>(
                             counts[static_cast<std::size_t>(blame)]) /
                         static_cast<double>(total))
                   : std::string{"-"};
    };
    table.add_row({std::to_string(day), pct(core::Blame::Cloud),
                   pct(core::Blame::Middle), pct(core::Blame::Client),
                   pct(core::Blame::Ambiguous),
                   pct(core::Blame::Insufficient),
                   day == maintenance_offset ? "<- maintenance" : ""});
  }
  std::printf("%s", table.to_string().c_str());

  const auto totals = result.totals();
  long grand = 0;
  for (const long n : totals) grand += n;
  std::printf("\nwindow totals: cloud=%s middle=%s client=%s (of %s blamed "
              "quartets)\n",
              util::fmt_pct(static_cast<double>(totals[0]) / grand).c_str(),
              util::fmt_pct(static_cast<double>(totals[1]) / grand).c_str(),
              util::fmt_pct(static_cast<double>(totals[2]) / grand).c_str(),
              util::fmt_count(static_cast<std::uint64_t>(grand)).c_str());
  std::printf("probes: on-demand=%ld background=%ld\n",
              result.on_demand_probes, result.background_probes);
  return 0;
}
