// Figure 6: CDF of the number of other IP-/24s sharing the same "middle
// segment" within 5 minutes, under three candidate definitions — BGP prefix
// (finest), BGP atom (prefixes sharing the full AS path), and the paper's
// choice, the BGP path (middle ASes only, coarsest). More sharing = more RTT
// samples per group = more statistical confidence for Algorithm 1.
#include <map>

#include "bench/common.h"
#include "util/histogram.h"

int main() {
  using namespace blameit;
  bench::header("Figure 6: /24s sharing a middle segment, per definition",
                "BGP path gives the most co-grouped /24s, then BGP atom, "
                "then BGP prefix");

  auto stack = bench::make_stack();
  const auto& topo = *stack->topology;
  const auto t = util::MinuteTime::from_day_hour(0, 12);

  // Group sizes per definition, evaluated at each block's primary location.
  std::map<std::uint64_t, int> by_prefix;
  std::map<std::string, int> by_atom;
  std::map<std::uint64_t, int> by_path;
  for (const auto& block : topo.blocks()) {
    const auto loc = topo.home_locations(block.block).front();
    const auto* route = topo.routing().route_for(loc, block.block, t);
    if (!route) continue;
    ++by_prefix[(std::uint64_t{loc.value} << 40) |
                (std::uint64_t{route->announced.network} << 8) |
                route->announced.length];
    std::string atom = std::to_string(loc.value) + ":";
    for (const auto as : route->full_path) {
      atom += std::to_string(as.value) + "-";
    }
    ++by_atom[atom];
    ++by_path[(std::uint64_t{loc.value} << 32) | route->middle.value];
  }

  // Per-/24 view: each member of a group of n sees n-1 other /24s.
  auto sizes_of = [](const auto& groups) {
    std::vector<double> out;
    for (const auto& [key, n] : groups) {
      for (int i = 0; i < n; ++i) out.push_back(n - 1.0);
    }
    return out;
  };
  const auto prefix_sizes = sizes_of(by_prefix);
  const auto atom_sizes = sizes_of(by_atom);
  const auto path_sizes = sizes_of(by_path);

  util::TextTable table{{"percentile", "BGP prefix", "BGP atom", "BGP path"}};
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    table.add_row({util::fmt_pct(q, 0),
                   util::fmt(util::quantile(prefix_sizes, q), 0),
                   util::fmt(util::quantile(atom_sizes, q), 0),
                   util::fmt(util::quantile(path_sizes, q), 0)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nmean other-/24s sharing the group: prefix=%.1f atom=%.1f "
              "path=%.1f\n",
              util::mean(prefix_sizes), util::mean(atom_sizes),
              util::mean(path_sizes));
  std::puts("Expected ordering (paper): prefix <= atom <= path — grouping "
            "by BGP path\nyields the most samples while staying on one "
            "routing footprint.");
  return 0;
}
