// Probe-cost comparison (§1, §6.5): BlameIt's total traceroute bill —
// background (2/day/path + churn) plus impact-prioritized on-demand probes —
// against (a) the continuous active-probing strawman (every path every 10
// minutes) and (b) Trinocular-style adaptive probing. Paper: 72× fewer than
// (a), 20× fewer than (b).
#include "baselines/active_only.h"
#include "baselines/trinocular.h"
#include "bench/common.h"

int main() {
  using namespace blameit;
  bench::header("Probe cost: BlameIt vs active-only vs Trinocular (1 day)",
                "72x fewer probes than active-only; 20x fewer than "
                "Trinocular");

  // --- BlameIt: full pipeline over one day with ambient incidents. ---
  auto blameit_stack = bench::make_stack();
  {
    const auto incidents =
        bench::ambient_incidents(*blameit_stack->topology, 3, 1, 1.0);
    sim::apply_incidents(incidents, blameit_stack->faults,
                         blameit_stack->generator.get());
  }
  bench::warm_pipeline(*blameit_stack, 3);
  blameit_stack->engine->accountant().reset();
  const auto window = bench::run_window(*blameit_stack, 3, 1);
  const auto blameit_probes =
      blameit_stack->engine->accountant().total();

  // --- Active-only strawman over the same day. ---
  auto active_stack = bench::make_stack();
  baselines::ActiveOnlyMonitor active_only{active_stack->topology.get(),
                                           active_stack->engine.get()};
  (void)active_only.step(util::MinuteTime::from_days(3),
                         util::MinuteTime::from_days(4));
  const auto active_probes = active_stack->engine->accountant().total();

  // --- Trinocular-style over the same day. ---
  auto trino_stack = bench::make_stack();
  baselines::TrinocularMonitor trinocular{trino_stack->topology.get(),
                                          trino_stack->engine.get()};
  for (int minute = 15; minute <= util::kMinutesPerDay; minute += 15) {
    (void)trinocular.step(
        util::MinuteTime::from_days(3).plus_minutes(minute - 15),
        util::MinuteTime::from_days(3).plus_minutes(minute));
  }
  const auto trino_probes = trino_stack->engine->accountant().total();

  util::TextTable table{{"system", "probes/day", "vs BlameIt"}};
  auto ratio = [&](std::uint64_t probes) {
    return util::fmt(static_cast<double>(probes) /
                         static_cast<double>(std::max<std::uint64_t>(
                             1, blameit_probes)),
                     1) +
           "x";
  };
  table.add_row({"active-only (10 min/path)", util::fmt_count(active_probes),
                 ratio(active_probes)});
  table.add_row({"Trinocular-style adaptive", util::fmt_count(trino_probes),
                 ratio(trino_probes)});
  table.add_row({"BlameIt (2/day + churn + on-demand)",
                 util::fmt_count(blameit_probes), "1.0x"});
  std::printf("%s", table.to_string().c_str());
  std::printf("\nBlameIt probe mix: background=%ld on-demand=%ld\n",
              window.background_probes, window.on_demand_probes);
  std::puts("Paper: 72x fewer than active-only, 20x fewer than Trinocular.");
  return 0;
}
