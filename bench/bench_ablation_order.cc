// Ablation (§4.2 / Insight-2): why Algorithm 1 starts blame assignment at
// the CLOUD segment. During a cloud fault, every BGP path into the sick
// location is 100% bad — a middle-first hierarchy would blame all of them.
// Cloud-first resolves the ambiguity exactly as in the Australia-overload
// case study (§6.3 #3).
#include "bench/common.h"
#include "core/passive.h"

namespace {

using namespace blameit;

// Middle-first variant of Algorithm 1 (everything else identical).
std::map<core::Blame, int> middle_first_blames(
    const net::Topology& topo, const analysis::ExpectedRttLearner& learner,
    std::span<const analysis::Quartet> quartets, int day,
    net::CloudLocationId at_location) {
  const core::PassiveLocalizer reference{&topo, &learner};
  struct Group {
    int total = 0;
    int above = 0;
  };
  std::map<std::uint64_t, Group> cloud_groups;
  std::map<std::uint64_t, Group> middle_groups;
  for (const auto& q : quartets) {
    const double cloud_cmp = reference.comparison_rtt(
        analysis::cloud_key(q.key.location, q.key.device), day, q.region,
        q.key.device);
    const double middle_cmp = reference.comparison_rtt(
        analysis::middle_key(q.key.location, q.middle, q.key.device), day,
        q.region, q.key.device);
    auto& cg = cloud_groups[(std::uint64_t{q.key.location.value} << 8) |
                            static_cast<std::uint64_t>(q.key.device)];
    ++cg.total;
    cg.above += q.mean_rtt_ms > cloud_cmp;
    auto& mg = middle_groups[(std::uint64_t{q.key.location.value} << 40) |
                             (std::uint64_t{q.middle.value} << 8) |
                             static_cast<std::uint64_t>(q.key.device)];
    ++mg.total;
    mg.above += q.mean_rtt_ms > middle_cmp;
  }
  std::map<core::Blame, int> out;
  for (const auto& q : quartets) {
    if (!q.bad || q.key.location != at_location) continue;
    const auto& mg =
        middle_groups[(std::uint64_t{q.key.location.value} << 40) |
                      (std::uint64_t{q.middle.value} << 8) |
                      static_cast<std::uint64_t>(q.key.device)];
    const auto& cg =
        cloud_groups[(std::uint64_t{q.key.location.value} << 8) |
                     static_cast<std::uint64_t>(q.key.device)];
    // Middle-first: check the BGP-path group before the cloud group.
    if (mg.total > 5 &&
        static_cast<double>(mg.above) / mg.total >= 0.8) {
      ++out[core::Blame::Middle];
    } else if (cg.total > 5 &&
               static_cast<double>(cg.above) / cg.total >= 0.8) {
      ++out[core::Blame::Cloud];
    } else {
      ++out[core::Blame::Client];
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace blameit;
  bench::header("Ablation: cloud-first vs middle-first hierarchical "
                "elimination",
                "Insight-2: starting at the cloud avoids misblaming every "
                "BGP path during a cloud fault");

  auto stack = bench::make_stack();
  const auto& topo = *stack->topology;
  const int warmup = 3;
  const auto loc = topo.locations_in(net::Region::Australia).front();
  stack->faults.add(sim::Fault{
      .kind = sim::FaultKind::CloudLocation,
      .cloud_location = loc,
      .added_ms = 80.0,
      .start = util::MinuteTime::from_days(warmup),
      .duration_minutes = util::kMinutesPerDay});

  analysis::ExpectedRttLearner learner{analysis::ExpectedRttConfig{
      .window_days = warmup, .reservoir_per_day = 128}};
  {
    sim::FaultInjector no_faults;
    const sim::TelemetryGenerator clean{&topo, &no_faults};
    for (int day = 0; day < warmup; ++day) {
      for (int b = 0; b < util::kBucketsPerDay; b += 3) {
        const util::TimeBucket bucket{day * util::kBucketsPerDay + b};
        analysis::QuartetBuilder builder{&topo,
                                         analysis::BadnessThresholds{}};
        clean.generate_aggregates(
            bucket, [&](const analysis::QuartetKey& k, int n, double mean) {
              builder.add_aggregate(k, n, mean);
            });
        for (const auto& q : builder.take_bucket(bucket)) {
          learner.observe(analysis::cloud_key(q.key.location, q.key.device),
                          day, q.mean_rtt_ms);
          learner.observe(
              analysis::middle_key(q.key.location, q.middle, q.key.device),
              day, q.mean_rtt_ms);
        }
      }
    }
  }

  const auto bucket = util::TimeBucket::of(
      util::MinuteTime::from_day_hour(warmup, 12));
  const auto quartets = stack->quartets(bucket);

  const core::PassiveLocalizer cloud_first{&topo, &learner};
  std::map<core::Blame, int> cloud_first_counts;
  for (const auto& r : cloud_first.localize(quartets, warmup)) {
    if (r.quartet.key.location == loc) ++cloud_first_counts[r.blame];
  }
  const auto middle_first_counts =
      middle_first_blames(topo, learner, quartets, warmup, loc);

  util::TextTable table{{"hierarchy", "cloud blames", "middle blames",
                         "other"}};
  auto row = [&](const std::string& name,
                 const std::map<core::Blame, int>& counts) {
    int cloud = 0;
    int middle = 0;
    int other = 0;
    for (const auto& [blame, n] : counts) {
      if (blame == core::Blame::Cloud) {
        cloud += n;
      } else if (blame == core::Blame::Middle) {
        middle += n;
      } else {
        other += n;
      }
    }
    table.add_row({name, std::to_string(cloud), std::to_string(middle),
                   std::to_string(other)});
  };
  row("cloud-first (BlameIt)", cloud_first_counts);
  row("middle-first (ablated)", middle_first_counts);
  std::printf("%s", table.to_string().c_str());
  std::puts("\nExpected: during the cloud overload, cloud-first pins the "
            "blame on the\ncloud; middle-first sprays it across every BGP "
            "path into the location —\nexactly the Australia case study's "
            "failure mode (§6.3 #3).");
  return 0;
}
