// Table 1: comparison with prior network-diagnosis systems on the desired
// properties for scalable fault localization. The property matrix is the
// paper's; alongside it, this bench demonstrates the three load-bearing
// BlameIt properties live: triggered timely probes, impact-prioritized
// probes, and low-latency diagnosis.
#include "bench/common.h"

int main() {
  using namespace blameit;
  bench::header("Table 1: desired properties vs prior systems",
                "BlameIt is the only system with timely, impact-prioritized "
                "probing plus passive coarse localization");

  util::TextTable matrix{{"property", "BlameIt", "Tomography", "EdgeFabric",
                          "PlanetSeer", "iPlane", "Trinocular", "Odin",
                          "WhyHigh"}};
  matrix.add_row({"Latency degradation", "yes", "yes", "yes", "no", "yes",
                  "no", "yes", "yes"});
  matrix.add_row({"Internet scale", "yes", "no", "yes", "no", "no", "yes",
                  "yes", "yes"});
  matrix.add_row({"Works with insufficient coverage", "yes", "no", "yes",
                  "yes", "no", "yes", "yes", "yes"});
  matrix.add_row({"Automated root-cause diagnosis", "yes", "yes", "no",
                  "yes", "yes", "yes", "yes", "no"});
  matrix.add_row({"Diagnosis with low latency", "yes", "no", "yes", "no",
                  "no", "yes", "yes", "no"});
  matrix.add_row({"Triggered timely probes", "yes", "no", "no", "yes", "no",
                  "no", "no", "no"});
  matrix.add_row({"Impact-prioritized probes", "yes", "no", "no", "no", "no",
                  "no", "no", "no"});
  std::printf("%s\n", matrix.to_string().c_str());

  // Live demonstration of the BlameIt-only rows.
  auto stack = bench::make_stack();
  const auto& topo = *stack->topology;
  const auto& block = topo.blocks().front();
  const auto home = topo.home_locations(block.block).front();
  const auto* route =
      topo.routing().route_for(home, block.block, util::MinuteTime{0});
  const auto victim = route->middle_ases().front();
  const auto fault_start = util::MinuteTime::from_day_hour(3, 10);
  stack->faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                               .as = victim,
                               .added_ms = 110.0,
                               .start = fault_start,
                               .duration_minutes = 120});
  bench::warm_pipeline(*stack, 3);

  util::MinuteTime first_probe{-1};
  util::MinuteTime first_diag{-1};
  for (int minute = 9 * 60 + 15; minute <= 12 * 60; minute += 15) {
    const auto now = util::MinuteTime::from_days(3).plus_minutes(minute);
    const auto report = stack->pipeline->step(now);
    if (report.on_demand_probes > 0 && first_probe.minutes < 0) {
      first_probe = now;
    }
    for (const auto& diag : report.diagnoses) {
      if (diag.culprit == victim && first_diag.minutes < 0) first_diag = now;
    }
  }
  std::printf("timely probes   : fault at %s, first on-demand probe at %s "
              "(%lld min into the incident)\n",
              util::to_string(fault_start).c_str(),
              util::to_string(first_probe).c_str(),
              static_cast<long long>(first_probe.minutes -
                                     fault_start.minutes));
  std::printf("low-latency diag: culprit %s identified at %s — during the "
              "incident, not post-hoc\n",
              victim.to_string().c_str(),
              util::to_string(first_diag).c_str());
  std::puts("impact-priority : see bench_fig12_client_time_product / "
            "bench_probe_cost");
  return 0;
}
