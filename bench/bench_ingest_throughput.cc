// Ingestion throughput: records/sec through the sharded streaming engine at
// 1/2/4/8 shards, against the single-threaded QuartetBuilder as baseline.
//
// The record set (a midday hour of shuffled raw RTTs) is materialized once
// up front so the measurement covers only ingestion — partitioning, queue
// transfer, accumulation, and watermark finalization — not the telemetry
// generator. On a multi-core host >= 2 shards should beat 1; on a single
// core the sharded path shows its queue-transfer overhead instead.
//
//   $ ./bench_ingest_throughput [minutes=60]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/quartet.h"
#include "bench/common.h"
#include "ingest/engine.h"
#include "ops/report.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blameit;

  const int minutes = argc > 1 ? std::atoi(argv[1]) : 60;
  const int buckets = std::max(1, minutes / util::kBucketMinutes);
  bench::header("ingest throughput: sharded streaming aggregation",
                "Fig 7 analytics cluster — raw RTT stream -> quartets");

  auto stack = bench::make_stack();
  const auto first =
      util::TimeBucket::of(util::MinuteTime::from_day_hour(0, 12));

  std::printf("materializing %d buckets of shuffled records...\n", buckets);
  std::vector<std::vector<analysis::RttRecord>> stream(
      static_cast<std::size_t>(buckets));
  std::size_t total_records = 0;
  for (int b = 0; b < buckets; ++b) {
    auto& records = stream[static_cast<std::size_t>(b)];
    stack->generator->generate_records_shuffled(
        util::TimeBucket{first.index + b},
        [&](const analysis::RttRecord& r) { records.push_back(r); });
    total_records += records.size();
  }
  std::printf("stream: %s records\n\n",
              util::fmt_count(total_records).c_str());

  util::TextTable table{{"config", "records/sec", "elapsed ms", "quartets",
                         "high-water", "bp-waits"}};
  bench::BenchReport report{"ingest_throughput"};

  // Baseline: the single-threaded QuartetBuilder the pipeline used before.
  {
    analysis::QuartetBuilder builder{stack->topology.get(),
                                     analysis::BadnessThresholds{}};
    std::size_t quartets = 0;
    const auto t0 = Clock::now();
    for (int b = 0; b < buckets; ++b) {
      for (const auto& r : stream[static_cast<std::size_t>(b)]) {
        builder.add(r);
      }
      quartets += builder.take_bucket(util::TimeBucket{first.index + b}).size();
    }
    const double secs = seconds_since(t0);
    report.add_run("builder (no threads)", secs * 1e3,
                   static_cast<double>(total_records) / secs);
    table.add_row({"builder (no threads)",
                   util::fmt_count(static_cast<std::uint64_t>(
                       static_cast<double>(total_records) / secs)),
                   util::fmt(secs * 1e3, 1), util::fmt_count(quartets), "-",
                   "-"});
  }

  for (const int shards : {1, 2, 4, 8}) {
    ingest::IngestConfig cfg;
    cfg.shards = shards;
    ingest::IngestEngine engine{stack->topology.get(),
                                analysis::BadnessThresholds{}, cfg};
    std::size_t quartets = 0;
    const auto t0 = Clock::now();
    for (int b = 0; b < buckets; ++b) {
      const auto bucket = util::TimeBucket{first.index + b};
      for (const auto& r : stream[static_cast<std::size_t>(b)]) {
        engine.submit(r);
      }
      engine.advance_watermark(engine.watermark_to_finalize(bucket));
    }
    engine.flush();
    const double secs = seconds_since(t0);
    for (int b = 0; b < buckets; ++b) {
      quartets += engine.take_bucket(util::TimeBucket{first.index + b}).size();
    }
    const auto stats = engine.stats();
    char label[32];
    std::snprintf(label, sizeof label, "%d shard%s", shards,
                  shards == 1 ? "" : "s");
    report.add_run(label, secs * 1e3,
                   static_cast<double>(total_records) / secs,
                   {{"shards", static_cast<double>(shards)},
                    {"backpressure_waits",
                     static_cast<double>(stats.backpressure_waits)}});
    table.add_row({label,
                   util::fmt_count(static_cast<std::uint64_t>(
                       static_cast<double>(total_records) / secs)),
                   util::fmt(secs * 1e3, 1), util::fmt_count(quartets),
                   std::to_string(stats.queue_high_water),
                   std::to_string(stats.backpressure_waits)});
    if (shards == 8) {
      std::printf("%s\n", ops::render_ingest(stats).c_str());
    }
  }

  std::printf("\n%s", table.to_string().c_str());
  report.write();
  return 0;
}
