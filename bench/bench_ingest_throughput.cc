// Ingestion throughput: records/sec through the sharded streaming engine at
// 1/2/4/8 shards, against the single-threaded QuartetBuilder as baseline.
//
// The record set (a midday window of shuffled raw RTTs) is materialized once
// up front so the measurement covers only ingestion — partitioning, ring
// transfer, accumulation, and watermark finalization — not the telemetry
// generator. Each configuration runs one warmup pass plus `--trials` timed
// passes and reports the MEDIAN, so one scheduler hiccup cannot move the
// number. On a multi-core host >= 2 shards should beat the serial builder;
// on a single core the sharded path shows its ring-transfer overhead
// instead.
//
//   $ ./bench_ingest_throughput [--minutes N] [--records N]
//         [--shards 1,2,4,8] [--trials K] [--min-ratio R]
//
// --records materializes exactly enough 5-minute buckets to reach N records.
// --min-ratio R exits nonzero unless the BEST shard configuration reaches
// at least R x the serial builder's median throughput — the CI perf
// regression gate (currently R=1.5; even a single-core box measures ~1.9x
// because the SPSC handoff overlaps generation with aggregation; raise
// toward 2.0 as the floor hardens).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/quartet.h"
#include "bench/common.h"
#include "ingest/engine.h"
#include "ops/report.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Options {
  int minutes = 60;
  std::size_t records = 0;  // 0 = derive from minutes
  std::vector<int> shards = {1, 2, 4, 8};
  int trials = 5;
  double min_ratio = 0.0;  // 0 = gate off
};

std::vector<int> parse_shard_list(const char* arg) {
  std::vector<int> out;
  const std::string s{arg};
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const int n = std::atoi(tok.c_str());
    if (n >= 1) out.push_back(n);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto has_value = [&] { return i + 1 < argc; };
    if (std::strcmp(argv[i], "--minutes") == 0 && has_value()) {
      opt.minutes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--records") == 0 && has_value()) {
      opt.records = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && has_value()) {
      opt.shards = parse_shard_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--trials") == 0 && has_value()) {
      opt.trials = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--min-ratio") == 0 && has_value()) {
      opt.min_ratio = std::atof(argv[++i]);
    } else if (argv[i][0] != '-') {
      opt.minutes = std::atoi(argv[i]);  // legacy positional [minutes]
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (opt.shards.empty()) opt.shards = {1, 2, 4, 8};
  return opt;
}

struct Trial {
  double secs = 0.0;
  double rate = 0.0;
  std::size_t quartets = 0;
  blameit::ingest::IngestStats stats;
};

/// Trial whose throughput is the median (lower-middle for even counts).
const Trial& median_trial(std::vector<Trial>& trials) {
  std::sort(trials.begin(), trials.end(),
            [](const Trial& a, const Trial& b) { return a.rate < b.rate; });
  return trials[(trials.size() - 1) / 2];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blameit;

  const Options opt = parse_options(argc, argv);
  bench::header("ingest throughput: sharded streaming aggregation",
                "Fig 7 analytics cluster — raw RTT stream -> quartets");

  auto stack = bench::make_stack();
  const auto first =
      util::TimeBucket::of(util::MinuteTime::from_day_hour(0, 12));

  // Materialize the record stream: `minutes` worth of buckets, or (with
  // --records) however many buckets it takes to reach the target count.
  std::vector<std::vector<analysis::RttRecord>> stream;
  std::size_t total_records = 0;
  const int min_buckets = std::max(1, opt.minutes / util::kBucketMinutes);
  std::printf("materializing records (%s)...\n",
              opt.records > 0
                  ? (util::fmt_count(opt.records) + " target").c_str()
                  : (std::to_string(opt.minutes) + " minutes").c_str());
  for (int b = 0;
       b < min_buckets || (opt.records > 0 && total_records < opt.records);
       ++b) {
    auto& records = stream.emplace_back();
    stack->generator->generate_records_shuffled(
        util::TimeBucket{first.index + b},
        [&](const analysis::RttRecord& r) { records.push_back(r); });
    total_records += records.size();
  }
  const int buckets = static_cast<int>(stream.size());
  std::printf("stream: %s records in %d buckets; %d trial%s + warmup each\n\n",
              util::fmt_count(total_records).c_str(), buckets, opt.trials,
              opt.trials == 1 ? "" : "s");

  util::TextTable table{{"config", "records/sec", "elapsed ms", "quartets",
                         "high-water", "parks p/c", "util"}};
  bench::BenchReport report{"ingest_throughput"};

  // Baseline: the single-threaded QuartetBuilder the pipeline used before.
  const auto run_serial = [&] {
    analysis::QuartetBuilder builder{stack->topology.get(),
                                     analysis::BadnessThresholds{}};
    Trial t;
    const auto t0 = Clock::now();
    for (int b = 0; b < buckets; ++b) {
      for (const auto& r : stream[static_cast<std::size_t>(b)]) {
        builder.add(r);
      }
      t.quartets +=
          builder.take_bucket(util::TimeBucket{first.index + b}).size();
    }
    t.secs = seconds_since(t0);
    t.rate = static_cast<double>(total_records) / t.secs;
    return t;
  };

  double serial_rate = 0.0;
  {
    run_serial();  // warmup: faults topology/stream into cache
    std::vector<Trial> trials;
    for (int i = 0; i < opt.trials; ++i) trials.push_back(run_serial());
    const Trial& med = median_trial(trials);
    serial_rate = med.rate;
    report.add_run("builder (no threads)", med.secs * 1e3, med.rate,
                   {{"trials", static_cast<double>(opt.trials)}});
    table.add_row({"builder (no threads)",
                   util::fmt_count(static_cast<std::uint64_t>(med.rate)),
                   util::fmt(med.secs * 1e3, 1), util::fmt_count(med.quartets),
                   "-", "-", "-"});
  }

  double best_sharded_rate = 0.0;
  int best_shards = 0;
  for (const int shards : opt.shards) {
    const auto run_sharded = [&] {
      ingest::IngestConfig cfg;
      cfg.shards = shards;
      ingest::IngestEngine engine{stack->topology.get(),
                                  analysis::BadnessThresholds{}, cfg};
      Trial t;
      const auto t0 = Clock::now();
      for (int b = 0; b < buckets; ++b) {
        const auto bucket = util::TimeBucket{first.index + b};
        for (const auto& r : stream[static_cast<std::size_t>(b)]) {
          engine.submit(r);
        }
        engine.advance_watermark(engine.watermark_to_finalize(bucket));
      }
      engine.flush();
      t.secs = seconds_since(t0);
      t.rate = static_cast<double>(total_records) / t.secs;
      for (int b = 0; b < buckets; ++b) {
        t.quartets +=
            engine.take_bucket(util::TimeBucket{first.index + b}).size();
      }
      t.stats = engine.stats();
      return t;
    };

    run_sharded();  // warmup
    std::vector<Trial> trials;
    for (int i = 0; i < opt.trials; ++i) trials.push_back(run_sharded());
    const Trial& med = median_trial(trials);
    if (med.rate > best_sharded_rate) {
      best_sharded_rate = med.rate;
      best_shards = shards;
    }

    // Per-shard utilization: worker busy time (records + finalize) over the
    // trial's wall time — how much of the wall each worker actually worked.
    const double wall_ns = med.secs * 1e9;
    double util_sum = 0.0;
    std::uint64_t consumer_parks = 0;
    std::vector<std::pair<std::string, double>> extra{
        {"shards", static_cast<double>(shards)},
        {"trials", static_cast<double>(opt.trials)},
        {"ring_high_water", static_cast<double>(med.stats.ring_high_water)},
        {"producer_parks",
         static_cast<double>(med.stats.backpressure_waits)}};
    for (std::size_t i = 0; i < med.stats.shards.size(); ++i) {
      const auto& shard = med.stats.shards[i];
      const double util =
          wall_ns > 0.0 ? static_cast<double>(shard.busy_ns) / wall_ns : 0.0;
      util_sum += util;
      consumer_parks += shard.consumer_parks;
      extra.emplace_back("util_shard_" + std::to_string(i), util);
      extra.emplace_back("high_water_shard_" + std::to_string(i),
                         static_cast<double>(shard.ring_high_water));
    }
    extra.emplace_back("consumer_parks",
                       static_cast<double>(consumer_parks));
    const double util_mean =
        med.stats.shards.empty()
            ? 0.0
            : util_sum / static_cast<double>(med.stats.shards.size());
    extra.emplace_back("util_mean", util_mean);
    extra.emplace_back("ratio_vs_serial",
                       serial_rate > 0.0 ? med.rate / serial_rate : 0.0);

    char label[32];
    std::snprintf(label, sizeof label, "%d shard%s", shards,
                  shards == 1 ? "" : "s");
    report.add_run(label, med.secs * 1e3, med.rate, std::move(extra));
    char parks[32];
    std::snprintf(parks, sizeof parks, "%llu/%llu",
                  static_cast<unsigned long long>(
                      med.stats.backpressure_waits),
                  static_cast<unsigned long long>(consumer_parks));
    table.add_row({label, util::fmt_count(static_cast<std::uint64_t>(med.rate)),
                   util::fmt(med.secs * 1e3, 1), util::fmt_count(med.quartets),
                   std::to_string(med.stats.ring_high_water), parks,
                   util::fmt(util_mean, 2)});
    if (shards == opt.shards.back()) {
      std::printf("%s\n", ops::render_ingest(med.stats).c_str());
    }
  }

  std::printf("\n%s", table.to_string().c_str());
  report.write();

  const double ratio =
      serial_rate > 0.0 ? best_sharded_rate / serial_rate : 0.0;
  std::printf("\nbest sharded: %d shards at %.2fx serial\n", best_shards,
              ratio);
  if (opt.min_ratio > 0.0 && ratio < opt.min_ratio) {
    std::fprintf(stderr,
                 "FAIL: sharded/serial ratio %.2f below floor %.2f\n", ratio,
                 opt.min_ratio);
    return 1;
  }
  return 0;
}
