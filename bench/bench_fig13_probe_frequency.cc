// Figure 13: fine-grained localization accuracy under different background
// traceroute frequencies, with and without BGP-churn-triggered probes.
// Paper: probing every BGP path every 10 minutes is near-perfect but costs
// ~200M probes/day; backing off to once per 12 hours WITH churn-triggered
// probes keeps ~93% accuracy at 72× lower cost; without churn triggers,
// accuracy decays as the period grows.
#include "bench/common.h"
#include "core/active.h"
#include "core/background.h"

namespace {

using namespace blameit;

struct SweepPoint {
  int period_minutes;
  bool churn_probes;
  double accuracy = 0.0;
  std::uint64_t probes = 0;
};

struct Trial {
  net::CloudLocationId location;
  net::Slash24 block;
  net::AsId target;          // faulted middle AS (ground truth)
  util::MinuteTime when;     // diagnosis instant
};

// One full timeline run at a given background config. Rebuilds the world
// identically each time (same seeds) so the only difference is probing.
SweepPoint run_config(int period_minutes, bool churn_probes) {
  auto stack = bench::make_stack();
  auto& topo = *stack->topology;
  util::Rng rng{4242};

  constexpr int kDays = 2;
  constexpr int kTrials = 30;

  // Schedule one route flip for a third of the ⟨location, prefix⟩ pairs
  // (paper: ~2/3 of paths see no churn in a day), at random times.
  struct Flip {
    net::CloudLocationId location;
    net::Prefix prefix;
    util::MinuteTime when;
  };
  std::vector<Flip> flips;
  for (const auto& loc : topo.locations()) {
    for (const auto& prefix : topo.routing().prefixes_at(loc.id)) {
      if (!rng.chance(0.33)) continue;
      const auto& alts = topo.alternates(loc.id, prefix);
      if (alts.size() < 2) continue;
      const auto when = util::MinuteTime{rng.uniform_int(
          60, kDays * util::kMinutesPerDay - 240)};
      topo.routing().change_path(loc.id, prefix, when, alts.back());
      flips.push_back(Flip{loc.id, prefix, when});
    }
  }

  // Trials: middle-AS faults on ASes that live routes actually cross at
  // diagnosis time. Half the trials land on recently-churned paths — the
  // case where baseline freshness (and churn-triggered probing) decides
  // the outcome.
  std::vector<Trial> trials;
  for (int i = 0; i < kTrials; ++i) {
    net::Slash24 trial_block{};
    net::CloudLocationId loc{};
    util::MinuteTime when{};
    if (i % 2 == 0 && !flips.empty()) {
      const auto& flip = flips[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(flips.size()) - 1))];
      trial_block = net::Slash24{flip.prefix.network >> 8};
      loc = flip.location;
      // Fault strikes 30-90 minutes after the path changed.
      when = flip.when.plus_minutes(rng.uniform_int(30, 90));
    } else {
      const auto& block = topo.blocks()[static_cast<std::size_t>(
          rng.uniform_int(0,
                          static_cast<std::int64_t>(topo.blocks().size()) -
                              1))];
      trial_block = block.block;
      loc = topo.home_locations(block.block).front();
      when = util::MinuteTime{
          rng.uniform_int(3 * 60, kDays * util::kMinutesPerDay - 60)};
    }
    const auto& block = *topo.find_block(trial_block);
    const auto* route = topo.routing().route_for(loc, block.block, when);
    if (!route || route->middle_ases().empty()) continue;
    const auto mids = route->middle_ases();
    const auto target = mids[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(mids.size()) - 1))];
    trials.push_back(Trial{loc, block.block, target, when});
    stack->faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                                 .as = target,
                                 .added_ms = 90.0,
                                 .start = when.plus_minutes(-30),
                                 .duration_minutes = 60,
                                 .only_via_location = loc});
  }

  core::BlameItConfig cfg;
  cfg.background_period_minutes = period_minutes;
  cfg.churn_triggered_probes = churn_probes;
  core::BaselineStore store;
  core::BackgroundProber background{&topo, stack->engine.get(), &store, cfg};
  core::ActiveLocalizer localizer{&topo, stack->engine.get(), &store};

  // Walk the timeline; diagnose each trial when its moment passes.
  std::size_t next_trial = 0;
  std::sort(trials.begin(), trials.end(),
            [](const Trial& a, const Trial& b) { return a.when < b.when; });
  int correct = 0;
  for (int minute = 15; minute <= kDays * util::kMinutesPerDay;
       minute += 15) {
    const util::MinuteTime now{minute};
    (void)background.step(util::MinuteTime{minute - 15}, now);
    while (next_trial < trials.size() && trials[next_trial].when <= now) {
      const auto& trial = trials[next_trial];
      const auto* route =
          topo.routing().route_for(trial.location, trial.block, trial.when);
      if (route) {
        // The passive phase knows when the badness run started; the
        // diagnosis compares against a baseline from before it.
        auto diag =
            localizer.diagnose(trial.location, route->middle, trial.block,
                               trial.when, trial.when.plus_minutes(-30));
        correct += diag.culprit && *diag.culprit == trial.target;
      }
      ++next_trial;
    }
  }

  SweepPoint point{.period_minutes = period_minutes,
                   .churn_probes = churn_probes};
  point.accuracy = trials.empty()
                       ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(trials.size());
  point.probes = stack->engine->accountant().total() / kDays;
  return point;
}

}  // namespace

int main() {
  using namespace blameit;
  bench::header("Figure 13: localization accuracy vs background probing "
                "frequency",
                "12h + churn-triggered probes ~= 93% accuracy at 72x lower "
                "probe cost than 10-min probing");

  std::vector<SweepPoint> points;
  for (const int period : {10, 120, 360, 720, 1440}) {
    for (const bool churn : {true, false}) {
      points.push_back(run_config(period, churn));
    }
  }

  const auto baseline_probes =
      std::max<std::uint64_t>(1, points.front().probes);
  util::TextTable table{{"background period", "churn probes", "accuracy",
                         "probes/day", "cost vs 10-min"}};
  for (const auto& point : points) {
    table.add_row(
        {point.period_minutes >= 60
             ? std::to_string(point.period_minutes / 60) + "h"
             : std::to_string(point.period_minutes) + "min",
         point.churn_probes ? "on" : "off", util::fmt_pct(point.accuracy),
         util::fmt_count(point.probes),
         util::fmt(static_cast<double>(baseline_probes) /
                       static_cast<double>(std::max<std::uint64_t>(
                           1, point.probes)),
                   1) +
             "x cheaper"});
  }
  std::printf("%s", table.to_string().c_str());
  std::puts("\nExpected shape (paper): accuracy stays high at long periods "
            "WHEN churn\nprobes are on (the 12h 'sweet spot'), and decays "
            "without them; the 12h\nconfiguration costs ~72x less than "
            "continuous 10-min probing.");
  return 0;
}
