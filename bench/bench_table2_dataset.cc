// Table 2: details of the dataset analyzed. The paper reports one month of
// Azure production telemetry; this bench generates one simulated day at
// bench scale and reports the same inventory rows, with the paper's orders
// of magnitude alongside.
#include <set>
#include <unordered_set>

#include "bench/common.h"

int main() {
  using namespace blameit;
  bench::header("Table 2: dataset inventory (1 simulated day, bench scale)",
                "many-trillion RTTs, O(100M) IPs, millions of /24s, "
                "O(100k) BGP prefixes, O(10k) ASes, O(100) metros");

  auto stack = bench::make_stack();
  const auto& topo = *stack->topology;
  const auto incidents = bench::ambient_incidents(topo, 0, 1);
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());

  std::uint64_t rtt_samples = 0;
  std::unordered_set<std::uint32_t> ips;
  std::unordered_set<std::uint32_t> slash24s;
  for (int b = 0; b < util::kBucketsPerDay; ++b) {
    const util::TimeBucket bucket{b};
    stack->generator->generate_records(
        bucket, [&](const analysis::RttRecord& r) {
          ++rtt_samples;
          ips.insert(r.client_ip.value);
          slash24s.insert(net::Slash24::of(r.client_ip).block);
        });
  }

  std::set<std::uint64_t> prefixes;
  std::set<std::uint32_t> client_ases;
  std::set<std::uint16_t> metros;
  for (const auto& block : topo.blocks()) {
    prefixes.insert((std::uint64_t{block.announced.network} << 8) |
                    block.announced.length);
    client_ases.insert(block.client_as.value);
    metros.insert(block.metro.value);
  }

  util::TextTable table{{"quantity", "simulated (1 day)", "paper (1 month)"}};
  table.add_row({"# RTT measurements", util::fmt_count(rtt_samples),
                 "many trillions"});
  table.add_row({"# client IPs", util::fmt_count(ips.size()),
                 "O(100 million)"});
  table.add_row({"# client IP /24s", util::fmt_count(slash24s.size()),
                 "many millions"});
  table.add_row({"# BGP prefixes", util::fmt_count(prefixes.size()),
                 "O(100,000)"});
  table.add_row({"# client ASes", util::fmt_count(client_ases.size()),
                 "O(10,000)"});
  table.add_row({"# client metros", util::fmt_count(metros.size()),
                 "O(100)"});
  table.add_row({"# cloud locations",
                 util::fmt_count(topo.locations().size()), "hundreds"});
  std::printf("%s", table.to_string().c_str());
  std::puts("\nThe simulated inventory preserves the paper's shape "
            "(hierarchical fan-out\nIPs >> /24s >> prefixes >> ASes >> "
            "metros) at laptop scale.");
  return 0;
}
