// Ablation (§4.3): learned expected-RTT medians vs the raw badness
// thresholds as Algorithm 1's comparison value. The paper's worked example:
// a cloud fault lifting RTTs from [35,45]ms to [40,70]ms against a 50 ms
// target — with the threshold only ~1/3 of quartets look bad (below τ=0.8,
// fault missed); with the learned 40 ms median all of them do.
#include "bench/common.h"
#include "core/passive.h"

int main() {
  using namespace blameit;
  bench::header("Ablation: learned expected RTT vs fixed badness threshold",
                "learned medians catch sub-threshold shifts that fixed "
                "thresholds miss (§4.3 worked example)");

  auto stack = bench::make_stack();
  const auto& topo = *stack->topology;
  const int warmup = 3;

  // A moderate cloud fault: large enough to hurt, small enough that many
  // RTTs stay under the regional target.
  const auto loc = topo.locations_in(net::Region::Europe).front();
  stack->faults.add(sim::Fault{
      .kind = sim::FaultKind::CloudLocation,
      .cloud_location = loc,
      .added_ms = 18.0,
      .start = util::MinuteTime::from_days(warmup),
      .duration_minutes = util::kMinutesPerDay});

  // Warm a learner on clean history.
  analysis::ExpectedRttLearner learner{analysis::ExpectedRttConfig{
      .window_days = warmup, .reservoir_per_day = 128}};
  {
    sim::FaultInjector no_faults;
    const sim::TelemetryGenerator clean{&topo, &no_faults};
    for (int day = 0; day < warmup; ++day) {
      for (int b = 0; b < util::kBucketsPerDay; b += 2) {
        const util::TimeBucket bucket{day * util::kBucketsPerDay + b};
        analysis::QuartetBuilder builder{&topo,
                                         analysis::BadnessThresholds{}};
        clean.generate_aggregates(
            bucket, [&](const analysis::QuartetKey& k, int n, double mean) {
              builder.add_aggregate(k, n, mean);
            });
        for (const auto& q : builder.take_bucket(bucket)) {
          learner.observe(analysis::cloud_key(q.key.location, q.key.device),
                          day, q.mean_rtt_ms);
          learner.observe(
              analysis::middle_key(q.key.location, q.middle, q.key.device),
              day, q.mean_rtt_ms);
        }
      }
    }
  }
  analysis::ExpectedRttLearner empty_learner;  // forces threshold fallback

  const core::PassiveLocalizer with_learning{&topo, &learner};
  const core::PassiveLocalizer threshold_only{&topo, &empty_learner};

  // Evaluate several buckets during the fault. Since the inflation keeps
  // most RTTs under the badness threshold, few quartets are flagged "bad";
  // the interesting signal is the *group fraction* each variant computes.
  int detected_learned = 0;
  int detected_threshold = 0;
  int buckets = 0;
  for (int b = 0; b < util::kBucketsPerDay; b += 24) {
    const util::TimeBucket bucket{warmup * util::kBucketsPerDay + b};
    const auto quartets = stack->quartets(bucket);
    ++buckets;

    auto group_fraction = [&](const core::PassiveLocalizer& localizer) {
      int total = 0;
      int above = 0;
      for (const auto& q : quartets) {
        if (q.key.location != loc ||
            q.key.device != net::DeviceClass::NonMobile) {
          continue;
        }
        const double cmp = localizer.comparison_rtt(
            analysis::cloud_key(loc, q.key.device), warmup, q.region,
            q.key.device);
        ++total;
        above += q.mean_rtt_ms > cmp;
      }
      return total ? static_cast<double>(above) / total : 0.0;
    };
    detected_learned += group_fraction(with_learning) >= 0.8;
    detected_threshold += group_fraction(threshold_only) >= 0.8;
  }

  util::TextTable table{{"comparison value", "buckets where cloud group "
                         "crosses tau=0.8"}};
  table.add_row({"learned 14-day median",
                 std::to_string(detected_learned) + "/" +
                     std::to_string(buckets)});
  table.add_row({"fixed badness threshold",
                 std::to_string(detected_threshold) + "/" +
                     std::to_string(buckets)});
  std::printf("%s", table.to_string().c_str());
  std::puts("\nExpected: the learned median detects the sub-threshold cloud "
            "shift in\n(nearly) every bucket; the fixed threshold misses "
            "most or all of them.");
  return 0;
}
