// §6.3 validation: the 88-incident suite. The paper compares BlameIt's
// automatic localization against network engineers' manual conclusions and
// matches in 88/88 incidents. Here ground truth is the injected fault
// schedule; an incident counts as correctly localized when the majority
// blame over its window (restricted to attributable quartets) matches the
// faulted segment.
#include "bench/common.h"

namespace {

using namespace blameit;

bool attributable(const net::Topology& topo, const analysis::Quartet& q,
                  const sim::Incident& inc) {
  if (q.region != inc.region) return false;
  switch (inc.kind) {
    case sim::FaultKind::CloudLocation:
      return q.key.location == inc.cloud_location;
    case sim::FaultKind::MiddleAs: {
      const auto& mids = topo.interner().ases(q.middle);
      return std::find(mids.begin(), mids.end(), inc.target_as) !=
             mids.end();
    }
    case sim::FaultKind::ClientAs:
      return q.client_as == inc.target_as;
    case sim::FaultKind::ClientBlock:
      return q.key.block == inc.block;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blameit;
  const int count = argc > 1 ? std::atoi(argv[1]) : 88;
  bench::header("88-incident validation (§6.3)",
                "BlameIt's localization matched manual investigation in "
                "88/88 production incidents");

  auto stack = bench::make_stack();
  const auto& topo = *stack->topology;
  const int warmup = 3;

  sim::IncidentSuiteConfig suite_cfg;
  suite_cfg.count = count;
  suite_cfg.first_start = util::MinuteTime::from_days(warmup);
  auto incidents = sim::make_incident_suite(topo, suite_cfg);
  // Bench-scale structural corrections (see DESIGN.md): middle faults land
  // on transits that live routes cross but that do not dominate a location
  // (no AS carries >τ of a location's paths in production), and /24-scoped
  // faults land on blocks active enough to clear the quartet sample floor.
  util::Rng fix_rng{11};
  std::map<net::Region, std::vector<const net::ClientBlock*>> active_blocks;
  for (const auto& block : topo.blocks()) {
    active_blocks[block.region].push_back(&block);
  }
  for (auto& [region, blocks] : active_blocks) {
    std::sort(blocks.begin(), blocks.end(), [](const auto* a, const auto* b) {
      return a->activity_weight > b->activity_weight;
    });
    blocks.resize(std::max<std::size_t>(1, blocks.size() / 3));
  }
  for (auto& inc : incidents) {
    if (inc.kind == sim::FaultKind::MiddleAs) {
      const auto eligible = bench::non_dominant_transits(topo, inc.region);
      if (std::find(eligible.begin(), eligible.end(), inc.target_as) ==
          eligible.end()) {
        inc.target_as = eligible[static_cast<std::size_t>(fix_rng.uniform_int(
            0, static_cast<std::int64_t>(eligible.size()) - 1))];
        inc.culprit_as = inc.target_as;
      }
    } else if (inc.kind == sim::FaultKind::ClientBlock) {
      const auto& blocks = active_blocks[inc.region];
      const auto* block = blocks[static_cast<std::size_t>(fix_rng.uniform_int(
          0, static_cast<std::int64_t>(blocks.size()) - 1))];
      inc.block = block->block;
      inc.culprit_as = block->client_as;
    }
  }
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());
  const int last_day = incidents.back().end().day() + 1;

  bench::warm_pipeline(*stack, warmup);

  // Majority blame per incident, and AS-level diagnosis hits.
  std::vector<std::map<core::Blame, int>> verdicts(incidents.size());
  std::vector<bool> as_diagnosed(incidents.size(), false);
  for (int day = warmup; day < last_day; ++day) {
    for (int minute = 15; minute <= util::kMinutesPerDay; minute += 15) {
      const auto now = util::MinuteTime::from_days(day).plus_minutes(minute);
      const auto report = stack->pipeline->step(now);
      for (std::size_t i = 0; i < incidents.size(); ++i) {
        const auto& inc = incidents[i];
        if (now < inc.start || now >= inc.end().plus_minutes(15)) continue;
        for (const auto& blame : report.blames) {
          if (!attributable(topo, blame.quartet, inc)) continue;
          // Score the dense non-mobile series and treat "insufficient" as
          // abstention: at production density it is rare, while bench-scale
          // mobile groups routinely fall under the quartet floor.
          if (blame.quartet.key.device != net::DeviceClass::NonMobile) {
            continue;
          }
          if (blame.blame == core::Blame::Insufficient) continue;
          ++verdicts[i][blame.blame];
        }
        for (const auto& diag : report.diagnoses) {
          if (inc.culprit_as && diag.culprit &&
              *diag.culprit == *inc.culprit_as) {
            as_diagnosed[i] = true;
          }
        }
        // Cloud/client incidents are AS-localized passively.
        for (const auto& blame : report.blames) {
          if (inc.culprit_as && blame.faulty_as &&
              *blame.faulty_as == *inc.culprit_as &&
              attributable(topo, blame.quartet, inc)) {
            as_diagnosed[i] = true;
          }
        }
      }
    }
  }

  std::map<sim::FaultKind, std::pair<int, int>> per_kind;  // correct/total
  int correct = 0;
  int as_correct = 0;
  int undetected = 0;
  for (std::size_t i = 0; i < incidents.size(); ++i) {
    const auto& inc = incidents[i];
    const auto expected = bench::expected_blame(inc.kind);
    core::Blame majority = core::Blame::Insufficient;
    int best = 0;
    int total = 0;
    for (const auto& [blame, n] : verdicts[i]) {
      total += n;
      if (n > best) {
        best = n;
        majority = blame;
      }
    }
    auto& kind_stats = per_kind[inc.kind];
    ++kind_stats.second;
    if (total == 0) {
      ++undetected;
      continue;
    }
    if (majority == expected) {
      ++correct;
      ++kind_stats.first;
    }
    as_correct += as_diagnosed[i];
  }

  util::TextTable table{{"category", "incidents", "segment correct"}};
  for (const auto& [kind, stats] : per_kind) {
    table.add_row({std::string{to_string(kind)},
                   std::to_string(stats.second),
                   std::to_string(stats.first)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nsegment-level localization : %d/%zu correct (%s)\n",
              correct, incidents.size(),
              util::fmt_pct(static_cast<double>(correct) /
                            static_cast<double>(incidents.size()))
                  .c_str());
  std::printf("faulty-AS identified       : %d/%zu\n", as_correct,
              incidents.size());
  std::printf("undetected (no attributable blames): %d\n", undetected);
  std::puts("\nPaper: 88/88 matched the manual investigations. Residual "
            "misses here are\ndata-density effects (thin mobile groups) at "
            "bench scale.");
  return 0;
}
