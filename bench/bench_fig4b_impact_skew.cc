// Figure 4b: cumulative problem impact of ⟨cloud location, BGP path⟩ tuples
// under two orderings — ranked by problematic-prefix count (prior work's
// metric) vs ranked by actual client-time impact. Paper: the top 20% of
// tuples by impact cover ~80% of cumulative impact, where prefix-count
// ranking needs ~60% of tuples — a 3× difference.
#include <set>

#include "analysis/impact.h"
#include "bench/common.h"
#include "core/prioritizer.h"

int main() {
  using namespace blameit;
  bench::header(
      "Figure 4b: impact coverage, impact-ranked vs prefix-count-ranked",
      "80% of impact covered by ~20% of tuples (impact rank) vs ~60% "
      "(prefix rank): ~3x");

  auto stack = bench::make_stack();
  const auto& topo = *stack->topology;
  const auto incidents = bench::ambient_incidents(topo, 0, 2, 1.5);
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());

  // Per ⟨location, BGP path⟩: user-time impact and distinct bad /24s.
  struct Agg {
    double impact = 0.0;
    std::set<std::uint32_t> bad_blocks;
  };
  std::map<std::uint64_t, Agg> aggs;
  for (int b = 0; b < 2 * util::kBucketsPerDay; ++b) {
    const util::TimeBucket bucket{b};
    for (const auto& q : stack->quartets(bucket)) {
      if (!q.bad) continue;
      auto& agg = aggs[core::middle_issue_key(q.key.location, q.middle)];
      agg.impact += q.sample_count / 2.5;  // users × one bucket
      agg.bad_blocks.insert(q.key.block.block);
    }
  }

  std::vector<analysis::RankedAggregate> ranked;
  for (const auto& [key, agg] : aggs) {
    ranked.push_back(analysis::RankedAggregate{
        .key = key,
        .impact = agg.impact,
        .prefix_count = static_cast<double>(agg.bad_blocks.size())});
  }

  const auto by_impact = analysis::impact_coverage_curve(ranked, true);
  const auto by_prefix = analysis::impact_coverage_curve(ranked, false);

  util::TextTable table{{"% of tuples", "impact covered (impact rank)",
                         "impact covered (prefix rank)"}};
  const auto n = by_impact.size();
  for (const double frac : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto idx = std::min(
        n - 1, static_cast<std::size_t>(frac * static_cast<double>(n)));
    table.add_row({util::fmt_pct(frac, 0), util::fmt_pct(by_impact[idx]),
                   util::fmt_pct(by_prefix[idx])});
  }
  std::printf("%s", table.to_string().c_str());

  auto tuples_for_coverage = [&](const std::vector<double>& curve,
                                 double target) {
    for (std::size_t i = 0; i < curve.size(); ++i) {
      if (curve[i] >= target) {
        return static_cast<double>(i + 1) / static_cast<double>(curve.size());
      }
    }
    return 1.0;
  };
  const double impact_share = tuples_for_coverage(by_impact, 0.8);
  const double prefix_share = tuples_for_coverage(by_prefix, 0.8);
  std::printf("\ntuples needed for 80%% impact: impact rank %s, prefix rank "
              "%s (ratio %.1fx; paper ~3x)\n",
              util::fmt_pct(impact_share).c_str(),
              util::fmt_pct(prefix_share).c_str(),
              prefix_share / impact_share);
  return 0;
}
