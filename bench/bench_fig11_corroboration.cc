// Figure 11: large-scale corroboration of BlameIt's diagnoses against
// ground truth, per BGP path, compared with the ⟨AS, Metro⟩ middle grouping.
// The paper treats continuous traceroutes as truth and finds ~88% of BGP
// paths at a perfect corroboration ratio of 1.0 under BlameIt's grouping,
// with ⟨AS, Metro⟩ grouping significantly worse. Here ground truth is the
// injected fault schedule itself.
#include "baselines/as_metro.h"
#include "bench/common.h"
#include "core/passive.h"

namespace {

using namespace blameit;

bool attributable(const net::Topology& topo, const analysis::Quartet& q,
                  const sim::Incident& inc) {
  switch (inc.kind) {
    case sim::FaultKind::CloudLocation:
      return q.key.location == inc.cloud_location;
    case sim::FaultKind::MiddleAs: {
      const auto& mids = topo.interner().ases(q.middle);
      return std::find(mids.begin(), mids.end(), inc.target_as) !=
             mids.end();
    }
    case sim::FaultKind::ClientAs:
      return q.client_as == inc.target_as;
    case sim::FaultKind::ClientBlock:
      return q.key.block == inc.block;
  }
  return false;
}

}  // namespace

int main() {
  using namespace blameit;
  bench::header("Figure 11: corroboration ratio per BGP path — BGP-path vs "
                "AS-Metro grouping",
                "~88% of paths at ratio 1.0 with BGP-path grouping; AS-Metro "
                "grouping clearly worse");

  auto stack = bench::make_stack();
  const auto& topo = *stack->topology;
  const int warmup_days = 3;

  sim::IncidentSuiteConfig suite_cfg;
  suite_cfg.count = 60;
  suite_cfg.first_start = util::MinuteTime::from_days(warmup_days);
  suite_cfg.min_duration_minutes = 45;
  suite_cfg.max_duration_minutes = 180;
  const auto incidents = sim::make_incident_suite(topo, suite_cfg);
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());

  // Warm all three learner key families on fault-free history.
  analysis::ExpectedRttLearner learner{analysis::ExpectedRttConfig{
      .window_days = warmup_days, .reservoir_per_day = 128}};
  for (int day = 0; day < warmup_days; ++day) {
    for (int b = 0; b < util::kBucketsPerDay; b += 2) {
      const util::TimeBucket bucket{day * util::kBucketsPerDay + b};
      for (const auto& q : stack->quartets(bucket)) {
        learner.observe(analysis::cloud_key(q.key.location, q.key.device),
                        day, q.mean_rtt_ms);
        learner.observe(
            analysis::middle_key(q.key.location, q.middle, q.key.device),
            day, q.mean_rtt_ms);
        const auto* block = topo.find_block(q.key.block);
        learner.observe(
            baselines::AsMetroLocalizer::group_key(
                q.key.location, q.client_as, block->metro, q.key.device),
            day, q.mean_rtt_ms);
      }
    }
  }

  const core::PassiveLocalizer blameit{&topo, &learner};
  const baselines::AsMetroLocalizer asmetro{&topo, &learner};

  // Per BGP path: correct/total diagnoses under each grouping.
  struct Ratio {
    int total = 0;
    int correct = 0;
  };
  std::map<std::uint64_t, Ratio> path_ratio_blameit;
  std::map<std::uint64_t, Ratio> path_ratio_asmetro;

  for (const auto& inc : incidents) {
    const auto expected = bench::expected_blame(inc.kind);
    // Sample up to 3 buckets spread over the incident window.
    const auto first = util::TimeBucket::of(inc.start);
    const int span = inc.duration_minutes / util::kBucketMinutes;
    for (const int offset : {0, span / 2, span - 1}) {
      const util::TimeBucket bucket{first.index + offset};
      const auto quartets = stack->quartets(bucket);
      const int day = bucket.day();
      const auto rb = blameit.localize(quartets, day);
      const auto rm = asmetro.localize(quartets, day);
      auto tally = [&](const std::vector<core::BlameResult>& results,
                       std::map<std::uint64_t, Ratio>& ratios) {
        for (const auto& r : results) {
          if (!attributable(topo, r.quartet, inc)) continue;
          // Score the dense (non-mobile) series: bench-scale mobile volumes
          // fall under the quartet floor and would measure data sparsity,
          // not grouping quality.
          if (r.quartet.key.device != net::DeviceClass::NonMobile) continue;
          // "Insufficient" counts against the ratio: failing to diagnose an
          // attributable bad quartet is a miss, not a skip — otherwise a
          // grouping that fragments into tiny, undiagnosable groups would
          // score artificially well on its few survivors.
          auto& ratio = ratios[core::middle_issue_key(
              r.quartet.key.location, r.quartet.middle)];
          ++ratio.total;
          ratio.correct += r.blame == expected;
        }
      };
      tally(rb, path_ratio_blameit);
      tally(rm, path_ratio_asmetro);
      if (span <= 1) break;
    }
  }

  auto ratios_of = [](const std::map<std::uint64_t, Ratio>& ratios) {
    std::vector<double> out;
    for (const auto& [key, r] : ratios) {
      if (r.total > 0) {
        out.push_back(static_cast<double>(r.correct) / r.total);
      }
    }
    return out;
  };
  const auto blameit_ratios = ratios_of(path_ratio_blameit);
  const auto asmetro_ratios = ratios_of(path_ratio_asmetro);

  util::TextTable table{{"corroboration ratio >=", "BGP-path grouping",
                         "AS-Metro grouping"}};
  for (const double level : {0.5, 0.75, 0.9, 1.0}) {
    auto frac_at = [&](const std::vector<double>& ratios) {
      if (ratios.empty()) return std::string{"-"};
      long n = 0;
      for (const double r : ratios) n += r >= level;
      return util::fmt_pct(static_cast<double>(n) /
                           static_cast<double>(ratios.size()));
    };
    table.add_row({util::fmt(level, 2), frac_at(blameit_ratios),
                   frac_at(asmetro_ratios)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\npaths scored: BGP-path=%zu, AS-Metro=%zu (same quartets, "
              "different middle grouping)\n",
              blameit_ratios.size(), asmetro_ratios.size());
  std::puts("Expected (paper): the BGP-path column is near-perfect at 1.0 "
            "(~88%), the\nAS-Metro column clearly lower.");
  return 0;
}
