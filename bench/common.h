// Shared infrastructure for the figure/table reproduction benches: a bench-
// scale stack, learner warmup, an ambient-incident generator that matches
// the paper's background fault mix (long-tailed durations, region-dependent
// rates), and scoring helpers.
#pragma once

#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/impact.h"
#include "analysis/quartet.h"
#include "core/pipeline.h"
#include "core/prioritizer.h"
#include "net/topology.h"
#include "sim/scenario.h"
#include "sim/telemetry.h"
#include "sim/traceroute.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/table.h"

namespace blameit::bench {

struct Stack {
  std::unique_ptr<net::Topology> topology;
  sim::FaultInjector faults;
  std::unique_ptr<sim::TelemetryGenerator> generator;
  std::unique_ptr<sim::RttModel> model;
  std::unique_ptr<sim::TracerouteEngine> engine;
  std::unique_ptr<core::BlameItPipeline> pipeline;

  [[nodiscard]] std::vector<analysis::Quartet> quartets(
      util::TimeBucket bucket) const {
    analysis::QuartetBuilder builder{topology.get(),
                                     analysis::BadnessThresholds{}};
    generator->generate_aggregates(
        bucket, [&](const analysis::QuartetKey& k, int n, double mean) {
          builder.add_aggregate(k, n, mean);
        });
    return builder.take_bucket(bucket);
  }
};

inline net::TopologyConfig bench_topology_config() {
  net::TopologyConfig cfg;
  cfg.locations_per_region = 2;
  // Many client ASes per location: no single eyeball fault may tip a
  // location's bad fraction past tau (at Azure scale a location serves
  // thousands of ASes; eight is the bench-scale equivalent).
  cfg.eyeballs_per_region = 8;
  cfg.blocks_per_eyeball = 8;
  return cfg;
}

inline core::BlameItConfig bench_pipeline_config() {
  core::BlameItConfig cfg;
  cfg.expected_rtt_window_days = 3;  // bounded warmup cost
  return cfg;
}

inline std::unique_ptr<Stack> make_stack(
    core::BlameItConfig config = bench_pipeline_config(),
    net::TopologyConfig topo_config = bench_topology_config(),
    sim::TelemetryConfig telemetry_config = {}) {
  auto stack = std::make_unique<Stack>();
  stack->topology = net::make_topology(topo_config);
  stack->generator = std::make_unique<sim::TelemetryGenerator>(
      stack->topology.get(), &stack->faults, telemetry_config);
  stack->model = std::make_unique<sim::RttModel>(stack->topology.get(),
                                                 &stack->faults);
  stack->engine = std::make_unique<sim::TracerouteEngine>(
      stack->topology.get(), stack->model.get());
  Stack* raw = stack.get();
  stack->pipeline = std::make_unique<core::BlameItPipeline>(
      stack->topology.get(), stack->engine.get(),
      [raw](util::TimeBucket bucket) { return raw->quartets(bucket); },
      config);
  return stack;
}

inline void warm_pipeline(Stack& stack, int days, int first_day = 0) {
  for (int day = first_day; day < first_day + days; ++day) {
    for (int b = 0; b < util::kBucketsPerDay; ++b) {
      stack.pipeline->warmup_bucket(
          util::TimeBucket{day * util::kBucketsPerDay + b});
    }
  }
}

/// Ambient background faults over [first_day, first_day + days): frequent,
/// mostly fleeting (long-tailed Pareto durations, §2.3), region rates scaled
/// by the RegionProfile fault-proneness (middle issues dominate in regions
/// with immature transit, §6.2). `intensity` scales the overall event rate
/// (events per region-day at rate 1.0 ≈ 6).
/// Non-dominant transit selection now lives in sim:: (scenario packs need
/// the same eligibility rule); this alias keeps existing bench call sites.
inline std::vector<net::AsId> non_dominant_transits(const net::Topology& topo,
                                                    net::Region region) {
  return sim::non_dominant_transits(topo, region);
}

inline std::vector<sim::Incident> ambient_incidents(
    const net::Topology& topo, int first_day, int days,
    double intensity = 1.0, std::uint64_t seed = 77) {
  util::Rng rng{seed};
  std::vector<sim::Incident> out;
  int counter = 0;
  // At most two concurrent events per region: with O(10) client ASes per
  // location (vs thousands in production), a pile-up of concurrent faults
  // can tip a whole location past τ and read as a cloud fault.
  std::map<net::Region, std::vector<std::pair<std::int64_t, std::int64_t>>>
      busy;
  for (const auto region : net::kAllRegions) {
    const auto& profile = net::region_profile(region);
    const double rate =
        4.0 * intensity * (profile.transit_fault_rate +
                           profile.client_fault_rate) / 2.0;
    const int events = static_cast<int>(rate * days);
    for (int i = 0; i < events; ++i) {
      sim::Incident inc;
      inc.region = region;
      inc.start = util::MinuteTime::from_days(first_day)
                      .plus_minutes(rng.uniform_int(
                          0, days * util::kMinutesPerDay - 30));
      // Quantize to buckets; Pareto(2.5min, 0.65) truncated at 10h gives the
      // paper's shape: most ≤ 5 minutes, a heavy tail of hours.
      const double raw = rng.pareto(2.5, 0.65);
      inc.duration_minutes = static_cast<int>(
          std::min(600.0, std::max(5.0, raw)) / util::kBucketMinutes) *
          util::kBucketMinutes;
      inc.duration_minutes = std::max(inc.duration_minutes, 5);
      inc.start = util::MinuteTime{
          (inc.start.minutes / util::kBucketMinutes) * util::kBucketMinutes};
      auto& intervals = busy[region];
      for (int attempt = 0; attempt < 6; ++attempt) {
        int overlaps = 0;
        for (const auto& [s, e] : intervals) {
          overlaps += inc.start.minutes < e && inc.end().minutes > s;
        }
        if (overlaps < 2) break;
        const auto resampled = util::MinuteTime::from_days(first_day)
                                   .plus_minutes(rng.uniform_int(
                                       0, days * util::kMinutesPerDay - 30));
        inc.start = util::MinuteTime{(resampled.minutes /
                                      util::kBucketMinutes) *
                                     util::kBucketMinutes};
      }
      intervals.emplace_back(inc.start.minutes, inc.end().minutes);

      // Cloud events are rare (paper: cloud accounts for <4% of blames)
      // but each one touches every client of a location, so the event rate
      // must be far below the per-AS rates.
      constexpr double kCloudEventRate = 0.03;
      const double total_rate = profile.transit_fault_rate +
                                profile.client_fault_rate + kCloudEventRate;
      const double pick = rng.uniform(0.0, total_rate);
      if (pick < kCloudEventRate) {
        inc.kind = sim::FaultKind::CloudLocation;
        const auto locs = topo.locations_in(region);
        inc.cloud_location = locs[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(locs.size()) - 1))];
        inc.culprit_as = topo.cloud_as();
        // Cloud issues get fixed fastest (§6.2 / Fig 10).
        inc.duration_minutes = std::min(inc.duration_minutes, 30);
      } else if (pick < kCloudEventRate + profile.transit_fault_rate) {
        inc.kind = sim::FaultKind::MiddleAs;
        const auto transits = non_dominant_transits(topo, region);
        inc.target_as = transits[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(transits.size()) - 1))];
        inc.culprit_as = inc.target_as;
      } else if (rng.chance(0.6)) {
        inc.kind = sim::FaultKind::ClientAs;
        const auto& eyeballs = topo.eyeballs_in(region);
        inc.target_as = eyeballs[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(eyeballs.size()) - 1))];
        inc.culprit_as = inc.target_as;
      } else {
        inc.kind = sim::FaultKind::ClientBlock;
        std::vector<const net::ClientBlock*> blocks;
        for (const auto& b : topo.blocks()) {
          if (b.region == region) blocks.push_back(&b);
        }
        const auto* block = blocks[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(blocks.size()) - 1))];
        inc.block = block->block;
        inc.culprit_as = block->client_as;
      }
      // Magnitude: mostly clear breaches, some marginal (sub-threshold
      // inflations that only the learned expected-RTT can see). Long-lived
      // issues breach decisively — hovering-at-threshold incidents resolve
      // themselves before they last hours.
      inc.added_ms =
          net::region_profile(region).rtt_target_ms *
          (inc.duration_minutes > 120 ? rng.uniform(1.2, 2.5)
                                      : rng.uniform(0.5, 2.2));
      inc.name = "ambient-" + std::to_string(counter++);
      out.push_back(std::move(inc));
    }
  }
  return out;
}

/// Machine-readable bench results. Each bench collects one row per measured
/// configuration and writes BENCH_<name>.json into the working directory, so
/// the perf trajectory can be tracked across PRs by diffing the files (CI
/// runs the perf benches in a short smoke configuration for exactly this).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void add_run(
      std::string config, double wall_ms, double items_per_sec,
      std::vector<std::pair<std::string, double>> extra = {}) {
    runs_.push_back(Run{std::move(config), wall_ms, items_per_sec,
                        std::move(extra)});
  }

  /// Writes BENCH_<name>.json; returns the path ("" on I/O failure).
  /// Serialization goes through util::json — config strings are escaped
  /// and numbers are locale-independent (a de_DE locale used to produce
  /// `"wall_ms": 1,5` here, which is not JSON).
  std::string write() const {
    util::json::Writer w;
    w.begin_object().member("name", name_);
    w.key("runs").begin_array();
    for (const auto& run : runs_) {
      w.begin_object()
          .member("config", run.config)
          .member("wall_ms", run.wall_ms)
          .member("items_per_sec", run.items_per_sec);
      for (const auto& [key, value] : run.extra) w.member(key, value);
      w.end_object();
    }
    w.end_array().end_object();

    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
      return "";
    }
    const auto& doc = w.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return path;
  }

 private:
  struct Run {
    std::string config;
    double wall_ms = 0.0;
    double items_per_sec = 0.0;
    std::vector<std::pair<std::string, double>> extra;
  };
  std::string name_;
  std::vector<Run> runs_;
};

/// Prints the standard bench header.
inline void header(const std::string& title, const std::string& paper_note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_note.c_str());
  std::printf("==============================================================\n");
}

/// Result of running the pipeline over a multi-day evaluation window.
struct WindowResult {
  /// Per-day blame counts: day_counts[day_offset][blame].
  std::vector<std::array<long, 5>> day_counts;
  /// Per-region blame counts over the whole window.
  std::map<net::Region, std::array<long, 5>> region_counts;
  /// Closed blame-run durations (in 5-min buckets) per category.
  std::map<core::Blame, std::vector<double>> durations;
  long on_demand_probes = 0;
  long background_probes = 0;
  /// All active diagnoses made during the window.
  std::vector<core::ActiveDiagnosis> diagnoses;

  [[nodiscard]] std::array<long, 5> totals() const {
    std::array<long, 5> out{};
    for (const auto& day : day_counts) {
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += day[i];
    }
    return out;
  }
};

/// Runs the pipeline at 15-minute cadence over [first_day, first_day+days)
/// and aggregates blame fractions, per-category incident durations, and
/// probe counts. The pipeline must already be warmed up to first_day.
inline WindowResult run_window(Stack& stack, int first_day, int days) {
  WindowResult result;
  result.day_counts.assign(static_cast<std::size_t>(days), {});

  // Duration tracking per category, keyed by the affected aggregate.
  analysis::IncidentTracker cloud_runs;
  analysis::IncidentTracker middle_runs;
  analysis::IncidentTracker client_runs;

  for (int day = first_day; day < first_day + days; ++day) {
    for (int minute = 15; minute <= util::kMinutesPerDay; minute += 15) {
      const auto now = util::MinuteTime::from_days(day).plus_minutes(minute);
      const auto report = stack.pipeline->step(now);
      result.on_demand_probes += report.on_demand_probes;
      result.background_probes += report.background_probes;
      result.diagnoses.insert(result.diagnoses.end(),
                              report.diagnoses.begin(),
                              report.diagnoses.end());

      // Per-bucket, per-key dedup before feeding the duration trackers.
      std::map<std::pair<std::int64_t, std::uint64_t>, core::Blame> seen;
      for (const auto& blame : report.blames) {
        const int offset = blame.quartet.key.bucket.day() - first_day;
        if (offset >= 0 && offset < days) {
          ++result.day_counts[static_cast<std::size_t>(offset)]
                             [static_cast<std::size_t>(blame.blame)];
        }
        result.region_counts[blame.quartet.region]
                            [static_cast<std::size_t>(blame.blame)] += 1;

        std::uint64_t key = 0;
        switch (blame.blame) {
          case core::Blame::Cloud:
            key = blame.quartet.key.location.value;
            break;
          case core::Blame::Middle:
            key = core::middle_issue_key(blame.quartet.key.location,
                                         blame.quartet.middle);
            break;
          case core::Blame::Client:
            key = blame.quartet.client_as.value;
            break;
          default:
            continue;
        }
        seen.emplace(
            std::pair{blame.quartet.key.bucket.index, key}, blame.blame);
      }
      for (const auto& [bucket_key, category] : seen) {
        const util::TimeBucket bucket{bucket_key.first};
        switch (category) {
          case core::Blame::Cloud:
            cloud_runs.observe(bucket_key.second, bucket, true, 1.0);
            break;
          case core::Blame::Middle:
            middle_runs.observe(bucket_key.second, bucket, true, 1.0);
            break;
          default:
            client_runs.observe(bucket_key.second, bucket, true, 1.0);
            break;
        }
      }
    }
  }
  const util::TimeBucket end{(first_day + days) * util::kBucketsPerDay};
  for (const auto& run : cloud_runs.finish(end)) {
    result.durations[core::Blame::Cloud].push_back(run.duration_buckets);
  }
  for (const auto& run : middle_runs.finish(end)) {
    result.durations[core::Blame::Middle].push_back(run.duration_buckets);
  }
  for (const auto& run : client_runs.finish(end)) {
    result.durations[core::Blame::Client].push_back(run.duration_buckets);
  }
  return result;
}

/// Expected blame category for an incident kind.
inline core::Blame expected_blame(sim::FaultKind kind) {
  switch (kind) {
    case sim::FaultKind::CloudLocation: return core::Blame::Cloud;
    case sim::FaultKind::MiddleAs: return core::Blame::Middle;
    default: return core::Blame::Client;
  }
}

}  // namespace blameit::bench
