// Figure 4a: CDF of bad-RTT incident persistence, counted in consecutive
// 5-minute buckets per ⟨IP-/24, cloud location, device⟩ tuple over a day.
// Paper: >60% of issues last ≤ 5 minutes; only ~8% exceed 2 hours; the
// distribution is long-tailed.
#include "analysis/impact.h"
#include "bench/common.h"
#include "util/histogram.h"

int main() {
  using namespace blameit;
  bench::header("Figure 4a: persistence of bad-RTT incidents (1 day)",
                ">60% of issues last <= 5 min; ~8% last > 2 hours; "
                "long-tailed");

  // Density matters for persistence: the paper's quartets exist at every
  // hour ("many tens of RTT samples" each); give this bench a production-
  // dense population so runs aren't broken by missing night-time quartets.
  sim::TelemetryConfig dense;
  dense.population.peak_clients_per_block = 240.0;
  auto stack = bench::make_stack(bench::bench_pipeline_config(),
                                 bench::bench_topology_config(), dense);
  const auto& topo = *stack->topology;
  const auto incidents = bench::ambient_incidents(topo, 0, 1, 1.5);
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());

  // Persistence is measured on tuples with dense data: at production scale
  // nearly every ⟨/24, location, device⟩ has a quartet every bucket, while a
  // bench-scale low-activity block drops below the 10-sample floor at night
  // and would fragment its runs. Restrict to the upper half by activity.
  std::vector<double> weights;
  for (const auto& cb : topo.blocks()) weights.push_back(cb.activity_weight);
  const double weight_floor = util::median(weights);

  analysis::IncidentTracker tracker;
  auto tuple_key = [](const analysis::Quartet& q) {
    return (std::uint64_t{q.key.block.block} << 24) |
           (std::uint64_t{q.key.location.value} << 8) |
           static_cast<std::uint64_t>(q.key.device);
  };
  for (int b = 0; b < util::kBucketsPerDay; ++b) {
    const util::TimeBucket bucket{b};
    for (const auto& q : stack->quartets(bucket)) {
      const auto* cb = topo.find_block(q.key.block);
      if (!cb || cb->activity_weight < weight_floor) continue;
      // Mobile volumes dip under the 10-sample floor overnight at bench
      // scale, which would artificially break long runs; measure the dense
      // (non-mobile) series.
      if (q.key.device != net::DeviceClass::NonMobile) continue;
      // Track each block at its anycast primary only: secondary-location
      // connections are intermittent by construction and would break runs.
      if (topo.home_locations(q.key.block).front() != q.key.location) {
        continue;
      }
      tracker.observe(tuple_key(q), bucket, q.bad,
                      q.sample_count / 2.5);
    }
  }
  const auto runs = tracker.finish(util::TimeBucket{util::kBucketsPerDay});

  std::vector<double> durations;
  durations.reserve(runs.size());
  for (const auto& run : runs) {
    durations.push_back(static_cast<double>(run.duration_buckets));
  }

  const auto series = util::cdf_series(durations, 13);
  util::TextTable table{{"duration (5-min buckets)", "CDF"}};
  for (const auto& point : series) {
    table.add_row({util::fmt(point.x, 1), util::fmt_pct(point.fraction)});
  }
  std::printf("%s", table.to_string().c_str());

  long fleeting = 0;
  long over_2h = 0;
  for (const auto d : durations) {
    fleeting += d <= 1.0;
    over_2h += d > 24.0;
  }
  const auto n = static_cast<double>(durations.size());
  std::printf("\nincidents observed: %zu\n", durations.size());
  std::printf("<= 5 minutes : %s (paper: >60%%)\n",
              util::fmt_pct(fleeting / n).c_str());
  std::printf(">  2 hours   : %s (paper: ~8%%)\n",
              util::fmt_pct(over_2h / n).c_str());
  return 0;
}
