// End-to-end analytics throughput: BlameItPipeline::step() latency across
// the parallel-analytics configurations, over identical pre-materialized
// telemetry so every run processes the same quartet stream.
//
//   legacy serial   — 1 thread, expected-RTT memoization OFF (the pre-
//                     optimization analytics path; the speedup baseline)
//   1/2/4/8 threads — location-sharded localize(), memoization ON
//
// plus a cold-vs-warm microbench of the expected-RTT median cache itself.
// Results go to stdout and BENCH_pipeline_throughput.json (BenchReport).
// Output across all configurations is asserted identical here too — the
// thread knob must be a pure perf knob (the tests prove it bit-exactly).
//
//   $ ./bench_pipeline_throughput [eval_hours=6] [warm_days=2]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "bench/common.h"
#include "core/pipeline.h"
#include "obs/registry.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blameit;

  const int eval_hours = argc > 1 ? std::atoi(argv[1]) : 6;
  const int warm_days = argc > 2 ? std::atoi(argv[2]) : 2;
  bench::header("pipeline step() throughput: parallel analytics core",
                "§3.3 near-real-time passive phase at scale");

  // One stack provides topology + telemetry; ambient incidents make the
  // blame paths (cloud/middle/client/ambiguous) all do real work.
  auto stack = bench::make_stack();
  const auto incidents = bench::ambient_incidents(
      *stack->topology, warm_days, /*days=*/1 + (eval_hours + 23) / 24, 1.5);
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());

  // Materialize every bucket once: warmup [day 0, warm_days) and the eval
  // window, so all configurations consume byte-identical input and the
  // measurement excludes telemetry generation entirely.
  const int warm_buckets = warm_days * util::kBucketsPerDay;
  const int eval_buckets = eval_hours * 60 / util::kBucketMinutes;
  std::printf("materializing %d warmup + %d eval buckets...\n", warm_buckets,
              eval_buckets);
  std::map<std::int64_t, std::vector<analysis::Quartet>> store;
  std::size_t eval_quartets = 0;
  for (int b = 0; b < warm_buckets + eval_buckets; ++b) {
    auto quartets = stack->quartets(util::TimeBucket{b});
    if (b >= warm_buckets) eval_quartets += quartets.size();
    store.emplace(b, std::move(quartets));
  }
  std::printf("eval window: %s quartets over %d buckets\n\n",
              util::fmt_count(eval_quartets).c_str(), eval_buckets);

  const auto source = [&store](util::TimeBucket bucket) {
    const auto it = store.find(bucket.index);
    return it != store.end() ? it->second : std::vector<analysis::Quartet>{};
  };

  // Runs one full configuration: fresh pipeline, untimed warmup, timed
  // step() loop at 15-minute cadence over the eval window.
  struct RunOutcome {
    double wall_ms = 0.0;
    long blames = 0;
  };
  const auto run_config = [&](int threads, bool memoize,
                              obs::Registry* registry = nullptr) {
    core::BlameItConfig cfg = bench::bench_pipeline_config();
    cfg.analytics_threads = threads;
    cfg.memoize_expected_rtt = memoize;
    core::BlameItPipeline pipeline{stack->topology.get(), stack->engine.get(),
                                   source, cfg, registry};
    for (int b = 0; b < warm_buckets; ++b) {
      pipeline.warmup_bucket(util::TimeBucket{b});
    }
    RunOutcome outcome;
    const auto start = util::MinuteTime::from_days(warm_days);
    const auto t0 = Clock::now();
    for (int minute = 15; minute <= eval_hours * 60; minute += 15) {
      const auto report = pipeline.step(start.plus_minutes(minute));
      outcome.blames += static_cast<long>(report.blames.size());
    }
    outcome.wall_ms = ms_since(t0);
    return outcome;
  };

  bench::BenchReport report{"pipeline_throughput"};
  util::TextTable table{{"config", "step wall ms", "quartets/sec", "blames",
                         "speedup vs legacy", "speedup vs 1-thread"}};

  const auto legacy = run_config(1, /*memoize=*/false);
  const auto qps = [&](const RunOutcome& r) {
    return static_cast<double>(eval_quartets) / (r.wall_ms / 1e3);
  };
  report.add_run("legacy serial (no median cache)", legacy.wall_ms,
                 qps(legacy), {{"threads", 1.0}, {"speedup_vs_serial", 1.0}});
  table.add_row({"legacy serial (no cache)", util::fmt(legacy.wall_ms, 1),
                 util::fmt_count(static_cast<std::uint64_t>(qps(legacy))),
                 std::to_string(legacy.blames), "1.00", "-"});

  double serial_ms = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    const auto outcome = run_config(threads, /*memoize=*/true);
    if (threads == 1) serial_ms = outcome.wall_ms;
    if (outcome.blames != legacy.blames) {
      std::fprintf(stderr,
                   "FATAL: %d-thread run produced %ld blames, legacy %ld — "
                   "determinism broken\n",
                   threads, outcome.blames, legacy.blames);
      return 1;
    }
    const double vs_legacy = legacy.wall_ms / outcome.wall_ms;
    const double vs_serial = serial_ms / outcome.wall_ms;
    char label[48];
    std::snprintf(label, sizeof label, "%d thread%s + median cache", threads,
                  threads == 1 ? "" : "s");
    report.add_run(label, outcome.wall_ms, qps(outcome),
                   {{"threads", static_cast<double>(threads)},
                    {"speedup_vs_serial", vs_legacy},
                    {"speedup_vs_1thread", vs_serial}});
    table.add_row({label, util::fmt(outcome.wall_ms, 1),
                   util::fmt_count(static_cast<std::uint64_t>(qps(outcome))),
                   std::to_string(outcome.blames), util::fmt(vs_legacy, 2),
                   util::fmt(vs_serial, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Observability overhead: the same 4-thread configuration with a live
  // obs::Registry attached (every layer instrumented) vs without. The
  // instruments are resolved-once pointers + relaxed atomics, so this
  // should stay within noise (<2% target).
  {
    const auto plain = run_config(4, /*memoize=*/true);
    obs::Registry registry;
    const auto instrumented = run_config(4, /*memoize=*/true, &registry);
    if (instrumented.blames != plain.blames) {
      std::fprintf(stderr,
                   "FATAL: registry-attached run produced %ld blames, plain "
                   "%ld — observability must not affect output\n",
                   instrumented.blames, plain.blames);
      return 1;
    }
    const double overhead_pct =
        (instrumented.wall_ms / plain.wall_ms - 1.0) * 100.0;
    std::printf("obs registry overhead (4 threads): plain %.1f ms, "
                "instrumented %.1f ms -> %+.2f%% (target <2%%)\n\n",
                plain.wall_ms, instrumented.wall_ms, overhead_pct);
    report.add_run("4 threads + obs registry", instrumented.wall_ms,
                   qps(instrumented),
                   {{"threads", 4.0}, {"obs_overhead_pct", overhead_pct}});
  }

  // Cold-vs-warm median cache microbench: the same learner state queried
  // with memoization off (every call re-pools + re-medians, the legacy
  // cost) and on (day-cached, O(1) after the first query).
  std::printf("expected-RTT median cache (cold vs warm):\n");
  const auto learner_bench = [&](bool memoize) {
    analysis::ExpectedRttConfig cfg;
    cfg.memoize_medians = memoize;
    analysis::ExpectedRttLearner learner{cfg};
    std::set<std::uint64_t> seen;
    std::vector<analysis::ExpectedRttKey> keys;
    for (int b = 0; b < warm_buckets; ++b) {
      for (const auto& q : store[b]) {
        const int day = util::TimeBucket{b}.day();
        const auto ck = analysis::cloud_key(q.key.location, q.key.device);
        const auto mk =
            analysis::middle_key(q.key.location, q.middle, q.key.device);
        learner.observe(ck, day, q.mean_rtt_ms);
        learner.observe(mk, day, q.mean_rtt_ms);
        for (const auto key : {ck, mk}) {
          if (seen.insert(key.packed).second) keys.push_back(key);
        }
      }
    }
    constexpr int kReps = 20;
    const auto t0 = Clock::now();
    double sink = 0.0;
    long calls = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      for (const auto key : keys) {
        sink += learner.expected(key, warm_days).value_or(0.0);
        ++calls;
      }
    }
    const double wall = ms_since(t0);
    if (sink == 0.12345) std::printf("!");  // defeat dead-code elimination
    return std::pair{wall, calls};
  };
  const auto [cold_ms, cold_calls] = learner_bench(false);
  const auto [warm_ms, warm_calls] = learner_bench(true);
  const double cold_ns = cold_ms * 1e6 / static_cast<double>(cold_calls);
  const double warm_ns = warm_ms * 1e6 / static_cast<double>(warm_calls);
  std::printf("  cold (no cache): %.0f ns/call   warm (cached): %.0f ns/call"
              "   -> %.1fx\n\n",
              cold_ns, warm_ns, cold_ns / warm_ns);
  report.add_run("learner expected() cold", cold_ms,
                 static_cast<double>(cold_calls) / (cold_ms / 1e3),
                 {{"ns_per_call", cold_ns}});
  report.add_run("learner expected() warm", warm_ms,
                 static_cast<double>(warm_calls) / (warm_ms / 1e3),
                 {{"ns_per_call", warm_ns},
                  {"speedup_vs_cold", cold_ns / warm_ns}});

  report.write();
  return 0;
}
