// Microbenchmarks (google-benchmark): throughput of the hot paths — quartet
// construction, Algorithm 1, expected-RTT learning, and the prioritizer —
// verifying the passive phase comfortably sustains production-scale quartet
// volumes on one core.
#include <benchmark/benchmark.h>

#include "analysis/expected_rtt.h"
#include "analysis/quartet.h"
#include "bench/common.h"
#include "core/passive.h"
#include "core/predictors.h"
#include "core/prioritizer.h"

namespace {

using namespace blameit;

struct MicroWorld {
  std::unique_ptr<bench::Stack> stack;
  std::vector<analysis::Quartet> quartets;
  analysis::ExpectedRttLearner learner;

  MicroWorld() : stack(bench::make_stack()) {
    const auto bucket =
        util::TimeBucket::of(util::MinuteTime::from_day_hour(1, 12));
    quartets = stack->quartets(bucket);
    for (int day = 0; day < 2; ++day) {
      for (const auto& q : quartets) {
        learner.observe(analysis::cloud_key(q.key.location, q.key.device),
                        day, q.mean_rtt_ms);
        learner.observe(
            analysis::middle_key(q.key.location, q.middle, q.key.device),
            day, q.mean_rtt_ms);
      }
    }
  }
};

MicroWorld& world() {
  static MicroWorld instance;
  return instance;
}

void BM_QuartetGeneration(benchmark::State& state) {
  auto& w = world();
  std::int64_t bucket_index = 300;
  for (auto _ : state) {
    const auto quartets =
        w.stack->quartets(util::TimeBucket{bucket_index++ % 500 + 200});
    benchmark::DoNotOptimize(quartets.data());
    state.counters["quartets"] = static_cast<double>(quartets.size());
  }
}
BENCHMARK(BM_QuartetGeneration)->Unit(benchmark::kMillisecond);

void BM_Algorithm1(benchmark::State& state) {
  auto& w = world();
  const core::PassiveLocalizer localizer{w.stack->topology.get(),
                                         &w.learner};
  for (auto _ : state) {
    const auto results = localizer.localize(w.quartets, 2);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.quartets.size()));
}
BENCHMARK(BM_Algorithm1)->Unit(benchmark::kMicrosecond);

void BM_Algorithm1Scaled(benchmark::State& state) {
  auto& w = world();
  const core::PassiveLocalizer localizer{w.stack->topology.get(),
                                         &w.learner};
  // Replicate the bucket to the requested quartet volume.
  std::vector<analysis::Quartet> scaled;
  while (scaled.size() < static_cast<std::size_t>(state.range(0))) {
    scaled.insert(scaled.end(), w.quartets.begin(), w.quartets.end());
  }
  scaled.resize(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto results = localizer.localize(scaled, 2);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Algorithm1Scaled)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ExpectedRttLearning(benchmark::State& state) {
  auto& w = world();
  analysis::ExpectedRttLearner learner;
  int day = 0;
  for (auto _ : state) {
    for (const auto& q : w.quartets) {
      learner.observe(analysis::cloud_key(q.key.location, q.key.device),
                      day, q.mean_rtt_ms);
    }
    ++day;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.quartets.size()));
}
BENCHMARK(BM_ExpectedRttLearning)->Unit(benchmark::kMicrosecond);

void BM_Prioritizer(benchmark::State& state) {
  core::DurationPredictor durations;
  core::ClientVolumePredictor clients;
  util::Rng rng{5};
  for (std::uint64_t key = 0; key < 64; ++key) {
    for (int i = 0; i < 20; ++i) {
      durations.record_duration(key, static_cast<int>(rng.pareto(1.0, 1.1)));
    }
  }
  std::vector<core::MiddleIssue> issues(256);
  for (std::size_t i = 0; i < issues.size(); ++i) {
    issues[i].location = net::CloudLocationId{static_cast<std::uint16_t>(i % 14)};
    issues[i].middle = net::MiddleSegmentId{static_cast<std::uint32_t>(i)};
    issues[i].observed_users = rng.uniform(1.0, 5000.0);
    issues[i].elapsed_buckets = static_cast<int>(rng.uniform_int(1, 24));
  }
  const core::ProbePrioritizer prioritizer{&durations, &clients};
  for (auto _ : state) {
    auto ranked = prioritizer.rank(issues, util::TimeBucket{1000});
    benchmark::DoNotOptimize(ranked.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(issues.size()));
}
BENCHMARK(BM_Prioritizer)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
