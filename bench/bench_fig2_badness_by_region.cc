// Figure 2: fraction of quartets whose average RTT was bad, split by region
// and device class. The paper's shape: badness is widespread in every
// region; mobile ≥ non-mobile almost everywhere; the USA is surprisingly
// high despite mature infrastructure because its targets are aggressive.
#include "bench/common.h"

int main() {
  using namespace blameit;
  bench::header("Figure 2: % bad quartets by region (7 simulated days)",
                "substantial bad fractions everywhere; USA high due to "
                "aggressive targets; trend improves with infrastructure");

  auto stack = bench::make_stack();
  const auto& topo = *stack->topology;
  const auto incidents = bench::ambient_incidents(topo, 0, 7, 2.5);
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());

  struct Counter {
    long total = 0;
    long bad = 0;
  };
  std::map<net::Region, std::array<Counter, 2>> counts;

  for (int day = 0; day < 7; ++day) {
    for (int b = 0; b < util::kBucketsPerDay; b += 2) {  // 2.5-min stride
      const util::TimeBucket bucket{day * util::kBucketsPerDay + b};
      for (const auto& q : stack->quartets(bucket)) {
        auto& counter =
            counts[q.region][static_cast<std::size_t>(q.key.device)];
        ++counter.total;
        counter.bad += q.bad;
      }
    }
  }

  util::TextTable table{
      {"region", "non-mobile bad%", "mobile bad%", "quartets"}};
  for (const auto region : net::kAllRegions) {
    const auto& row = counts[region];
    const auto& nm = row[static_cast<std::size_t>(net::DeviceClass::NonMobile)];
    const auto& mo = row[static_cast<std::size_t>(net::DeviceClass::Mobile)];
    table.add_row({std::string{net::to_string(region)},
                   nm.total ? util::fmt_pct(static_cast<double>(nm.bad) /
                                            static_cast<double>(nm.total))
                            : "-",
                   mo.total ? util::fmt_pct(static_cast<double>(mo.bad) /
                                            static_cast<double>(mo.total))
                            : "-",
                   util::fmt_count(static_cast<std::uint64_t>(nm.total +
                                                              mo.total))});
  }
  std::printf("%s", table.to_string().c_str());

  std::puts("\nExpected shape: every region shows non-negligible badness; "
            "India/China/\nBrazil are elevated (immature transit); the USA "
            "is elevated relative to its\ninfrastructure because its RTT "
            "target is the tightest.");
  return 0;
}
