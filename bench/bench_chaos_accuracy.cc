// Chaos-accuracy sweep: culprit-naming accuracy of the hardened active
// phase as the measurement plane degrades — probe loss × per-hop truncation
// against scheduled middle-AS incidents with known ground truth (the
// sim::Fault schedule is untouched by chaos, so every diagnosis can be
// scored). The point of the robustness layer is the SHAPE of this table:
// accuracy should fall off gradually (partial paths still name prefix
// culprits, retries recover lost probes, coarse Middle verdicts replace
// wrong answers), not cliff to zero the moment probes start failing.
//
//   $ ./bench_chaos_accuracy [--smoke]
//
// Writes BENCH_chaos.json. --smoke runs a reduced sweep for CI.
#include <chrono>
#include <cstring>
#include <set>

#include "bench/common.h"
#include "sim/chaos.h"

namespace {

struct SweepResult {
  int diagnoses = 0;
  int named = 0;      // culprit present
  int correct = 0;    // culprit is a scheduled victim
  int coarse = 0;     // downgraded to coarse middle blame
  int unreached = 0;  // no probe answered at all
  long retries = 0;
  int steps = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace blameit;
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::header(
      "Chaos accuracy: culprit naming vs probe loss x hop truncation",
      "robustness layer — graceful degradation, no cliff (quorum K=3)");

  const std::vector<double> losses =
      smoke ? std::vector<double>{0.0, 0.2}
            : std::vector<double>{0.0, 0.1, 0.2, 0.4};
  const std::vector<double> truncations =
      smoke ? std::vector<double>{0.0, 0.1}
            : std::vector<double>{0.0, 0.1, 0.2};

  bench::BenchReport report{"chaos"};
  util::TextTable table{{"loss", "trunc", "diags", "named", "correct",
                         "accuracy", "coarse", "unreached", "retries"}};

  for (const double loss : losses) {
    for (const double trunc : truncations) {
      core::BlameItConfig cfg = bench::bench_pipeline_config();
      cfg.active_quorum_k = 3;
      auto stack = bench::make_stack(cfg);
      const auto& topo = *stack->topology;

      // Ground truth: staggered 4-hour middle-AS incidents in three
      // regions, all live across the evaluation window.
      std::set<std::uint32_t> victims;
      std::vector<sim::Incident> incidents;
      int i = 0;
      for (const auto region : net::kAllRegions) {
        if (i >= 3) break;
        const auto transits = bench::non_dominant_transits(topo, region);
        if (transits.empty()) continue;
        sim::Incident inc;
        inc.name = "chaos-gt-" + std::to_string(i);
        inc.region = region;
        inc.kind = sim::FaultKind::MiddleAs;
        inc.target_as = transits[static_cast<std::size_t>(i) %
                                 transits.size()];
        inc.culprit_as = inc.target_as;
        inc.added_ms = net::region_profile(region).rtt_target_ms * 1.8;
        inc.start = util::MinuteTime::from_day_hour(3, 9).plus_minutes(20 * i);
        inc.duration_minutes = 4 * 60;
        victims.insert(inc.target_as.value);
        incidents.push_back(std::move(inc));
        ++i;
      }
      sim::apply_incidents(incidents, stack->faults, stack->generator.get());

      sim::ChaosConfig chaos_cfg;
      chaos_cfg.probe_loss_rate = loss;
      chaos_cfg.hop_timeout_rate = trunc;
      const sim::ChaosInjector chaos{chaos_cfg};
      stack->engine->set_chaos(&chaos);

      bench::warm_pipeline(*stack, 3);

      SweepResult r;
      const auto t0 = std::chrono::steady_clock::now();
      for (int minute = 9 * 60 + 15; minute <= 13 * 60; minute += 15) {
        const auto step = stack->pipeline->step(
            util::MinuteTime::from_days(3).plus_minutes(minute));
        ++r.steps;
        r.retries += step.active_retries;
        for (const auto& diag : step.diagnoses) {
          ++r.diagnoses;
          if (diag.culprit) {
            ++r.named;
            r.correct += victims.contains(diag.culprit->value);
          }
          r.coarse += diag.coarse_middle;
          r.unreached += !diag.probe_reached && !diag.truncated;
        }
      }
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();

      const double accuracy =
          r.named > 0 ? static_cast<double>(r.correct) / r.named : 0.0;
      const std::string config_label =
          "loss=" + util::fmt(loss, 2) + ",trunc=" + util::fmt(trunc, 2);
      table.add_row({util::fmt(loss, 2), util::fmt(trunc, 2),
                     std::to_string(r.diagnoses), std::to_string(r.named),
                     std::to_string(r.correct), util::fmt_pct(accuracy),
                     std::to_string(r.coarse), std::to_string(r.unreached),
                     std::to_string(r.retries)});
      report.add_run(config_label, wall_ms,
                     r.steps / std::max(1e-3, wall_ms / 1e3),
                     {{"accuracy", accuracy},
                      {"diagnoses", static_cast<double>(r.diagnoses)},
                      {"named", static_cast<double>(r.named)},
                      {"coarse", static_cast<double>(r.coarse)},
                      {"unreached", static_cast<double>(r.unreached)},
                      {"retries", static_cast<double>(r.retries)}});
    }
  }

  std::printf("%s", table.to_string().c_str());
  std::puts(
      "\nExpected shape: accuracy dips with loss/truncation but stays well"
      "\nabove zero — failed probes retry, truncated prefixes still name"
      "\nculprits they contain, and past-horizon cases downgrade to coarse"
      "\nmiddle blame instead of guessing.");
  report.write();
  return 0;
}
