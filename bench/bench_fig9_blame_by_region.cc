// Figure 9: blame fractions for one day, split by cloud region. Paper:
// middle-segment issues dominate in India, China, and Brazil (still-evolving
// transit), while mature regions show more balanced mixes; "insufficient"
// and "ambiguous" are a visible fraction everywhere — the cost of refusing
// to guess on thin data.
#include "bench/common.h"

int main() {
  using namespace blameit;
  bench::header("Figure 9: blame fractions by region (2 evaluation days)",
                "middle dominates India/China/Brazil; insufficient/ambiguous "
                "fractions visible everywhere");

  auto stack = bench::make_stack();
  const auto& topo = *stack->topology;
  const int warmup = 3;
  const auto incidents = bench::ambient_incidents(topo, warmup, 2, 1.3);
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());

  bench::warm_pipeline(*stack, warmup);
  const auto result = bench::run_window(*stack, warmup, 2);

  util::TextTable table{{"region", "cloud", "middle", "client", "ambiguous",
                         "insufficient"}};
  std::map<net::Region, double> middle_share;
  for (const auto region : net::kAllRegions) {
    const auto it = result.region_counts.find(region);
    std::array<long, 5> counts{};
    if (it != result.region_counts.end()) counts = it->second;
    long total = 0;
    for (const long n : counts) total += n;
    auto pct = [&](core::Blame blame) {
      return total ? util::fmt_pct(
                         static_cast<double>(
                             counts[static_cast<std::size_t>(blame)]) /
                         static_cast<double>(total))
                   : std::string{"-"};
    };
    if (total) {
      middle_share[region] =
          static_cast<double>(
              counts[static_cast<std::size_t>(core::Blame::Middle)]) /
          static_cast<double>(total);
    }
    table.add_row({std::string{net::to_string(region)},
                   pct(core::Blame::Cloud), pct(core::Blame::Middle),
                   pct(core::Blame::Client), pct(core::Blame::Ambiguous),
                   pct(core::Blame::Insufficient)});
  }
  std::printf("%s", table.to_string().c_str());

  const double evolving = (middle_share[net::Region::India] +
                           middle_share[net::Region::China] +
                           middle_share[net::Region::Brazil]) /
                          3.0;
  const double mature = (middle_share[net::Region::UnitedStates] +
                         middle_share[net::Region::Europe]) /
                        2.0;
  std::printf("\nmiddle share, evolving-transit regions (IN/CN/BR): %s\n",
              util::fmt_pct(evolving).c_str());
  std::printf("middle share, mature regions (US/EU):              %s\n",
              util::fmt_pct(mature).c_str());
  std::puts("Expected (paper): the first is clearly larger.");
  return 0;
}
