// Scenario-pack accuracy: runs the checked-in packs and reports per-pack
// localization accuracy, wall time, and ingest pressure. The frontier packs
// (bgp_instability, cascade_chaos) are EXPECTED to score below the 0.97
// plateau of the 88-incident suite — this bench exists so that gap is a
// tracked number, not an anecdote.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "scenario/pack.h"
#include "scenario/runner.h"

#ifndef BLAMEIT_PACKS_DIR
#define BLAMEIT_PACKS_DIR "packs"
#endif

int main(int argc, char** argv) {
  using namespace blameit;
  const std::string packs_dir = argc > 1 ? argv[1] : BLAMEIT_PACKS_DIR;
  bench::header("scenario packs (declarative incident suites)",
                "frontier packs deliberately stress routing churn, overlap, "
                "and measurement chaos");

  const std::vector<std::string> names = {"flash_crowd", "bgp_instability",
                                          "cascade_chaos"};
  bench::BenchReport report{"packs"};
  util::TextTable table{
      {"pack", "incidents", "passed", "accuracy", "digest", "wall ms"}};

  for (const auto& name : names) {
    const auto path = packs_dir + "/" + name + ".json";
    const auto pack = scenario::load_pack(path);
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = scenario::run_pack(pack);
    const auto wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    table.add_row({pack.name, std::to_string(result.scores.size()),
                   std::to_string(result.passed),
                   util::fmt_pct(result.accuracy), result.digest,
                   std::to_string(static_cast<long>(wall_ms))});
    report.add_run(
        pack.name, wall_ms,
        result.steps > 0 ? result.steps / (wall_ms / 1000.0) : 0.0,
        {{"accuracy", result.accuracy},
         {"incidents", static_cast<double>(result.scores.size())},
         {"passed", static_cast<double>(result.passed)},
         {"blames_total", static_cast<double>(result.blames_total)},
         {"ingest_records_in",
          static_cast<double>(result.ingest_records_in)},
         {"ingest_backpressure_waits",
          static_cast<double>(result.ingest_backpressure_waits)},
         {"ingest_ring_high_water",
          static_cast<double>(result.ingest_ring_high_water)}});
  }

  std::printf("%s", table.to_string().c_str());
  std::puts("\nThe 88-incident suite localizes at ~0.97; the bgp/cascade "
            "packs sit below it\nby design (unlearned middle segments after "
            "route churn, overlap ambiguity,\nre-steers reading as cloud "
            "faults). Progress = these numbers rising WITHOUT\nthe golden "
            "digests being regenerated for unrelated reasons.");
  report.write();
  return 0;
}
