// Scenario-pack accuracy: runs the checked-in packs and reports per-pack
// localization accuracy, wall time, and ingest pressure. The frontier packs
// (bgp_instability, cascade_chaos) are EXPECTED to score below the 0.97
// plateau of the 88-incident suite — this bench exists so that gap is a
// tracked number, not an anecdote.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "scenario/pack.h"
#include "scenario/runner.h"

#ifndef BLAMEIT_PACKS_DIR
#define BLAMEIT_PACKS_DIR "packs"
#endif

int main(int argc, char** argv) {
  using namespace blameit;
  const std::string packs_dir = argc > 1 ? argv[1] : BLAMEIT_PACKS_DIR;
  bench::header("scenario packs (declarative incident suites)",
                "frontier packs deliberately stress routing churn, overlap, "
                "and measurement chaos");

  // Per-pack gate floor (CI enforces the same numbers via scenario_runner
  // --min-accuracy) and the pre-§13 seed accuracy, kept as a before/after
  // record of what route-churn resilience bought: bgp_instability sat at 2/5
  // and cascade_chaos at 5/6 while the pipeline was churn-blind.
  struct PackSpec {
    const char* name;
    double floor;
    double seed_accuracy;
  };
  const std::vector<PackSpec> specs = {{"flash_crowd", 1.0, 1.0},
                                       {"bgp_instability", 0.8, 0.4},
                                       {"cascade_chaos", 1.0, 5.0 / 6.0}};
  bench::BenchReport report{"packs"};
  util::TextTable table{{"pack", "incidents", "passed", "accuracy",
                         "seed acc", "floor", "digest", "wall ms"}};

  for (const auto& spec : specs) {
    const std::string name = spec.name;
    const auto path = packs_dir + "/" + name + ".json";
    const auto pack = scenario::load_pack(path);
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = scenario::run_pack(pack);
    const auto wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    table.add_row({pack.name, std::to_string(result.scores.size()),
                   std::to_string(result.passed),
                   util::fmt_pct(result.accuracy),
                   util::fmt_pct(spec.seed_accuracy),
                   util::fmt_pct(spec.floor), result.digest,
                   std::to_string(static_cast<long>(wall_ms))});
    report.add_run(
        pack.name, wall_ms,
        result.steps > 0 ? result.steps / (wall_ms / 1000.0) : 0.0,
        {{"accuracy", result.accuracy},
         {"accuracy_seed", spec.seed_accuracy},
         {"accuracy_floor", spec.floor},
         {"incidents", static_cast<double>(result.scores.size())},
         {"passed", static_cast<double>(result.passed)},
         {"blames_total", static_cast<double>(result.blames_total)},
         {"ingest_records_in",
          static_cast<double>(result.ingest_records_in)},
         {"ingest_backpressure_waits",
          static_cast<double>(result.ingest_backpressure_waits)},
         {"ingest_ring_high_water",
          static_cast<double>(result.ingest_ring_high_water)}});
  }

  std::printf("%s", table.to_string().c_str());
  std::puts("\nThe 88-incident suite localizes at ~0.97. The bgp/cascade "
            "packs used to sit\nbelow it (seed acc column: unlearned middle "
            "segments after route churn,\nre-steers reading as cloud faults); "
            "§13 route-churn resilience — baseline\ntransfer, probe-on-no-"
            "baseline, steer shields — closed most of that gap, and\nthe "
            "floor column is the ratchet CI now enforces via scenario_runner "
            "\n--min-accuracy.");
  report.write();
  return 0;
}
