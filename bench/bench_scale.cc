// Planetary-scale state-store bench: how the expected-RTT learner and the
// verdict store behave at O(100K) and O(1M) client /24s, hash-map reference
// vs columnar backend. Each (scale, backend) cell runs in a forked child so
// peak RSS (ru_maxrss) is isolated per configuration; the parent collects
// the numbers over a pipe and writes BENCH_scale.json.
//
// Measured per cell:
//   - topology build time at that scale (the 1M generator itself)
//   - verdict publish throughput (records/s over synthesized step reports
//     covering every /24)
//   - learner observe throughput over a fixed synthetic key population
//   - live verdict/learner state bytes (verdict_state_bytes / approx store)
//   - snapshot save and restore wall time + snapshot file size
//   - peak RSS of the whole child
//
// Assertions (exit nonzero on violation):
//   - snapshot restore < 5s at the largest scale
//   - columnar verdict state bytes <= 1/3 of the hash-map backend's at the
//     largest scale
//   - optional --rss-ceiling-mb N: every columnar cell stays under N MB
//     (CI runs the 100K scale with this gate)
//
//   $ ./bench_scale [--scales 100000,1000000] [--rss-ceiling-mb N]
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/expected_rtt.h"
#include "bench/common.h"
#include "core/pipeline.h"
#include "net/topology.h"
#include "store/snapshot.h"
#include "svc/verdict_store.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Scale presets: 7 regions x eyeballs x 256 /24s per eyeball; ~100 metros
// via 14 metros/region. eyeballs_per_region = ceil(scale / (7 * 256)).
blameit::net::TopologyConfig scale_topology(std::size_t target_blocks) {
  blameit::net::TopologyConfig cfg;
  cfg.locations_per_region = 2;
  cfg.metros_per_region = 14;  // 98 metros, the paper's "hundreds" order
  cfg.blocks_per_eyeball = 256;
  cfg.blocks_per_prefix = 256;
  cfg.eyeballs_per_region = static_cast<int>(
      (target_blocks + 7 * 256 - 1) / (7 * 256));
  return cfg;
}

struct CellResult {
  std::map<std::string, double> values;  // key -> number, piped to parent
};

// One (scale, backend) measurement, run inside the forked child.
CellResult run_cell(std::size_t scale, blameit::store::StateBackend backend) {
  using namespace blameit;
  CellResult r;

  const auto topo_t0 = Clock::now();
  const auto topology = net::make_topology(scale_topology(scale));
  r.values["topology_build_ms"] = ms_since(topo_t0);
  const auto& blocks = topology->blocks();
  r.values["blocks"] = static_cast<double>(blocks.size());

  // --- Learner: fixed synthetic key population (learner keys scale with
  // locations x paths, not /24s; this exercises the reservoir store without
  // conflating it with the verdict-row scaling below).
  constexpr int kLearnerKeys = 8192;
  constexpr int kLearnerDays = 15;
  constexpr int kSamplesPerDay = 8;
  analysis::ExpectedRttLearner learner{analysis::ExpectedRttConfig{
      .window_days = 14, .backend = backend}};
  const auto learn_t0 = Clock::now();
  for (int day = 0; day < kLearnerDays; ++day) {
    for (int key = 0; key < kLearnerKeys; ++key) {
      const analysis::ExpectedRttKey k{(std::uint64_t{1} << 62) |
                                       static_cast<std::uint64_t>(key)};
      for (int s = 0; s < kSamplesPerDay; ++s) {
        learner.observe(k, day, 40.0 + (key % 50) + s);
      }
    }
  }
  const double learn_ms = ms_since(learn_t0);
  r.values["learner_observe_per_sec"] =
      1000.0 * kLearnerKeys * kLearnerDays * kSamplesPerDay / learn_ms;

  // --- Verdict store: synthesized step reports covering every /24 once per
  // step (the "every client block has a live verdict" worst case).
  svc::VerdictStore store{svc::VerdictStore::Config{
      .shards = 8, .verdict_retention_buckets = 12, .backend = backend}};
  constexpr int kSteps = 3;
  std::size_t records = 0;
  const auto publish_t0 = Clock::now();
  for (int s = 0; s < kSteps; ++s) {
    core::StepReport report;
    const util::TimeBucket bucket{100 + s};
    report.now = bucket.next().start();
    report.blames.reserve(blocks.size());
    for (const auto& cb : blocks) {
      core::BlameResult b;
      b.quartet.key.block = cb.block;
      b.quartet.key.location = topology->home_locations(cb.block).front();
      b.quartet.key.bucket = bucket;
      b.quartet.middle = net::MiddleSegmentId{cb.block.block % 97};
      b.quartet.client_as = cb.client_as;
      b.quartet.mean_rtt_ms = 80.0 + (cb.block.block % 40);
      b.quartet.sample_count = 20;
      b.blame = core::Blame::Middle;
      report.blames.push_back(std::move(b));
      ++records;
    }
    store.publish(report);
  }
  const double publish_ms = ms_since(publish_t0);
  r.values["verdict_records_per_sec"] = 1000.0 * records / publish_ms;
  r.values["verdict_state_bytes"] =
      static_cast<double>(store.verdict_state_bytes());

  // --- Snapshot round trip (learner + verdicts in one file).
  const std::string snap_path =
      "/tmp/bench_scale_" + std::to_string(::getpid()) + ".snap";
  const auto save_t0 = Clock::now();
  {
    store::SnapshotWriter writer;
    learner.save_state(writer);
    store.save_state(writer);
    writer.write_file(snap_path);
  }
  r.values["snapshot_save_ms"] = ms_since(save_t0);

  analysis::ExpectedRttLearner learner2{analysis::ExpectedRttConfig{
      .window_days = 14, .backend = backend}};
  svc::VerdictStore store2{svc::VerdictStore::Config{
      .shards = 8, .verdict_retention_buckets = 12, .backend = backend}};
  const auto load_t0 = Clock::now();
  {
    const auto reader = store::SnapshotReader::from_file(snap_path);
    learner2.restore_state(reader);
    store2.restore_state(reader);
  }
  r.values["snapshot_restore_ms"] = ms_since(load_t0);
  std::remove(snap_path.c_str());

  // Restore sanity: same live rows, same epoch.
  if (store2.verdict_state_bytes() == 0 && records > 0) {
    std::fprintf(stderr, "restore produced an empty verdict store\n");
    std::exit(4);
  }
  if (learner2.tracked_keys() != learner.tracked_keys()) {
    std::fprintf(stderr, "restore lost learner keys (%zu != %zu)\n",
                 learner2.tracked_keys(), learner.tracked_keys());
    std::exit(4);
  }

  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  r.values["peak_rss_mb"] =
      static_cast<double>(usage.ru_maxrss) / 1024.0;  // linux: KiB
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blameit;

  std::vector<std::size_t> scales{100'000, 1'000'000};
  double rss_ceiling_mb = 0.0;  // 0 = no gate
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scales") == 0 && i + 1 < argc) {
      scales.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        scales.push_back(static_cast<std::size_t>(std::strtoull(p, nullptr, 10)));
        p = std::strchr(p, ',');
        if (!p) break;
        ++p;
      }
    } else if (std::strcmp(argv[i], "--rss-ceiling-mb") == 0 && i + 1 < argc) {
      rss_ceiling_mb = std::atof(argv[++i]);
    }
  }

  bench::header("state-store scale: hash-map vs columnar at 100K/1M /24s",
                "§2.1 Azure-scale telemetry; memory-bounded learner/verdict "
                "state with snapshot restart");

  constexpr store::StateBackend kBackends[] = {store::StateBackend::kHashMap,
                                               store::StateBackend::kColumnar};
  // cell results keyed by (scale, backend name)
  std::map<std::pair<std::size_t, std::string>, std::map<std::string, double>>
      cells;

  for (const std::size_t scale : scales) {
    for (const auto backend : kBackends) {
      const std::string label{store::to_string(backend)};
      int fds[2];
      if (pipe(fds) != 0) {
        std::perror("pipe");
        return 1;
      }
      const pid_t pid = fork();
      if (pid < 0) {
        std::perror("fork");
        return 1;
      }
      if (pid == 0) {
        close(fds[0]);
        const CellResult r = run_cell(scale, backend);
        std::string out;
        for (const auto& [key, value] : r.values) {
          out += key + "=" + std::to_string(value) + "\n";
        }
        const char* data = out.c_str();
        std::size_t left = out.size();
        while (left > 0) {
          const ssize_t n = write(fds[1], data, left);
          if (n <= 0) _exit(5);
          data += n;
          left -= static_cast<std::size_t>(n);
        }
        close(fds[1]);
        _exit(0);
      }
      close(fds[1]);
      std::string payload;
      char buf[4096];
      ssize_t n = 0;
      while ((n = read(fds[0], buf, sizeof buf)) > 0) {
        payload.append(buf, static_cast<std::size_t>(n));
      }
      close(fds[0]);
      int status = 0;
      waitpid(pid, &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "cell (%zu, %s) failed (status %d)\n", scale,
                     label.c_str(), status);
        return 1;
      }
      auto& cell = cells[{scale, label}];
      std::size_t pos = 0;
      while (pos < payload.size()) {
        const std::size_t eq = payload.find('=', pos);
        const std::size_t nl = payload.find('\n', pos);
        if (eq == std::string::npos || nl == std::string::npos) break;
        cell[payload.substr(pos, eq - pos)] =
            std::atof(payload.c_str() + eq + 1);
        pos = nl + 1;
      }
      std::printf(
          "  %8zu /24s  %-8s  rss=%7.1f MB  verdicts=%.0f rec/s  "
          "store=%6.1f MB  save=%6.1f ms  restore=%6.1f ms\n",
          scale, label.c_str(), cell["peak_rss_mb"],
          cell["verdict_records_per_sec"],
          cell["verdict_state_bytes"] / (1024.0 * 1024.0),
          cell["snapshot_save_ms"], cell["snapshot_restore_ms"]);
    }
  }

  bench::BenchReport report{"scale"};
  for (const auto& [key, cell] : cells) {
    std::vector<std::pair<std::string, double>> extra;
    for (const auto& [name, value] : cell) {
      if (name != "verdict_records_per_sec") extra.emplace_back(name, value);
    }
    report.add_run(std::to_string(key.first) + "/" + key.second, 0.0,
                   cell.count("verdict_records_per_sec")
                       ? cell.at("verdict_records_per_sec")
                       : 0.0,
                   std::move(extra));
  }
  report.write();

  // --- Gates ---
  int violations = 0;
  const std::size_t top = *std::max_element(scales.begin(), scales.end());
  const auto& hash_top = cells[{top, "hashmap"}];
  const auto& col_top = cells[{top, "columnar"}];
  if (col_top.at("snapshot_restore_ms") >= 5000.0) {
    std::fprintf(stderr,
                 "GATE: columnar snapshot restore %.0f ms >= 5s at %zu\n",
                 col_top.at("snapshot_restore_ms"), top);
    ++violations;
  }
  if (col_top.at("verdict_state_bytes") >
      hash_top.at("verdict_state_bytes") / 3.0) {
    std::fprintf(stderr,
                 "GATE: columnar verdict state %.1f MB > 1/3 of hash-map "
                 "%.1f MB at %zu\n",
                 col_top.at("verdict_state_bytes") / (1024.0 * 1024.0),
                 hash_top.at("verdict_state_bytes") / (1024.0 * 1024.0), top);
    ++violations;
  }
  if (rss_ceiling_mb > 0.0) {
    for (const std::size_t scale : scales) {
      const auto& cell = cells[{scale, "columnar"}];
      if (cell.at("peak_rss_mb") > rss_ceiling_mb) {
        std::fprintf(stderr,
                     "GATE: columnar peak RSS %.1f MB > ceiling %.1f MB at "
                     "%zu /24s\n",
                     cell.at("peak_rss_mb"), rss_ceiling_mb, scale);
        ++violations;
      }
    }
  }
  if (violations > 0) {
    std::fprintf(stderr, "%d gate violation(s)\n", violations);
    return 1;
  }
  std::puts("all gates passed");
  return 0;
}
