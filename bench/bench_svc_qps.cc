// Verdict-service read throughput: concurrent VerdictStore lookups racing a
// full-rate pipeline publisher, then end-to-end HTTP GETs over loopback
// keep-alive connections.
//
// The store's epoch/RCU design means readers never take a lock the
// publisher holds: the floor asserted here (>= 100K lookups/s from >= 8
// threads while the pipeline steps continuously) is the contract that makes
// "serve verdicts straight out of the analytics loop" viable. The HTTP
// phase measures the full socket -> parse -> route -> store -> JSON path.
//
//   $ ./bench_svc_qps [reader_threads=8] [lookups_per_thread=200000]
//                     [http_requests_per_conn=2000]
//
// Results go to stdout and BENCH_svc_qps.json. Exits nonzero if the store
// phase misses the 100K lookups/s floor.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "svc/service.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One keep-alive loopback connection issuing `requests` GETs in sequence.
/// Returns the number of 200 responses observed.
long run_http_client(std::uint16_t port, const std::string& target,
                     int requests) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return 0;
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: bench\r\n\r\n";
  std::string buffer;
  char chunk[8192];
  long ok = 0;
  for (int i = 0; i < requests; ++i) {
    std::size_t sent = 0;
    while (sent < request.size()) {
      const auto rc = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
      if (rc <= 0) {
        ::close(fd);
        return ok;
      }
      sent += static_cast<std::size_t>(rc);
    }
    // Read exactly one response (headers + Content-Length body).
    std::size_t head_end = std::string::npos;
    std::size_t body = 0;
    for (;;) {
      head_end = buffer.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        head_end += 4;
        const auto cl = buffer.find("Content-Length: ");
        if (cl != std::string::npos && cl < head_end) {
          body = std::strtoul(buffer.c_str() + cl + 16, nullptr, 10);
        }
        if (buffer.size() >= head_end + body) break;
      }
      const auto rc = ::recv(fd, chunk, sizeof(chunk), 0);
      if (rc <= 0) {
        ::close(fd);
        return ok;
      }
      buffer.append(chunk, static_cast<std::size_t>(rc));
    }
    ok += buffer.compare(0, 15, "HTTP/1.1 200 OK") == 0;
    buffer.erase(0, head_end + body);
  }
  ::close(fd);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blameit;

  const int reader_threads = argc > 1 ? std::atoi(argv[1]) : 8;
  const long lookups_per_thread = argc > 2 ? std::atol(argv[2]) : 200000;
  const int http_requests = argc > 3 ? std::atoi(argv[3]) : 2000;
  constexpr int kWarmDays = 2;
  constexpr int kHttpConnections = 4;

  bench::header("verdict service throughput: store lookups + HTTP path",
                "serving §4/§5 verdicts online, straight from the step loop");

  auto stack = bench::make_stack();
  const auto incidents =
      bench::ambient_incidents(*stack->topology, kWarmDays, 2, 1.5);
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());
  std::printf("warming %d days...\n", kWarmDays);
  bench::warm_pipeline(*stack, kWarmDays);

  obs::Registry registry;
  svc::VerdictStore store{{.registry = &registry}};
  stack->pipeline->set_step_observer(
      [&](const core::StepReport& report) { store.publish(report); });

  // Populate with a few steps so the first lookups see live verdicts.
  long step_minute = 0;
  const auto step_once = [&] {
    step_minute += 15;
    (void)stack->pipeline->step(
        util::MinuteTime::from_days(kWarmDays).plus_minutes(step_minute));
  };
  for (int i = 0; i < 8; ++i) step_once();
  std::printf("store populated: epoch=%llu\n",
              static_cast<unsigned long long>(store.epoch()));

  // Lookup targets: every live verdict key (hits) interleaved with every
  // client /24 in the topology at arbitrary locations (mostly misses) — a
  // mix like real operator queries.
  std::vector<std::pair<net::Slash24, net::CloudLocationId>> targets;
  const auto everything = net::Prefix::parse("0.0.0.0/0");
  for (const auto& verdict : store.lookup(*everything)) {
    targets.emplace_back(verdict.block, verdict.location);
  }
  const std::size_t live_targets = targets.size();
  for (const auto& block : stack->topology->blocks()) {
    targets.emplace_back(
        block.block,
        net::CloudLocationId{static_cast<std::uint16_t>(targets.size() % 7)});
  }
  std::printf("targets: %zu live + %zu sweep\n", live_targets,
              targets.size() - live_targets);

  bench::BenchReport report{"svc_qps"};

  // ---- Phase 1: raw store lookups vs a full-rate publisher. ----
  {
    std::atomic<bool> stop{false};
    const auto epoch_before = store.epoch();
    std::thread publisher{[&] {
      while (!stop.load(std::memory_order_relaxed)) step_once();
    }};

    const auto t0 = Clock::now();
    std::vector<std::thread> readers;
    std::atomic<long> hits{0};
    for (int t = 0; t < reader_threads; ++t) {
      readers.emplace_back([&, t] {
        long local_hits = 0;
        std::size_t i = static_cast<std::size_t>(t);
        for (long n = 0; n < lookups_per_thread; ++n) {
          const auto& [block, location] = targets[i % targets.size()];
          local_hits += store.lookup(block, location).has_value();
          ++i;
        }
        hits.fetch_add(local_hits, std::memory_order_relaxed);
      });
    }
    for (auto& r : readers) r.join();
    const double elapsed = seconds_since(t0);
    stop = true;
    publisher.join();

    const double total =
        static_cast<double>(reader_threads) *
        static_cast<double>(lookups_per_thread);
    const double qps = total / elapsed;
    const auto epochs =
        static_cast<double>(store.epoch() - epoch_before);
    std::printf(
        "store: %d readers x %ld lookups in %.3fs -> %.0f lookups/s "
        "(%.0f epochs published concurrently, %.1f%% hits)\n",
        reader_threads, lookups_per_thread, elapsed, qps, epochs,
        100.0 * static_cast<double>(hits.load()) / total);
    report.add_run("store_lookup_" + std::to_string(reader_threads) +
                       "_threads",
                   elapsed * 1000.0, qps,
                   {{"epochs_during_run", epochs},
                    {"hit_fraction",
                     static_cast<double>(hits.load()) / total}});
    if (qps < 100000.0) {
      std::fprintf(stderr,
                   "FLOOR MISSED: %.0f lookups/s < 100000 (the RCU store "
                   "must not serialize readers)\n",
                   qps);
      report.write();
      return 1;
    }
  }

  // ---- Phase 2: the full HTTP path over loopback keep-alive. ----
  {
    svc::VerdictService service{&store, &registry};
    svc::HttpServer server{service.handler()};
    if (!server.start()) {
      std::fprintf(stderr, "cannot bind loopback server\n");
      return 1;
    }
    const std::string target =
        "/v1/verdict?client=" + targets.front().first.base().to_string();
    const auto t0 = Clock::now();
    std::vector<std::thread> clients;
    std::atomic<long> ok{0};
    for (int c = 0; c < kHttpConnections; ++c) {
      clients.emplace_back([&] {
        ok.fetch_add(run_http_client(server.port(), target, http_requests),
                     std::memory_order_relaxed);
      });
    }
    for (auto& c : clients) c.join();
    const double elapsed = seconds_since(t0);
    server.stop();

    const double total = static_cast<double>(kHttpConnections) *
                         static_cast<double>(http_requests);
    const double qps = total / elapsed;
    std::printf(
        "http: %d connections x %d requests in %.3fs -> %.0f req/s "
        "(%ld answered 200)\n",
        kHttpConnections, http_requests, elapsed, qps, ok.load());
    report.add_run("http_keepalive_" + std::to_string(kHttpConnections) +
                       "_conns",
                   elapsed * 1000.0, qps,
                   {{"ok_fraction", static_cast<double>(ok.load()) / total}});
    if (ok.load() != static_cast<long>(total)) {
      std::fprintf(stderr, "FAILURE: %ld of %.0f HTTP requests answered\n",
                   ok.load(), total);
      report.write();
      return 1;
    }
  }

  report.write();
  return 0;
}
