// Ops-floor demo: a day of the full production loop (Fig 7). Raw RTT
// records stream — shuffled, production-style — through the sharded
// ingestion engine into finalized quartets, the pipeline runs every 15
// minutes, incidents fire randomly, tickets open, and the day closes with
// a blame-fraction summary like the paper's Fig 8/9 dashboards plus the
// ingestion counters.
//
//   $ ./live_pipeline [incident_count] [--obs] [--chaos] [--steps N]
//                     [--serve PORT] [--snapshot-dir DIR] [--backend NAME]
//
// --obs dumps the observability registry (counters, gauges, latency
// histograms from every pipeline layer) after the day completes.
// --chaos runs the measurement plane degraded: 20% probe loss, 10% per-hop
// truncation, silent ASes, duplicated/late telemetry records, and a
// mid-day probing-engine outage. The run doubles as a smoke check: it
// exits nonzero if any step crashes the retry bound or overshoots the
// probe budget (CI runs `--chaos --steps 200`).
// --steps N overrides the step count (default 96 = one day at 15 min).
// --serve PORT publishes every step into the verdict service and serves
// it on 127.0.0.1:PORT (/v1/verdict, /v1/incidents, /v1/diagnoses,
// /metrics.json, /metrics, /healthz). After the day completes the process
// keeps serving until SIGINT, then shuts down cleanly (sockets drained,
// threads joined).
// --snapshot-dir DIR enables restart recovery: on startup, DIR/pipeline.snap
// (when present) replaces the warmup — the run resumes exactly where the
// saved run stopped; on clean exit the final state is written back. The
// verdict store rides along in the same file when --serve is active.
// --backend hashmap|columnar picks the learner/verdict state representation
// (results are bit-identical; columnar is the memory-bounded path).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>

#include "examples/common.h"
#include "obs/registry.h"
#include "ops/alert.h"
#include "ops/report.h"
#include "sim/chaos.h"
#include "sim/scenario.h"
#include "store/snapshot.h"
#include "svc/service.h"
#include "util/table.h"

namespace {
std::atomic<bool> g_interrupted{false};
void on_sigint(int) { g_interrupted.store(true); }
}  // namespace

int main(int argc, char** argv) {
  using namespace blameit;

  int incident_count = 6;
  bool dump_obs = false;
  bool with_chaos = false;
  int steps = util::kMinutesPerDay / 15;
  int serve_port = -1;
  std::string snapshot_dir;
  auto backend = store::StateBackend::kHashMap;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--obs") == 0) {
      dump_obs = true;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      with_chaos = true;
    } else if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--snapshot-dir") == 0 && i + 1 < argc) {
      snapshot_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "columnar") {
        backend = store::StateBackend::kColumnar;
      } else if (name == "hashmap") {
        backend = store::StateBackend::kHashMap;
      } else {
        std::fprintf(stderr, "unknown --backend %s (hashmap|columnar)\n",
                     name.c_str());
        return 2;
      }
    } else {
      incident_count = std::atoi(argv[i]);
    }
  }
  std::printf("== live pipeline: %d steps, %d incidents%s ==\n", steps,
              incident_count, with_chaos ? ", CHAOS ON" : "");

  sim::ChaosConfig chaos_cfg;
  if (with_chaos) {
    chaos_cfg.probe_loss_rate = 0.2;
    chaos_cfg.hop_timeout_rate = 0.1;
    chaos_cfg.silent_as_rate = 0.05;
    chaos_cfg.duplicate_record_rate = 0.02;
    chaos_cfg.late_record_rate = 0.01;
    chaos_cfg.outages.push_back(
        sim::OutageWindow{util::MinuteTime::from_day_hour(2, 13), 45});
  }

  ingest::IngestConfig ingest_cfg;
  ingest_cfg.shards = 4;
  // Same demo-scale pipeline/topology settings as make_streaming_stack's
  // defaults; spelled out because the chaos config comes after them.
  core::BlameItConfig pipe_cfg;
  pipe_cfg.expected_rtt_window_days = 2;
  pipe_cfg.state_backend = backend;
  net::TopologyConfig topo_cfg;
  topo_cfg.locations_per_region = 1;
  topo_cfg.eyeballs_per_region = 4;
  topo_cfg.blocks_per_eyeball = 8;
  auto stack = examples::make_streaming_stack(ingest_cfg, pipe_cfg, topo_cfg,
                                              chaos_cfg);
  const auto& topo = *stack->topology;

  sim::IncidentSuiteConfig suite_cfg;
  suite_cfg.count = incident_count;
  suite_cfg.first_start = util::MinuteTime::from_day_hour(2, 1);
  suite_cfg.max_duration_minutes = 150;
  const auto incidents = sim::make_incident_suite(topo, suite_cfg);
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());
  for (const auto& inc : incidents) {
    std::printf("  scheduled: %-22s %-12s at %s (%d min)\n", inc.name.c_str(),
                std::string{to_string(inc.kind)}.c_str(),
                util::to_string(inc.start).c_str(), inc.duration_minutes);
  }

  // Restart recovery: a prior run's snapshot replaces the warmup entirely —
  // the learner/predictor/baseline state picks up exactly where it stopped.
  const std::filesystem::path snap_path =
      snapshot_dir.empty()
          ? std::filesystem::path{}
          : std::filesystem::path{snapshot_dir} / "pipeline.snap";
  std::unique_ptr<store::SnapshotReader> restored;
  if (!snap_path.empty() && std::filesystem::exists(snap_path)) {
    try {
      restored = std::make_unique<store::SnapshotReader>(
          store::SnapshotReader::from_file(snap_path.string()));
      stack->pipeline->restore_snapshot(*restored);
      std::printf("restored pipeline state from %s\n",
                  snap_path.string().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "snapshot restore failed: %s\n", e.what());
      return 3;
    }
  }
  if (!restored) examples::warm_pipeline(*stack, 2);
  ops::AlertSink alerts;

  // Optional service layer: every step report is published into the
  // verdict store; HTTP readers never block the step loop.
  std::unique_ptr<svc::VerdictStore> store;
  std::unique_ptr<svc::VerdictService> service;
  std::unique_ptr<svc::HttpServer> server;
  if (serve_port >= 0) {
    std::signal(SIGINT, on_sigint);
    std::signal(SIGTERM, on_sigint);
    store = std::make_unique<svc::VerdictStore>(svc::VerdictStore::Config{
        .backend = backend, .registry = &stack->registry});
    service =
        std::make_unique<svc::VerdictService>(store.get(), &stack->registry);
    svc::HttpServerConfig http_cfg;
    http_cfg.port = static_cast<std::uint16_t>(serve_port);
    server = std::make_unique<svc::HttpServer>(service->handler(), http_cfg);
    if (!server->start()) {
      std::fprintf(stderr, "failed to bind 127.0.0.1:%d\n", serve_port);
      return 1;
    }
    stack->pipeline->set_step_observer(
        [&](const core::StepReport& report) { store->publish(report); });
    if (restored && restored->has_section("verdicts")) {
      store->restore_state(*restored);
      std::printf("restored verdict store (epoch %llu)\n",
                  static_cast<unsigned long long>(store->epoch()));
    }
    std::printf("serving verdicts on http://127.0.0.1:%u\n", server->port());
  }

  std::map<core::Blame, long> totals;
  long probes_on_demand = 0;
  long probes_background = 0;
  long retries = 0;
  long degraded_steps = 0;
  int violations = 0;
  const auto& cfg = stack->pipeline->config();
  // Hardening invariant: retries are bounded per diagnosis, and the step's
  // total spend can overshoot the budget by at most one diagnosis.
  const int per_diag_cap = cfg.active_quorum_k * (1 + cfg.active_probe_retries);
  for (int k = 1; k <= steps && !g_interrupted.load(); ++k) {
    const int minute = 15 * k;
    const auto now = util::MinuteTime::from_days(2).plus_minutes(minute);
    const auto report = stack->pipeline->step(now);
    for (const auto blame : core::kAllBlames) {
      totals[blame] += report.count(blame);
    }
    probes_on_demand += report.on_demand_probes;
    probes_background += report.background_probes;
    retries += report.active_retries;
    degraded_steps += report.degraded_passive_only;
    if (report.on_demand_probes >
        cfg.probe_budget_per_run + per_diag_cap - 1) {
      std::fprintf(stderr, "INVARIANT VIOLATION at %s: %d probes > budget\n",
                   util::to_string(now).c_str(), report.on_demand_probes);
      ++violations;
    }
    for (const auto& diag : report.diagnoses) {
      if (diag.probes_spent > per_diag_cap) {
        std::fprintf(stderr,
                     "INVARIANT VIOLATION at %s: %d attempts in one "
                     "diagnosis (cap %d)\n",
                     util::to_string(now).c_str(), diag.probes_spent,
                     per_diag_cap);
        ++violations;
      }
    }
    for (const auto& ticket : alerts.digest(report)) {
      std::printf("%s  -> %s\n", util::to_string(now).c_str(),
                  ops::render_ticket(ticket, topo).c_str());
    }
    if (minute % (6 * util::kMinutesPerHour) == 0) {
      std::printf("%s  %s\n", ops::render_step(report, topo).c_str(),
                  ops::render_ingest(stack->ingest_engine->stats()).c_str());
    }
  }

  if (!snap_path.empty()) {
    try {
      std::filesystem::create_directories(snap_path.parent_path());
      store::SnapshotWriter writer;
      stack->pipeline->save_snapshot(writer);
      if (store) store->save_state(writer);
      writer.write_file(snap_path.string());
      std::printf("saved pipeline state to %s\n", snap_path.string().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "snapshot save failed: %s\n", e.what());
      return 3;
    }
  }

  long total_blames = 0;
  for (const auto& [blame, n] : totals) total_blames += n;
  util::TextTable summary{{"category", "bad quartets", "share"}};
  for (const auto blame : core::kAllBlames) {
    summary.add_row({std::string{core::to_string(blame)},
                     util::fmt_count(static_cast<std::uint64_t>(totals[blame])),
                     total_blames
                         ? util::fmt_pct(static_cast<double>(totals[blame]) /
                                         static_cast<double>(total_blames))
                         : "0%"});
  }
  std::puts("\nday summary (compare with the paper's Fig 8 fractions):");
  std::printf("%s", summary.to_string().c_str());
  std::printf("probes: on-demand=%ld background=%ld, tickets=%zu\n",
              probes_on_demand, probes_background,
              alerts.all_tickets().size());
  std::printf("%s\n",
              ops::render_ingest(stack->ingest_engine->stats()).c_str());
  if (with_chaos) {
    const auto snap = stack->registry.snapshot();
    std::printf(
        "chaos: lost=%llu outage=%llu timeouts=%llu silent=%llu dup=%llu "
        "late=%llu | retries=%ld degraded-steps=%ld\n",
        static_cast<unsigned long long>(
            snap.counter_value("chaos.probes_lost").value_or(0)),
        static_cast<unsigned long long>(
            snap.counter_value("chaos.outage_probes").value_or(0)),
        static_cast<unsigned long long>(
            snap.counter_value("chaos.hop_timeouts").value_or(0)),
        static_cast<unsigned long long>(
            snap.counter_value("chaos.silent_hops").value_or(0)),
        static_cast<unsigned long long>(
            snap.counter_value("chaos.records_duplicated").value_or(0)),
        static_cast<unsigned long long>(
            snap.counter_value("chaos.records_delayed").value_or(0)),
        retries, degraded_steps);
  }
  if (dump_obs) {
    std::puts("\n== observability registry ==");
    std::printf("%s", obs::render_text(stack->registry.snapshot()).c_str());
  }
  if (server) {
    std::printf(
        "day complete; serving on http://127.0.0.1:%u until SIGINT "
        "(served %llu requests so far)\n",
        server->port(),
        static_cast<unsigned long long>(server->requests_served()));
    std::fflush(stdout);
    while (!g_interrupted.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds{50});
    }
    server->stop();
    std::printf("service stopped: %llu connections, %llu requests\n",
                static_cast<unsigned long long>(
                    server->connections_accepted()),
                static_cast<unsigned long long>(server->requests_served()));
  }
  if (violations > 0) {
    std::fprintf(stderr, "%d invariant violation(s)\n", violations);
    return 1;
  }
  return 0;
}
