// Ops-floor demo: a day of the full production loop (Fig 7). Raw RTT
// records stream — shuffled, production-style — through the sharded
// ingestion engine into finalized quartets, the pipeline runs every 15
// minutes, incidents fire randomly, tickets open, and the day closes with
// a blame-fraction summary like the paper's Fig 8/9 dashboards plus the
// ingestion counters.
//
//   $ ./live_pipeline [incident_count] [--obs]
//
// --obs dumps the observability registry (counters, gauges, latency
// histograms from every pipeline layer) after the day completes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "examples/common.h"
#include "obs/registry.h"
#include "ops/alert.h"
#include "ops/report.h"
#include "sim/scenario.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace blameit;

  int incident_count = 6;
  bool dump_obs = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--obs") == 0) {
      dump_obs = true;
    } else {
      incident_count = std::atoi(argv[i]);
    }
  }
  std::printf("== live pipeline: one day, %d incidents ==\n", incident_count);

  ingest::IngestConfig ingest_cfg;
  ingest_cfg.shards = 4;
  auto stack = examples::make_streaming_stack(ingest_cfg);
  const auto& topo = *stack->topology;

  sim::IncidentSuiteConfig suite_cfg;
  suite_cfg.count = incident_count;
  suite_cfg.first_start = util::MinuteTime::from_day_hour(2, 1);
  suite_cfg.max_duration_minutes = 150;
  const auto incidents = sim::make_incident_suite(topo, suite_cfg);
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());
  for (const auto& inc : incidents) {
    std::printf("  scheduled: %-22s %-12s at %s (%d min)\n", inc.name.c_str(),
                std::string{to_string(inc.kind)}.c_str(),
                util::to_string(inc.start).c_str(), inc.duration_minutes);
  }

  examples::warm_pipeline(*stack, 2);
  ops::AlertSink alerts;

  std::map<core::Blame, long> totals;
  long probes_on_demand = 0;
  long probes_background = 0;
  for (int minute = 15; minute <= util::kMinutesPerDay; minute += 15) {
    const auto now = util::MinuteTime::from_days(2).plus_minutes(minute);
    const auto report = stack->pipeline->step(now);
    for (const auto blame : core::kAllBlames) {
      totals[blame] += report.count(blame);
    }
    probes_on_demand += report.on_demand_probes;
    probes_background += report.background_probes;
    for (const auto& ticket : alerts.digest(report)) {
      std::printf("%s  -> %s\n", util::to_string(now).c_str(),
                  ops::render_ticket(ticket, topo).c_str());
    }
    if (minute % (6 * util::kMinutesPerHour) == 0) {
      std::printf("%s  %s\n", ops::render_step(report, topo).c_str(),
                  ops::render_ingest(stack->ingest_engine->stats()).c_str());
    }
  }

  long total_blames = 0;
  for (const auto& [blame, n] : totals) total_blames += n;
  util::TextTable summary{{"category", "bad quartets", "share"}};
  for (const auto blame : core::kAllBlames) {
    summary.add_row({std::string{core::to_string(blame)},
                     util::fmt_count(static_cast<std::uint64_t>(totals[blame])),
                     total_blames
                         ? util::fmt_pct(static_cast<double>(totals[blame]) /
                                         static_cast<double>(total_blames))
                         : "0%"});
  }
  std::puts("\nday summary (compare with the paper's Fig 8 fractions):");
  std::printf("%s", summary.to_string().c_str());
  std::printf("probes: on-demand=%ld background=%ld, tickets=%zu\n",
              probes_on_demand, probes_background,
              alerts.all_tickets().size());
  std::printf("%s\n",
              ops::render_ingest(stack->ingest_engine->stats()).c_str());
  if (dump_obs) {
    std::puts("\n== observability registry ==");
    std::printf("%s", obs::render_text(stack->registry.snapshot()).c_str());
  }
  return 0;
}
