// Capacity-planning demo: how many traceroutes does each monitoring strategy
// cost per day, and what does BlameIt's impact-prioritized budget buy?
//
// Compares (a) continuous active probing, (b) Trinocular-style adaptive
// probing, and (c) BlameIt's background cadence, then shows how the
// client-time-product ranking concentrates the on-demand budget on the
// issues that matter (§2.4 / §5.3).
//
//   $ ./probe_budget_planning
#include <cstdio>

#include "baselines/active_only.h"
#include "baselines/trinocular.h"
#include "core/background.h"
#include "core/prioritizer.h"
#include "examples/common.h"
#include "util/table.h"

int main() {
  using namespace blameit;

  std::puts("== probe budget planning ==");
  auto stack = examples::make_stack();
  const auto& topo = *stack->topology;

  baselines::ActiveOnlyMonitor active_only{&topo, stack->engine.get()};
  baselines::TrinocularMonitor trinocular{&topo, stack->engine.get()};
  core::BaselineStore store;
  core::BackgroundProber background{&topo, stack->engine.get(), &store};

  const auto blameit_daily = background.periodic_probes_per_day() == 0
                                 ? [&] {
                                     // Targets build lazily; run one step.
                                     (void)background.step(
                                         util::MinuteTime{0},
                                         util::MinuteTime{15});
                                     return background.periodic_probes_per_day();
                                   }()
                                 : background.periodic_probes_per_day();

  util::TextTable table{{"strategy", "probes/day", "vs BlameIt"}};
  const auto active_daily = active_only.probes_per_day();
  const auto trinocular_daily = trinocular.probes_per_day();
  table.add_row({"continuous active (10 min)",
                 util::fmt_count(active_daily),
                 util::fmt(static_cast<double>(active_daily) /
                               static_cast<double>(blameit_daily),
                           1) +
                     "x"});
  table.add_row({"Trinocular-style (11 min)",
                 util::fmt_count(trinocular_daily),
                 util::fmt(static_cast<double>(trinocular_daily) /
                               static_cast<double>(blameit_daily),
                           1) +
                     "x"});
  table.add_row({"BlameIt background (2/day)", util::fmt_count(blameit_daily),
                 "1.0x"});
  std::printf("%s\n", table.to_string().c_str());

  std::puts("on-demand budget: how the client-time product concentrates it");
  // Rank a synthetic batch of middle issues with very different footprints.
  core::DurationPredictor durations;
  core::ClientVolumePredictor clients;
  const auto big = core::middle_issue_key(net::CloudLocationId{0},
                                          net::MiddleSegmentId{0});
  const auto small = core::middle_issue_key(net::CloudLocationId{1},
                                            net::MiddleSegmentId{1});
  for (int i = 0; i < 20; ++i) durations.record_duration(big, 24);
  for (int i = 0; i < 20; ++i) durations.record_duration(small, 1);
  for (int day = 0; day < 3; ++day) {
    const util::TimeBucket bucket{day * util::kBucketsPerDay + 144};
    clients.observe(big, bucket, 4000.0);
    clients.observe(small, bucket, 12.0);
  }

  std::vector<core::MiddleIssue> issues(2);
  issues[0].location = net::CloudLocationId{0};
  issues[0].middle = net::MiddleSegmentId{0};
  issues[0].observed_users = 4000.0;
  issues[0].elapsed_buckets = 6;
  issues[1].location = net::CloudLocationId{1};
  issues[1].middle = net::MiddleSegmentId{1};
  issues[1].observed_users = 12.0;

  const core::ProbePrioritizer prioritizer{&durations, &clients};
  const auto ranked = prioritizer.rank(
      std::move(issues), util::TimeBucket{3 * util::kBucketsPerDay + 144});

  util::TextTable ranking{{"issue", "predicted users", "expected remaining",
                           "client-time product"}};
  for (const auto& issue : ranked) {
    ranking.add_row(
        {issue.middle.to_string(), util::fmt(issue.predicted_users, 0),
         util::fmt(issue.predicted_remaining_buckets, 1) + " buckets",
         util::fmt(issue.client_time_product, 0)});
  }
  std::printf("%s\n", ranking.to_string().c_str());
  std::puts("With a budget of 1 probe, BlameIt spends it on the 4,000-user");
  std::puts("long-lived issue — the paper's 5% budget covers 83% of impact.");
  return 0;
}
