// Quickstart: the smallest end-to-end BlameIt run.
//
// Builds a synthetic internet, injects a transit-AS latency fault, runs the
// BlameIt pipeline at its 15-minute cadence, and prints the coarse blame and
// the traceroute-based AS-level diagnosis.
//
//   $ ./quickstart
#include <cstdio>
#include <string>

#include "examples/common.h"
#include "ops/report.h"
#include "sim/fault.h"

int main() {
  using namespace blameit;

  std::puts("== BlameIt quickstart ==");
  std::puts("building synthetic internet + telemetry...");
  auto stack = examples::make_stack();
  const auto& topo = *stack->topology;

  // Pick a transit AS in Europe that real routes cross, and break it at
  // 10:00 on day 2 for two hours.
  const auto& block = topo.blocks().front();
  const auto home = topo.home_locations(block.block).front();
  const auto* route =
      topo.routing().route_for(home, block.block, util::MinuteTime{0});
  const auto victim = route->middle_ases().front();
  const auto fault_start = util::MinuteTime::from_day_hour(2, 10);
  stack->faults.add(sim::Fault{.kind = sim::FaultKind::MiddleAs,
                               .as = victim,
                               .added_ms = 100.0,
                               .start = fault_start,
                               .duration_minutes = 120,
                               .label = "quickstart-demo-fault"});
  std::printf("injected +100ms fault in %s (%s), 10:00-12:00 on day 2\n",
              victim.to_string().c_str(),
              topo.registry().at(victim).name.c_str());

  std::puts("warming expected-RTT learners (2 days of history)...");
  examples::warm_pipeline(*stack, 2);

  std::puts("running the pipeline every 15 minutes, 09:30-11:00:");
  for (int minute = 9 * 60 + 30; minute <= 11 * 60; minute += 15) {
    const auto now = util::MinuteTime::from_days(2).plus_minutes(minute);
    const auto report = stack->pipeline->step(now);
    std::printf("%s\n", ops::render_step(report, topo).c_str());
  }

  std::puts("\nThe middle-segment blames appear as soon as the fault starts,");
  std::puts("and the on-demand traceroute pins the culprit AS — compare it");
  std::puts("with the injected fault above.");
  return 0;
}
