// Replays the paper's §6.3 case studies — Brazil cloud maintenance, the US
// peering fault, the Australia cloud overload, the East Asia anycast shift,
// and the Italy client-ISP maintenance — through the full pipeline, and
// prints, for each, what BlameIt concluded versus the known ground truth.
//
//   $ ./incident_investigation
#include <cstdio>
#include <map>

#include "examples/common.h"
#include "ops/alert.h"
#include "ops/report.h"
#include "sim/scenario.h"

int main() {
  using namespace blameit;

  std::puts("== BlameIt incident investigation (the paper's case studies) ==");
  auto stack = examples::make_stack();
  const auto& topo = *stack->topology;

  const auto incidents =
      sim::make_case_studies(topo, util::MinuteTime::from_day_hour(2, 9));
  sim::apply_incidents(incidents, stack->faults, stack->generator.get());

  std::puts("scheduled incidents:");
  for (const auto& inc : incidents) {
    std::printf("  %-24s %-12s %s for %d min\n", inc.name.c_str(),
                std::string{to_string(inc.kind)}.c_str(),
                util::to_string(inc.start).c_str(), inc.duration_minutes);
  }

  examples::warm_pipeline(*stack, 2);
  ops::AlertSink alerts;

  // Walk the whole window covering all five incidents at 15-min cadence,
  // tallying the majority blame BlameIt assigned during each incident.
  std::map<std::string, std::map<core::Blame, int>> verdicts;
  std::map<std::string, net::AsId> diagnosed;
  const auto last_end = incidents.back().end();
  for (auto now = util::MinuteTime::from_day_hour(2, 9);
       now <= last_end.plus_minutes(30); now = now.plus_minutes(15)) {
    const auto report = stack->pipeline->step(now);
    for (const auto& inc : incidents) {
      if (now < inc.start || now >= inc.end()) continue;
      for (const auto& blame : report.blames) {
        // Attribute blames in the incident's region to that incident.
        if (blame.quartet.region == inc.region) {
          ++verdicts[inc.name][blame.blame];
        }
      }
      for (const auto& diag : report.diagnoses) {
        if (diag.culprit &&
            topo.location(diag.location).region == inc.region) {
          diagnosed.emplace(inc.name, *diag.culprit);
        }
      }
    }
    for (const auto& ticket : alerts.digest(report)) {
      std::printf("  ticket %s\n", ops::render_ticket(ticket, topo).c_str());
    }
  }

  std::puts("\nverdicts vs ground truth:");
  int matched = 0;
  for (const auto& inc : incidents) {
    const auto& hist = verdicts[inc.name];
    core::Blame majority = core::Blame::Insufficient;
    int best = -1;
    for (const auto& [blame, n] : hist) {
      if (n > best) {
        best = n;
        majority = blame;
      }
    }
    const core::Blame expected = [&] {
      switch (inc.kind) {
        case sim::FaultKind::CloudLocation: return core::Blame::Cloud;
        case sim::FaultKind::MiddleAs: return core::Blame::Middle;
        default: return core::Blame::Client;
      }
    }();
    const bool category_ok = majority == expected;
    matched += category_ok;
    std::printf("  %-24s expected=%-7s got=%-7s %s", inc.name.c_str(),
                std::string{core::to_string(expected)}.c_str(),
                std::string{core::to_string(majority)}.c_str(),
                category_ok ? "MATCH" : "MISMATCH");
    const auto dit = diagnosed.find(inc.name);
    if (inc.culprit_as && dit != diagnosed.end()) {
      std::printf("  (culprit %s, truth %s)", dit->second.to_string().c_str(),
                  inc.culprit_as->to_string().c_str());
    }
    std::puts("");
  }
  std::printf("\n%d/%zu case studies localized to the right segment.\n",
              matched, incidents.size());
  return matched == static_cast<int>(incidents.size()) ? 0 : 1;
}
