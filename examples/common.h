// Shared plumbing for the example programs: builds the synthetic internet,
// wires telemetry -> quartets -> pipeline, and warms the learners.
#pragma once

#include <functional>
#include <memory>

#include "analysis/quartet.h"
#include "core/pipeline.h"
#include "ingest/engine.h"
#include "ingest/source.h"
#include "net/topology.h"
#include "obs/registry.h"
#include "sim/chaos.h"
#include "sim/telemetry.h"
#include "sim/traceroute.h"

namespace blameit::examples {

/// Everything a demo needs, owned together.
struct Stack {
  /// Declared first so it outlives every component that records into it.
  obs::Registry registry;
  std::unique_ptr<net::Topology> topology;
  sim::FaultInjector faults;
  std::unique_ptr<sim::TelemetryGenerator> generator;
  std::unique_ptr<sim::RttModel> model;
  /// Measurement-plane fault injection; null unless a chaos config was
  /// passed to make_stack / make_streaming_stack.
  std::unique_ptr<sim::ChaosInjector> chaos;
  std::unique_ptr<sim::TracerouteEngine> engine;
  /// Set only by make_streaming_stack: the pipeline's quartets then come
  /// from the sharded streaming engine instead of the synchronous builder.
  std::unique_ptr<ingest::IngestEngine> ingest_engine;
  std::unique_ptr<core::BlameItPipeline> pipeline;

  /// Builds the quartets of one 5-minute bucket, as the analytics cluster
  /// would.
  [[nodiscard]] std::vector<analysis::Quartet> quartets(
      util::TimeBucket bucket) const {
    analysis::QuartetBuilder builder{topology.get(),
                                     analysis::BadnessThresholds{}};
    generator->generate_aggregates(
        bucket, [&](const analysis::QuartetKey& k, int n, double mean) {
          builder.add_aggregate(k, n, mean);
        });
    return builder.take_bucket(bucket);
  }
};

inline std::unique_ptr<Stack> make_stack(
    core::BlameItConfig config = [] {
      core::BlameItConfig cfg;
      cfg.expected_rtt_window_days = 2;  // short demo warmup
      return cfg;
    }(),
    net::TopologyConfig topo_config = [] {
      net::TopologyConfig cfg;
      cfg.locations_per_region = 1;
      cfg.eyeballs_per_region = 4;
      cfg.blocks_per_eyeball = 8;
      return cfg;
    }(),
    sim::ChaosConfig chaos_config = {}) {
  auto stack = std::make_unique<Stack>();
  stack->topology = net::make_topology(topo_config);
  stack->generator = std::make_unique<sim::TelemetryGenerator>(
      stack->topology.get(), &stack->faults);
  stack->model = std::make_unique<sim::RttModel>(stack->topology.get(),
                                                 &stack->faults);
  if (chaos_config.enabled()) {
    stack->chaos = std::make_unique<sim::ChaosInjector>(chaos_config,
                                                        &stack->registry);
  }
  stack->engine = std::make_unique<sim::TracerouteEngine>(
      stack->topology.get(), stack->model.get(), sim::TracerouteConfig{},
      stack->chaos.get());
  Stack* raw = stack.get();
  stack->pipeline = std::make_unique<core::BlameItPipeline>(
      stack->topology.get(), stack->engine.get(),
      [raw](util::TimeBucket bucket) { return raw->quartets(bucket); },
      config, &stack->registry);
  return stack;
}

/// Like make_stack, but the pipeline consumes finalized quartets from the
/// sharded streaming IngestEngine fed with shuffled raw records — the
/// production-shaped (Fig 7) front end. stack->ingest_engine->stats()
/// exposes the ingestion counters.
inline std::unique_ptr<Stack> make_streaming_stack(
    ingest::IngestConfig ingest_config = {},
    core::BlameItConfig config = [] {
      core::BlameItConfig cfg;
      cfg.expected_rtt_window_days = 2;  // short demo warmup
      return cfg;
    }(),
    net::TopologyConfig topo_config = [] {
      net::TopologyConfig cfg;
      cfg.locations_per_region = 1;
      cfg.eyeballs_per_region = 4;
      cfg.blocks_per_eyeball = 8;
      return cfg;
    }(),
    sim::ChaosConfig chaos_config = {}) {
  auto stack = std::make_unique<Stack>();
  stack->topology = net::make_topology(topo_config);
  stack->generator = std::make_unique<sim::TelemetryGenerator>(
      stack->topology.get(), &stack->faults);
  stack->model = std::make_unique<sim::RttModel>(stack->topology.get(),
                                                 &stack->faults);
  if (chaos_config.enabled()) {
    stack->chaos = std::make_unique<sim::ChaosInjector>(chaos_config,
                                                        &stack->registry);
  }
  stack->engine = std::make_unique<sim::TracerouteEngine>(
      stack->topology.get(), stack->model.get(), sim::TracerouteConfig{},
      stack->chaos.get());
  ingest_config.registry = &stack->registry;
  stack->ingest_engine = std::make_unique<ingest::IngestEngine>(
      stack->topology.get(), analysis::BadnessThresholds{}, ingest_config);
  Stack* raw = stack.get();
  sim::ChaosRecordFeed::Feed feed =
      [raw](util::TimeBucket bucket,
            const std::function<void(const analysis::RttRecord&)>& sink) {
        raw->generator->generate_records_shuffled(bucket, sink);
      };
  if (stack->chaos && chaos_config.any_telemetry_chaos()) {
    // Telemetry chaos: duplicated and late records on the raw feed, before
    // the sharded ingest (whose watermark drops the late ones).
    auto chaotic = std::make_shared<sim::ChaosRecordFeed>(stack->chaos.get(),
                                                          std::move(feed));
    feed = [chaotic](util::TimeBucket bucket,
                     const sim::ChaosRecordFeed::Sink& sink) {
      (*chaotic)(bucket, sink);
    };
  }
  stack->pipeline = std::make_unique<core::BlameItPipeline>(
      stack->topology.get(), stack->engine.get(),
      ingest::StreamingQuartetSource{raw->ingest_engine.get(),
                                     std::move(feed)},
      config, &stack->registry);
  return stack;
}

/// Feeds `days` full days of history into the learners (no localization).
inline void warm_pipeline(Stack& stack, int days) {
  for (int day = 0; day < days; ++day) {
    for (int b = 0; b < util::kBucketsPerDay; ++b) {
      stack.pipeline->warmup_bucket(
          util::TimeBucket{day * util::kBucketsPerDay + b});
    }
  }
}

}  // namespace blameit::examples
