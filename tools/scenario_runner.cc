// scenario_runner: execute declarative scenario packs and report a
// deterministic trace digest + per-incident pass/fail.
//
//   scenario_runner --pack packs/flash_crowd.json
//   scenario_runner --pack a.json --pack b.json --golden packs/GOLDEN_DIGESTS
//   scenario_runner --pack a.json --threads 4 --shards 8 --manifest-dir out/
//
// Exit codes:
//   0  every pack ran; digests matched the golden file (when given)
//   2  usage, schema, or runtime error (the message names file:line:column
//      and the offending field for pack errors)
//   3  a digest diverged from the golden file / --expect-digest
//   4  a pack's incident accuracy fell below its --min-accuracy floor
//
// Failing INCIDENTS do not affect the exit code by default: frontier packs
// exist precisely to pin down current misses, and the golden digest asserts
// the whole verdict stream anyway — strictly stronger than pass counts.
// --min-accuracy turns a pack's accuracy into a ratcheted floor: once the
// pipeline learns to localize a pack's incidents, CI pins that win so a
// regression cannot slip back in behind an intentional digest refresh.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/pack.h"
#include "scenario/runner.h"

namespace {

using namespace blameit;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --pack FILE [--pack FILE ...]\n"
      "          [--threads N]        analytics threads override\n"
      "          [--shards N]         ingest shards override (records mode)\n"
      "          [--manifest-dir DIR] write DIR/<pack>.manifest.jsonl\n"
      "          [--golden FILE]      compare digests (lines: <name> <hex>)\n"
      "          [--update-golden FILE] write digests instead of comparing\n"
      "          [--expect-digest HEX]  assert a single pack's digest\n"
      "          [--min-accuracy PACK=FLOOR] fail (exit 4) if PACK's\n"
      "                               incident accuracy drops below FLOOR\n",
      argv0);
  return 2;
}

std::map<std::string, std::string> load_golden(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error{path + ": cannot open golden digest file"};
  }
  std::map<std::string, std::string> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row{line};
    std::string name;
    std::string digest;
    if (!(row >> name >> digest)) {
      throw std::runtime_error{path + ": malformed line \"" + line +
                               "\" (want: <pack-name> <hex-digest>)"};
    }
    out[name] = digest;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> pack_paths;
  scenario::RunnerOptions options;
  std::string manifest_dir;
  std::string golden_path;
  std::string update_golden_path;
  std::string expect_digest;
  std::map<std::string, double> accuracy_floors;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--pack") {
      pack_paths.emplace_back(next());
    } else if (arg == "--threads") {
      options.analytics_threads = std::atoi(next());
    } else if (arg == "--shards") {
      options.ingest_shards = std::atoi(next());
    } else if (arg == "--manifest-dir") {
      manifest_dir = next();
    } else if (arg == "--golden") {
      golden_path = next();
    } else if (arg == "--update-golden") {
      update_golden_path = next();
    } else if (arg == "--expect-digest") {
      expect_digest = next();
    } else if (arg == "--min-accuracy") {
      const std::string spec = next();
      const auto eq = spec.find('=');
      char* end = nullptr;
      const double floor =
          eq == std::string::npos
              ? -1.0
              : std::strtod(spec.c_str() + eq + 1, &end);
      if (eq == std::string::npos || eq == 0 ||
          end != spec.c_str() + spec.size() || floor < 0.0 || floor > 1.0) {
        std::fprintf(stderr,
                     "%s: --min-accuracy wants PACK=FLOOR with FLOOR in "
                     "[0, 1], got \"%s\"\n",
                     argv[0], spec.c_str());
        return 2;
      }
      accuracy_floors[spec.substr(0, eq)] = floor;
    } else {
      std::fprintf(stderr, "%s: unknown argument %s\n", argv[0], arg.c_str());
      return usage(argv[0]);
    }
  }
  if (pack_paths.empty()) return usage(argv[0]);
  if (!expect_digest.empty() && pack_paths.size() != 1) {
    std::fprintf(stderr, "--expect-digest requires exactly one --pack\n");
    return 2;
  }

  std::map<std::string, std::string> golden;
  try {
    if (!golden_path.empty()) golden = load_golden(golden_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  bool digest_mismatch = false;
  bool accuracy_failure = false;
  std::map<std::string, double> unused_floors = accuracy_floors;
  std::string golden_out;
  for (const auto& path : pack_paths) {
    try {
      const auto pack = scenario::load_pack(path);
      const auto result = scenario::run_pack(pack, options);

      std::printf("pack %-20s digest %s  incidents %d/%zu passed  "
                  "accuracy %.3f\n",
                  pack.name.c_str(), result.digest.c_str(), result.passed,
                  result.scores.size(), result.accuracy);
      if (result.restarted) {
        std::printf("  restart: %s (restarted %s, uninterrupted %s)\n",
                    result.restart_ok ? "recovered bit-identical"
                                      : "DIVERGED after restore",
                    result.digest.c_str(),
                    result.uninterrupted_digest.c_str());
        if (!result.restart_ok) {
          std::fprintf(stderr,
                       "DIGEST DRIFT: pack %s restarted run produced %s but "
                       "the uninterrupted run produced %s — snapshot/restore "
                       "lost or invented state\n",
                       pack.name.c_str(), result.digest.c_str(),
                       result.uninterrupted_digest.c_str());
          digest_mismatch = true;
        }
      }
      if (const auto it = accuracy_floors.find(pack.name);
          it != accuracy_floors.end()) {
        unused_floors.erase(pack.name);
        if (result.accuracy < it->second) {
          std::fprintf(stderr,
                       "ACCURACY REGRESSION: pack %s scored %.3f, floor is "
                       "%.3f (%d/%zu incidents passed)\n",
                       pack.name.c_str(), result.accuracy, it->second,
                       result.passed, result.scores.size());
          accuracy_failure = true;
        }
      }
      for (const auto& score : result.scores) {
        std::printf("  %-28s expected %-7s majority %-7s votes %5d/%-5d "
                    "%s%s\n",
                    score.name.c_str(),
                    std::string{core::to_string(score.expected)}.c_str(),
                    std::string{core::to_string(score.majority)}.c_str(),
                    score.votes_for_majority, score.votes_total,
                    score.passed ? "PASS" : "FAIL",
                    score.overlapped_with.empty() ? "" : "  (overlap)");
      }
      if (result.ingest_records_in > 0) {
        std::printf("  ingest: %llu records, %llu late-dropped, "
                    "%llu backpressure parks, ring high water %llu\n",
                    static_cast<unsigned long long>(result.ingest_records_in),
                    static_cast<unsigned long long>(
                        result.ingest_late_dropped),
                    static_cast<unsigned long long>(
                        result.ingest_backpressure_waits),
                    static_cast<unsigned long long>(
                        result.ingest_ring_high_water));
      }

      if (!manifest_dir.empty()) {
        // mkdir -p semantics, with real diagnostics: a failed create (e.g.
        // permission, or a parent that is a file) and a pre-existing
        // non-directory both name the path and the reason instead of
        // surfacing later as an unexplained "cannot write" on the manifest.
        std::error_code ec;
        std::filesystem::create_directories(manifest_dir, ec);
        if (ec) {
          std::fprintf(stderr,
                       "error: --manifest-dir %s: cannot create directory: "
                       "%s\n",
                       manifest_dir.c_str(), ec.message().c_str());
          return 2;
        }
        if (!std::filesystem::is_directory(manifest_dir)) {
          std::fprintf(stderr,
                       "error: --manifest-dir %s exists and is not a "
                       "directory\n",
                       manifest_dir.c_str());
          return 2;
        }
        const std::string manifest_path =
            manifest_dir + "/" + pack.name + ".manifest.jsonl";
        std::ofstream out{manifest_path};
        if (!out) {
          std::fprintf(stderr, "error: cannot write %s\n",
                       manifest_path.c_str());
          return 2;
        }
        out << scenario::manifest_jsonl(pack, result, path, options);
        std::printf("  manifest: %s\n", manifest_path.c_str());
      }

      golden_out += pack.name + " " + result.digest + "\n";
      if (const auto it = golden.find(pack.name); it != golden.end()) {
        if (it->second != result.digest) {
          std::fprintf(stderr,
                       "DIGEST DRIFT: pack %s produced %s, golden file says "
                       "%s\n  (if the output change is intended, regenerate "
                       "with: scenario_runner --pack %s --update-golden %s)\n",
                       pack.name.c_str(), result.digest.c_str(),
                       it->second.c_str(), path.c_str(),
                       golden_path.c_str());
          digest_mismatch = true;
        }
      } else if (!golden_path.empty()) {
        std::fprintf(stderr,
                     "DIGEST DRIFT: pack %s is missing from %s (add: "
                     "\"%s %s\")\n",
                     pack.name.c_str(), golden_path.c_str(),
                     pack.name.c_str(), result.digest.c_str());
        digest_mismatch = true;
      }
      if (!expect_digest.empty() && result.digest != expect_digest) {
        std::fprintf(stderr, "DIGEST DRIFT: pack %s produced %s, expected "
                             "%s\n",
                     pack.name.c_str(), result.digest.c_str(),
                     expect_digest.c_str());
        digest_mismatch = true;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  if (!update_golden_path.empty()) {
    std::ofstream out{update_golden_path};
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   update_golden_path.c_str());
      return 2;
    }
    out << "# <pack-name> <trace-digest> — regenerate with scenario_runner "
           "--update-golden\n"
        << golden_out;
    std::printf("wrote %s\n", update_golden_path.c_str());
  }

  // A floor naming a pack that never ran is a harness bug (typo'd name, or a
  // pack dropped from the invocation) — fail loudly rather than green-lighting
  // an unenforced gate.
  for (const auto& [name, floor] : unused_floors) {
    std::fprintf(stderr,
                 "error: --min-accuracy %s=%.3f names a pack that did not "
                 "run\n",
                 name.c_str(), floor);
    return 2;
  }

  if (digest_mismatch) return 3;
  return accuracy_failure ? 4 : 0;
}
