// Text rendering of pipeline output for operators, examples, and benches.
#pragma once

#include <iosfwd>
#include <string>

#include "core/pipeline.h"
#include "ingest/stats.h"
#include "ops/alert.h"

namespace blameit::ops {

/// One-paragraph summary of a pipeline step: blame counts, top issues,
/// probes spent.
[[nodiscard]] std::string render_step(const core::StepReport& report,
                                      const net::Topology& topology);

/// One-line summary of the streaming ingestion counters: throughput so far,
/// drop accounting (late / unknown / under-sampled), and queue pressure.
[[nodiscard]] std::string render_ingest(const ingest::IngestStats& stats);

/// Renders a ticket as the one-line form an incident queue would show.
[[nodiscard]] std::string render_ticket(const Ticket& ticket,
                                        const net::Topology& topology);

void print_step(std::ostream& os, const core::StepReport& report,
                const net::Topology& topology);

}  // namespace blameit::ops
