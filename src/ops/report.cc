#include "ops/report.h"

#include <ostream>
#include <sstream>

#include "util/table.h"

namespace blameit::ops {

std::string render_step(const core::StepReport& report,
                        const net::Topology& topology) {
  std::ostringstream oss;
  oss << "[" << util::to_string(report.now) << "] blames:";
  for (const auto blame : core::kAllBlames) {
    const int n = report.count(blame);
    if (n > 0) oss << ' ' << core::to_string(blame) << '=' << n;
  }
  if (report.blames.empty()) oss << " none";
  oss << " | probes: on-demand=" << report.on_demand_probes
      << " background=" << report.background_probes;
  if (report.active_retries > 0) {
    oss << " (retries=" << report.active_retries << ")";
  }
  if (report.degraded_passive_only) {
    oss << " | DEGRADED: engine outage, passive-only";
  }
  oss << " | stages(ms): learn=" << util::fmt(report.stages.learn_ms, 2)
      << " localize=" << util::fmt(report.stages.localize_ms, 2)
      << " active=" << util::fmt(report.stages.active_ms, 2)
      << " background=" << util::fmt(report.stages.background_ms, 2)
      << " total=" << util::fmt(report.stages.total_ms, 2);
  if (!report.ranked_issues.empty()) {
    const auto& top = report.ranked_issues.front();
    oss << " | top issue: " << topology.location(top.location).name << " via "
        << topology.interner().describe(top.middle)
        << " (client-time " << util::fmt(top.client_time_product, 1) << ")";
  }
  for (const auto& diag : report.diagnoses) {
    if (diag.culprit) {
      const auto* info = topology.registry().find(*diag.culprit);
      oss << "\n  culprit: " << diag.culprit->to_string();
      if (info) oss << " (" << info->name << ")";
      oss << " +" << util::fmt(diag.culprit_increase_ms, 1) << "ms"
          << " [confidence=" << core::to_string(diag.confidence);
      if (!diag.have_baseline) oss << ", no baseline";
      if (diag.baseline_stale) oss << ", stale baseline";
      if (diag.truncated) oss << ", partial path";
      oss << "]";
    } else if (diag.coarse_middle) {
      oss << "\n  culprit: middle segment (AS unresolved past truncation)"
          << " [confidence=" << core::to_string(diag.confidence) << "]";
    }
  }
  return oss.str();
}

std::string render_ingest(const ingest::IngestStats& stats) {
  std::ostringstream oss;
  oss << "ingest: in=" << stats.records_in << " out=" << stats.records_out
      << " quartets=" << stats.quartets_finalized;
  oss << " | dropped: late=" << stats.late_dropped
      << " unknown=" << stats.unknown_dropped
      << " min-samples=" << stats.min_samples_dropped
      << " closed=" << stats.closed_dropped;
  oss << " | rings: shards=" << stats.shards.size()
      << " high-water=" << stats.ring_high_water
      << " producer-parks=" << stats.backpressure_waits;
  std::uint64_t finalize_ns = 0;
  std::uint64_t buckets = 0;
  std::uint64_t consumer_parks = 0;
  for (const auto& shard : stats.shards) {
    finalize_ns += shard.finalize_ns_total;
    buckets += shard.buckets_finalized;
    consumer_parks += shard.consumer_parks;
  }
  oss << " consumer-parks=" << consumer_parks;
  if (buckets > 0) {
    oss << " | finalize: " << util::fmt(
               static_cast<double>(finalize_ns) /
                   static_cast<double>(buckets) / 1e3,
               1)
        << "us/bucket";
  }
  return oss.str();
}

std::string render_ticket(const Ticket& ticket,
                          const net::Topology& topology) {
  std::ostringstream oss;
  oss << ticket.id << " [" << to_string(ticket.team) << "] "
      << core::to_string(ticket.category) << " @ "
      << topology.location(ticket.location).name
      << " impact=" << util::fmt(ticket.impact, 1) << " : " << ticket.summary;
  return oss.str();
}

void print_step(std::ostream& os, const core::StepReport& report,
                const net::Topology& topology) {
  os << render_step(report, topology) << '\n';
}

}  // namespace blameit::ops
