// Operator-facing alerting (§6.1): pipeline step reports become prioritized,
// deduplicated tickets routed to the team that can act — server/SRE for
// cloud blames, peering for middle, support/comms for client — with the
// highest business-impact issues first.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "core/pipeline.h"

namespace blameit::ops {

enum class Team : std::uint8_t {
  CloudInfra,   ///< server & cloud-network investigations
  Peering,      ///< transit/peering escalations
  ClientComms,  ///< client-ISP notifications (not fixable by the cloud)
};

[[nodiscard]] constexpr std::string_view to_string(Team t) noexcept {
  switch (t) {
    case Team::CloudInfra: return "cloud-infra";
    case Team::Peering: return "peering";
    case Team::ClientComms: return "client-comms";
  }
  return "?";
}

struct Ticket {
  std::string id;
  Team team{};
  core::Blame category{};
  std::optional<net::AsId> faulty_as;
  net::CloudLocationId location;
  double impact = 0.0;  ///< client-time product (or affected users)
  util::MinuteTime opened;
  std::string summary;
};

struct AlertConfig {
  /// Max tickets opened per pipeline step (the paper: "the top few are
  /// automatically ticketed").
  int max_tickets_per_step = 5;
  /// Minimum affected users before an issue is ticket-worthy.
  double min_impact_users = 5.0;
};

/// Builds tickets from pipeline step reports, deduplicating re-fires of the
/// same ongoing issue.
class AlertSink {
 public:
  explicit AlertSink(AlertConfig config = {});

  /// Digests one step report; returns tickets newly opened by this step.
  std::vector<Ticket> digest(const core::StepReport& report);

  [[nodiscard]] const std::vector<Ticket>& all_tickets() const noexcept {
    return tickets_;
  }

 private:
  [[nodiscard]] static Team route(core::Blame category) noexcept;

  AlertConfig config_;
  std::vector<Ticket> tickets_;
  /// Issue keys already ticketed (dedup across steps).
  std::unordered_set<std::uint64_t> open_issues_;
  int next_id_ = 1;
};

}  // namespace blameit::ops
