#include "ops/alert.h"

#include <algorithm>

#include "core/prioritizer.h"

namespace blameit::ops {

AlertSink::AlertSink(AlertConfig config) : config_(config) {}

Team AlertSink::route(core::Blame category) noexcept {
  switch (category) {
    case core::Blame::Cloud: return Team::CloudInfra;
    case core::Blame::Middle: return Team::Peering;
    default: return Team::ClientComms;
  }
}

std::vector<Ticket> AlertSink::digest(const core::StepReport& report) {
  // Candidate issues: ranked middle issues (already impact-ordered) plus
  // aggregated cloud/client blames.
  struct Candidate {
    std::uint64_t key;
    core::Blame category;
    std::optional<net::AsId> faulty_as;
    net::CloudLocationId location;
    double impact;
    std::string summary;
  };
  std::vector<Candidate> candidates;

  for (const auto& issue : report.ranked_issues) {
    std::optional<net::AsId> culprit;
    bool coarse = false;
    for (const auto& diag : report.diagnoses) {
      if (diag.location == issue.location && diag.middle == issue.middle) {
        culprit = diag.culprit;
        coarse = diag.coarse_middle;
      }
    }
    std::string verdict = culprit ? " — culprit " + culprit->to_string()
                          : coarse
                              ? " — culprit unresolved (probe truncated)"
                              : " — culprit pending probe";
    candidates.push_back(Candidate{
        .key = core::middle_issue_key(issue.location, issue.middle),
        .category = core::Blame::Middle,
        .faulty_as = culprit,
        .location = issue.location,
        .impact = issue.client_time_product,
        .summary =
            "middle-segment degradation on " + issue.middle.to_string() +
            " via " + issue.location.to_string() + std::move(verdict)});
  }

  // Cloud / client blames aggregate per (category, location / client AS).
  struct Agg {
    double users = 0.0;
    net::CloudLocationId location;
    std::optional<net::AsId> faulty_as;
    core::Blame category{};
  };
  std::unordered_map<std::uint64_t, Agg> aggs;
  for (const auto& blame : report.blames) {
    if (blame.blame != core::Blame::Cloud &&
        blame.blame != core::Blame::Client) {
      continue;
    }
    const std::uint64_t key =
        blame.blame == core::Blame::Cloud
            ? (std::uint64_t{1} << 62) | blame.quartet.key.location.value
            : (std::uint64_t{2} << 62) | blame.quartet.client_as.value;
    auto& agg = aggs[key];
    agg.users += blame.quartet.sample_count / 2.5;
    agg.location = blame.quartet.key.location;
    agg.faulty_as = blame.faulty_as;
    agg.category = blame.blame;
  }
  for (const auto& [key, agg] : aggs) {
    candidates.push_back(Candidate{
        .key = key,
        .category = agg.category,
        .faulty_as = agg.faulty_as,
        .location = agg.location,
        .impact = agg.users,
        .summary = std::string{to_string(agg.category)} +
                   " degradation affecting ~" +
                   std::to_string(static_cast<int>(agg.users)) + " users" +
                   (agg.faulty_as ? " — " + agg.faulty_as->to_string() : "")});
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.impact != b.impact) return a.impact > b.impact;
              return a.key < b.key;
            });

  std::vector<Ticket> opened;
  for (const auto& candidate : candidates) {
    if (static_cast<int>(opened.size()) >= config_.max_tickets_per_step) {
      break;
    }
    if (candidate.impact < config_.min_impact_users) continue;
    if (!open_issues_.insert(candidate.key).second) continue;  // dedup
    Ticket ticket{.id = "BLM-" + std::to_string(next_id_++),
                  .team = route(candidate.category),
                  .category = candidate.category,
                  .faulty_as = candidate.faulty_as,
                  .location = candidate.location,
                  .impact = candidate.impact,
                  .opened = report.now,
                  .summary = candidate.summary};
    tickets_.push_back(ticket);
    opened.push_back(std::move(ticket));
  }
  return opened;
}

}  // namespace blameit::ops
