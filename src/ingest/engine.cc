#include "ingest/engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <stdexcept>

namespace blameit::ingest {

namespace {

/// Very distant future: close() uses it to flush every open bucket.
constexpr util::MinuteTime kEndOfTime{std::int64_t{1} << 40};

[[nodiscard]] bool key_less(const analysis::QuartetKey& a,
                            const analysis::QuartetKey& b) noexcept {
  if (a.block != b.block) return a.block < b.block;
  if (a.location.value != b.location.value) {
    return a.location.value < b.location.value;
  }
  if (a.device != b.device) return a.device < b.device;
  return a.bucket < b.bucket;
}

}  // namespace

/// Countdown fence: each shard decrements on consuming it; the producer
/// waits for zero.
struct IngestEngine::SyncPoint {
  std::mutex mutex;
  std::condition_variable cv;
  int remaining = 0;

  void arrive() {
    std::lock_guard lock{mutex};
    if (--remaining == 0) cv.notify_all();
  }
  void wait() {
    std::unique_lock lock{mutex};
    cv.wait(lock, [&] { return remaining == 0; });
  }
};

IngestEngine::IngestEngine(const net::Topology* topology,
                           analysis::BadnessThresholds thresholds,
                           IngestConfig config)
    : config_(config),
      builder_(topology, thresholds, config.shards, config.builder) {
  if (config_.shards < 1 || config_.batch_records < 1 ||
      config_.queue_batches < 1 || config_.lateness_minutes < 0) {
    throw std::invalid_argument{"IngestConfig: invalid values"};
  }
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(config_.queue_batches));
    shards_.back()->pending.reserve(config_.batch_records);
  }
  records_in_c_ = obs::counter(config_.registry, "ingest.records_in");
  late_dropped_c_ = obs::counter(config_.registry, "ingest.late_dropped");
  closed_dropped_c_ = obs::counter(config_.registry, "ingest.closed_dropped");
  backpressure_c_ =
      obs::counter(config_.registry, "ingest.backpressure_waits");
  queue_high_water_g_ =
      obs::gauge(config_.registry, "ingest.queue_high_water");
  watermark_lag_g_ =
      obs::gauge(config_.registry, "ingest.watermark_lag_minutes");
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->worker = std::thread{[this, i] { worker_loop(i); }};
  }
}

IngestEngine::~IngestEngine() { close(); }

void IngestEngine::submit(const analysis::RttRecord& record) {
  if (closed_) {
    closed_dropped_.fetch_add(1, std::memory_order_relaxed);
    obs::add(closed_dropped_c_);
    return;
  }
  const std::size_t shard =
      builder_.shard_of(net::Slash24::of(record.client_ip));
  auto& pending = shards_[shard]->pending;
  pending.push_back(record);
  records_in_.fetch_add(1, std::memory_order_relaxed);
  obs::add(records_in_c_);
  if (pending.size() >= config_.batch_records) push_pending(shard);
}

void IngestEngine::push_pending(std::size_t shard_index) {
  auto& shard = *shards_[shard_index];
  if (shard.pending.empty()) return;
  const auto batch_records = shard.pending.size();
  Message msg{.kind = Message::Kind::Batch,
              .records = std::move(shard.pending)};
  shard.pending = {};
  shard.pending.reserve(config_.batch_records);
  const auto status = shard.queue.push(std::move(msg));
  if (status == PushStatus::Closed) {
    // The queue dropped the batch (engine closing underneath the producer):
    // account for every record so nothing is silently lost.
    closed_dropped_.fetch_add(batch_records, std::memory_order_relaxed);
    obs::add(closed_dropped_c_, batch_records);
    return;
  }
  if (status == PushStatus::OkAfterBlocking) obs::add(backpressure_c_);
  obs::set_max(queue_high_water_g_,
               static_cast<double>(shard.queue.high_water()));
  batches_submitted_.fetch_add(1, std::memory_order_relaxed);
}

void IngestEngine::advance_watermark(util::MinuteTime watermark) {
  if (watermark.minutes <= producer_watermark_.load(std::memory_order_relaxed)) {
    return;
  }
  producer_watermark_.store(watermark.minutes, std::memory_order_relaxed);
  // Partial batches must go first so no record is ordered after the
  // watermark that covers it.
  for (std::size_t i = 0; i < shards_.size(); ++i) push_pending(i);
  for (auto& shard : shards_) {
    shard->queue.push(
        Message{.kind = Message::Kind::Watermark, .watermark = watermark});
  }
}

void IngestEngine::fence() {
  auto sync = std::make_shared<SyncPoint>();
  sync->remaining = static_cast<int>(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    push_pending(i);
    // A watermark message that does not move the watermark, but carries the
    // fence: processed strictly after everything queued before it.
    shards_[i]->queue.push(Message{
        .kind = Message::Kind::Watermark,
        .watermark =
            util::MinuteTime{producer_watermark_.load(std::memory_order_relaxed)},
        .sync = sync});
  }
  sync->wait();
}

void IngestEngine::flush() { fence(); }

void IngestEngine::close() {
  if (closed_) return;
  closed_ = true;
  advance_watermark(kEndOfTime);
  for (auto& shard : shards_) {
    shard->queue.push(Message{.kind = Message::Kind::Stop});
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // With the workers gone nobody drains the queues: close them so any
  // straggling push drops-and-counts instead of blocking forever.
  for (auto& shard : shards_) shard->queue.close();
}

void IngestEngine::worker_loop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  for (;;) {
    std::optional<Message> msg = shard.queue.pop();
    if (!msg) return;  // closed and drained
    switch (msg->kind) {
      case Message::Kind::Batch: {
        std::uint64_t accepted = 0;
        std::uint64_t late = 0;
        for (const auto& record : msg->records) {
          if (util::TimeBucket::of(record.time).index <
              shard.finalized_before) {
            ++late;  // its bucket was already finalized — count, drop
            continue;
          }
          builder_.add(shard_index, record);
          ++accepted;
        }
        shard.records.fetch_add(accepted, std::memory_order_relaxed);
        shard.late_dropped.fetch_add(late, std::memory_order_relaxed);
        if (late > 0) obs::add(late_dropped_c_, late);
        break;
      }
      case Message::Kind::Watermark:
        process_watermark(shard, shard_index, msg->watermark);
        if (msg->sync) msg->sync->arrive();
        break;
      case Message::Kind::Stop:
        return;
    }
  }
}

void IngestEngine::process_watermark(Shard& shard, std::size_t shard_index,
                                     util::MinuteTime watermark) {
  if (watermark <= shard.watermark) return;
  shard.watermark = watermark;
  // How far this shard trails the producer's announced watermark (queue
  // delay, in minutes). The close()-time kEndOfTime flush is not a real
  // watermark, so it is excluded.
  if (watermark_lag_g_ != nullptr && watermark < kEndOfTime) {
    const std::int64_t produced =
        producer_watermark_.load(std::memory_order_relaxed);
    if (produced < kEndOfTime.minutes) {
      watermark_lag_g_->set_max(
          static_cast<double>(produced - watermark.minutes));
    }
  }
  // Buckets whose window end + lateness allowance the watermark passed.
  const util::MinuteTime closed_through =
      watermark.plus_minutes(-config_.lateness_minutes);
  const auto ready = builder_.ready_buckets(shard_index, closed_through);
  for (const auto bucket : ready) {
    const auto t0 = std::chrono::steady_clock::now();
    auto quartets = builder_.take_bucket(shard_index, bucket);
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    shard.finalize_ns_total.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t prev = shard.finalize_ns_max.load(std::memory_order_relaxed);
    while (prev < ns && !shard.finalize_ns_max.compare_exchange_weak(
                            prev, ns, std::memory_order_relaxed)) {
    }
    shard.buckets_finalized.fetch_add(1, std::memory_order_relaxed);
    shard.quartets.fetch_add(quartets.size(), std::memory_order_relaxed);
    std::uint64_t out_records = 0;
    for (const auto& q : quartets) {
      out_records += static_cast<std::uint64_t>(q.sample_count);
    }
    shard.records_out.fetch_add(out_records, std::memory_order_relaxed);
    if (!quartets.empty()) {
      std::lock_guard lock{shard.out_mutex};
      auto& slot = shard.out[bucket.index];
      slot.insert(slot.end(), std::make_move_iterator(quartets.begin()),
                  std::make_move_iterator(quartets.end()));
    }
  }
  // Every bucket ending at or before closed_through is now immutable, even
  // ones this shard never saw a record for: anything older is late. Bucket
  // b is closed iff (b.index + 1) * kBucketMinutes <= closed_through, so
  // the first still-open bucket is floor(closed_through / kBucketMinutes)
  // — the same predicate ready_buckets() used above.
  if (closed_through.minutes > 0) {
    shard.finalized_before =
        std::max(shard.finalized_before,
                 closed_through.minutes / util::kBucketMinutes);
  }
}

std::vector<analysis::Quartet> IngestEngine::take_bucket(
    util::TimeBucket bucket) {
  std::vector<analysis::Quartet> out;
  for (auto& shard : shards_) {
    std::lock_guard lock{shard->out_mutex};
    auto it = shard->out.find(bucket.index);
    if (it == shard->out.end()) continue;
    out.insert(out.end(), std::make_move_iterator(it->second.begin()),
               std::make_move_iterator(it->second.end()));
    shard->out.erase(it);
  }
  std::sort(out.begin(), out.end(),
            [](const analysis::Quartet& a, const analysis::Quartet& b) {
              return key_less(a.key, b.key);
            });
  return out;
}

std::vector<util::TimeBucket> IngestEngine::finalized_buckets() const {
  std::vector<util::TimeBucket> out;
  for (const auto& shard : shards_) {
    std::lock_guard lock{shard->out_mutex};
    for (const auto& [index, quartets] : shard->out) {
      out.push_back(util::TimeBucket{index});
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

IngestStats IngestEngine::stats() const {
  IngestStats s;
  s.records_in = records_in_.load(std::memory_order_relaxed);
  s.batches_submitted = batches_submitted_.load(std::memory_order_relaxed);
  s.unknown_dropped = builder_.dropped_unknown_blocks();
  s.min_samples_dropped = builder_.dropped_min_samples();
  s.closed_dropped = closed_dropped_.load(std::memory_order_relaxed);
  s.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats slice;
    slice.records = shard->records.load(std::memory_order_relaxed);
    slice.late_dropped = shard->late_dropped.load(std::memory_order_relaxed);
    slice.buckets_finalized =
        shard->buckets_finalized.load(std::memory_order_relaxed);
    slice.quartets = shard->quartets.load(std::memory_order_relaxed);
    slice.queue_high_water = shard->queue.high_water();
    slice.backpressure_waits = shard->queue.blocked_pushes();
    slice.finalize_ns_total =
        shard->finalize_ns_total.load(std::memory_order_relaxed);
    slice.finalize_ns_max =
        shard->finalize_ns_max.load(std::memory_order_relaxed);
    s.late_dropped += slice.late_dropped;
    s.quartets_finalized += slice.quartets;
    s.records_out += shard->records_out.load(std::memory_order_relaxed);
    s.backpressure_waits += slice.backpressure_waits;
    s.queue_high_water = std::max(s.queue_high_water, slice.queue_high_water);
    s.shards.push_back(slice);
  }
  return s;
}

}  // namespace blameit::ingest
