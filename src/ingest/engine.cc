#include "ingest/engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <stdexcept>

namespace blameit::ingest {

namespace {

/// Very distant future: close() uses it to flush every open bucket.
constexpr util::MinuteTime kEndOfTime{std::int64_t{1} << 40};

/// Records a worker drains from its ring per pop (caps the latency of a
/// pending control message without giving up bulk transfer).
constexpr std::size_t kWorkerChunk = 1024;

/// Control-ring capacity (messages). Control traffic is one watermark per
/// bucket plus fences; the producer parks if a slow shard lets it pile up.
constexpr std::size_t kControlSlots = 128;

[[nodiscard]] bool key_less(const analysis::QuartetKey& a,
                            const analysis::QuartetKey& b) noexcept {
  if (a.block != b.block) return a.block < b.block;
  if (a.location.value != b.location.value) {
    return a.location.value < b.location.value;
  }
  if (a.device != b.device) return a.device < b.device;
  return a.bucket < b.bucket;
}

[[nodiscard]] std::uint64_t elapsed_ns(
    std::chrono::steady_clock::time_point t0) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

/// Countdown fence: each shard decrements on consuming it; the producer
/// waits for zero.
struct IngestEngine::SyncPoint {
  std::mutex mutex;
  std::condition_variable cv;
  int remaining = 0;

  void arrive() {
    std::lock_guard lock{mutex};
    if (--remaining == 0) cv.notify_all();
  }
  void wait() {
    std::unique_lock lock{mutex};
    cv.wait(lock, [&] { return remaining == 0; });
  }
};

IngestEngine::IngestEngine(const net::Topology* topology,
                           analysis::BadnessThresholds thresholds,
                           IngestConfig config)
    : config_(config),
      builder_(topology, thresholds, config.shards, config.builder) {
  if (config_.shards < 1 || config_.batch_records < 1 ||
      config_.queue_batches < 1 || config_.lateness_minutes < 0) {
    throw std::invalid_argument{"IngestConfig: invalid values"};
  }
  const std::size_t ring_records =
      config_.batch_records * config_.queue_batches;
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(ring_records, kControlSlots));
    shards_.back()->pending.reserve(config_.batch_records);
  }
  records_in_c_ = obs::counter(config_.registry, "ingest.records_in");
  late_dropped_c_ = obs::counter(config_.registry, "ingest.late_dropped");
  closed_dropped_c_ = obs::counter(config_.registry, "ingest.closed_dropped");
  backpressure_c_ =
      obs::counter(config_.registry, "ingest.backpressure_waits");
  ring_high_water_g_ =
      obs::gauge(config_.registry, "ingest.ring_high_water");
  watermark_lag_g_ =
      obs::gauge(config_.registry, "ingest.watermark_lag_minutes");
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->worker = std::thread{[this, i] { worker_loop(i); }};
  }
}

IngestEngine::~IngestEngine() { close(); }

void IngestEngine::submit(const analysis::RttRecord& record) {
  if (closed_) {
    ++closed_drops_;
    closed_dropped_.store(closed_drops_, std::memory_order_relaxed);
    obs::add(closed_dropped_c_);
    return;
  }
  const std::size_t shard =
      builder_.shard_of(net::Slash24::of(record.client_ip));
  auto& pending = shards_[shard]->pending;
  pending.push_back(record);
  ++produced_;
  if (pending.size() >= config_.batch_records) push_pending(shard);
}

void IngestEngine::push_pending(std::size_t shard_index) {
  auto& shard = *shards_[shard_index];
  if (shard.pending.empty()) return;
  const auto batch_records = shard.pending.size();
  // Publish the producer counter BEFORE the records become visible, so
  // records_in >= sum(shard delivered) holds in every stats snapshot.
  records_in_.store(produced_, std::memory_order_release);
  obs::add(records_in_c_, batch_records);
  const auto status =
      shard.ring.push_all(shard.pending.data(), batch_records);
  shard.pending.clear();  // keeps its capacity for the next batch
  if (status == util::RingPush::Closed) {
    // The ring dropped the batch (engine closing underneath the producer):
    // account for every record so nothing is silently lost.
    closed_drops_ += batch_records;
    closed_dropped_.store(closed_drops_, std::memory_order_relaxed);
    obs::add(closed_dropped_c_, batch_records);
    return;
  }
  if (status == util::RingPush::OkAfterParking) obs::add(backpressure_c_);
  obs::set_max(ring_high_water_g_,
               static_cast<double>(shard.ring.high_water()));
  ++batches_;
  batches_submitted_.store(batches_, std::memory_order_relaxed);
}

void IngestEngine::push_control(std::size_t shard_index, Control msg) {
  auto& shard = *shards_[shard_index];
  // The barrier pins this message after every record published so far: the
  // worker drains the data ring to the barrier before applying it.
  msg.barrier = shard.ring.pushed();
  shard.control.push_all(&msg, 1);
  // The worker parks on the DATA ring; ring a doorbell for the side channel.
  shard.ring.wake();
}

void IngestEngine::advance_watermark(util::MinuteTime watermark) {
  if (closed_) return;
  advance_watermark_internal(watermark);
}

void IngestEngine::advance_watermark_internal(util::MinuteTime watermark) {
  if (watermark.minutes <=
      producer_watermark_.load(std::memory_order_relaxed)) {
    return;
  }
  producer_watermark_.store(watermark.minutes, std::memory_order_relaxed);
  // Partial batches must go first so no record is ordered after the
  // watermark that covers it.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    push_pending(i);
    push_control(i, Control{.kind = Control::Kind::Watermark,
                            .watermark = watermark});
  }
}

void IngestEngine::fence() {
  auto sync = std::make_shared<SyncPoint>();
  sync->remaining = static_cast<int>(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    push_pending(i);
    // A watermark message that does not move the watermark, but carries the
    // fence: applied strictly after everything published before it.
    push_control(
        i, Control{.kind = Control::Kind::Watermark,
                   .watermark = util::MinuteTime{producer_watermark_.load(
                       std::memory_order_relaxed)},
                   .sync = sync});
  }
  sync->wait();
}

void IngestEngine::flush() {
  if (closed_) return;  // workers are gone; there is nothing to fence
  fence();
}

void IngestEngine::close() {
  if (closed_) return;
  closed_ = true;
  advance_watermark_internal(kEndOfTime);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    push_control(i, Control{.kind = Control::Kind::Stop});
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // With the workers gone nobody drains the rings: close them so any
  // straggling push drops-and-counts instead of parking forever.
  for (auto& shard : shards_) {
    shard->ring.close();
    shard->control.close();
  }
}

void IngestEngine::worker_loop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::vector<analysis::RttRecord> buf(kWorkerChunk);
  // The next control message, held back until its barrier is drained.
  Control next_ctl;
  std::uint64_t consumed = 0;
  bool have_ctl = false;
  for (;;) {
    // Apply every control message whose data barrier has been reached.
    for (;;) {
      if (!have_ctl) {
        if (shard.control.try_pop(&next_ctl, 1) != 1) break;
        have_ctl = true;
      }
      if (next_ctl.barrier > consumed) break;
      have_ctl = false;
      if (apply_control(shard, shard_index, next_ctl)) return;
    }
    const std::size_t n = shard.ring.pop_wait(buf.data(), buf.size());
    if (n == 0) {
      // Woken by wake() (a control message is waiting — the loop above
      // picks it up) or by close(). Defensive exit for a close() that
      // never delivered Stop (control ring closed underneath us).
      if (shard.ring.closed() && !have_ctl && shard.control.closed() &&
          shard.control.popped() == shard.control.pushed() &&
          shard.ring.popped() == shard.ring.pushed()) {
        return;
      }
      continue;
    }
    // Process the chunk, splitting at control barriers: a record published
    // after a watermark is never applied before it (late accounting and
    // finalization order match the single-queue semantics exactly).
    std::size_t pos = 0;
    while (pos < n) {
      if (!have_ctl && shard.control.try_pop(&next_ctl, 1) == 1) {
        have_ctl = true;
      }
      if (have_ctl && next_ctl.barrier <= consumed) {
        have_ctl = false;
        // No records are ever published after Stop.
        if (apply_control(shard, shard_index, next_ctl)) return;
        continue;
      }
      std::size_t limit = n;
      if (have_ctl) {
        limit = static_cast<std::size_t>(std::min<std::uint64_t>(
            n, pos + (next_ctl.barrier - consumed)));
      }
      process_records(shard, shard_index, buf.data() + pos, limit - pos);
      consumed += limit - pos;
      pos = limit;
    }
  }
}

bool IngestEngine::apply_control(Shard& shard, std::size_t shard_index,
                                 const Control& msg) {
  if (msg.kind == Control::Kind::Stop) {
    if (msg.sync) msg.sync->arrive();
    return true;
  }
  process_watermark(shard, shard_index, msg.watermark);
  if (msg.sync) msg.sync->arrive();
  return false;
}

void IngestEngine::process_records(Shard& shard, std::size_t shard_index,
                                   const analysis::RttRecord* records,
                                   std::size_t n) {
  if (n == 0) return;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t accepted = 0;
  std::uint64_t late = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& record = records[i];
    if (util::TimeBucket::of(record.time).index < shard.finalized_before) {
      ++late;  // its bucket was already finalized — count, drop
      continue;
    }
    builder_.add(shard_index, record);
    ++accepted;
  }
  const std::uint64_t busy = elapsed_ns(t0);
  const auto& drops = builder_.drops(shard_index);
  {
    std::lock_guard lock{shard.stats_mutex};
    shard.slice.records += accepted;
    shard.slice.late_dropped += late;
    shard.slice.delivered += n;
    shard.slice.unknown_dropped = drops.unknown_blocks;
    shard.slice.min_samples_dropped = drops.min_samples;
    shard.slice.busy_ns += busy;
  }
  if (late > 0) obs::add(late_dropped_c_, late);
}

void IngestEngine::process_watermark(Shard& shard, std::size_t shard_index,
                                     util::MinuteTime watermark) {
  if (watermark <= shard.watermark) return;
  shard.watermark = watermark;
  // How far this shard trails the producer's announced watermark (ring
  // delay, in minutes). The close()-time kEndOfTime flush is not a real
  // watermark, so it is excluded.
  if (watermark_lag_g_ != nullptr && watermark < kEndOfTime) {
    const std::int64_t produced =
        producer_watermark_.load(std::memory_order_relaxed);
    if (produced < kEndOfTime.minutes) {
      watermark_lag_g_->set_max(
          static_cast<double>(produced - watermark.minutes));
    }
  }
  // Buckets whose window end + lateness allowance the watermark passed.
  const util::MinuteTime closed_through =
      watermark.plus_minutes(-config_.lateness_minutes);
  const auto ready = builder_.ready_buckets(shard_index, closed_through);
  for (const auto bucket : ready) {
    const auto t0 = std::chrono::steady_clock::now();
    auto quartets = builder_.take_bucket(shard_index, bucket);
    const std::uint64_t ns = elapsed_ns(t0);
    std::uint64_t out_records = 0;
    for (const auto& q : quartets) {
      out_records += static_cast<std::uint64_t>(q.sample_count);
    }
    const auto& drops = builder_.drops(shard_index);
    {
      std::lock_guard lock{shard.stats_mutex};
      shard.slice.buckets_finalized += 1;
      shard.slice.quartets += quartets.size();
      shard.slice.records_out += out_records;
      shard.slice.finalize_ns_total += ns;
      shard.slice.finalize_ns_max = std::max(shard.slice.finalize_ns_max, ns);
      shard.slice.busy_ns += ns;
      shard.slice.unknown_dropped = drops.unknown_blocks;
      shard.slice.min_samples_dropped = drops.min_samples;
    }
    if (!quartets.empty()) {
      std::lock_guard lock{shard.out_mutex};
      auto& slot = shard.out[bucket.index];
      slot.insert(slot.end(), std::make_move_iterator(quartets.begin()),
                  std::make_move_iterator(quartets.end()));
    }
  }
  // Every bucket ending at or before closed_through is now immutable, even
  // ones this shard never saw a record for: anything older is late. Bucket
  // b is closed iff (b.index + 1) * kBucketMinutes <= closed_through, so
  // the first still-open bucket is floor(closed_through / kBucketMinutes)
  // — the same predicate ready_buckets() used above.
  if (closed_through.minutes > 0) {
    shard.finalized_before =
        std::max(shard.finalized_before,
                 closed_through.minutes / util::kBucketMinutes);
  }
}

std::vector<analysis::Quartet> IngestEngine::take_bucket(
    util::TimeBucket bucket) {
  std::vector<analysis::Quartet> out;
  for (auto& shard : shards_) {
    std::lock_guard lock{shard->out_mutex};
    auto it = shard->out.find(bucket.index);
    if (it == shard->out.end()) continue;
    out.insert(out.end(), std::make_move_iterator(it->second.begin()),
               std::make_move_iterator(it->second.end()));
    shard->out.erase(it);
  }
  std::sort(out.begin(), out.end(),
            [](const analysis::Quartet& a, const analysis::Quartet& b) {
              return key_less(a.key, b.key);
            });
  return out;
}

std::vector<util::TimeBucket> IngestEngine::finalized_buckets() const {
  std::vector<util::TimeBucket> out;
  for (const auto& shard : shards_) {
    std::lock_guard lock{shard->out_mutex};
    for (const auto& [index, quartets] : shard->out) {
      out.push_back(util::TimeBucket{index});
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

IngestStats IngestEngine::stats() const {
  IngestStats s;
  s.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats slice;
    {
      std::lock_guard lock{shard->stats_mutex};
      slice = shard->slice;
    }
    slice.ring_high_water = shard->ring.high_water();
    slice.backpressure_waits = shard->ring.producer_parks();
    slice.consumer_parks = shard->ring.consumer_parks();
    s.late_dropped += slice.late_dropped;
    s.quartets_finalized += slice.quartets;
    s.records_out += slice.records_out;
    s.unknown_dropped += slice.unknown_dropped;
    s.min_samples_dropped += slice.min_samples_dropped;
    s.backpressure_waits += slice.backpressure_waits;
    s.ring_high_water = std::max(s.ring_high_water, slice.ring_high_water);
    s.shards.push_back(slice);
  }
  // Producer counters are read AFTER the shard slices: every record counted
  // in a slice's `delivered` was published to records_in_ first, so the
  // snapshot can never show delivered > records_in.
  s.records_in = records_in_.load(std::memory_order_acquire);
  s.batches_submitted = batches_submitted_.load(std::memory_order_relaxed);
  s.closed_dropped = closed_dropped_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace blameit::ingest
