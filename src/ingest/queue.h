// Bounded FIFO queue connecting the ingest producer to one shard worker.
//
// Deliberately simple: one mutex and two condition variables. The queue
// carries record *batches* (hundreds of records each), so lock traffic is
// amortized far below per-record cost and a lock-free ring would buy
// nothing measurable here. What matters for the engine is the contract:
//  - push() blocks while the queue is at capacity — that is the
//    backpressure mechanism, and every blocking push is counted;
//  - FIFO order is preserved per producer, which is what makes the
//    N-shard output bit-identical to the single-threaded path (records of
//    one quartet key are summed in submission order on both paths);
//  - close() is the shutdown valve: it wakes every blocked producer and
//    consumer, push() then refuses (and counts) new items, and pop() keeps
//    draining what was already queued before reporting exhaustion. Without
//    it, a producer blocked against a full queue deadlocks the moment the
//    worker stops draining.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace blameit::ingest {

/// What happened to a push(): accepted immediately, accepted after blocking
/// on a full queue (backpressure), or refused because the queue was closed.
enum class PushStatus : std::uint8_t { Ok, OkAfterBlocking, Closed };

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full (backpressure) unless the queue is closed; a close()
  /// while waiting wakes the call, which then drops the item and reports
  /// Closed (the drop is counted).
  PushStatus push(T item) {
    std::unique_lock lock{mutex_};
    bool blocked = false;
    if (queue_.size() >= capacity_ && !closed_) {
      blocked = true;
      ++blocked_pushes_;
      not_full_.wait(lock,
                     [&] { return queue_.size() < capacity_ || closed_; });
    }
    if (closed_) {
      ++dropped_pushes_;
      return PushStatus::Closed;
    }
    queue_.push_back(std::move(item));
    if (queue_.size() > high_water_) high_water_ = queue_.size();
    lock.unlock();
    not_empty_.notify_one();
    return blocked ? PushStatus::OkAfterBlocking : PushStatus::Ok;
  }

  /// Blocks while empty; returns nullopt once the queue is closed AND
  /// drained (items queued before close() are still delivered in order).
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock lock{mutex_};
    not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    std::optional<T> item{std::move(queue_.front())};
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Irreversibly stops admission and wakes every waiter. Idempotent.
  void close() {
    {
      std::lock_guard lock{mutex_};
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock{mutex_};
    return closed_;
  }
  [[nodiscard]] std::size_t high_water() const {
    std::lock_guard lock{mutex_};
    return high_water_;
  }
  [[nodiscard]] std::uint64_t blocked_pushes() const {
    std::lock_guard lock{mutex_};
    return blocked_pushes_;
  }
  /// Pushes refused (and items dropped) because the queue was closed.
  [[nodiscard]] std::uint64_t dropped_pushes() const {
    std::lock_guard lock{mutex_};
    return dropped_pushes_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mutex_};
    return queue_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  bool closed_ = false;
  std::size_t high_water_ = 0;
  std::uint64_t blocked_pushes_ = 0;
  std::uint64_t dropped_pushes_ = 0;
};

}  // namespace blameit::ingest
