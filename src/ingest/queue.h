// Bounded FIFO queue connecting the ingest producer to one shard worker.
//
// Deliberately simple: one mutex and two condition variables. The queue
// carries record *batches* (hundreds of records each), so lock traffic is
// amortized far below per-record cost and a lock-free ring would buy
// nothing measurable here. What matters for the engine is the contract:
//  - push() blocks while the queue is at capacity — that is the
//    backpressure mechanism, and every blocking push is counted;
//  - FIFO order is preserved per producer, which is what makes the
//    N-shard output bit-identical to the single-threaded path (records of
//    one quartet key are summed in submission order on both paths).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

namespace blameit::ingest {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full (backpressure); counts the waits it incurred.
  void push(T item) {
    std::unique_lock lock{mutex_};
    if (queue_.size() >= capacity_) {
      ++blocked_pushes_;
      not_full_.wait(lock, [&] { return queue_.size() < capacity_; });
    }
    queue_.push_back(std::move(item));
    if (queue_.size() > high_water_) high_water_ = queue_.size();
    lock.unlock();
    not_empty_.notify_one();
  }

  /// Blocks while empty.
  [[nodiscard]] T pop() {
    std::unique_lock lock{mutex_};
    not_empty_.wait(lock, [&] { return !queue_.empty(); });
    T item = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  [[nodiscard]] std::size_t high_water() const {
    std::lock_guard lock{mutex_};
    return high_water_;
  }
  [[nodiscard]] std::uint64_t blocked_pushes() const {
    std::lock_guard lock{mutex_};
    return blocked_pushes_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mutex_};
    return queue_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  std::size_t high_water_ = 0;
  std::uint64_t blocked_pushes_ = 0;
};

}  // namespace blameit::ingest
