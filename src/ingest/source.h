// Adapter from the streaming IngestEngine to the pull-based QuartetSource
// interface BlameItPipeline consumes — the pipeline runs unchanged on top
// of the sharded engine.
//
// The pipeline asks for buckets in non-decreasing order (warmup, then the
// 15-minute step loop). For each request the source feeds every not-yet-fed
// bucket's raw records into the engine, advances the watermark far enough
// to finalize the requested bucket, fences, and returns that bucket's
// finalized quartets (sorted by key, so downstream behavior is independent
// of the shard count).
#pragma once

#include <functional>
#include <vector>

#include "analysis/quartet.h"
#include "analysis/record.h"
#include "ingest/engine.h"
#include "util/time.h"

namespace blameit::ingest {

class StreamingQuartetSource {
 public:
  /// Produces the raw records of one bucket into the sink — e.g.
  /// sim::TelemetryGenerator::generate_records or its shuffled variant.
  using RecordFeed = std::function<void(
      util::TimeBucket,
      const std::function<void(const analysis::RttRecord&)>&)>;

  StreamingQuartetSource(IngestEngine* engine, RecordFeed feed,
                         util::TimeBucket first_bucket = util::TimeBucket{0});

  /// The QuartetSource signature. Buckets before `first_bucket` or before a
  /// bucket already served return empty (they were never fed / are gone).
  std::vector<analysis::Quartet> operator()(util::TimeBucket bucket);

 private:
  IngestEngine* engine_;
  RecordFeed feed_;
  util::TimeBucket next_unfed_;
};

}  // namespace blameit::ingest
