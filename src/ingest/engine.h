// Sharded streaming ingestion engine (the paper's Fig 7 analytics cluster,
// front of the pipeline): consumes the raw TCP-handshake RttRecord stream
// and emits finalized ⟨/24, location, device, 5-min bucket⟩ quartets.
//
// Architecture (lock-free hot path):
//   producer ──hash(/24)──▶ [SPSC record ring]──▶ shard worker 0 ─┐
//             (batched       [SPSC record ring]──▶ shard worker 1 ─┼─▶ finalized
//              publish)         ...                                │    quartets
//                            [SPSC record ring]──▶ shard worker N ─┘ (per bucket)
//                            [control ring: watermark/stop/fence]
//
//  - Records are hash-partitioned by client /24, so each worker owns its
//    accumulators lock-free (arena-backed open addressing, see
//    ShardedQuartetBuilder).
//  - The producer→shard handoff is a fixed-capacity SPSC ring of raw
//    records per pair (util::SpscRing): the producer accumulates
//    `batch_records` locally, then bulk-publishes the block with one
//    release store. A full ring spins then parks the producer — that is the
//    backpressure mechanism, and every park is counted.
//  - Watermark / stop / fence are rare control messages on a small side
//    ring per shard. Each carries the data-ring sequence number published
//    before it (its *barrier*): the worker applies a control message only
//    after consuming the data ring up to that barrier, which restores the
//    exact record/watermark interleaving a single merged queue would give.
//  - Bucket finalization is watermark-driven: advance_watermark(w) promises
//    "no record with time < w will arrive". A bucket finalizes once the
//    watermark passes its end by the configured lateness allowance;
//    out-of-order records within the allowance are accepted, records for
//    already-finalized buckets are counted as late and dropped — never
//    silently lost.
//
// Determinism guarantee (tested): for a fixed record sequence from ONE
// producer thread, the finalized quartet set — keys, sample counts, and
// bit-exact means — is identical for any shard count, batch size, and ring
// capacity, and identical to the single-threaded QuartetBuilder fed the
// same sequence. This holds because per-/24 ordering survives batching, the
// FIFO rings, and the barrier-sequenced control channel, so every quartet's
// RTT sum is accumulated in the same order on every path.
//
// Threading contract: submit/advance_watermark/flush/close must be called
// from one producer thread (or externally serialized). stats() and
// take_bucket() may be called from any thread at any time; stats snapshots
// are tear-free per shard (see stats.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "analysis/quartet.h"
#include "analysis/record.h"
#include "ingest/sharded_builder.h"
#include "ingest/stats.h"
#include "obs/registry.h"
#include "util/spsc_ring.h"
#include "util/time.h"

namespace blameit::ingest {

struct IngestConfig {
  int shards = 4;
  /// Records the producer accumulates before bulk-publishing a block to a
  /// shard ring (amortizes the release store and the consumer wakeup).
  std::size_t batch_records = 256;
  /// Ring capacity in batches: each shard ring holds
  /// batch_records * queue_batches records (rounded up to a power of two)
  /// before the producer parks (backpressure).
  std::size_t queue_batches = 64;
  /// Out-of-order tolerance: a bucket finalizes only once the watermark is
  /// this many minutes past its end; records older than that are late.
  int lateness_minutes = util::kBucketMinutes;
  analysis::QuartetBuilderConfig builder{};
  /// Optional metrics sink (ring pressure, park/drop accounting, watermark
  /// lag); null = no instrumentation, zero overhead.
  obs::Registry* registry = nullptr;
};

class IngestEngine {
 public:
  IngestEngine(const net::Topology* topology,
               analysis::BadnessThresholds thresholds,
               IngestConfig config = {});
  ~IngestEngine();

  IngestEngine(const IngestEngine&) = delete;
  IngestEngine& operator=(const IngestEngine&) = delete;

  /// Enqueues one raw record (producer side; may park under backpressure).
  /// After close() the record is dropped and counted, never blocked on — a
  /// closed engine must not deadlock its producer.
  void submit(const analysis::RttRecord& record);

  /// Promises that no record with time < `watermark` will be submitted.
  /// Triggers finalization of every bucket whose end + lateness allowance
  /// is <= watermark. Monotonic; regressions are ignored.
  void advance_watermark(util::MinuteTime watermark);

  /// Blocks until every record and watermark submitted so far has been
  /// processed by its shard (a full fence; finalized output is then stable).
  /// No-op after close().
  void flush();

  /// Finalizes everything regardless of watermark, fences, joins the
  /// workers, and closes the shard rings so later pushes drop-and-count
  /// instead of blocking against a ring nobody drains. Called by the
  /// destructor; idempotent.
  void close();

  /// Removes and returns the finalized quartets of `bucket`, merged across
  /// shards and sorted by key (deterministic order for any shard count).
  /// Empty if the bucket was not finalized yet (watermark not there) or was
  /// already taken.
  [[nodiscard]] std::vector<analysis::Quartet> take_bucket(
      util::TimeBucket bucket);

  /// Buckets finalized and not yet taken, ascending.
  [[nodiscard]] std::vector<util::TimeBucket> finalized_buckets() const;

  /// Watermark that take_bucket(bucket) requires (bucket end + lateness).
  [[nodiscard]] util::MinuteTime watermark_to_finalize(
      util::TimeBucket bucket) const noexcept {
    return bucket.next().start().plus_minutes(config_.lateness_minutes);
  }

  [[nodiscard]] IngestStats stats() const;
  [[nodiscard]] const IngestConfig& config() const noexcept { return config_; }

 private:
  struct SyncPoint;

  /// Rare control-plane message, sequenced against the data ring by
  /// `barrier` (records published to this shard before the message).
  struct Control {
    enum class Kind : std::uint8_t { Watermark, Stop } kind = Kind::Watermark;
    util::MinuteTime watermark{};
    std::uint64_t barrier = 0;
    std::shared_ptr<SyncPoint> sync;  ///< optional fence
  };

  struct Shard {
    Shard(std::size_t ring_records, std::size_t control_slots)
        : ring(ring_records), control(control_slots) {}

    util::SpscRing<analysis::RttRecord> ring;  ///< data hot path
    util::SpscRing<Control> control;           ///< watermark/stop/fence
    std::thread worker;
    /// Producer-side partial batch (owned by the producer thread; its
    /// capacity is reused across batches — no per-batch allocation).
    std::vector<analysis::RttRecord> pending;

    // Worker-owned state.
    util::MinuteTime watermark{std::int64_t{-1} << 40};
    std::int64_t finalized_before = std::int64_t{-1} << 40;  // bucket index

    // Finalized output, shared worker/reader.
    mutable std::mutex out_mutex;
    std::unordered_map<std::int64_t, std::vector<analysis::Quartet>> out;

    // Tear-free stats slice: written by the worker once per chunk, copied
    // whole by stats().
    mutable std::mutex stats_mutex;
    ShardStats slice;
  };

  void worker_loop(std::size_t shard_index);
  /// Returns true on Stop.
  bool apply_control(Shard& shard, std::size_t shard_index,
                     const Control& msg);
  void process_records(Shard& shard, std::size_t shard_index,
                       const analysis::RttRecord* records, std::size_t n);
  void process_watermark(Shard& shard, std::size_t shard_index,
                         util::MinuteTime watermark);
  void push_pending(std::size_t shard_index);
  void push_control(std::size_t shard_index, Control msg);
  void advance_watermark_internal(util::MinuteTime watermark);
  void fence();

  IngestConfig config_;
  ShardedQuartetBuilder builder_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Producer-owned; atomic (minutes) so workers may read it for the
  /// watermark-lag gauge without a race.
  std::atomic<std::int64_t> producer_watermark_{std::int64_t{-1} << 40};
  /// Producer-side counters: accumulated in plain producer-owned fields and
  /// published to these atomics at batch granularity (see stats.h for the
  /// snapshot-ordering argument).
  std::atomic<std::uint64_t> records_in_{0};
  std::atomic<std::uint64_t> batches_submitted_{0};
  std::atomic<std::uint64_t> closed_dropped_{0};
  std::uint64_t produced_ = 0;       // producer-owned mirror of records_in_
  std::uint64_t batches_ = 0;        // producer-owned mirror
  std::uint64_t closed_drops_ = 0;   // producer-owned mirror
  bool closed_ = false;

  // Instruments (null without a registry).
  obs::Counter* records_in_c_ = nullptr;
  obs::Counter* late_dropped_c_ = nullptr;
  obs::Counter* closed_dropped_c_ = nullptr;
  obs::Counter* backpressure_c_ = nullptr;
  obs::Gauge* ring_high_water_g_ = nullptr;
  obs::Gauge* watermark_lag_g_ = nullptr;
};

}  // namespace blameit::ingest
