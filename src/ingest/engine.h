// Sharded streaming ingestion engine (the paper's Fig 7 analytics cluster,
// front of the pipeline): consumes the raw TCP-handshake RttRecord stream
// and emits finalized ⟨/24, location, device, 5-min bucket⟩ quartets.
//
// Architecture:
//   producer ──hash(/24)──▶ [bounded queue]──▶ shard worker 0 ─┐
//             (batched)     [bounded queue]──▶ shard worker 1 ─┼─▶ finalized
//                              ...                             │    quartets
//                           [bounded queue]──▶ shard worker N ─┘  (per bucket)
//
//  - Records are hash-partitioned by client /24, so each worker owns its
//    accumulators lock-free (see ShardedQuartetBuilder).
//  - Queues are bounded; a full queue blocks submit() — backpressure — and
//    the engine counts every such stall plus per-queue high-water marks.
//  - Bucket finalization is watermark-driven: advance_watermark(w) promises
//    "no record with time < w will arrive". A bucket finalizes once the
//    watermark passes its end by the configured lateness allowance;
//    out-of-order records within the allowance are accepted, records for
//    already-finalized buckets are counted as late and dropped — never
//    silently lost.
//
// Determinism guarantee (tested): for a fixed record sequence from ONE
// producer thread, the finalized quartet set — keys, sample counts, and
// bit-exact means — is identical for any shard count, and identical to the
// single-threaded QuartetBuilder fed the same sequence. This holds because
// per-/24 ordering survives batching and the FIFO queues, so every
// quartet's RTT sum is accumulated in the same order on every path.
//
// Threading contract: submit/advance_watermark/flush/close must be called
// from one producer thread (or externally serialized). stats() and
// take_bucket() may be called from any thread at any time.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "analysis/quartet.h"
#include "analysis/record.h"
#include "ingest/queue.h"
#include "ingest/sharded_builder.h"
#include "ingest/stats.h"
#include "obs/registry.h"
#include "util/time.h"

namespace blameit::ingest {

struct IngestConfig {
  int shards = 4;
  /// Records per batch handed to a shard queue (amortizes queue locking).
  std::size_t batch_records = 256;
  /// Batches a shard queue holds before submit() blocks (backpressure).
  std::size_t queue_batches = 64;
  /// Out-of-order tolerance: a bucket finalizes only once the watermark is
  /// this many minutes past its end; records older than that are late.
  int lateness_minutes = util::kBucketMinutes;
  analysis::QuartetBuilderConfig builder{};
  /// Optional metrics sink (queue pressure, drop accounting, watermark lag);
  /// null = no instrumentation, zero overhead.
  obs::Registry* registry = nullptr;
};

class IngestEngine {
 public:
  IngestEngine(const net::Topology* topology,
               analysis::BadnessThresholds thresholds,
               IngestConfig config = {});
  ~IngestEngine();

  IngestEngine(const IngestEngine&) = delete;
  IngestEngine& operator=(const IngestEngine&) = delete;

  /// Enqueues one raw record (producer side; may block under backpressure).
  /// After close() the record is dropped and counted, never blocked on — a
  /// closed engine must not deadlock its producer.
  void submit(const analysis::RttRecord& record);

  /// Promises that no record with time < `watermark` will be submitted.
  /// Triggers finalization of every bucket whose end + lateness allowance
  /// is <= watermark. Monotonic; regressions are ignored.
  void advance_watermark(util::MinuteTime watermark);

  /// Blocks until every record and watermark submitted so far has been
  /// processed by its shard (a full fence; finalized output is then stable).
  void flush();

  /// Finalizes everything regardless of watermark, fences, joins the
  /// workers, and closes the shard queues so later (or concurrently
  /// blocked) pushes drop-and-count instead of deadlocking against a queue
  /// nobody drains. Called by the destructor; idempotent.
  void close();

  /// Removes and returns the finalized quartets of `bucket`, merged across
  /// shards and sorted by key (deterministic order for any shard count).
  /// Empty if the bucket was not finalized yet (watermark not there) or was
  /// already taken.
  [[nodiscard]] std::vector<analysis::Quartet> take_bucket(
      util::TimeBucket bucket);

  /// Buckets finalized and not yet taken, ascending.
  [[nodiscard]] std::vector<util::TimeBucket> finalized_buckets() const;

  /// Watermark that take_bucket(bucket) requires (bucket end + lateness).
  [[nodiscard]] util::MinuteTime watermark_to_finalize(
      util::TimeBucket bucket) const noexcept {
    return bucket.next().start().plus_minutes(config_.lateness_minutes);
  }

  [[nodiscard]] IngestStats stats() const;
  [[nodiscard]] const IngestConfig& config() const noexcept { return config_; }

 private:
  struct SyncPoint;
  struct Message {
    enum class Kind : std::uint8_t { Batch, Watermark, Stop } kind;
    std::vector<analysis::RttRecord> records;  // Kind::Batch
    util::MinuteTime watermark{};              // Kind::Watermark
    std::shared_ptr<SyncPoint> sync;           // optional fence
  };

  struct Shard {
    explicit Shard(std::size_t queue_batches) : queue(queue_batches) {}
    BoundedQueue<Message> queue;
    std::thread worker;
    // Producer-side partial batch (owned by the producer thread).
    std::vector<analysis::RttRecord> pending;

    // Worker-owned state.
    util::MinuteTime watermark{std::int64_t{-1} << 40};
    std::int64_t finalized_before = std::int64_t{-1} << 40;  // bucket index

    // Finalized output + stats, shared worker/reader.
    mutable std::mutex out_mutex;
    std::unordered_map<std::int64_t, std::vector<analysis::Quartet>> out;
    std::atomic<std::uint64_t> records{0};
    std::atomic<std::uint64_t> late_dropped{0};
    std::atomic<std::uint64_t> buckets_finalized{0};
    std::atomic<std::uint64_t> quartets{0};
    std::atomic<std::uint64_t> records_out{0};
    std::atomic<std::uint64_t> finalize_ns_total{0};
    std::atomic<std::uint64_t> finalize_ns_max{0};
  };

  void worker_loop(std::size_t shard_index);
  void process_watermark(Shard& shard, std::size_t shard_index,
                         util::MinuteTime watermark);
  void push_pending(std::size_t shard_index);
  void fence();

  IngestConfig config_;
  ShardedQuartetBuilder builder_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Producer-owned; atomic (minutes) so workers may read it for the
  /// watermark-lag gauge without a race.
  std::atomic<std::int64_t> producer_watermark_{std::int64_t{-1} << 40};
  std::atomic<std::uint64_t> records_in_{0};
  std::atomic<std::uint64_t> batches_submitted_{0};
  std::atomic<std::uint64_t> closed_dropped_{0};
  bool closed_ = false;

  // Instruments (null without a registry).
  obs::Counter* records_in_c_ = nullptr;
  obs::Counter* late_dropped_c_ = nullptr;
  obs::Counter* closed_dropped_c_ = nullptr;
  obs::Counter* backpressure_c_ = nullptr;
  obs::Gauge* queue_high_water_g_ = nullptr;
  obs::Gauge* watermark_lag_g_ = nullptr;
};

}  // namespace blameit::ingest
