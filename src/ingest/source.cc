#include "ingest/source.h"

#include <stdexcept>

namespace blameit::ingest {

StreamingQuartetSource::StreamingQuartetSource(IngestEngine* engine,
                                               RecordFeed feed,
                                               util::TimeBucket first_bucket)
    : engine_(engine), feed_(std::move(feed)), next_unfed_(first_bucket) {
  if (!engine_ || !feed_) {
    throw std::invalid_argument{"StreamingQuartetSource: null dependency"};
  }
}

std::vector<analysis::Quartet> StreamingQuartetSource::operator()(
    util::TimeBucket bucket) {
  for (auto b = next_unfed_; b <= bucket; b = b.next()) {
    feed_(b, [this](const analysis::RttRecord& r) { engine_->submit(r); });
  }
  if (bucket >= next_unfed_) next_unfed_ = bucket.next();
  engine_->advance_watermark(engine_->watermark_to_finalize(bucket));
  engine_->flush();
  return engine_->take_bucket(bucket);
}

}  // namespace blameit::ingest
