#include "ingest/sharded_builder.h"

#include <cstring>
#include <stdexcept>

namespace blameit::ingest {

namespace {

constexpr std::size_t kInitialTableSlots = 64;
constexpr std::size_t kInitialBlockSlots = 1024;
constexpr std::uint64_t kEmptyBlockKey = ~std::uint64_t{0};

/// splitmix64 finalizer: full-avalanche mix of the packed quartet key.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

[[nodiscard]] constexpr std::size_t log2_of(std::size_t pow2) noexcept {
  std::size_t n = 0;
  while ((std::size_t{1} << n) < pow2) ++n;
  return n;
}

}  // namespace

ShardedQuartetBuilder::ShardedQuartetBuilder(
    const net::Topology* topology, analysis::BadnessThresholds thresholds,
    int shards, analysis::QuartetBuilderConfig config)
    : topology_(topology), thresholds_(thresholds), config_(config) {
  if (!topology_) {
    throw std::invalid_argument{"ShardedQuartetBuilder: null topology"};
  }
  if (shards < 1) {
    throw std::invalid_argument{"ShardedQuartetBuilder: shards must be >= 1"};
  }
  if (config_.min_samples < 1) {
    throw std::invalid_argument{
        "ShardedQuartetBuilder: min_samples must be >= 1"};
  }
  shards_ = std::vector<Shard>(static_cast<std::size_t>(shards));
  for (auto& shard : shards_) {
    shard.block_cache = shard.arena.allocate_array<BlockSlot>(
        kInitialBlockSlots);
    shard.block_mask = kInitialBlockSlots - 1;
    std::memset(shard.block_cache, 0xFF,
                kInitialBlockSlots * sizeof(BlockSlot));
  }
}

ShardedQuartetBuilder::Slot* ShardedQuartetBuilder::new_slot_array(
    Shard& shard, std::size_t capacity) {
  auto& pool = shard.free_arrays[log2_of(capacity)];
  Slot* slots;
  if (!pool.empty()) {
    slots = pool.back();
    pool.pop_back();
  } else {
    slots = shard.arena.allocate_array<Slot>(capacity);
  }
  // All-ones is the empty-key sentinel, so one memset clears every slot.
  std::memset(slots, 0xFF, capacity * sizeof(Slot));
  return slots;
}

void ShardedQuartetBuilder::recycle_slot_array(Shard& shard, Slot* slots,
                                               std::size_t capacity) {
  shard.free_arrays[log2_of(capacity)].push_back(slots);
}

void ShardedQuartetBuilder::grow_table(Shard& shard, Table& table) {
  const std::size_t old_capacity = table.mask + 1;
  const std::size_t capacity = old_capacity * 2;
  Slot* slots = new_slot_array(shard, capacity);
  const std::size_t mask = capacity - 1;
  for (std::size_t i = 0; i < old_capacity; ++i) {
    const Slot& src = table.slots[i];
    if (src.key == kEmptyKey) continue;
    std::size_t idx = static_cast<std::size_t>(mix64(src.key)) & mask;
    while (slots[idx].key != kEmptyKey) idx = (idx + 1) & mask;
    slots[idx] = src;
  }
  recycle_slot_array(shard, table.slots, old_capacity);
  table.slots = slots;
  table.mask = mask;
}

void ShardedQuartetBuilder::grow_block_cache(Shard& shard) {
  const std::size_t old_capacity = shard.block_mask + 1;
  const std::size_t capacity = old_capacity * 2;
  auto* slots = shard.arena.allocate_array<BlockSlot>(capacity);
  std::memset(slots, 0xFF, capacity * sizeof(BlockSlot));
  const std::size_t mask = capacity - 1;
  for (std::size_t i = 0; i < old_capacity; ++i) {
    const BlockSlot& src = shard.block_cache[i];
    if (src.key == kEmptyBlockKey) continue;
    std::size_t idx = static_cast<std::size_t>(mix64(src.key)) & mask;
    while (slots[idx].key != kEmptyBlockKey) idx = (idx + 1) & mask;
    slots[idx] = src;
  }
  shard.block_cache = slots;
  shard.block_mask = mask;
}

const net::ClientBlock* ShardedQuartetBuilder::resolve_block(
    Shard& shard, net::Slash24 block) {
  const auto key = static_cast<std::uint64_t>(block.block);
  std::size_t idx = static_cast<std::size_t>(mix64(key)) & shard.block_mask;
  for (;;) {
    BlockSlot& slot = shard.block_cache[idx];
    if (slot.key == key) return slot.block;
    if (slot.key == kEmptyBlockKey) {
      slot.key = key;
      slot.block = topology_->find_block(block);
      if (++shard.block_count * 10 >= (shard.block_mask + 1) * 7) {
        grow_block_cache(shard);
        // The slot pointer moved; re-resolve through the new table.
        return resolve_block(shard, block);
      }
      return slot.block;
    }
    idx = (idx + 1) & shard.block_mask;
  }
}

void ShardedQuartetBuilder::add(std::size_t shard_index,
                                const analysis::RttRecord& record) {
  Shard& shard = shards_[shard_index];
  const auto block = net::Slash24::of(record.client_ip);
  if (resolve_block(shard, block) == nullptr) {
    ++shard.drops.unknown_blocks;
    return;
  }
  const std::int64_t bucket = util::TimeBucket::of(record.time).index;
  Table* table = shard.last_table;
  if (bucket != shard.last_bucket || table == nullptr) {
    auto [it, inserted] = shard.buckets.try_emplace(bucket);
    table = &it->second;
    if (inserted) {
      table->slots = new_slot_array(shard, kInitialTableSlots);
      table->mask = kInitialTableSlots - 1;
    }
    shard.last_bucket = bucket;
    shard.last_table = table;
  }
  const std::uint64_t key = pack_key(block, record.location, record.device);
  std::size_t idx = static_cast<std::size_t>(mix64(key)) & table->mask;
  for (;;) {
    Slot& slot = table->slots[idx];
    if (slot.key == key) {
      ++slot.count;
      slot.sum += record.rtt_ms;
      return;
    }
    if (slot.key == kEmptyKey) {
      slot.key = key;
      slot.count = 1;
      slot.sum = record.rtt_ms;
      if (++table->size * 10 >= (table->mask + 1) * 7) {
        grow_table(shard, *table);
      }
      return;
    }
    idx = (idx + 1) & table->mask;
  }
}

std::vector<util::TimeBucket> ShardedQuartetBuilder::ready_buckets(
    std::size_t shard, util::MinuteTime closed_through) const {
  std::vector<util::TimeBucket> out;
  for (const auto& [index, table] : shards_[shard].buckets) {
    const util::TimeBucket bucket{index};
    if (bucket.next().start() > closed_through) break;  // map is ordered
    out.push_back(bucket);
  }
  return out;
}

std::vector<analysis::Quartet> ShardedQuartetBuilder::take_bucket(
    std::size_t shard_index, util::TimeBucket bucket) {
  Shard& shard = shards_[shard_index];
  const auto it = shard.buckets.find(bucket.index);
  if (it == shard.buckets.end()) return {};
  Table table = it->second;
  shard.buckets.erase(it);
  if (shard.last_bucket == bucket.index) {
    shard.last_table = nullptr;
    shard.last_bucket = std::int64_t{-1} << 40;
  }

  std::vector<analysis::Quartet> out;
  out.reserve(table.size);
  const std::size_t capacity = table.mask + 1;
  for (std::size_t i = 0; i < capacity; ++i) {
    const Slot& slot = table.slots[i];
    if (slot.key == kEmptyKey) continue;
    if (slot.count < config_.min_samples) {
      ++shard.drops.min_samples;
      shard.drops.min_samples_records += static_cast<std::uint64_t>(slot.count);
      continue;
    }
    const net::Slash24 block24{static_cast<std::uint32_t>(slot.key >> 24)};
    const net::CloudLocationId location{
        static_cast<std::uint16_t>((slot.key >> 8) & 0xFFFF)};
    const auto device = static_cast<net::DeviceClass>(slot.key & 0xFF);
    // Present and non-null: unknown /24s never enter an accumulator.
    const net::ClientBlock* block = resolve_block(shard, block24);
    const auto* route =
        topology_->routing().route_for(location, block24, bucket.start());
    if (!route) continue;  // same skip as QuartetBuilder::take_bucket
    analysis::Quartet q;
    q.key = analysis::QuartetKey{.block = block24,
                                 .location = location,
                                 .device = device,
                                 .bucket = bucket};
    q.sample_count = slot.count;
    q.mean_rtt_ms = slot.sum / slot.count;
    q.middle = route->middle;
    q.client_as = block->client_as;
    q.region = block->region;
    q.bad = q.mean_rtt_ms > thresholds_.threshold(block->region, device);
    out.push_back(q);
  }
  recycle_slot_array(shard, table.slots, capacity);
  return out;
}

std::size_t ShardedQuartetBuilder::pending(std::size_t shard) const {
  std::size_t n = 0;
  for (const auto& [index, table] : shards_[shard].buckets) n += table.size;
  return n;
}

}  // namespace blameit::ingest
