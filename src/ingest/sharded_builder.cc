#include "ingest/sharded_builder.h"

#include <stdexcept>

namespace blameit::ingest {

ShardedQuartetBuilder::ShardedQuartetBuilder(
    const net::Topology* topology, analysis::BadnessThresholds thresholds,
    int shards, analysis::QuartetBuilderConfig config) {
  if (shards < 1) {
    throw std::invalid_argument{"ShardedQuartetBuilder: shards must be >= 1"};
  }
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.emplace_back(
        analysis::QuartetBuilder{topology, thresholds, config});
  }
}

void ShardedQuartetBuilder::add(std::size_t shard,
                                const analysis::RttRecord& record) {
  Shard& s = shards_[shard];
  s.builder.add(record);
  ++s.open_buckets[util::TimeBucket::of(record.time)];
}

std::vector<util::TimeBucket> ShardedQuartetBuilder::ready_buckets(
    std::size_t shard, util::MinuteTime closed_through) const {
  std::vector<util::TimeBucket> out;
  for (const auto& [bucket, count] : shards_[shard].open_buckets) {
    if (bucket.next().start() > closed_through) break;  // map is ordered
    out.push_back(bucket);
  }
  return out;
}

std::vector<analysis::Quartet> ShardedQuartetBuilder::take_bucket(
    std::size_t shard, util::TimeBucket bucket) {
  Shard& s = shards_[shard];
  s.open_buckets.erase(bucket);
  return s.builder.take_bucket(bucket);
}

std::size_t ShardedQuartetBuilder::pending() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s.builder.pending();
  return n;
}

std::uint64_t ShardedQuartetBuilder::dropped_unknown_blocks() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s.builder.dropped_unknown_blocks();
  return n;
}

std::uint64_t ShardedQuartetBuilder::dropped_min_samples() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s.builder.dropped_min_samples();
  return n;
}

std::uint64_t ShardedQuartetBuilder::dropped_min_samples_records() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s.builder.dropped_min_samples_records();
  return n;
}

}  // namespace blameit::ingest
