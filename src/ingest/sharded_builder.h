// Shard-partitioned quartet accumulation: the Fig 7 analytics cluster's
// "aggregate trillions of raw RTTs into quartets" stage, split so that N
// workers can accumulate concurrently without a single lock.
//
// Partitioning is by client /24. The quartet key is ⟨/24, location, device,
// bucket⟩, so hashing on the /24 alone guarantees every record of a given
// quartet lands on the same shard — each shard owns a disjoint slice of the
// key space.
//
// Shard state is arena-backed and open-addressed (this is the ingest hot
// path; the per-record cost budget is a few nanoseconds):
//  - Within a bucket the key collapses to one 48-bit integer
//    (/24 | location | device), so the accumulator table is linear-probing
//    open addressing over 24-byte slots keyed by that packed word — one
//    cache line probe per record instead of an unordered_map node chase,
//    and zero per-record allocation.
//  - Slot arrays come from a per-shard util::Arena and are recycled through
//    power-of-two free lists when a bucket finalizes or a table grows:
//    steady-state ingestion allocates nothing.
//  - Topology membership (known /24 or not, and the ClientBlock for
//    finalization) is resolved once per /24 through a per-shard
//    open-addressed cache instead of per record through the topology map.
//
// Concurrency contract: distinct shards may be driven from distinct threads
// with no synchronization; calls for the SAME shard must be serialized by
// the caller (the IngestEngine gives each shard one worker thread). The
// drop counters are owner-thread state: read them from the shard's thread.
//
// Determinism: a record sequence fed to shard_of()-selected shards in order
// produces, per quartet key, the exact accumulation order of the
// single-threaded QuartetBuilder fed the same sequence — so means are
// bit-identical, not merely close (floating-point addition order matches;
// the table only changes WHERE a key's accumulator lives, never the order
// its records are summed in).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/quartet.h"
#include "analysis/record.h"
#include "net/topology.h"
#include "util/arena.h"
#include "util/rng.h"

namespace blameit::ingest {

class ShardedQuartetBuilder {
 public:
  /// Records dropped by one shard, by reason. Matches QuartetBuilder's
  /// accounting exactly (unknown at add() time, min-samples at finalize).
  struct DropCounts {
    std::uint64_t unknown_blocks = 0;
    std::uint64_t min_samples = 0;          ///< quartets dropped
    std::uint64_t min_samples_records = 0;  ///< records they carried
  };

  ShardedQuartetBuilder(const net::Topology* topology,
                        analysis::BadnessThresholds thresholds, int shards,
                        analysis::QuartetBuilderConfig config = {});

  [[nodiscard]] int shards() const noexcept {
    return static_cast<int>(shards_.size());
  }

  /// Shard owning a /24. Stable across runs and shard-count-independent
  /// modulo reduction, so tests can predict placement.
  [[nodiscard]] std::size_t shard_of(net::Slash24 block) const noexcept {
    // splitmix-style mix so consecutive /24s (common in synthetic and real
    // allocations) spread instead of striping.
    return static_cast<std::size_t>(
        util::hash_combine(0x1465E57B1E5Eull, block.block) % shards_.size());
  }

  /// Adds one record to `shard` (must equal shard_of(record's /24)).
  void add(std::size_t shard, const analysis::RttRecord& record);

  /// Buckets of `shard` holding pending accumulators, oldest first, whose
  /// window closed at or before `closed_through` (bucket end <= it).
  [[nodiscard]] std::vector<util::TimeBucket> ready_buckets(
      std::size_t shard, util::MinuteTime closed_through) const;

  /// Finalizes and removes one bucket of one shard. Output order within the
  /// shard is table order (the engine sorts the cross-shard merge by key).
  [[nodiscard]] std::vector<analysis::Quartet> take_bucket(
      std::size_t shard, util::TimeBucket bucket);

  /// Owner-thread reads (the shard's worker, or any thread once quiescent).
  [[nodiscard]] const DropCounts& drops(std::size_t shard) const noexcept {
    return shards_[shard].drops;
  }
  [[nodiscard]] std::size_t pending(std::size_t shard) const;
  [[nodiscard]] std::size_t arena_bytes(std::size_t shard) const noexcept {
    return shards_[shard].arena.bytes_reserved();
  }

 private:
  /// ⟨/24, location, device⟩ packed into 48 bits; all-ones = empty slot, a
  /// value no real key reaches (the /24 field is 24 bits).
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  static constexpr std::uint64_t pack_key(net::Slash24 block,
                                          net::CloudLocationId location,
                                          net::DeviceClass device) noexcept {
    return (std::uint64_t{block.block} << 24) |
           (std::uint64_t{location.value} << 8) |
           static_cast<std::uint64_t>(device);
  }

  /// One open-addressing slot: packed key + the running accumulator.
  struct Slot {
    std::uint64_t key;
    std::int32_t count;
    double sum;
  };
  static_assert(sizeof(Slot) == 24);

  /// Linear-probing table over arena-backed Slot arrays (capacity a power
  /// of two, grown at ~70% load).
  struct Table {
    Slot* slots = nullptr;
    std::size_t mask = 0;  ///< capacity - 1
    std::size_t size = 0;
  };

  /// Known-/24 cache slot: /24 (32 bits, all-ones = empty) + resolved block
  /// pointer (nullptr = /24 not in the topology).
  struct BlockSlot {
    std::uint64_t key;
    const net::ClientBlock* block;
  };

  struct Shard {
    util::Arena arena;
    /// Recycled slot arrays by log2(capacity): finalized buckets and
    /// outgrown tables return here, new tables draw from here first.
    std::vector<std::vector<Slot*>> free_arrays =
        std::vector<std::vector<Slot*>>(40);
    /// Open buckets, ordered (ready_buckets walks oldest-first).
    std::map<std::int64_t, Table> buckets;
    /// One-entry fast path: records overwhelmingly hit the current bucket.
    std::int64_t last_bucket = std::int64_t{-1} << 40;
    Table* last_table = nullptr;
    BlockSlot* block_cache = nullptr;
    std::size_t block_mask = 0;
    std::size_t block_count = 0;
    DropCounts drops;
  };

  [[nodiscard]] Slot* new_slot_array(Shard& shard, std::size_t capacity);
  void recycle_slot_array(Shard& shard, Slot* slots, std::size_t capacity);
  void grow_table(Shard& shard, Table& table);
  [[nodiscard]] const net::ClientBlock* resolve_block(Shard& shard,
                                                      net::Slash24 block);
  void grow_block_cache(Shard& shard);

  const net::Topology* topology_;
  analysis::BadnessThresholds thresholds_;
  analysis::QuartetBuilderConfig config_;
  std::vector<Shard> shards_;
};

}  // namespace blameit::ingest
