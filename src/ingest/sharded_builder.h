// Shard-partitioned quartet accumulation: the Fig 7 analytics cluster's
// "aggregate trillions of raw RTTs into quartets" stage, split so that N
// workers can accumulate concurrently without a single lock.
//
// Partitioning is by client /24. The quartet key is ⟨/24, location, device,
// bucket⟩, so hashing on the /24 alone guarantees every record of a given
// quartet lands on the same shard — each shard owns a disjoint slice of the
// key space and wraps a plain (single-threaded) QuartetBuilder for it.
//
// Concurrency contract: distinct shards may be driven from distinct threads
// with no synchronization; calls for the SAME shard must be serialized by
// the caller (the IngestEngine gives each shard one worker thread).
//
// Determinism: a record sequence fed to shard_of()-selected shards in order
// produces, per quartet key, the exact accumulation order of the
// single-threaded QuartetBuilder fed the same sequence — so means are
// bit-identical, not merely close (floating-point addition order matches).
#pragma once

#include <map>
#include <vector>

#include "analysis/quartet.h"
#include "analysis/record.h"
#include "util/rng.h"

namespace blameit::ingest {

class ShardedQuartetBuilder {
 public:
  ShardedQuartetBuilder(const net::Topology* topology,
                        analysis::BadnessThresholds thresholds, int shards,
                        analysis::QuartetBuilderConfig config = {});

  [[nodiscard]] int shards() const noexcept {
    return static_cast<int>(shards_.size());
  }

  /// Shard owning a /24. Stable across runs and shard-count-independent
  /// modulo reduction, so tests can predict placement.
  [[nodiscard]] std::size_t shard_of(net::Slash24 block) const noexcept {
    // splitmix-style mix so consecutive /24s (common in synthetic and real
    // allocations) spread instead of striping.
    return static_cast<std::size_t>(
        util::hash_combine(0x1465E57B1E5Eull, block.block) % shards_.size());
  }

  /// Adds one record to `shard` (must equal shard_of(record's /24)).
  void add(std::size_t shard, const analysis::RttRecord& record);

  /// Buckets of `shard` holding pending accumulators, oldest first, whose
  /// window closed at or before `closed_through` (bucket end <= it).
  [[nodiscard]] std::vector<util::TimeBucket> ready_buckets(
      std::size_t shard, util::MinuteTime closed_through) const;

  /// Finalizes and removes one bucket of one shard.
  [[nodiscard]] std::vector<analysis::Quartet> take_bucket(
      std::size_t shard, util::TimeBucket bucket);

  // Aggregated over shards. Safe to call only when shard owners are
  // quiescent (the engine reads them behind a flush fence).
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::uint64_t dropped_unknown_blocks() const;
  [[nodiscard]] std::uint64_t dropped_min_samples() const;
  [[nodiscard]] std::uint64_t dropped_min_samples_records() const;

 private:
  struct Shard {
    explicit Shard(analysis::QuartetBuilder builder)
        : builder(std::move(builder)) {}
    analysis::QuartetBuilder builder;
    /// Buckets with records accumulated and not yet taken -> record count.
    std::map<util::TimeBucket, std::uint64_t> open_buckets;
  };

  std::vector<Shard> shards_;
};

}  // namespace blameit::ingest
