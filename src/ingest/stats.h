// Counters for the streaming ingestion engine: what came in, what was
// finalized, what was dropped and why, and how hard the rings were pushed.
//
// Snapshot consistency: the engine keeps each shard's slice in one block
// guarded by a per-shard mutex that the worker takes once per processed
// chunk, so a snapshot taken while workers run is tear-free per shard —
// e.g. `records + late_dropped == delivered` holds in every snapshot, not
// just at quiescence. Engine-wide producer counters are published per batch
// and read after the shard slices, so `records_in >= sum(delivered)` also
// holds in every snapshot (the difference is records still in flight).
// Rendered for operators by ops::render_ingest.
#pragma once

#include <cstdint>
#include <vector>

namespace blameit::ingest {

/// Per-shard slice of the engine counters. The first block is written by
/// the shard worker under the slice mutex (tear-free); the ring block is
/// read from the ring's own relaxed atomics.
struct ShardStats {
  std::uint64_t records = 0;       ///< records accepted by this shard
  std::uint64_t late_dropped = 0;  ///< records behind the watermark
  /// records handed to this shard = records + late_dropped (the invariant
  /// the tear-free snapshot guarantees).
  std::uint64_t delivered = 0;
  std::uint64_t buckets_finalized = 0;
  std::uint64_t quartets = 0;  ///< finalized quartets emitted
  std::uint64_t records_out = 0;
  std::uint64_t unknown_dropped = 0;      ///< /24 not in the topology
  std::uint64_t min_samples_dropped = 0;  ///< quartets under min_samples
  /// Wall time spent finalizing buckets (take_bucket + classification).
  std::uint64_t finalize_ns_total = 0;
  std::uint64_t finalize_ns_max = 0;
  /// Wall time the worker spent processing (vs waiting for) records; the
  /// bench derives per-shard utilization from this.
  std::uint64_t busy_ns = 0;

  // Ring-side counters (producer→shard SPSC ring).
  std::size_t ring_high_water = 0;        ///< max records ever in the ring
  std::uint64_t backpressure_waits = 0;   ///< producer parks on a full ring
  std::uint64_t consumer_parks = 0;       ///< worker parks on an empty ring
};

/// Engine-wide snapshot; sums of the per-shard slices plus producer-side
/// counters. Consumed by ops::report and the ingest bench.
struct IngestStats {
  std::uint64_t records_in = 0;   ///< records submitted to the engine
  std::uint64_t records_out = 0;  ///< records represented in emitted quartets
  std::uint64_t quartets_finalized = 0;
  std::uint64_t late_dropped = 0;     ///< behind the watermark (per shard)
  std::uint64_t unknown_dropped = 0;  ///< client /24 not in the topology
  std::uint64_t min_samples_dropped = 0;  ///< quartets under min_samples
  std::uint64_t closed_dropped = 0;  ///< submitted after/during engine close
  std::uint64_t batches_submitted = 0;
  std::uint64_t backpressure_waits = 0;  ///< producer parks, all rings
  std::size_t ring_high_water = 0;       ///< max over all shard rings
  std::vector<ShardStats> shards;
};

}  // namespace blameit::ingest
