// Counters for the streaming ingestion engine: what came in, what was
// finalized, what was dropped and why, and how hard the queues were pushed.
// A snapshot is cheap to take while the engine runs (all counters are
// relaxed atomics mirrored into plain integers) and is rendered for
// operators by ops::render_ingest.
#pragma once

#include <cstdint>
#include <vector>

namespace blameit::ingest {

/// Per-shard slice of the engine counters.
struct ShardStats {
  std::uint64_t records = 0;         ///< records accepted by this shard
  std::uint64_t late_dropped = 0;    ///< records behind the watermark
  std::uint64_t buckets_finalized = 0;
  std::uint64_t quartets = 0;        ///< finalized quartets emitted
  std::size_t queue_high_water = 0;  ///< max batches ever queued
  std::uint64_t backpressure_waits = 0;  ///< producer blocked on full queue
  /// Wall time spent finalizing buckets (take_bucket + classification).
  std::uint64_t finalize_ns_total = 0;
  std::uint64_t finalize_ns_max = 0;
};

/// Engine-wide snapshot; sums of the per-shard slices plus producer-side
/// counters. Consumed by ops::report and the ingest bench.
struct IngestStats {
  std::uint64_t records_in = 0;   ///< records submitted to the engine
  std::uint64_t records_out = 0;  ///< records represented in emitted quartets
  std::uint64_t quartets_finalized = 0;
  std::uint64_t late_dropped = 0;     ///< behind the watermark (per shard)
  std::uint64_t unknown_dropped = 0;  ///< client /24 not in the topology
  std::uint64_t min_samples_dropped = 0;  ///< quartets under min_samples
  std::uint64_t closed_dropped = 0;  ///< submitted after/during engine close
  std::uint64_t batches_submitted = 0;
  std::uint64_t backpressure_waits = 0;
  std::size_t queue_high_water = 0;  ///< max over all shard queues
  std::vector<ShardStats> shards;
};

}  // namespace blameit::ingest
