#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.h"

namespace blameit::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument{"Histogram: need bins > 0 and hi > lo"};
  }
}

void Histogram::add(double x, double weight) noexcept {
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::cumulative_fraction(std::size_t i) const noexcept {
  if (total_ <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t j = 0; j <= i && j < counts_.size(); ++j) acc += counts_[j];
  return acc / total_;
}

std::vector<CdfPoint> cdf_series(std::span<const double> sample,
                                 std::size_t points) {
  std::vector<CdfPoint> out;
  if (sample.empty() || points < 2) return out;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q =
        static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back(CdfPoint{.x = quantile_sorted(sorted, q), .fraction = q});
  }
  return out;
}

std::string sparkline(std::span<const double> values) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (values.empty()) return {};
  const auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  const double mn = *mn_it;
  const double mx = *mx_it;
  const double span = mx - mn;
  std::string out;
  for (double v : values) {
    const double norm = span > 0.0 ? (v - mn) / span : 0.5;
    const auto level = std::min<std::size_t>(
        7, static_cast<std::size_t>(norm * 8.0));
    out += kLevels[level];
  }
  return out;
}

}  // namespace blameit::util
