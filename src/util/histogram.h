// Fixed-bin histogram plus helpers for rendering paper-style CDF series.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace blameit::util {

/// Equal-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  [[nodiscard]] double count(std::size_t i) const noexcept {
    return counts_[i];
  }
  [[nodiscard]] double total() const noexcept { return total_; }
  /// Fraction of mass at or below the upper edge of bin i.
  [[nodiscard]] double cumulative_fraction(std::size_t i) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// One (x, F(x)) point of a rendered CDF series.
struct CdfPoint {
  double x = 0.0;
  double fraction = 0.0;
};

/// Downsamples a sample's empirical CDF to at most `points` evenly spaced
/// quantiles — the series the figure benches print.
[[nodiscard]] std::vector<CdfPoint> cdf_series(std::span<const double> sample,
                                               std::size_t points = 21);

/// Renders a one-line unicode sparkline of a series (for terminal output).
[[nodiscard]] std::string sparkline(std::span<const double> values);

}  // namespace blameit::util
