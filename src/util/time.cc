#include "util/time.h"

#include <cstdio>

namespace blameit::util {

std::string to_string(MinuteTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "d%d %02d:%02d", t.day(), t.hour_of_day(),
                t.minute_of_day() % kMinutesPerHour);
  return buf;
}

std::string to_string(TimeBucket b) { return to_string(b.start()); }

}  // namespace blameit::util
