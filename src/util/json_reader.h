// Strict JSON reader for declarative inputs (scenario packs). The repo-wide
// policy is one JSON *writer* (util/json.h) and one JSON *reader* — this
// file — so parsing bugs and error-message style live in exactly one place.
//
// Design points:
//  - Recursive-descent RFC 8259 parser, no extensions (no comments, no
//    trailing commas, no NaN/Infinity literals). Inputs are configuration,
//    so strictness beats leniency: a typo should fail loudly.
//  - Every parsed Value remembers the line/column it started at, so schema
//    validators one layer up can say "pack.json:31:7: ..." instead of
//    "bad config".
//  - Numbers keep both views: any JSON number is available as double, and
//    as int64 when it is integral and in range (is_integer()). Callers that
//    want "an integer field" get a precise error, not silent truncation.
//  - Object members preserve document order and duplicate keys are a parse
//    error (a duplicated key in a hand-written pack is always a mistake).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace blameit::util::json {

/// Thrown on malformed input; the message embeds line:column.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line, int column)
      : std::runtime_error(message), line_(line), column_(column) {}
  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// One parsed JSON value (tree-owning).
class Value {
 public:
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  using Member = std::pair<std::string, Value>;

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] std::string_view type_name() const noexcept;

  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::Object;
  }
  /// Number that is exactly representable as int64 (no fraction, in range).
  [[nodiscard]] bool is_integer() const noexcept {
    return type_ == Type::Number && integral_;
  }

  // Accessors throw std::logic_error on type mismatch; schema validation
  // layers are expected to check first and produce friendlier messages.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_integer() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& items() const;      ///< arrays
  [[nodiscard]] const std::vector<Member>& members() const;   ///< objects

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

  /// Where this value started in the source text (1-based).
  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  friend class Parser;

  Type type_ = Type::Null;
  bool bool_ = false;
  bool integral_ = false;
  double number_ = 0.0;
  std::int64_t integer_ = 0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<Member> members_;
  int line_ = 0;
  int column_ = 0;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Throws ParseError.
[[nodiscard]] Value parse(std::string_view text);

/// Reads and parses a file; ParseError messages are prefixed with `path`.
/// Throws std::runtime_error when the file cannot be read.
[[nodiscard]] Value parse_file(const std::string& path);

}  // namespace blameit::util::json
