// Streaming 64-bit trace digest. The scenario runner folds every per-step
// verdict into one of these; two runs (or two thread counts, or two shard
// counts) produced identical output iff the final hex digests match.
//
// Properties that matter here:
//  - Deterministic and platform-independent: all inputs are serialized to
//    little-endian byte sequences before hashing, doubles via their IEEE-754
//    bit pattern, so the digest is a pure function of the logical values.
//  - Order-sensitive: the digest pins the exact verdict sequence, not just
//    the multiset — reordering two blames is a real difference.
//  - NOT cryptographic. This is a drift tripwire (FNV-1a with a splitmix64
//    finalizer), fine for CI golden files, useless against an adversary.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace blameit::util {

class Digest64 {
 public:
  Digest64& update_bytes(const void* data, std::size_t size) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ = (state_ ^ bytes[i]) * kFnvPrime;
    }
    return *this;
  }

  Digest64& update(std::uint64_t v) noexcept {
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<unsigned char>(v >> (8 * i));
    }
    return update_bytes(buf, sizeof(buf));
  }
  Digest64& update(std::int64_t v) noexcept {
    return update(static_cast<std::uint64_t>(v));
  }
  Digest64& update(std::uint32_t v) noexcept {
    return update(static_cast<std::uint64_t>(v));
  }
  Digest64& update(int v) noexcept {
    return update(static_cast<std::int64_t>(v));
  }
  Digest64& update(bool v) noexcept {
    return update(static_cast<std::uint64_t>(v ? 1 : 0));
  }
  Digest64& update(double v) noexcept {
    // +0.0 and -0.0 hash differently; that is intended — the digest tracks
    // bit-exact output, which is the determinism contract being verified.
    return update(std::bit_cast<std::uint64_t>(v));
  }
  Digest64& update(std::string_view s) noexcept {
    update(static_cast<std::uint64_t>(s.size()));  // length-prefix: no
    return update_bytes(s.data(), s.size());       // concatenation aliasing
  }

  /// Finalized value (the running state passed through an avalanche mix so
  /// short inputs still differ in every output bit).
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t z = state_;
    z ^= z >> 30;
    z *= 0xBF58476D1CE4E5B9ull;
    z ^= z >> 27;
    z *= 0x94D049BB133111EBull;
    z ^= z >> 31;
    return z;
  }

  /// 16 lowercase hex characters of value().
  [[nodiscard]] std::string hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    const std::uint64_t v = value();
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i) {
      out[static_cast<std::size_t>(i)] =
          kDigits[(v >> (60 - 4 * i)) & 0xF];
    }
    return out;
  }

 private:
  static constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
  static constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;
  std::uint64_t state_ = kFnvOffset;
};

}  // namespace blameit::util
