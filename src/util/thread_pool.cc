#include "util/thread_pool.h"

#include <stdexcept>

namespace blameit::util {

int ThreadPool::resolve_threads(int requested) noexcept {
  if (requested > 0) return requested;
  const auto hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(int threads) {
  threads = resolve_threads(threads);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{mutex_};
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::claim_jobs(const std::function<void(int)>& fn, int jobs) {
  for (;;) {
    const int job = next_job_.fetch_add(1, std::memory_order_relaxed);
    if (job >= jobs) return;
    try {
      fn(job);
    } catch (...) {
      std::lock_guard lock{mutex_};
      if (!error_) error_ = std::current_exception();
    }
  }
}

void ThreadPool::run(int jobs, const std::function<void(int)>& fn) {
  if (jobs <= 0) return;
  if (workers_.empty()) {
    for (int job = 0; job < jobs; ++job) fn(job);
    return;
  }
  {
    std::lock_guard lock{mutex_};
    fn_ = &fn;
    jobs_ = jobs;
    next_job_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  claim_jobs(fn, jobs);  // the caller is one of the workers
  std::unique_lock lock{mutex_};
  done_cv_.wait(lock, [&] { return active_ == 0; });
  fn_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    int jobs = 0;
    {
      std::unique_lock lock{mutex_};
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      jobs = jobs_;
    }
    claim_jobs(*fn, jobs);
    {
      std::lock_guard lock{mutex_};
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace blameit::util
