// Fixed-capacity single-producer/single-consumer ring buffer — the lock-free
// record handoff under the ingest engine (one ring per producer→shard pair).
//
// Layout and ordering:
//  - Power-of-two capacity; `tail_` (producer-owned) and `head_`
//    (consumer-owned) are monotonically increasing item sequence numbers on
//    their own cache lines, so the two sides never false-share. Each side
//    keeps a cached copy of the other's index and refreshes it only when the
//    cached view says "full"/"empty" — the common-case push/pop touches no
//    foreign cache line at all.
//  - Publication is a release store of `tail_` (producer) / `head_`
//    (consumer) after the slots are written/consumed; the other side pairs
//    it with an acquire load. Bulk push/pop moves a whole span per index
//    store, which is what makes batched record blocks cheap.
//
// Backpressure is spin-then-park: a full push (or empty blocking pop) spins
// with a pause ladder, then parks on a mutex/condvar. The park wait is
// bounded (it re-checks every few milliseconds), so a lost wakeup in the
// flag/notify race costs one interval, never a deadlock — correctness does
// not depend on the doorbell. Parks are counted on both sides; they are the
// ring's backpressure signal.
//
// close() is the shutdown valve, mirroring ingest::BoundedQueue: it stops
// admission (push_all drops the remainder and counts it), wakes both sides,
// and lets the consumer keep draining what was already published. wake() is
// a spurious consumer wakeup used by side channels ("a control message is
// waiting"): pop_wait returns 0 so the caller can poll its other sources.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

namespace blameit::util {

/// What happened to a push_all(): completed without stalling, completed but
/// parked at least once (backpressure), or hit a closed ring (the remainder
/// was dropped and counted).
enum class RingPush : std::uint8_t { Ok, OkAfterParking, Closed };

namespace detail {
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}
}  // namespace detail

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2). `spin_limit` is
  /// the number of pause iterations before a stalled side parks.
  explicit SpscRing(std::size_t min_capacity, std::size_t spin_limit = 256)
      : spin_limit_(spin_limit) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  // ---- producer side (one thread) ----

  /// Moves as many of items[0..n) into the ring as fit right now; returns
  /// how many. Never blocks. Admits nothing once closed.
  std::size_t try_push(T* items, std::size_t n) {
    if (n == 0 || closed_.load(std::memory_order_acquire)) return 0;
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = capacity() - static_cast<std::size_t>(tail - head_cache_);
    if (free < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = capacity() - static_cast<std::size_t>(tail - head_cache_);
      if (free == 0) return 0;
    }
    const std::size_t count = n < free ? n : free;
    for (std::size_t i = 0; i < count; ++i) {
      slots_[static_cast<std::size_t>(tail + i) & mask_] = std::move(items[i]);
    }
    tail_.store(tail + count, std::memory_order_release);
    const auto size = static_cast<std::size_t>(tail + count - head_cache_);
    if (size > high_water_.load(std::memory_order_relaxed)) {
      high_water_.store(size, std::memory_order_relaxed);
    }
    if (consumer_parked_.load(std::memory_order_relaxed)) notify();
    return count;
  }

  /// Pushes ALL n items, spinning then parking while the ring is full. If
  /// the ring is closed (before or during the wait) the not-yet-pushed
  /// remainder is dropped and counted in dropped_after_close().
  RingPush push_all(T* items, std::size_t n) {
    std::size_t done = 0;
    std::size_t spins = 0;
    bool parked = false;
    while (done < n) {
      if (closed_.load(std::memory_order_acquire)) {
        dropped_after_close_.fetch_add(n - done, std::memory_order_relaxed);
        return RingPush::Closed;
      }
      const std::size_t k = try_push(items + done, n - done);
      done += k;
      if (k > 0) {
        spins = 0;
      } else if (++spins <= spin_limit_) {
        detail::cpu_relax();
      } else {
        park_producer();
        parked = true;
        spins = 0;
      }
    }
    return parked ? RingPush::OkAfterParking : RingPush::Ok;
  }

  // ---- consumer side (one thread) ----

  /// Moves up to `max` items into out[]; returns how many (0 = empty).
  std::size_t try_pop(T* out, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(tail_cache_ - head);
    if (avail == 0) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(tail_cache_ - head);
      if (avail == 0) return 0;
    }
    const std::size_t count = max < avail ? max : avail;
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = std::move(slots_[static_cast<std::size_t>(head + i) & mask_]);
    }
    head_.store(head + count, std::memory_order_release);
    if (producer_parked_.load(std::memory_order_relaxed)) notify();
    return count;
  }

  /// Blocks (spin, then park) until items arrive, wake() is rung, or the
  /// ring is closed and drained. Returns the number popped; 0 means "no
  /// data" — check closed() / your side channel and call again.
  std::size_t pop_wait(T* out, std::size_t max) {
    std::size_t spins = 0;
    for (;;) {
      const std::size_t n = try_pop(out, max);
      if (n > 0) return n;
      if (wake_pending_.exchange(false, std::memory_order_acq_rel)) return 0;
      if (closed_.load(std::memory_order_acquire)) {
        // Closed: one more drain attempt covers a push that raced close.
        return try_pop(out, max);
      }
      if (++spins <= spin_limit_) {
        detail::cpu_relax();
      } else {
        park_consumer();
        spins = 0;
      }
    }
  }

  // ---- either side ----

  /// Spurious consumer wakeup: the next (or current) pop_wait returns 0
  /// once, so the caller can service a side channel.
  void wake() {
    wake_pending_.store(true, std::memory_order_release);
    if (consumer_parked_.load(std::memory_order_relaxed)) notify();
  }

  /// Stops admission and wakes both sides; already-published items remain
  /// poppable. Idempotent.
  void close() {
    closed_.store(true, std::memory_order_release);
    notify();
  }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }
  /// Items ever published / consumed (monotone sequence numbers).
  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return tail_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t popped() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }
  /// Instantaneous occupancy; approximate while both sides run.
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }
  [[nodiscard]] std::size_t high_water() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t producer_parks() const noexcept {
    return producer_parks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t consumer_parks() const noexcept {
    return consumer_parks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped_after_close() const noexcept {
    return dropped_after_close_.load(std::memory_order_relaxed);
  }

 private:
  /// Bounded park interval: a lost doorbell wakeup self-heals within one
  /// interval, so no flag/notify interleaving can deadlock the ring.
  static constexpr auto kParkInterval = std::chrono::milliseconds(2);

  void park_producer() {
    producer_parks_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock lock{mutex_};
    producer_parked_.store(true, std::memory_order_relaxed);
    cv_.wait_for(lock, kParkInterval, [&] {
      return closed_.load(std::memory_order_relaxed) ||
             static_cast<std::size_t>(tail_.load(std::memory_order_relaxed) -
                                      head_.load(std::memory_order_acquire)) <
                 capacity();
    });
    producer_parked_.store(false, std::memory_order_relaxed);
  }

  void park_consumer() {
    consumer_parks_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock lock{mutex_};
    consumer_parked_.store(true, std::memory_order_relaxed);
    cv_.wait_for(lock, kParkInterval, [&] {
      return closed_.load(std::memory_order_relaxed) ||
             wake_pending_.load(std::memory_order_relaxed) ||
             tail_.load(std::memory_order_acquire) !=
                 head_.load(std::memory_order_relaxed);
    });
    consumer_parked_.store(false, std::memory_order_relaxed);
  }

  void notify() {
    std::lock_guard lock{mutex_};
    cv_.notify_all();
  }

  std::size_t mask_ = 0;
  std::size_t spin_limit_;
  std::unique_ptr<T[]> slots_;

  // Producer-owned line: tail plus the producer's cached view of head.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;

  // Consumer-owned line.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;

  // Shared, rarely-touched state (parking, shutdown, stats).
  alignas(64) std::atomic<bool> closed_{false};
  std::atomic<bool> wake_pending_{false};
  std::atomic<bool> producer_parked_{false};
  std::atomic<bool> consumer_parked_{false};
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::uint64_t> producer_parks_{0};
  std::atomic<std::uint64_t> consumer_parks_{0};
  std::atomic<std::uint64_t> dropped_after_close_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace blameit::util
