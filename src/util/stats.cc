#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace blameit::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double median_inplace(std::span<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  const auto mid_it = xs.begin() + static_cast<std::ptrdiff_t>(mid);
  std::nth_element(xs.begin(), mid_it, xs.end());
  const double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  // Even count: interpolate between the two middle order statistics with the
  // same arithmetic quantile_sorted() uses, so results stay bit-identical to
  // the sort-based path.
  const double lo = *std::max_element(xs.begin(), mid_it);
  return lo + 0.5 * (hi - lo);
}

double median(std::span<const double> xs) {
  static thread_local std::vector<double> scratch;
  scratch.assign(xs.begin(), xs.end());
  return median_inplace(scratch);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> sample)
    : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::inverse(double q) const {
  return quantile_sorted(sorted_, q);
}

namespace {
// Asymptotic Kolmogorov distribution: Q(lambda) = 2 sum (-1)^{j-1} e^{-2 j^2 lambda^2}.
double kolmogorov_q(double lambda) {
  if (lambda < 1e-8) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}
}  // namespace

KsResult ks_test(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument{"ks_test: empty sample"};
  }
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const auto na = static_cast<double>(sa.size());
  const auto nb = static_cast<double>(sb.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    d = std::max(d, std::abs(static_cast<double>(ia) / na -
                             static_cast<double>(ib) / nb));
  }

  const double ne = na * nb / (na + nb);
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  return KsResult{.statistic = d, .p_value = kolmogorov_q(lambda)};
}

}  // namespace blameit::util
