// One JSON emitter for the whole repo. Three subsystems need to write JSON
// (the obs metrics snapshot, the bench reports, and the svc HTTP responses);
// instead of three hand-rolled emitters with three different escaping bugs,
// they all go through this Writer.
//
// Guarantees:
//  - Output is always syntactically valid JSON (RFC 8259) if the begin/end
//    calls balance; misuse (value with no open array, key outside an
//    object, ...) throws std::logic_error rather than emitting garbage.
//  - Strings are escaped: `"` and `\`, the C0 control range as \uOOXX (or
//    the short forms \b \f \n \r \t). Bytes >= 0x80 pass through untouched,
//    so well-formed UTF-8 in means well-formed UTF-8 out.
//  - Numbers are locale-independent (std::to_chars, never printf with its
//    LC_NUMERIC decimal comma) and round-trip exactly (shortest form).
//  - NaN and Infinity, which JSON cannot represent, become `null` — a
//    deliberate policy: a metrics consumer seeing null knows the value was
//    undefined, whereas `nan` would fail its parser outright.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace blameit::util::json {

/// Appends the escaped form of `s` (no surrounding quotes) to `out`.
void append_escaped(std::string& out, std::string_view s);

/// Escaped form of `s`, without quotes.
[[nodiscard]] std::string escape(std::string_view s);

/// `v` as a JSON number token: shortest round-trip form, "null" for
/// NaN/Infinity.
[[nodiscard]] std::string number(double v);

/// Streaming writer for one top-level JSON value. Commas and colons are
/// inserted automatically; the caller only describes structure:
///
///   Writer w;
///   w.begin_object()
///       .key("name").value("qps")
///       .key("runs").begin_array().value(1).value(2.5).end_array()
///    .end_object();
///   w.str();  // {"name":"qps","runs":[1,2.5]}
class Writer {
 public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Next member's name; must be directly inside an object, and must be
  /// followed by exactly one value (or begin_object/begin_array).
  Writer& key(std::string_view k);

  Writer& value(std::string_view s);
  Writer& value(const char* s) { return value(std::string_view{s}); }
  Writer& value(double v);
  Writer& value(std::int64_t v);
  Writer& value(std::uint64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  Writer& value(bool v);
  Writer& null();

  /// key(k) + value(v) in one call.
  template <typename T>
  Writer& member(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// True once exactly one complete top-level value has been written.
  [[nodiscard]] bool complete() const noexcept {
    return stack_.empty() && wrote_top_level_;
  }

  /// The serialized document. Throws std::logic_error while incomplete —
  /// returning a prefix would hand the caller invalid JSON.
  [[nodiscard]] const std::string& str() const&;
  [[nodiscard]] std::string str() &&;

 private:
  enum class Frame : std::uint8_t { Object, Array };

  void on_value_start();  // comma bookkeeping + misuse checks

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool pending_key_ = false;     // key() emitted, value required next
  bool wrote_top_level_ = false;
};

}  // namespace blameit::util::json
