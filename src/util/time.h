// Simulation time: minute-resolution timestamps and the 5-minute buckets the
// paper's quartets are keyed on (§2.1).
//
// All telemetry is stamped with a MinuteTime (minutes since simulation epoch).
// TimeBucket quantizes to the paper's 5-minute analysis window. Helpers expose
// calendar structure (hour-of-day, day index, weekend) for the diurnal client
// population model and the "same 5-minute window in previous days" client
// predictor (§5.3).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace blameit::util {

inline constexpr int kMinutesPerHour = 60;
inline constexpr int kMinutesPerDay = 24 * kMinutesPerHour;
inline constexpr int kBucketMinutes = 5;  // quartet time granularity (§2.1)
inline constexpr int kBucketsPerDay = kMinutesPerDay / kBucketMinutes;

/// A point in simulated time, minutes since the simulation epoch (day 0,
/// 00:00). The epoch is defined to fall on a Monday so weekday/weekend
/// structure is deterministic.
struct MinuteTime {
  std::int64_t minutes = 0;

  constexpr auto operator<=>(const MinuteTime&) const = default;

  [[nodiscard]] constexpr int day() const noexcept {
    return static_cast<int>(minutes / kMinutesPerDay);
  }
  [[nodiscard]] constexpr int minute_of_day() const noexcept {
    return static_cast<int>(minutes % kMinutesPerDay);
  }
  [[nodiscard]] constexpr int hour_of_day() const noexcept {
    return minute_of_day() / kMinutesPerHour;
  }
  /// 0 = Monday ... 6 = Sunday.
  [[nodiscard]] constexpr int day_of_week() const noexcept {
    return day() % 7;
  }
  [[nodiscard]] constexpr bool is_weekend() const noexcept {
    return day_of_week() >= 5;
  }

  [[nodiscard]] constexpr MinuteTime plus_minutes(std::int64_t m) const noexcept {
    return MinuteTime{minutes + m};
  }
  [[nodiscard]] constexpr MinuteTime plus_days(std::int64_t d) const noexcept {
    return MinuteTime{minutes + d * kMinutesPerDay};
  }

  static constexpr MinuteTime from_days(std::int64_t d) noexcept {
    return MinuteTime{d * kMinutesPerDay};
  }
  static constexpr MinuteTime from_day_hour(std::int64_t d, int h,
                                            int m = 0) noexcept {
    return MinuteTime{d * kMinutesPerDay + h * kMinutesPerHour + m};
  }
};

/// Index of a 5-minute bucket since the epoch. Quartets are keyed on this.
struct TimeBucket {
  std::int64_t index = 0;

  constexpr auto operator<=>(const TimeBucket&) const = default;

  [[nodiscard]] constexpr MinuteTime start() const noexcept {
    return MinuteTime{index * kBucketMinutes};
  }
  [[nodiscard]] constexpr int day() const noexcept {
    return static_cast<int>(index / kBucketsPerDay);
  }
  /// Bucket position within its day, [0, kBucketsPerDay). The client
  /// predictor matches this across days ("same 5-minute window", §5.3).
  [[nodiscard]] constexpr int bucket_of_day() const noexcept {
    return static_cast<int>(index % kBucketsPerDay);
  }
  [[nodiscard]] constexpr TimeBucket next() const noexcept {
    return TimeBucket{index + 1};
  }
  [[nodiscard]] constexpr TimeBucket prev() const noexcept {
    return TimeBucket{index - 1};
  }
  [[nodiscard]] constexpr TimeBucket plus_days(std::int64_t d) const noexcept {
    return TimeBucket{index + d * kBucketsPerDay};
  }

  static constexpr TimeBucket of(MinuteTime t) noexcept {
    return TimeBucket{t.minutes / kBucketMinutes};
  }
};

/// "d3 14:05" style rendering for logs and reports.
[[nodiscard]] std::string to_string(MinuteTime t);
[[nodiscard]] std::string to_string(TimeBucket b);

}  // namespace blameit::util
