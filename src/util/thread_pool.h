// Fixed-size worker pool for the analytics hot paths. The design goal is
// deterministic fork/join parallelism — run(jobs, fn) executes fn(0..jobs-1)
// exactly once each and blocks until all finish — NOT a general task queue.
// Callers own the determinism argument: jobs must not depend on execution
// order (the passive localizer shards by cloud location so every job touches
// disjoint state, then merges in a fixed order).
//
// The calling thread participates in the work, so ThreadPool{n} gives n-way
// parallelism with n-1 spawned threads; ThreadPool{1} spawns nothing and
// run() degenerates to an inline loop.
//
// Threading contract: run() must not be called concurrently or re-entrantly
// (no nested run() from inside a job).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace blameit::util {

class ThreadPool {
 public:
  /// `threads` is the total parallelism (including the calling thread);
  /// 0 means one thread per hardware core.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism of run(): spawned workers + the calling thread.
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs fn(j) for every j in [0, jobs), distributing jobs across the pool
  /// via an atomic claim counter; blocks until all jobs completed. The first
  /// exception thrown by any job is rethrown here (remaining jobs still
  /// run — jobs are expected not to throw in practice).
  void run(int jobs, const std::function<void(int)>& fn);

  /// Resolves the `0 = auto` convention: hardware concurrency, at least 1.
  [[nodiscard]] static int resolve_threads(int requested) noexcept;

 private:
  void worker_loop();
  void claim_jobs(const std::function<void(int)>& fn, int jobs);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* fn_ = nullptr;  // valid for one generation
  int jobs_ = 0;
  std::atomic<int> next_job_{0};
  int active_ = 0;              ///< workers still inside the current generation
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace blameit::util
