// Fixed-width text tables and CSV output for the benchmark harnesses. Every
// figure/table bench renders its series through this so the output format is
// uniform and machine-parsable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace blameit::util {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  TextTable& add_row(std::vector<std::string> cells);

  /// Renders with column separators and a rule under the header.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  /// Same data as CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
[[nodiscard]] std::string fmt(double v, int decimals = 2);
[[nodiscard]] std::string fmt_pct(double fraction, int decimals = 1);
[[nodiscard]] std::string fmt_count(std::uint64_t n);

}  // namespace blameit::util
