// Descriptive statistics used throughout the analysis pipeline: streaming
// summaries, quantiles, empirical CDFs (the paper reports most results as
// CDFs), and the two-sample Kolmogorov-Smirnov test used to validate quartet
// homogeneity (§2.1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace blameit::util {

/// Streaming count/mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a sample; 0 for an empty sample.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Quantile q in [0,1] via linear interpolation on the sorted copy of xs.
/// Returns 0 for an empty sample.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Median = quantile(0.5), but computed with nth_element (O(n)) instead of a
/// full sort — this sits on the expected-RTT learner's hot path (§4.3). Uses
/// a reused thread-local scratch buffer, so no per-call allocation either.
/// Numerically identical to quantile(xs, 0.5).
[[nodiscard]] double median(std::span<const double> xs);

/// median() over a caller-owned buffer it may permute (no copy at all).
[[nodiscard]] double median_inplace(std::span<double> xs);

/// Quantile over data already sorted ascending (no copy).
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Immutable empirical CDF of a sample.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> sample);

  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

  /// P(X <= x).
  [[nodiscard]] double at(double x) const noexcept;

  /// Inverse CDF (quantile function), q in [0,1].
  [[nodiscard]] double inverse(double q) const;

  /// P(X > x) — survival function; used by the duration predictor (§5.3).
  [[nodiscard]] double survival(double x) const noexcept { return 1.0 - at(x); }

  [[nodiscard]] const std::vector<double>& sorted_values() const noexcept {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
};

/// Result of a two-sample Kolmogorov-Smirnov test.
struct KsResult {
  double statistic = 0.0;  ///< sup |F1 - F2|
  double p_value = 1.0;    ///< asymptotic Kolmogorov distribution approximation
  [[nodiscard]] bool same_distribution(double alpha = 0.05) const noexcept {
    return p_value >= alpha;
  }
};

/// Two-sample KS test. The paper splits each quartet's RTT samples in half and
/// checks both halves come from the same distribution (§2.1); we reuse the
/// test for that purpose and in the trace generator's self-checks.
[[nodiscard]] KsResult ks_test(std::span<const double> a,
                               std::span<const double> b);

}  // namespace blameit::util
