// Chunked bump allocator backing per-shard ingest state. One arena is owned
// by one shard worker (no locking); allocations never move and are never
// individually freed — callers that recycle memory (the quartet accumulator
// tables) keep their own free lists of arena blocks. Destroying the arena
// releases everything at once.
//
// Only trivially-destructible payloads belong here: the arena runs no
// destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace blameit::util {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 256 * 1024)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage, suitably aligned. Requests larger than the
  /// default chunk get a dedicated chunk.
  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    if (!chunks_.empty()) {
      Chunk& c = chunks_.back();
      const std::size_t aligned = (c.used + align - 1) & ~(align - 1);
      if (aligned + bytes <= c.size) {
        c.used = aligned + bytes;
        used_ += bytes;
        return c.data.get() + aligned;
      }
    }
    const std::size_t size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
    // operator new guarantees alignment for any fundamental type; the slot
    // structs allocated here need at most alignof(std::max_align_t).
    chunks_.push_back(Chunk{std::unique_ptr<std::byte[]>(new std::byte[size]),
                            size, bytes});
    reserved_ += size;
    used_ += bytes;
    return chunks_.back().data.get();
  }

  template <typename T>
  [[nodiscard]] T* allocate_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    return reserved_;
  }
  [[nodiscard]] std::size_t bytes_used() const noexcept { return used_; }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace blameit::util
