#include "util/json_reader.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace blameit::util::json {

std::string_view Value::type_name() const noexcept {
  switch (type_) {
    case Type::Null: return "null";
    case Type::Bool: return "boolean";
    case Type::Number: return "number";
    case Type::String: return "string";
    case Type::Array: return "array";
    case Type::Object: return "object";
  }
  return "unknown";
}

namespace {

[[noreturn]] void type_error(const Value& v, std::string_view wanted) {
  throw std::logic_error{"json::Value: wanted " + std::string{wanted} +
                         ", holds " + std::string{v.type_name()}};
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::Bool) type_error(*this, "boolean");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::Number) type_error(*this, "number");
  return number_;
}

std::int64_t Value::as_integer() const {
  if (type_ != Type::Number || !integral_) type_error(*this, "integer");
  return integer_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) type_error(*this, "string");
  return string_;
}

const std::vector<Value>& Value::items() const {
  if (type_ != Type::Array) type_error(*this, "array");
  return items_;
}

const std::vector<Value::Member>& Value::members() const {
  if (type_ != Type::Object) type_error(*this, "object");
  return members_;
}

const Value* Value::find(std::string_view key) const noexcept {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_whitespace();
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing content after the top-level value");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError{std::to_string(line_) + ":" + std::to_string(column_) +
                         ": " + what,
                     line_, column_};
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_whitespace() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        return;
      }
    }
  }

  void expect(char c, const char* where) {
    if (eof() || peek() != c) {
      fail(std::string{"expected '"} + c + "' " + where);
    }
    advance();
  }

  Value parse_value() {
    if (eof()) fail("unexpected end of input, expected a value");
    Value v;
    v.line_ = line_;
    v.column_ = column_;
    switch (peek()) {
      case '{': parse_object(v); break;
      case '[': parse_array(v); break;
      case '"':
        v.type_ = Value::Type::String;
        v.string_ = parse_string();
        break;
      case 't':
      case 'f':
        v.type_ = Value::Type::Bool;
        v.bool_ = parse_keyword();
        break;
      case 'n':
        consume_keyword("null");
        v.type_ = Value::Type::Null;
        break;
      default: parse_number(v); break;
    }
    return v;
  }

  void parse_object(Value& v) {
    v.type_ = Value::Type::Object;
    advance();  // '{'
    skip_whitespace();
    if (!eof() && peek() == '}') {
      advance();
      return;
    }
    for (;;) {
      skip_whitespace();
      if (eof() || peek() != '"') fail("expected a quoted member name");
      std::string key = parse_string();
      for (const auto& [existing, value] : v.members_) {
        (void)value;
        if (existing == key) {
          fail("duplicate member \"" + key + "\"");
        }
      }
      skip_whitespace();
      expect(':', "after member name");
      skip_whitespace();
      v.members_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect('}', "to close the object");
      return;
    }
  }

  void parse_array(Value& v) {
    v.type_ = Value::Type::Array;
    advance();  // '['
    skip_whitespace();
    if (!eof() && peek() == ']') {
      advance();
      return;
    }
    for (;;) {
      skip_whitespace();
      v.items_.push_back(parse_value());
      skip_whitespace();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect(']', "to close the array");
      return;
    }
  }

  bool parse_keyword() {
    if (text_.substr(pos_).starts_with("true")) {
      consume_keyword("true");
      return true;
    }
    consume_keyword("false");
    return false;
  }

  void consume_keyword(std::string_view word) {
    if (!text_.substr(pos_).starts_with(word)) {
      fail("invalid literal (expected " + std::string{word} + ")");
    }
    for (std::size_t i = 0; i < word.size(); ++i) advance();
  }

  std::string parse_string() {
    advance();  // opening quote
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = advance();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string (escape it)");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape sequence");
      const char esc = advance();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail(std::string{"unknown escape \\"} + esc);
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    const unsigned cp = parse_hex4();
    // Configuration files are ASCII-leaning; surrogate pairs are accepted
    // but unpaired surrogates are an error rather than silently emitted.
    unsigned code = cp;
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (eof() || peek() != '\\') fail("unpaired UTF-16 surrogate");
      advance();
      if (eof() || peek() != 'u') fail("unpaired UTF-16 surrogate");
      advance();
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired UTF-16 surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("truncated \\u escape");
      const char c = advance();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("non-hex digit in \\u escape");
      }
    }
    return value;
  }

  void parse_number(Value& v) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') advance();
    if (eof() || peek() < '0' || peek() > '9') {
      fail("expected a value (object, array, string, number, true/false/null)");
    }
    while (!eof() && peek() >= '0' && peek() <= '9') advance();
    bool fractional = false;
    if (!eof() && peek() == '.') {
      fractional = true;
      advance();
      if (eof() || peek() < '0' || peek() > '9') {
        fail("digit required after decimal point");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      fractional = true;
      advance();
      if (!eof() && (peek() == '+' || peek() == '-')) advance();
      if (eof() || peek() < '0' || peek() > '9') {
        fail("digit required in exponent");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') advance();
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    v.type_ = Value::Type::Number;
    const auto [dptr, dec] =
        std::from_chars(token.data(), token.data() + token.size(), v.number_);
    if (dec != std::errc{} || dptr != token.data() + token.size()) {
      fail("unparseable number \"" + std::string{token} + "\"");
    }
    if (!fractional) {
      const auto [iptr, iec] = std::from_chars(
          token.data(), token.data() + token.size(), v.integer_);
      v.integral_ =
          iec == std::errc{} && iptr == token.data() + token.size();
    }
    // A value like 12.0 is still integral in spirit; accept it so packs may
    // write "duration_minutes": 45.0 without a type error.
    if (fractional && std::nearbyint(v.number_) == v.number_ &&
        std::abs(v.number_) <= 9.0e15) {
      v.integral_ = true;
      v.integer_ = static_cast<std::int64_t>(v.number_);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

Value parse(std::string_view text) { return Parser{text}.parse_document(); }

Value parse_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    throw std::runtime_error{path + ": cannot open (" +
                             std::strerror(errno) + ")"};
  }
  std::string text;
  char chunk[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(chunk, 1, sizeof(chunk), f);
    text.append(chunk, n);
    if (n < sizeof(chunk)) break;
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw std::runtime_error{path + ": read error"};
  try {
    return parse(text);
  } catch (const ParseError& e) {
    throw ParseError{path + ":" + e.what(), e.line(), e.column()};
  }
}

}  // namespace blameit::util::json
