#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace blameit::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t key) noexcept {
  std::uint64_t state = seed ^ (key + 0x9E3779B97F4A7C15ull);
  return splitmix64(state);
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 seeding as recommended by the xoshiro authors; avoids the
  // all-zero state that would lock the engine at zero.
  for (auto& word : s_) word = splitmix64(seed);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits into the mantissa: uniform on [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return lo + static_cast<std::int64_t>((*this)());
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  if (n == 0) return 0;
  // Inverse-CDF over the truncated harmonic series would require a table;
  // for simulation purposes we use the rejection-free approximation of
  // sampling u^(1/(1-s)) when s != 1, clamped to the support.
  const double u = uniform();
  double rank;
  if (s == 1.0) {
    rank = std::pow(static_cast<double>(n), u) - 1.0;
  } else {
    const double pow_n = std::pow(static_cast<double>(n), 1.0 - s);
    rank = std::pow(u * (pow_n - 1.0) + 1.0, 1.0 / (1.0 - s)) - 1.0;
  }
  auto idx = static_cast<std::size_t>(rank);
  return idx >= n ? n - 1 : idx;
}

Rng Rng::fork(std::uint64_t key) const noexcept {
  // Mix the parent state with the key; the parent is not advanced.
  std::uint64_t state = s_[0] ^ rotl(s_[3], 13);
  return Rng{hash_combine(splitmix64(state), key)};
}

Rng Rng::fork(std::string_view key) const noexcept {
  return fork(fnv1a(key));
}

}  // namespace blameit::util
