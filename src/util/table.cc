#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace blameit::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument{"TextTable: need at least one column"};
  }
}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"TextTable: row width mismatch"};
  }
  rows_.push_back(std::move(cells));
  return *this;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const auto& cell = row[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string fmt_count(std::uint64_t n) {
  // Groups digits with commas: 1234567 -> "1,234,567".
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace blameit::util
