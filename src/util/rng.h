// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component in the simulator derives its randomness from a
// seeded Rng so that a given (topology seed, trace seed) pair always yields
// byte-identical traces. The engine is xoshiro256** (public domain, Blackman &
// Vigna) seeded via splitmix64, which satisfies UniformRandomBitGenerator and
// can therefore drive <random> distributions.
#pragma once

#include <cstdint>
#include <string_view>

namespace blameit::util {

/// Mixes a 64-bit state into a well-distributed output; used for seeding and
/// for cheap stateless hashing of ids into streams.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless hash of (seed, key) — handy for deriving per-entity substreams.
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t seed,
                                         std::uint64_t key) noexcept;

/// FNV-1a hash of a string, for deriving substreams from names.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s) noexcept;

/// xoshiro256** engine. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xB1A3E17u) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool chance(double p) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  [[nodiscard]] double normal() noexcept;

  /// Normal with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Lognormal: exp(Normal(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Exponential with given mean (not rate). Requires mean > 0.
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Pareto (type I) with scale xm > 0 and shape alpha > 0. Long-tailed;
  /// used for incident durations (§2.3 of the paper).
  [[nodiscard]] double pareto(double xm, double alpha) noexcept;

  /// Zipf-like rank sampler over [0, n): P(k) ∝ 1/(k+1)^s. Used to skew
  /// client activity across prefixes (§2.4).
  [[nodiscard]] std::size_t zipf(std::size_t n, double s) noexcept;

  /// Derives an independent child generator for the given key. Streams for
  /// different keys are statistically independent of the parent and of each
  /// other, so adding a new consumer never perturbs existing ones.
  [[nodiscard]] Rng fork(std::uint64_t key) const noexcept;
  [[nodiscard]] Rng fork(std::string_view key) const noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace blameit::util
