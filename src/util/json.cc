#include "util/json.h"

#include <charconv>
#include <cmath>
#include <stdexcept>
#include <system_error>

namespace blameit::util::json {

void append_escaped(std::string& out, std::string_view s) {
  for (const char ch : s) {
    const auto byte = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (byte < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[byte >> 4];
          out += kHex[byte & 0xf];
        } else {
          out += ch;  // includes bytes >= 0x80: UTF-8 passes through
        }
    }
  }
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  append_escaped(out, s);
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "null";  // cannot happen with a 32-byte buf
  return std::string(buf, end);
}

void Writer::on_value_start() {
  if (stack_.empty()) {
    if (wrote_top_level_) {
      throw std::logic_error{"json::Writer: second top-level value"};
    }
    return;
  }
  if (stack_.back() == Frame::Object) {
    if (!pending_key_) {
      throw std::logic_error{"json::Writer: object member without key()"};
    }
    pending_key_ = false;
    return;
  }
  // Array element.
  if (!first_in_frame_.back()) out_ += ',';
  first_in_frame_.back() = false;
}

Writer& Writer::begin_object() {
  on_value_start();
  out_ += '{';
  stack_.push_back(Frame::Object);
  first_in_frame_.push_back(true);
  return *this;
}

Writer& Writer::end_object() {
  if (stack_.empty() || stack_.back() != Frame::Object || pending_key_) {
    throw std::logic_error{"json::Writer: end_object mismatch"};
  }
  out_ += '}';
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

Writer& Writer::begin_array() {
  on_value_start();
  out_ += '[';
  stack_.push_back(Frame::Array);
  first_in_frame_.push_back(true);
  return *this;
}

Writer& Writer::end_array() {
  if (stack_.empty() || stack_.back() != Frame::Array) {
    throw std::logic_error{"json::Writer: end_array mismatch"};
  }
  out_ += ']';
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

Writer& Writer::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Frame::Object || pending_key_) {
    throw std::logic_error{"json::Writer: key() outside object"};
  }
  if (!first_in_frame_.back()) out_ += ',';
  first_in_frame_.back() = false;
  out_ += '"';
  append_escaped(out_, k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view s) {
  on_value_start();
  out_ += '"';
  append_escaped(out_, s);
  out_ += '"';
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

Writer& Writer::value(double v) {
  on_value_start();
  out_ += number(v);
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  on_value_start();
  out_.append(buf, end);
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  on_value_start();
  out_.append(buf, end);
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

Writer& Writer::value(bool v) {
  on_value_start();
  out_ += v ? "true" : "false";
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

Writer& Writer::null() {
  on_value_start();
  out_ += "null";
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

const std::string& Writer::str() const& {
  if (!complete()) {
    throw std::logic_error{"json::Writer: str() on incomplete document"};
  }
  return out_;
}

std::string Writer::str() && {
  if (!complete()) {
    throw std::logic_error{"json::Writer: str() on incomplete document"};
  }
  return std::move(out_);
}

}  // namespace blameit::util::json
