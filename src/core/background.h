// Background traceroutes and the per-AS baseline store (§5.4).
//
// Baselines — "what does each AS on this path normally contribute" — come
// from infrequent periodic probes (default 2×/day per ⟨location, BGP path⟩,
// phase-staggered so the fleet's probes spread over the day) plus probes
// triggered by BGP churn events from the listener feed. The active phase
// diffs incident-time traceroutes against these baselines.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "store/encoding.h"
#include "net/topology.h"
#include "obs/registry.h"
#include "sim/traceroute.h"
#include "util/time.h"

namespace blameit::core {

/// Last known healthy per-AS contributions for one ⟨location, BGP path⟩.
struct Baseline {
  util::MinuteTime when;
  double cloud_ms = 0.0;
  std::vector<std::pair<net::AsId, double>> contributions;
};

class BaselineStore {
 public:
  void update(net::CloudLocationId location, net::MiddleSegmentId middle,
              Baseline baseline);

  /// Most recent baseline for the path.
  [[nodiscard]] const Baseline* get(net::CloudLocationId location,
                                    net::MiddleSegmentId middle) const;

  /// Newest baseline captured strictly BEFORE `when` — the §5.2 semantics:
  /// the comparison point must predate the incident, or a background probe
  /// taken during the fault would hide the inflation. Returns nullptr when
  /// every retained baseline is at-or-after `when` (all captured mid-fault);
  /// callers must then run their explicit no-baseline path.
  [[nodiscard]] const Baseline* get_before(net::CloudLocationId location,
                                           net::MiddleSegmentId middle,
                                           util::MinuteTime when) const;

  [[nodiscard]] std::size_t size() const noexcept { return baselines_.size(); }

  /// Appends every retained baseline (key-sorted normal form, oldest-first
  /// per path, raw f64 contributions — restore is bit-exact).
  void save(std::string& out) const;
  /// Replaces the store contents from `in`; commits after a clean parse.
  void restore(store::ByteReader& in);

 private:
  /// Bounded per-path history, oldest first.
  static constexpr std::size_t kHistory = 8;
  std::unordered_map<std::uint64_t, std::vector<Baseline>> baselines_;
};

class BackgroundProber {
 public:
  BackgroundProber(const net::Topology* topology,
                   sim::TracerouteEngine* engine, BaselineStore* store,
                   BlameItConfig config = {},
                   obs::Registry* registry = nullptr);

  /// Advances background probing over (prev, now]: issues the periodic
  /// probes whose phase falls due and, when enabled, probes for every BGP
  /// churn event in the interval. Returns the number of probes issued.
  int step(util::MinuteTime prev, util::MinuteTime now);

  /// Number of periodic probes that one day (0, kMinutesPerDay] costs at the
  /// configured cadence — phase-exact, matching what step() fires (for the
  /// §6.5 overhead accounting).
  [[nodiscard]] std::uint64_t periodic_probes_per_day() const;

 private:
  struct Target {
    net::CloudLocationId location;
    net::MiddleSegmentId middle;
    net::Slash24 block;
    int phase_minutes = 0;  ///< stagger offset within the period
  };

  /// (Re)builds the per-⟨location, path⟩ representative target list from the
  /// current routing state.
  void rebuild_targets(util::MinuteTime now);

  void probe(const Target& target, util::MinuteTime now);

  const net::Topology* topology_;
  sim::TracerouteEngine* engine_;
  BaselineStore* store_;
  BlameItConfig config_;
  std::vector<Target> targets_;
  bool targets_dirty_ = true;

  // Instruments (null without a registry).
  obs::Counter* probes_c_ = nullptr;
  obs::Counter* churn_probes_c_ = nullptr;
  obs::Counter* unreached_c_ = nullptr;
  obs::Gauge* targets_g_ = nullptr;
  obs::Gauge* baselines_g_ = nullptr;
};

}  // namespace blameit::core
