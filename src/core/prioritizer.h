// Impact-proportional probe budgeting (§3.2, §5.3): middle-segment issues
// are ranked by their predicted client-time product — expected remaining
// duration × expected clients on the path — and only the top issues within
// the traceroute budget get on-demand probes.
#pragma once

#include <span>
#include <vector>

#include "core/blame.h"
#include "core/predictors.h"
#include "net/bgp.h"
#include "net/cloud.h"

namespace blameit::core {

/// Packed aggregate key for a ⟨cloud location, BGP path⟩ tuple.
[[nodiscard]] constexpr std::uint64_t middle_issue_key(
    net::CloudLocationId location, net::MiddleSegmentId middle) noexcept {
  return (std::uint64_t{location.value} << 32) | middle.value;
}

/// One middle-segment issue aggregated from a bucket's Middle blames.
struct MiddleIssue {
  net::CloudLocationId location;
  net::MiddleSegmentId middle;
  /// A client /24 on the path, used as the traceroute target.
  net::Slash24 representative_block;
  /// Users affected in the current bucket (from quartet sample volumes).
  double observed_users = 0.0;
  /// How long the issue has been running, in buckets (incident tracking).
  int elapsed_buckets = 1;

  // Filled by the prioritizer:
  double predicted_remaining_buckets = 0.0;
  double predicted_users = 0.0;
  double client_time_product = 0.0;
};

/// Groups Middle blame results into per-⟨location, BGP path⟩ issues.
/// `users_of` converts a quartet to its user estimate.
[[nodiscard]] std::vector<MiddleIssue> collect_middle_issues(
    std::span<const BlameResult> results, double samples_per_client);

class ProbePrioritizer {
 public:
  ProbePrioritizer(const DurationPredictor* durations,
                   const ClientVolumePredictor* clients);

  /// Scores every issue's client-time product and returns them ranked
  /// descending; callers take the top `budget`.
  [[nodiscard]] std::vector<MiddleIssue> rank(std::vector<MiddleIssue> issues,
                                              util::TimeBucket bucket) const;

 private:
  const DurationPredictor* durations_;
  const ClientVolumePredictor* clients_;
};

}  // namespace blameit::core
