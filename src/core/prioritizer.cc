#include "core/prioritizer.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace blameit::core {

std::vector<MiddleIssue> collect_middle_issues(
    std::span<const BlameResult> results, double samples_per_client) {
  if (samples_per_client <= 0.0) {
    throw std::invalid_argument{
        "collect_middle_issues: samples_per_client must be > 0"};
  }
  std::unordered_map<std::uint64_t, MiddleIssue> issues;
  for (const auto& result : results) {
    if (result.blame != Blame::Middle) continue;
    const auto& q = result.quartet;
    const auto key = middle_issue_key(q.key.location, q.middle);
    auto [it, inserted] = issues.try_emplace(key);
    MiddleIssue& issue = it->second;
    if (inserted) {
      issue.location = q.key.location;
      issue.middle = q.middle;
      issue.representative_block = q.key.block;
    }
    issue.observed_users += q.sample_count / samples_per_client;
  }
  std::vector<MiddleIssue> out;
  out.reserve(issues.size());
  for (auto& [key, issue] : issues) out.push_back(std::move(issue));
  // Deterministic order before ranking.
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return middle_issue_key(a.location, a.middle) <
           middle_issue_key(b.location, b.middle);
  });
  return out;
}

ProbePrioritizer::ProbePrioritizer(const DurationPredictor* durations,
                                   const ClientVolumePredictor* clients)
    : durations_(durations), clients_(clients) {
  if (!durations_ || !clients_) {
    throw std::invalid_argument{"ProbePrioritizer: null predictor"};
  }
}

std::vector<MiddleIssue> ProbePrioritizer::rank(
    std::vector<MiddleIssue> issues, util::TimeBucket bucket) const {
  for (auto& issue : issues) {
    const auto key = middle_issue_key(issue.location, issue.middle);
    // The issue is live at ranking time, so at least the rest of the
    // current bucket remains even when history says "ends immediately" —
    // without this floor, fleeting-history noise zeroes every fresh issue's
    // priority and the budget can't tie-break them by user impact.
    issue.predicted_remaining_buckets = std::max(
        0.5, durations_->expected_remaining(key, issue.elapsed_buckets));
    const double predicted = clients_->predict(key, bucket);
    // Fall back to what we see right now when the path has no history.
    issue.predicted_users =
        predicted > 0.0 ? predicted : issue.observed_users;
    issue.client_time_product =
        issue.predicted_remaining_buckets * issue.predicted_users;
  }
  std::sort(issues.begin(), issues.end(), [](const MiddleIssue& a,
                                             const MiddleIssue& b) {
    if (a.client_time_product != b.client_time_product) {
      return a.client_time_product > b.client_time_product;
    }
    return middle_issue_key(a.location, a.middle) <
           middle_issue_key(b.location, b.middle);
  });
  return issues;
}

}  // namespace blameit::core
