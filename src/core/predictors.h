// Predictors behind the client-time product (§5.3):
//  - DurationPredictor: from historical incident durations, the expected
//    additional duration of an ongoing issue given it has lasted t so far
//    (Σ_T P(T|t)·T with T in 5-minute increments), and
//  - ClientVolumePredictor: expected active clients on a BGP path, the mean
//    of the same 5-minute window over the past few days (which the paper
//    found beats recent-history extrapolation).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/encoding.h"
#include "util/time.h"

namespace blameit::core {

class DurationPredictor {
 public:
  /// `horizon_buckets` caps the expected-remaining sum (T_max).
  explicit DurationPredictor(int horizon_buckets = 48);

  /// Records a closed incident's total duration (in 5-min buckets) for an
  /// aggregate key (packed ⟨location, BGP path⟩).
  void record_duration(std::uint64_t key, int duration_buckets);

  /// E[T_extra | lasted elapsed_buckets], in buckets. Uses the key's own
  /// duration history when it has enough closed incidents, else the global
  /// pool across keys; with no history at all, returns a prior of one
  /// bucket (optimistically short — most issues are fleeting, §2.3).
  [[nodiscard]] double expected_remaining(std::uint64_t key,
                                          int elapsed_buckets) const;

  /// P(duration > elapsed + extra | duration > elapsed) from the pool that
  /// would be used for `key`. Exposed for tests.
  [[nodiscard]] double conditional_survival(std::uint64_t key,
                                            int elapsed_buckets,
                                            int extra_buckets) const;

  [[nodiscard]] std::size_t history_count(std::uint64_t key) const;

  /// Appends the full duration history (key-sorted normal form; the global
  /// pool keeps its arrival order, which restore reproduces exactly).
  void save(std::string& out) const;
  /// Replaces the history from `in`; commits only after a clean parse.
  void restore(store::ByteReader& in);

 private:
  [[nodiscard]] const std::vector<int>& pool_for(std::uint64_t key) const;
  [[nodiscard]] static double expected_remaining_from(
      const std::vector<int>& durations, int elapsed, int horizon);

  int horizon_;
  std::unordered_map<std::uint64_t, std::vector<int>> per_key_;
  std::vector<int> global_;
  /// Minimum closed incidents before a key's own history is trusted.
  static constexpr std::size_t kMinKeyHistory = 8;
};

class ClientVolumePredictor {
 public:
  /// `window_days` is how many past days contribute (§5.3 uses 3).
  explicit ClientVolumePredictor(int window_days = 3);

  /// Records the observed active clients for `key` in `bucket` (fed every
  /// bucket, incident or not).
  void observe(std::uint64_t key, util::TimeBucket bucket, double users);

  /// Mean users for the same bucket-of-day over the past window_days days;
  /// 0 when no history. Excludes the current day.
  [[nodiscard]] double predict(std::uint64_t key,
                               util::TimeBucket bucket) const;

  /// Drops observations older than the window (call once per day).
  void evict_stale(int current_day);

  /// Appends all per-⟨key, bucket-of-day⟩ histories in key-sorted normal
  /// form (deque order preserved within a slot).
  void save(std::string& out) const;
  /// Replaces the history from `in`; commits only after a clean parse.
  void restore(store::ByteReader& in);

 private:
  struct Slot {
    // (day, users) pairs for one bucket-of-day, most recent last.
    std::deque<std::pair<int, double>> history;
  };
  int window_days_;
  // key -> bucket_of_day -> history
  std::unordered_map<std::uint64_t, std::unordered_map<int, Slot>> data_;
};

}  // namespace blameit::core
