// Tunables of the BlameIt fault localizer, with the paper's deployed values
// as defaults.
#pragma once

#include <cstdint>

namespace blameit::core {

struct BlameItConfig {
  /// Bad-fraction threshold τ for blaming a cloud node or middle segment
  /// (§4.2: "we set τ = 0.8 and it works well in practice").
  double tau = 0.8;

  /// Minimum quartets a group needs before its bad fraction is trusted
  /// (Algorithm 1 lines 10/14: "Num-Quartets[...] <= 5 → insufficient").
  int min_group_quartets = 5;

  /// Days of history behind each expected-RTT median (§4.3).
  int expected_rtt_window_days = 14;

  /// Worker threads for the passive analytics phase (Algorithm 1 sharded by
  /// cloud location). 1 = serial, 0 = one per hardware core. Output is
  /// bit-identical for every value — this is purely a throughput knob.
  int analytics_threads = 1;

  /// Serve expected-RTT medians from the per-⟨key, day⟩ cache (recompute
  /// only at day rollover). Off = legacy recompute-per-query behavior; kept
  /// as an A/B knob for the perf benches.
  bool memoize_expected_rtt = true;

  /// How often the passive job runs (§6.1: every 15 minutes).
  int cadence_minutes = 15;

  /// On-demand traceroutes permitted per cadence interval across the fleet
  /// (§5.3's probing budget).
  int probe_budget_per_run = 10;

  /// Background traceroute period per ⟨location, BGP path⟩ (§5.4: two per
  /// day → 720 minutes).
  int background_period_minutes = 12 * 60;

  /// Whether BGP-churn events trigger extra background probes (§5.4).
  bool churn_triggered_probes = true;

  /// Days of per-bucket history for the impacted-client predictor (§5.3:
  /// "average ... in the same time window in the past 3 days").
  int client_predictor_days = 3;

  /// Cap (in 5-min buckets) on the duration predictor's expected-remaining
  /// sum, i.e. T_max in Σ P(T|t)·T (§5.3).
  int duration_horizon_buckets = 48;  // 4 hours

  /// RTT samples per active client, used to estimate affected users from
  /// quartet sample volumes (production counts distinct IPs; the sample
  /// volume is a proportional proxy).
  double samples_per_client_estimate = 2.5;
};

}  // namespace blameit::core
