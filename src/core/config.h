// Tunables of the BlameIt fault localizer, with the paper's deployed values
// as defaults.
#pragma once

#include <cstdint>

#include "store/reservoir_store.h"

namespace blameit::core {

struct BlameItConfig {
  /// Bad-fraction threshold τ for blaming a cloud node or middle segment
  /// (§4.2: "we set τ = 0.8 and it works well in practice").
  double tau = 0.8;

  /// Minimum quartets a group needs before its bad fraction is trusted
  /// (Algorithm 1 lines 10/14: "Num-Quartets[...] <= 5 → insufficient").
  int min_group_quartets = 5;

  /// Days of history behind each expected-RTT median (§4.3).
  int expected_rtt_window_days = 14;

  /// Worker threads for the passive analytics phase (Algorithm 1 sharded by
  /// cloud location). 1 = serial, 0 = one per hardware core. Output is
  /// bit-identical for every value — this is purely a throughput knob.
  int analytics_threads = 1;

  /// Serve expected-RTT medians from the per-⟨key, day⟩ cache (recompute
  /// only at day rollover). Off = legacy recompute-per-query behavior; kept
  /// as an A/B knob for the perf benches.
  bool memoize_expected_rtt = true;

  /// State representation for the expected-RTT learner (and, via the
  /// service config, the verdict store): kHashMap is the original reference
  /// path, kColumnar the memory-bounded sorted-block store. Both are
  /// bit-identical on the same feed — this is a memory/layout knob, never a
  /// results knob.
  store::StateBackend state_backend = store::StateBackend::kHashMap;

  /// How often the passive job runs (§6.1: every 15 minutes).
  int cadence_minutes = 15;

  /// On-demand traceroutes permitted per cadence interval across the fleet
  /// (§5.3's probing budget).
  int probe_budget_per_run = 10;

  /// Background traceroute period per ⟨location, BGP path⟩ (§5.4: two per
  /// day → 720 minutes).
  int background_period_minutes = 12 * 60;

  /// Whether BGP-churn events trigger extra background probes (§5.4).
  bool churn_triggered_probes = true;

  /// Days of per-bucket history for the impacted-client predictor (§5.3:
  /// "average ... in the same time window in the past 3 days").
  int client_predictor_days = 3;

  /// Cap (in 5-min buckets) on the duration predictor's expected-remaining
  /// sum, i.e. T_max in Σ P(T|t)·T (§5.3).
  int duration_horizon_buckets = 48;  // 4 hours

  /// RTT samples per active client, used to estimate affected users from
  /// quartet sample volumes (production counts distinct IPs; the sample
  /// volume is a proportional proxy).
  double samples_per_client_estimate = 2.5;

  // --- Active-phase robustness (measurement-plane failures) -------------
  // Defaults are chosen so a pristine measurement plane (no chaos layer)
  // behaves bit-identically to the pre-hardening pipeline: retries only
  // trigger on retryable failures (loss/truncation, which never occur
  // without chaos), and a quorum of 1 is the single-probe path.

  /// Extra attempts per lost or truncated traceroute. No-route failures are
  /// never retried (they are deterministic until routing changes). Every
  /// attempt — retry or not — is charged against the probe budget.
  int active_probe_retries = 2;

  /// Simulated exponential backoff base: retry r of a probe fires at
  /// now + base * (2^r - 1) minutes (1, 3, 7, ... for base 1).
  int retry_backoff_base_minutes = 1;

  /// Traceroutes per diagnosed issue. With K > 1 the diagnosis diffs the
  /// median-of-K per-AS contributions (outlier results rejected) against
  /// the baseline instead of trusting one noisy probe. 1 = legacy
  /// single-probe behavior, bit-identical to the pre-quorum pipeline.
  int active_quorum_k = 1;

  /// A baseline older than this is stale: the diagnosis still runs but its
  /// confidence is downgraded (default 2 days = 4 missed background
  /// periods at the 2×/day cadence).
  int baseline_stale_minutes = 2 * 24 * 60;

  /// On a truncated (partial-path) probe, the largest per-AS increase must
  /// clear this to name a culprit inside the reached prefix; below it the
  /// diagnosis downgrades to coarse Middle blame (culprit past the
  /// truncation point, or invisible).
  double partial_path_min_increase_ms = 10.0;

  // --- Route-churn resilience (§13) -------------------------------------
  // All knobs default OFF: with every one of them off the pipeline never
  // consults the churn feed in the step loop and its output is bit-identical
  // to the churn-blind pipeline.

  /// On a PathChange churn event, seed the new middle segment's expected-RTT
  /// entry from the old path's baseline (or a same-⟨location, old-path⟩
  /// sibling device class) instead of starting cold (→ Insufficient).
  bool churn_baseline_transfer = false;

  /// Freshness discount multiplied into every served transferred baseline
  /// (≥ 1; the inherited median is assumed slightly optimistic for the new
  /// path until real history accumulates).
  double churn_transfer_discount = 1.1;

  /// Transferred baselines expire after this many days without being
  /// replaced by real history.
  int churn_transfer_max_age_days = 3;

  /// Shield destination-edge cloud blames for /24s that a SteerShift churn
  /// event just moved: re-steered clients inflate the destination location's
  /// cloud group, which must not be blamed Cloud without corroboration from
  /// the location's un-steered quartets.
  bool churn_steer_shield = false;

  /// How long a SteerShift event shields its /24s (covers the steer window
  /// plus the trailing bucket lag).
  int churn_shield_minutes = 4 * 60;

  /// Treat baseline-less bad middle groups as probeable: spend active-phase
  /// budget on a direct measurement of the new path (grade: probed-cold) and
  /// back-fill the learner with the probe's observation instead of
  /// abstaining at Low confidence.
  bool probe_on_no_baseline = false;
};

}  // namespace blameit::core
