// The end-to-end BlameIt workflow (§3.3, Fig 7): every cadence interval,
// pull the new quartets, learn expected RTTs, run Algorithm 1, track
// middle-segment incident runs, rank them by client-time product, spend the
// traceroute budget on the top issues, and keep background baselines fresh.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "analysis/expected_rtt.h"
#include "analysis/quartet.h"
#include "core/active.h"
#include "core/background.h"
#include "core/blame.h"
#include "core/config.h"
#include "core/passive.h"
#include "core/predictors.h"
#include "core/prioritizer.h"
#include "net/topology.h"
#include "obs/registry.h"
#include "sim/traceroute.h"
#include "store/snapshot.h"

namespace blameit::core {

/// Everything one pipeline step produced; benches and the ops alerting layer
/// consume this.
struct StepReport {
  /// Wall time each stage of this step spent, in milliseconds. Filled on
  /// every step (a handful of clock reads); mirrored into the registry's
  /// step.*_ms histograms when one is attached.
  struct StageTimings {
    double learn_ms = 0.0;       ///< expected-RTT + predictor learning
    double localize_ms = 0.0;    ///< Algorithm 1 across the step's buckets
    double active_ms = 0.0;      ///< ranking + on-demand traceroutes
    double background_ms = 0.0;  ///< periodic/churn baseline probes
    double total_ms = 0.0;       ///< whole step() call
  };

  util::MinuteTime now;
  int buckets_processed = 0;
  StageTimings stages;
  /// Per-bad-quartet blame results across the step's buckets.
  std::vector<BlameResult> blames;
  /// Middle issues of the newest bucket, ranked by client-time product.
  std::vector<MiddleIssue> ranked_issues;
  /// Active diagnoses for the top issues within the probe budget.
  std::vector<ActiveDiagnosis> diagnoses;
  int on_demand_probes = 0;
  int background_probes = 0;
  /// Of on_demand_probes, attempts that were retries of lost/truncated
  /// traceroutes (they are charged against the same budget).
  int active_retries = 0;
  /// The traceroute engine was inside an outage window at step time: the
  /// active phase was skipped entirely and this step's output is passive
  /// localization only (issues stay ranked but undiagnosed).
  bool degraded_passive_only = false;

  [[nodiscard]] int count(Blame b) const noexcept {
    int n = 0;
    for (const auto& result : blames) n += result.blame == b;
    return n;
  }
};

class BlameItPipeline {
 public:
  /// Supplies the finalized quartets of one bucket (the analytics-cluster
  /// feed). The pipeline owns nothing upstream of this.
  using QuartetSource =
      std::function<std::vector<analysis::Quartet>(util::TimeBucket)>;

  /// `registry`, when given, receives metrics from every layer the pipeline
  /// owns (learner, passive localizer, probers, per-stage step spans); null
  /// keeps the uninstrumented zero-overhead path.
  BlameItPipeline(const net::Topology* topology,
                  sim::TracerouteEngine* engine, QuartetSource source,
                  BlameItConfig config = {}, obs::Registry* registry = nullptr);

  /// Processes all buckets whose window closed in (last step, now]. Call at
  /// the configured cadence (15 min ⇒ 3 buckets per step).
  StepReport step(util::MinuteTime now);

  /// Invoked at the very end of every step() with the finished report —
  /// this is how the service layer publishes into its VerdictStore without
  /// the pipeline knowing the service exists. Runs on the step thread,
  /// after all stage timings are recorded; it must not call back into the
  /// pipeline. The observer only sees the report, so pipeline output is
  /// identical with or without one.
  using StepObserver = std::function<void(const StepReport&)>;
  void set_step_observer(StepObserver observer) {
    observer_ = std::move(observer);
  }

  // Component access (benches, tests, ablations).
  [[nodiscard]] const analysis::ExpectedRttLearner& learner() const noexcept {
    return learner_;
  }
  [[nodiscard]] const DurationPredictor& durations() const noexcept {
    return durations_;
  }
  [[nodiscard]] const ClientVolumePredictor& clients() const noexcept {
    return clients_;
  }
  [[nodiscard]] const BaselineStore& baselines() const noexcept {
    return baselines_;
  }
  [[nodiscard]] const BlameItConfig& config() const noexcept {
    return config_;
  }

  /// Feed a bucket's quartets into the learner/predictors WITHOUT running
  /// localization or probing — used to warm up history cheaply before the
  /// evaluation window.
  void warmup_bucket(util::TimeBucket bucket);

  /// Serializes all learned/cursor state into snapshot sections: pipeline
  /// cursors + open runs, the expected-RTT learner, both predictors, and
  /// the baseline store. A pipeline restored from the result and fed the
  /// same subsequent buckets produces bit-identical step reports. What is
  /// deliberately NOT saved: probe accounting (cost counters, not state)
  /// and background prober targets (rebuilt deterministically from routing
  /// state on the next step).
  void save_snapshot(store::SnapshotWriter& writer) const;
  /// Replaces this pipeline's learned/cursor state from a snapshot. The
  /// pipeline must have been constructed with the same config (notably the
  /// same learner backend). On exception the pipeline state is unspecified;
  /// discard it.
  void restore_snapshot(const store::SnapshotReader& reader);

 private:
  void learn_from(const std::vector<analysis::Quartet>& quartets,
                  util::TimeBucket bucket);

  /// Consumes churn-feed events up to `upto` (exclusive), advancing
  /// `cursor`: PathChange events drive baseline transfers (§13), SteerShift
  /// events open steer-shield windows.
  void apply_churn_events(const std::vector<net::ChurnEvent>& events,
                          std::size_t& cursor, util::MinuteTime upto);

  /// Expands the live shield entries into the per-⟨location, /24⟩ set the
  /// passive phase consults for `bucket`, pruning expired entries.
  [[nodiscard]] SteerShield build_shield(util::TimeBucket bucket);

  const net::Topology* topology_;
  sim::TracerouteEngine* engine_;
  QuartetSource source_;
  BlameItConfig config_;

  analysis::ExpectedRttLearner learner_;
  PassiveLocalizer passive_;
  DurationPredictor durations_;
  ClientVolumePredictor clients_;
  BaselineStore baselines_;
  BackgroundProber background_;
  ActiveLocalizer active_;

  // Open middle-issue runs: key -> (last bucket seen bad, run length).
  struct OpenRun {
    util::TimeBucket last;
    int length = 0;
  };
  std::unordered_map<std::uint64_t, OpenRun> open_runs_;

  /// One live steer-shield window (§13): /24s of `prefix` recently
  /// re-steered onto `location` are shielded from Cloud blame until `until`.
  /// Appended in churn-feed order and pruned front-to-back as buckets pass,
  /// so the vector order — and hence the snapshot bytes — is deterministic.
  struct ShieldEntry {
    net::CloudLocationId location;
    net::Prefix prefix;
    util::MinuteTime until;
  };
  std::vector<ShieldEntry> shield_entries_;

  util::TimeBucket next_bucket_{0};
  util::MinuteTime last_step_{0};
  int last_evict_day_ = -1;
  StepObserver observer_;

  // Instruments (null without a registry).
  obs::Histogram* learn_ms_h_ = nullptr;
  obs::Histogram* localize_ms_h_ = nullptr;
  obs::Histogram* active_ms_h_ = nullptr;
  obs::Histogram* background_ms_h_ = nullptr;
  obs::Histogram* total_ms_h_ = nullptr;
  obs::Counter* on_demand_probes_c_ = nullptr;
  obs::Counter* background_probes_c_ = nullptr;
  obs::Counter* buckets_c_ = nullptr;
  obs::Counter* degraded_steps_c_ = nullptr;
  obs::Counter* active_retries_c_ = nullptr;
  obs::Gauge* probe_budget_g_ = nullptr;
  obs::Histogram* snapshot_save_ms_h_ = nullptr;
  obs::Histogram* snapshot_load_ms_h_ = nullptr;
  obs::Counter* churn_transfers_c_ = nullptr;
  obs::Counter* steer_shields_c_ = nullptr;
  obs::Counter* cold_backfills_c_ = nullptr;
};

}  // namespace blameit::core
