#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <climits>
#include <stdexcept>
#include <string>

namespace blameit::core {

BlameItPipeline::BlameItPipeline(const net::Topology* topology,
                                 sim::TracerouteEngine* engine,
                                 QuartetSource source, BlameItConfig config,
                                 obs::Registry* registry)
    : topology_(topology),
      engine_(engine),
      source_(std::move(source)),
      config_(config),
      learner_(analysis::ExpectedRttConfig{
          .window_days = config.expected_rtt_window_days,
          .reservoir_per_day = 256,
          .memoize_medians = config.memoize_expected_rtt,
          .backend = config.state_backend,
          .registry = registry}),
      passive_(topology, &learner_, config, registry),
      durations_(config.duration_horizon_buckets),
      clients_(config.client_predictor_days),
      background_(topology, engine, &baselines_, config, registry),
      active_(topology, engine, &baselines_, config, registry) {
  if (!topology_ || !engine_ || !source_) {
    throw std::invalid_argument{"BlameItPipeline: null dependency"};
  }
  if (config_.cadence_minutes < util::kBucketMinutes ||
      config_.probe_budget_per_run < 0) {
    throw std::invalid_argument{"BlameItConfig: invalid cadence or budget"};
  }
  // analytics_threads is validated (and the worker pool owned) by passive_;
  // learning stays serial on purpose — reservoir sampling is order-
  // sensitive, and localize() dominates the step cost.
  learn_ms_h_ = obs::histogram(registry, "step.learn_ms");
  localize_ms_h_ = obs::histogram(registry, "step.localize_ms");
  active_ms_h_ = obs::histogram(registry, "step.active_ms");
  background_ms_h_ = obs::histogram(registry, "step.background_ms");
  total_ms_h_ = obs::histogram(registry, "step.total_ms");
  on_demand_probes_c_ = obs::counter(registry, "pipeline.on_demand_probes");
  background_probes_c_ = obs::counter(registry, "pipeline.background_probes");
  buckets_c_ = obs::counter(registry, "pipeline.buckets_processed");
  degraded_steps_c_ = obs::counter(registry, "pipeline.degraded_steps");
  active_retries_c_ = obs::counter(registry, "pipeline.active_retries");
  probe_budget_g_ = obs::gauge(registry, "pipeline.probe_budget_per_run");
  obs::set(probe_budget_g_, static_cast<double>(config_.probe_budget_per_run));
  snapshot_save_ms_h_ = obs::histogram(registry, "store.snapshot_save_ms");
  snapshot_load_ms_h_ = obs::histogram(registry, "store.snapshot_load_ms");
  churn_transfers_c_ = obs::counter(registry, "pipeline.churn_transfers");
  steer_shields_c_ = obs::counter(registry, "pipeline.steer_shields");
  cold_backfills_c_ = obs::counter(registry, "pipeline.cold_backfills");
}

void BlameItPipeline::apply_churn_events(
    const std::vector<net::ChurnEvent>& events, std::size_t& cursor,
    util::MinuteTime upto) {
  for (; cursor < events.size() && events[cursor].time < upto; ++cursor) {
    const net::ChurnEvent& event = events[cursor];
    if (event.kind == net::ChurnKind::SteerShift) {
      if (config_.churn_steer_shield) {
        shield_entries_.push_back(ShieldEntry{
            .location = event.location,
            .prefix = event.prefix,
            .until = event.time.plus_minutes(config_.churn_shield_minutes)});
        obs::add(steer_shields_c_);
      }
      continue;
    }
    // Baseline transfer (§13): a PathChange that swaps the middle segment
    // leaves the new ⟨location, path, device⟩ groups with no history — seed
    // them from the old path's baseline so the very next buckets compare
    // against an inherited (discounted) expectation instead of falling to
    // Insufficient. A Withdraw/Announce pair has no old path to inherit
    // from; a PathChange that keeps the middle segment needs nothing.
    if (!config_.churn_baseline_transfer) continue;
    if (event.kind != net::ChurnKind::PathChange) continue;
    if (!event.old_route || !event.new_route) continue;
    if (event.old_route->middle == event.new_route->middle) continue;
    const int day = event.time.day();
    for (const net::DeviceClass device : net::kAllDeviceClasses) {
      const auto to =
          analysis::middle_key(event.location, event.new_route->middle,
                               device);
      bool moved = learner_.transfer_baseline(
          analysis::middle_key(event.location, event.old_route->middle,
                               device),
          to, day);
      if (!moved) {
        // Same-path sibling fallback: the other device class of the old
        // ⟨location, path⟩ often has history when this one does not (e.g.
        // a mobile-sparse region).
        for (const net::DeviceClass sibling : net::kAllDeviceClasses) {
          if (sibling == device) continue;
          moved = learner_.transfer_baseline(
              analysis::middle_key(event.location, event.old_route->middle,
                                   sibling),
              to, day);
          if (moved) break;
        }
      }
      if (moved) obs::add(churn_transfers_c_);
    }
  }
}

SteerShield BlameItPipeline::build_shield(util::TimeBucket bucket) {
  SteerShield shield;
  const util::MinuteTime start = bucket.start();
  std::erase_if(shield_entries_, [&](const ShieldEntry& entry) {
    return entry.until < start;
  });
  for (const ShieldEntry& entry : shield_entries_) {
    const std::uint32_t base = entry.prefix.network >> 8;
    const std::uint32_t count = entry.prefix.slash24_count();
    for (std::uint32_t b = 0; b < count; ++b) {
      shield.insert(
          steer_shield_key(entry.location, net::Slash24{base + b}));
    }
  }
  return shield;
}

void BlameItPipeline::save_snapshot(store::SnapshotWriter& writer) const {
  const obs::ScopedTimer span{snapshot_save_ms_h_};
  {
    std::string& out = writer.section("pipeline-cursors");
    store::put_varint(out, 2);  // cursors payload format (2 adds shields)
    store::put_svarint(out, next_bucket_.index);
    store::put_svarint(out, last_step_.minutes);
    store::put_svarint(out, last_evict_day_);
    std::vector<std::uint64_t> keys;
    keys.reserve(open_runs_.size());
    for (const auto& [key, run] : open_runs_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    store::put_varint(out, keys.size());
    std::uint64_t prev = 0;
    for (const std::uint64_t key : keys) {
      store::put_varint(out, key - prev);
      prev = key;
      const OpenRun& run = open_runs_.at(key);
      store::put_svarint(out, run.last.index);
      store::put_svarint(out, run.length);
    }
    // Format 2: live steer-shield windows, in feed order (deterministic —
    // see ShieldEntry). A restored pipeline keeps shielding exactly the
    // /24s the killed one was shielding.
    store::put_varint(out, shield_entries_.size());
    for (const ShieldEntry& entry : shield_entries_) {
      store::put_varint(out, entry.location.value);
      store::put_varint(out, entry.prefix.network);
      store::put_varint(out, entry.prefix.length);
      store::put_svarint(out, entry.until.minutes);
    }
  }
  learner_.save_state(writer);
  durations_.save(writer.section("durations"));
  clients_.save(writer.section("clients"));
  baselines_.save(writer.section("baselines"));
}

void BlameItPipeline::restore_snapshot(const store::SnapshotReader& reader) {
  const obs::ScopedTimer span{snapshot_load_ms_h_};
  {
    store::ByteReader in = reader.section("pipeline-cursors");
    const std::uint64_t format = in.varint();
    if (format != 1 && format != 2) {
      in.fail("unsupported cursors payload format " + std::to_string(format));
    }
    const std::int64_t next_bucket = in.svarint();
    const std::int64_t last_step = in.svarint();
    const std::int64_t last_evict_day = in.svarint();
    if (last_evict_day < -1 || last_evict_day > INT_MAX) {
      in.fail("eviction day out of range");
    }
    std::unordered_map<std::uint64_t, OpenRun> open_runs;
    const std::uint64_t n_runs = in.varint();
    if (n_runs > (std::uint64_t{1} << 32)) in.fail("open-run count absurd");
    open_runs.reserve(static_cast<std::size_t>(n_runs));
    std::uint64_t prev = 0;
    for (std::uint64_t r = 0; r < n_runs; ++r) {
      prev += in.varint();
      OpenRun run;
      run.last = util::TimeBucket{in.svarint()};
      const std::int64_t length = in.svarint();
      if (length < 1 || length > INT_MAX) in.fail("run length out of range");
      run.length = static_cast<int>(length);
      open_runs.emplace(prev, run);
    }
    std::vector<ShieldEntry> shields;
    if (format >= 2) {
      const std::uint64_t n_shields = in.varint();
      if (n_shields > (std::uint64_t{1} << 32)) {
        in.fail("shield entry count absurd");
      }
      shields.reserve(static_cast<std::size_t>(n_shields));
      for (std::uint64_t s = 0; s < n_shields; ++s) {
        ShieldEntry entry;
        entry.location.value = static_cast<std::uint16_t>(in.varint());
        entry.prefix.network = static_cast<std::uint32_t>(in.varint());
        const std::uint64_t length = in.varint();
        if (length > 32) in.fail("shield prefix length out of range");
        entry.prefix.length = static_cast<std::uint8_t>(length);
        entry.until.minutes = in.svarint();
        shields.push_back(entry);
      }
    }
    in.expect_done();
    next_bucket_ = util::TimeBucket{next_bucket};
    last_step_ = util::MinuteTime{last_step};
    last_evict_day_ = static_cast<int>(last_evict_day);
    open_runs_ = std::move(open_runs);
    shield_entries_ = std::move(shields);
  }
  learner_.restore_state(reader);
  {
    store::ByteReader in = reader.section("durations");
    durations_.restore(in);
    in.expect_done();
  }
  {
    store::ByteReader in = reader.section("clients");
    clients_.restore(in);
    in.expect_done();
  }
  {
    store::ByteReader in = reader.section("baselines");
    baselines_.restore(in);
    in.expect_done();
  }
}

void BlameItPipeline::learn_from(
    const std::vector<analysis::Quartet>& quartets, util::TimeBucket bucket) {
  const int day = bucket.day();
  // Expected-RTT learning: every quartet's mean teaches both its cloud-node
  // group and its BGP-path group.
  for (const auto& q : quartets) {
    learner_.observe(analysis::cloud_key(q.key.location, q.key.device), day,
                     q.mean_rtt_ms);
    learner_.observe(
        analysis::middle_key(q.key.location, q.middle, q.key.device), day,
        q.mean_rtt_ms);
  }
  // Client-volume learning per ⟨location, BGP path⟩.
  std::unordered_map<std::uint64_t, double> users;
  for (const auto& q : quartets) {
    users[middle_issue_key(q.key.location, q.middle)] +=
        q.sample_count / config_.samples_per_client_estimate;
  }
  for (const auto& [key, volume] : users) {
    clients_.observe(key, bucket, volume);
  }
  if (day != last_evict_day_) {
    learner_.evict_stale(day);
    clients_.evict_stale(day);
    last_evict_day_ = day;
  }
}

void BlameItPipeline::warmup_bucket(util::TimeBucket bucket) {
  learn_from(source_(bucket), bucket);
  if (bucket >= next_bucket_) {
    next_bucket_ = bucket.next();
    last_step_ = bucket.next().start();
  }
}

StepReport BlameItPipeline::step(util::MinuteTime now) {
  const auto step_t0 = std::chrono::steady_clock::now();
  StepReport report;
  report.now = now;

  // §13 churn awareness: the BGP feed is fetched (through the chaos layer,
  // which may drop or delay events) only when a churn knob is on — with all
  // of them off the step loop never consults the feed and its output is
  // bit-identical to the churn-blind pipeline.
  const bool churn_aware =
      config_.churn_baseline_transfer || config_.churn_steer_shield;
  std::vector<net::ChurnEvent> churn;
  std::size_t churn_cursor = 0;
  if (churn_aware) {
    churn = sim::fetch_churn(topology_->routing(), engine_->chaos(),
                             last_step_.plus_minutes(1), now.plus_minutes(1));
  }

  std::vector<analysis::Quartet> latest_quartets;
  std::vector<BlameResult> latest_blames;
  util::TimeBucket bucket = next_bucket_;
  for (; bucket.next().start() <= now; bucket = bucket.next()) {
    // Transfers and shield windows opened by events up to this bucket's
    // close must be visible to this bucket's localization.
    if (churn_aware) {
      apply_churn_events(churn, churn_cursor, bucket.next().start());
    }
    auto quartets = source_(bucket);
    {
      const obs::ScopedTimer learn_span{learn_ms_h_,
                                        &report.stages.learn_ms};
      learn_from(quartets, bucket);
    }
    std::vector<BlameResult> blames;
    {
      const obs::ScopedTimer localize_span{localize_ms_h_,
                                           &report.stages.localize_ms};
      if (config_.churn_steer_shield) {
        const SteerShield shield = build_shield(bucket);
        blames = passive_.localize(quartets, bucket.day(),
                                   shield.empty() ? nullptr : &shield);
      } else {
        blames = passive_.localize(quartets, bucket.day());
      }
    }

    // Middle-issue run tracking for the duration predictor.
    std::unordered_map<std::uint64_t, bool> bad_now;
    for (const auto& b : blames) {
      if (b.blame == Blame::Middle) {
        bad_now[middle_issue_key(b.quartet.key.location, b.quartet.middle)] =
            true;
      }
    }
    for (auto it = open_runs_.begin(); it != open_runs_.end();) {
      if (bad_now.contains(it->first)) {
        // Still bad: extend below (erase from bad_now to mark handled).
        it->second.last = bucket;
        ++it->second.length;
        bad_now.erase(it->first);
        ++it;
      } else {
        durations_.record_duration(it->first, it->second.length);
        it = open_runs_.erase(it);
      }
    }
    for (const auto& [key, flag] : bad_now) {
      open_runs_.emplace(key, OpenRun{.last = bucket, .length = 1});
    }

    ++report.buckets_processed;
    report.blames.insert(report.blames.end(), blames.begin(), blames.end());
    latest_quartets = std::move(quartets);
    latest_blames = std::move(blames);
  }
  next_bucket_ = bucket;
  // Drain feed events between the last processed bucket's close and `now`
  // (the next step's fetch window starts at now + 1, so they would
  // otherwise be lost).
  if (churn_aware) apply_churn_events(churn, churn_cursor, now.plus_minutes(1));
  obs::add(buckets_c_, static_cast<std::uint64_t>(report.buckets_processed));

  // Active phase over the newest bucket's middle issues.
  if (!latest_blames.empty()) {
    const obs::ScopedTimer active_span{active_ms_h_,
                                       &report.stages.active_ms};
    auto issues = collect_middle_issues(latest_blames,
                                        config_.samples_per_client_estimate);
    for (auto& issue : issues) {
      const auto it =
          open_runs_.find(middle_issue_key(issue.location, issue.middle));
      if (it != open_runs_.end()) issue.elapsed_buckets = it->second.length;
    }
    const ProbePrioritizer prioritizer{&durations_, &clients_};
    report.ranked_issues =
        prioritizer.rank(std::move(issues), bucket.prev());
    if (engine_->in_outage(now)) {
      // Measurement plane down: degrade gracefully to passive-only. The
      // issues stay ranked (tickets can still open at path granularity);
      // no budget is burned on probes that cannot answer.
      report.degraded_passive_only = true;
      obs::add(degraded_steps_c_);
    } else {
      // Spend-based budgeting: a diagnosis under chaos may cost several
      // attempts (quorum probes + retries), and every attempt counts
      // against the same §5.3 budget — hardening must not quietly inflate
      // the probing bill.
      const int budget = config_.probe_budget_per_run;
      // For §13 probed-cold back-fill: which device classes each issue's
      // Middle-blamed quartets actually cover (the learner is seeded only
      // for groups that exist).
      std::unordered_map<std::uint64_t,
                         std::array<bool, net::kAllDeviceClasses.size()>>
          devices_by_issue;
      if (config_.probe_on_no_baseline) {
        for (const auto& b : latest_blames) {
          if (b.blame != Blame::Middle) continue;
          devices_by_issue[middle_issue_key(b.quartet.key.location,
                                            b.quartet.middle)]
                          [static_cast<std::size_t>(b.quartet.key.device)] =
                              true;
        }
      }
      for (std::size_t i = 0;
           i < report.ranked_issues.size() && report.on_demand_probes < budget;
           ++i) {
        const auto& issue = report.ranked_issues[i];
        // The open run tells us when the badness began: the diagnosis must
        // compare against a baseline predating it.
        std::optional<util::MinuteTime> issue_start;
        const auto rit =
            open_runs_.find(middle_issue_key(issue.location, issue.middle));
        if (rit != open_runs_.end()) {
          issue_start = util::TimeBucket{rit->second.last.index -
                                         rit->second.length + 1}
                            .start();
        }
        auto diag =
            active_.diagnose(issue.location, issue.middle,
                             issue.representative_block, now, issue_start);
        report.on_demand_probes += diag.probes_spent;
        report.active_retries += diag.retries;
        if (diag.grade == BaselineGrade::ProbedCold) {
          // Back-fill (§13): the confirmed cold-path measurement becomes
          // the path's baseline, and its end-to-end RTT seeds the learner
          // for the issue's device classes. observe() feeds only the
          // CURRENT day and expected() medians exclude it, so today's
          // verdicts are untouched — but tomorrow the new path starts with
          // history instead of falling to Insufficient again.
          baselines_.update(
              issue.location, issue.middle,
              Baseline{.when = now,
                       .cloud_ms = diag.probe.cloud_ms,
                       .contributions = diag.probe.contributions()});
          const auto dit = devices_by_issue.find(
              middle_issue_key(issue.location, issue.middle));
          if (dit != devices_by_issue.end()) {
            const double rtt = diag.probe.hops.back().cumulative_rtt_ms;
            for (std::size_t d = 0; d < net::kAllDeviceClasses.size(); ++d) {
              if (!dit->second[d]) continue;
              learner_.observe(
                  analysis::middle_key(issue.location, issue.middle,
                                       net::kAllDeviceClasses[d]),
                  now.day(), rtt);
            }
          }
          obs::add(cold_backfills_c_);
        }
        report.diagnoses.push_back(std::move(diag));
      }
    }
  }

  {
    const obs::ScopedTimer background_span{background_ms_h_,
                                           &report.stages.background_ms};
    report.background_probes = background_.step(last_step_, now);
  }
  last_step_ = now;

  obs::add(on_demand_probes_c_,
           static_cast<std::uint64_t>(report.on_demand_probes));
  obs::add(background_probes_c_,
           static_cast<std::uint64_t>(report.background_probes));
  obs::add(active_retries_c_,
           static_cast<std::uint64_t>(report.active_retries));
  report.stages.total_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - step_t0)
                               .count();
  obs::record(total_ms_h_, report.stages.total_ms);
  if (observer_) observer_(report);
  return report;
}

}  // namespace blameit::core
