// Blame categories and per-quartet localization results — the output
// vocabulary of Algorithm 1.
#pragma once

#include <optional>
#include <string_view>

#include "analysis/quartet.h"
#include "net/asn.h"

namespace blameit::core {

/// Coarse blame assigned to a bad quartet (§4.2, Algorithm 1).
enum class Blame : std::uint8_t {
  Cloud,         ///< the cloud's own network/servers at that location
  Middle,        ///< some AS on the BGP path between cloud and client
  Client,        ///< the client's ISP / last mile
  Ambiguous,     ///< the /24 saw good RTT to another location simultaneously
  Insufficient,  ///< too few quartets in the relevant group to decide
};

[[nodiscard]] constexpr std::string_view to_string(Blame b) noexcept {
  switch (b) {
    case Blame::Cloud: return "cloud";
    case Blame::Middle: return "middle";
    case Blame::Client: return "client";
    case Blame::Ambiguous: return "ambiguous";
    case Blame::Insufficient: return "insufficient";
  }
  return "?";
}

inline constexpr std::array<Blame, 5> kAllBlames = {
    Blame::Cloud, Blame::Middle, Blame::Client, Blame::Ambiguous,
    Blame::Insufficient};

/// How churn-degraded the baseline behind a verdict was (§13): readers can
/// distinguish a blame computed against the key's own learned history from
/// one that leaned on an inherited or probe-seeded expectation.
enum class BaselineGrade : std::uint8_t {
  Fresh,        ///< compared against the key's own window median
  Transferred,  ///< compared against a churn-transferred baseline
  ProbedCold,   ///< baseline established by a no-baseline active probe
};

[[nodiscard]] constexpr std::string_view to_string(BaselineGrade g) noexcept {
  switch (g) {
    case BaselineGrade::Fresh: return "fresh";
    case BaselineGrade::Transferred: return "transferred";
    case BaselineGrade::ProbedCold: return "probed-cold";
  }
  return "?";
}

/// Localization result for one bad quartet.
struct BlameResult {
  analysis::Quartet quartet;
  Blame blame{};
  /// The faulty AS when the passive phase alone pins it down: the cloud AS
  /// for Cloud blames, the client AS for Client blames. Middle blames leave
  /// this empty until the active phase runs (§5).
  std::optional<net::AsId> faulty_as;
  /// Provenance of the expected-RTT value this verdict compared against.
  BaselineGrade grade = BaselineGrade::Fresh;

  bool operator==(const BlameResult&) const = default;
};

}  // namespace blameit::core
