// Blame categories and per-quartet localization results — the output
// vocabulary of Algorithm 1.
#pragma once

#include <optional>
#include <string_view>

#include "analysis/quartet.h"
#include "net/asn.h"

namespace blameit::core {

/// Coarse blame assigned to a bad quartet (§4.2, Algorithm 1).
enum class Blame : std::uint8_t {
  Cloud,         ///< the cloud's own network/servers at that location
  Middle,        ///< some AS on the BGP path between cloud and client
  Client,        ///< the client's ISP / last mile
  Ambiguous,     ///< the /24 saw good RTT to another location simultaneously
  Insufficient,  ///< too few quartets in the relevant group to decide
};

[[nodiscard]] constexpr std::string_view to_string(Blame b) noexcept {
  switch (b) {
    case Blame::Cloud: return "cloud";
    case Blame::Middle: return "middle";
    case Blame::Client: return "client";
    case Blame::Ambiguous: return "ambiguous";
    case Blame::Insufficient: return "insufficient";
  }
  return "?";
}

inline constexpr std::array<Blame, 5> kAllBlames = {
    Blame::Cloud, Blame::Middle, Blame::Client, Blame::Ambiguous,
    Blame::Insufficient};

/// Localization result for one bad quartet.
struct BlameResult {
  analysis::Quartet quartet;
  Blame blame{};
  /// The faulty AS when the passive phase alone pins it down: the cloud AS
  /// for Cloud blames, the client AS for Client blames. Middle blames leave
  /// this empty until the active phase runs (§5).
  std::optional<net::AsId> faulty_as;

  bool operator==(const BlameResult&) const = default;
};

}  // namespace blameit::core
