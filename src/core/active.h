// Fine-grained AS-level localization with on-demand traceroutes (§5.2).
//
// For a prioritized middle-segment issue, trace the path while the issue is
// live and diff each AS's latency contribution against the background
// baseline; the AS with the largest increase is the culprit (the paper's
// worked example: m1's contribution jumping 2 ms → 56 ms). When no usable
// baseline exists (new path after an anycast shift, or every stored baseline
// was captured mid-incident), the diagnosis falls back to the largest
// absolute contributor — cloud segment included — and is flagged
// low-confidence.
#pragma once

#include <optional>

#include "core/background.h"
#include "net/topology.h"
#include "obs/registry.h"
#include "sim/traceroute.h"

namespace blameit::core {

struct ActiveDiagnosis {
  net::CloudLocationId location;
  net::MiddleSegmentId middle;
  bool probe_reached = false;
  bool have_baseline = false;
  /// True when the baseline used for the diff is known to predate the
  /// issue's start (issue_start was provided and the store held an older
  /// baseline). False for no-baseline diagnoses and for get()-style lookups
  /// with no issue_start, where the guarantee cannot be made.
  bool baseline_predates_issue = false;
  /// The blamed AS (largest contribution increase; largest absolute
  /// contribution when no baseline exists). Empty if the probe failed.
  std::optional<net::AsId> culprit;
  double culprit_increase_ms = 0.0;  ///< contribution delta vs baseline
  sim::TracerouteResult probe;
};

class ActiveLocalizer {
 public:
  ActiveLocalizer(const net::Topology* topology, sim::TracerouteEngine* engine,
                  const BaselineStore* baselines,
                  obs::Registry* registry = nullptr);

  /// Probes `target_block` from `location` at `now` and localizes the
  /// faulty AS on the issue's path. `issue_start`, when known (the passive
  /// phase tracks when the badness run began), selects a baseline captured
  /// BEFORE the incident — comparing against a mid-incident background
  /// probe would hide the inflation, so when none predates the issue the
  /// no-baseline path runs instead.
  [[nodiscard]] ActiveDiagnosis diagnose(
      net::CloudLocationId location, net::MiddleSegmentId middle,
      net::Slash24 target_block, util::MinuteTime now,
      std::optional<util::MinuteTime> issue_start = std::nullopt);

 private:
  const net::Topology* topology_;
  sim::TracerouteEngine* engine_;
  const BaselineStore* baselines_;

  // Instruments (null without a registry).
  obs::Counter* probes_c_ = nullptr;
  obs::Counter* unreached_c_ = nullptr;
  obs::Counter* no_baseline_c_ = nullptr;
  obs::Counter* predates_c_ = nullptr;
  obs::Histogram* baseline_age_h_ = nullptr;
};

}  // namespace blameit::core
