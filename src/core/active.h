// Fine-grained AS-level localization with on-demand traceroutes (§5.2).
//
// For a prioritized middle-segment issue, trace the path while the issue is
// live and diff each AS's latency contribution against the background
// baseline; the AS with the largest increase is the culprit (the paper's
// worked example: m1's contribution jumping 2 ms → 56 ms). When no baseline
// exists (new path, e.g. after an anycast shift), the diagnosis falls back
// to the largest absolute contributor and is flagged low-confidence.
#pragma once

#include <optional>

#include "core/background.h"
#include "net/topology.h"
#include "sim/traceroute.h"

namespace blameit::core {

struct ActiveDiagnosis {
  net::CloudLocationId location;
  net::MiddleSegmentId middle;
  bool probe_reached = false;
  bool have_baseline = false;
  /// The blamed AS (largest contribution increase; largest absolute
  /// contribution when no baseline exists). Empty if the probe failed.
  std::optional<net::AsId> culprit;
  double culprit_increase_ms = 0.0;  ///< contribution delta vs baseline
  sim::TracerouteResult probe;
};

class ActiveLocalizer {
 public:
  ActiveLocalizer(const net::Topology* topology, sim::TracerouteEngine* engine,
                  const BaselineStore* baselines);

  /// Probes `target_block` from `location` at `now` and localizes the
  /// faulty AS on the issue's path. `issue_start`, when known (the passive
  /// phase tracks when the badness run began), selects a baseline captured
  /// BEFORE the incident — comparing against a mid-incident background
  /// probe would hide the inflation.
  [[nodiscard]] ActiveDiagnosis diagnose(
      net::CloudLocationId location, net::MiddleSegmentId middle,
      net::Slash24 target_block, util::MinuteTime now,
      std::optional<util::MinuteTime> issue_start = std::nullopt);

 private:
  const net::Topology* topology_;
  sim::TracerouteEngine* engine_;
  const BaselineStore* baselines_;
};

}  // namespace blameit::core
