// Fine-grained AS-level localization with on-demand traceroutes (§5.2),
// hardened against a messy measurement plane.
//
// For a prioritized middle-segment issue, trace the path while the issue is
// live and diff each AS's latency contribution against the background
// baseline; the AS with the largest increase is the culprit (the paper's
// worked example: m1's contribution jumping 2 ms → 56 ms).
//
// Real traceroutes fail in ways the clean diff cannot ignore: probes get
// lost, paths truncate mid-way, baselines go stale. The localizer therefore
// layers, in order:
//  - bounded retries with exponential (simulated-time) backoff for lost or
//    truncated probes — every attempt is charged against the probe budget;
//  - an optional K-probe quorum whose median-of-K per-AS contributions
//    reject single-probe outliers (duplicated/late measurements);
//  - partial-path diagnosis over the reached prefix when only truncated
//    probes answered, downgrading to coarse Middle blame when the culprit
//    is past the truncation point;
//  - an explicit DiagnosisConfidence on every diagnosis, so downstream
//    consumers (tickets, benches) know how much to trust the verdict.
#pragma once

#include <optional>
#include <string_view>

#include "core/background.h"
#include "core/blame.h"
#include "core/config.h"
#include "net/topology.h"
#include "obs/registry.h"
#include "sim/traceroute.h"

namespace blameit::core {

/// How much to trust an ActiveDiagnosis (ordered best → worst).
enum class DiagnosisConfidence : std::uint8_t {
  /// Full-path probe(s), fresh baseline known to predate the issue (or no
  /// issue start was needed).
  High,
  /// The verdict rests on degraded evidence: a stale baseline, or a
  /// truncated path whose reached prefix still named a culprit.
  Medium,
  /// No usable baseline, a coarse Middle verdict past the truncation point,
  /// or no probe answered at all.
  Low,
};

[[nodiscard]] constexpr std::string_view to_string(
    DiagnosisConfidence c) noexcept {
  switch (c) {
    case DiagnosisConfidence::High: return "high";
    case DiagnosisConfidence::Medium: return "medium";
    case DiagnosisConfidence::Low: return "low";
  }
  return "?";
}

struct ActiveDiagnosis {
  net::CloudLocationId location;
  net::MiddleSegmentId middle;
  bool probe_reached = false;
  bool have_baseline = false;
  /// True when the baseline used for the diff is known to predate the
  /// issue's start (issue_start was provided and the store held an older
  /// baseline). False for no-baseline diagnoses and for get()-style lookups
  /// with no issue_start, where the guarantee cannot be made.
  bool baseline_predates_issue = false;
  /// The baseline used was older than BlameItConfig::baseline_stale_minutes.
  bool baseline_stale = false;
  /// Only truncated (partial-path) probes answered: the diff covers the
  /// reached prefix, not the whole path.
  bool truncated = false;
  /// The culprit could not be named — the evidence says "some middle AS at
  /// or past the truncation point". `culprit` is empty; the issue keeps its
  /// passive Middle blame at AS-unknown granularity.
  bool coarse_middle = false;
  /// The blamed AS (largest contribution increase; largest absolute
  /// contribution when no baseline exists). Empty if no probe answered or
  /// the diagnosis degraded to coarse Middle blame.
  std::optional<net::AsId> culprit;
  double culprit_increase_ms = 0.0;  ///< contribution delta vs baseline
  DiagnosisConfidence confidence = DiagnosisConfidence::Low;
  /// ProbedCold when the no-baseline path ran under
  /// BlameItConfig::probe_on_no_baseline and a bounded confirmation probe
  /// independently named the same top contributor (§13): the verdict rests
  /// on two agreeing direct measurements of a cold path, and the pipeline
  /// back-fills the learner and the baseline store from it. Fresh otherwise
  /// (the grade of the baseline itself is the passive phase's business).
  BaselineGrade grade = BaselineGrade::Fresh;
  /// Traceroute attempts issued for this diagnosis (quorum probes +
  /// retries); what the probe budget is charged.
  int probes_spent = 0;
  /// Of probes_spent, how many were retries after a lost/truncated attempt.
  int retries = 0;
  /// Representative probe: the first full-path result, or the longest
  /// partial path when nothing reached, or the last failed attempt.
  sim::TracerouteResult probe;
};

class ActiveLocalizer {
 public:
  ActiveLocalizer(const net::Topology* topology, sim::TracerouteEngine* engine,
                  const BaselineStore* baselines, BlameItConfig config = {},
                  obs::Registry* registry = nullptr);

  /// Probes `target_block` from `location` at `now` and localizes the
  /// faulty AS on the issue's path. `issue_start`, when known (the passive
  /// phase tracks when the badness run began), selects a baseline captured
  /// BEFORE the incident — comparing against a mid-incident background
  /// probe would hide the inflation, so when none predates the issue the
  /// no-baseline path runs instead.
  [[nodiscard]] ActiveDiagnosis diagnose(
      net::CloudLocationId location, net::MiddleSegmentId middle,
      net::Slash24 target_block, util::MinuteTime now,
      std::optional<util::MinuteTime> issue_start = std::nullopt);

 private:
  /// One quorum slot: retry a lost/truncated probe up to the configured
  /// bound, advancing simulated time by the backoff. Returns the last
  /// result (full, truncated, or failed) and accumulates spend into `diag`.
  [[nodiscard]] sim::TracerouteResult probe_with_retries(
      net::CloudLocationId location, net::Slash24 target_block,
      util::MinuteTime now, int& attempt_counter, ActiveDiagnosis& diag);

  void finalize_confidence(ActiveDiagnosis& diag) const;

  const net::Topology* topology_;
  sim::TracerouteEngine* engine_;
  const BaselineStore* baselines_;
  BlameItConfig config_;

  // Instruments (null without a registry).
  obs::Counter* probes_c_ = nullptr;
  obs::Counter* unreached_c_ = nullptr;
  obs::Counter* no_baseline_c_ = nullptr;
  obs::Counter* predates_c_ = nullptr;
  obs::Counter* retries_c_ = nullptr;
  obs::Counter* lost_c_ = nullptr;
  obs::Counter* truncated_c_ = nullptr;
  obs::Counter* partial_c_ = nullptr;
  obs::Counter* coarse_middle_c_ = nullptr;
  obs::Counter* stale_baseline_c_ = nullptr;
  obs::Counter* conf_high_c_ = nullptr;
  obs::Counter* conf_medium_c_ = nullptr;
  obs::Counter* conf_low_c_ = nullptr;
  obs::Counter* probed_cold_c_ = nullptr;
  obs::Histogram* baseline_age_h_ = nullptr;
};

}  // namespace blameit::core
