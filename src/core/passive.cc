#include "core/passive.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace blameit::core {

namespace {

struct GroupStats {
  int quartets = 0;
  int bad_vs_expected = 0;  ///< quartets whose mean exceeds the expected RTT
  // Un-shielded subgroup (cloud groups only, maintained only while a steer
  // shield is active): the group's evidence minus the quartets a SteerShift
  // event just moved in. For a group with no shielded members these equal
  // the full counters.
  int unshielded_quartets = 0;
  int unshielded_bad = 0;

  [[nodiscard]] double bad_fraction() const noexcept {
    return quartets == 0
               ? 0.0
               : static_cast<double>(bad_vs_expected) / quartets;
  }
  [[nodiscard]] double unshielded_fraction() const noexcept {
    return unshielded_quartets == 0
               ? 0.0
               : static_cast<double>(unshielded_bad) / unshielded_quartets;
  }
};

/// A group's comparison value plus whether it came from a transferred
/// baseline (drives BlameResult::grade) and whether a churn event recently
/// re-routed traffic onto the group's key (soft-badness corroboration).
struct Comparison {
  double value = 0.0;
  bool transferred = false;
  bool churned = false;
};

std::uint64_t cloud_group(const analysis::Quartet& q) noexcept {
  return (std::uint64_t{q.key.location.value} << 8) |
         static_cast<std::uint64_t>(q.key.device);
}

std::uint64_t middle_group(const analysis::Quartet& q) noexcept {
  return (std::uint64_t{1} << 62) |
         (std::uint64_t{q.key.location.value} << 40) |
         (std::uint64_t{q.middle.value} << 8) |
         static_cast<std::uint64_t>(q.key.device);
}

/// Pass-1 accumulator for one location shard. Group keys embed the location,
/// so no group (and no learner key) is ever shared between shards; only the
/// per-/24 good-location sets need a cross-shard merge.
struct ShardState {
  std::unordered_map<std::uint64_t, GroupStats> groups;
  /// block -> locations where it saw a *good* (below threshold) quartet.
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint16_t>>
      good_locations;
  /// Comparison RTTs per group so the learner is consulted once per group.
  std::unordered_map<std::uint64_t, Comparison> comparison_cache;
};

}  // namespace

PassiveLocalizer::PassiveLocalizer(
    const net::Topology* topology,
    const analysis::ExpectedRttLearner* learner, BlameItConfig config,
    obs::Registry* registry)
    : topology_(topology), learner_(learner), config_(config) {
  if (!topology_ || !learner_) {
    throw std::invalid_argument{"PassiveLocalizer: null dependency"};
  }
  if (config_.tau <= 0.0 || config_.tau > 1.0 ||
      config_.min_group_quartets < 1) {
    throw std::invalid_argument{"BlameItConfig: invalid tau or min quartets"};
  }
  if (config_.analytics_threads < 0) {
    throw std::invalid_argument{"BlameItConfig: negative analytics_threads"};
  }
  const int threads =
      util::ThreadPool::resolve_threads(config_.analytics_threads);
  if (threads > 1) pool_ = std::make_unique<util::ThreadPool>(threads);
  localize_ms_h_ = obs::histogram(registry, "passive.localize_ms");
  shard_imbalance_g_ = obs::gauge(registry, "passive.shard_imbalance");
  for (std::size_t i = 0; i < kAllBlames.size(); ++i) {
    blame_c_[i] = obs::counter(
        registry,
        std::string{"passive.blame."} + std::string{to_string(kAllBlames[i])});
  }
}

double PassiveLocalizer::comparison_rtt(analysis::ExpectedRttKey key, int day,
                                        net::Region region,
                                        net::DeviceClass device) const {
  // Prefer the learned 14-day median; with churn_baseline_transfer on, a
  // live transferred baseline (already discounted) comes next; before any
  // history accrues, fall back to the region target (deployment bootstrap;
  // also exercised by the expected-RTT ablation bench).
  if (config_.churn_baseline_transfer) {
    const auto graded = learner_->expected_with_provenance(key, day);
    if (graded.value) return *graded.value;
    return thresholds_.threshold(region, device);
  }
  const auto learned = learner_->expected(key, day);
  return learned ? *learned : thresholds_.threshold(region, device);
}

std::vector<BlameResult> PassiveLocalizer::localize(
    std::span<const analysis::Quartet> quartets, int day,
    const SteerShield* shield) const {
  const obs::ScopedTimer span{localize_ms_h_};
  const std::size_t n = quartets.size();
  const auto nshards =
      static_cast<std::size_t>(pool_ ? pool_->size() : 1);
  const bool shield_on = shield && !shield->empty();
  const auto shielded = [&](const analysis::Quartet& q) {
    return shield_on &&
           shield->contains(steer_shield_key(q.key.location, q.key.block));
  };

  // Partition quartet indices by cloud location. Location ids are dense, so
  // a plain modulo spreads locations round-robin across shards.
  std::vector<std::vector<std::uint32_t>> members(nshards);
  for (auto& m : members) m.reserve(n / nshards + 1);
  for (std::size_t i = 0; i < n; ++i) {
    members[quartets[i].key.location.value % nshards].push_back(
        static_cast<std::uint32_t>(i));
  }

  // Pass 1: per-shard group statistics against the learned expected RTTs,
  // plus the per-/24 "good somewhere else" sets for the ambiguity rule.
  std::vector<ShardState> shards(nshards);
  const auto pass1 = [&](int s) {
    auto& shard = shards[static_cast<std::size_t>(s)];
    for (const auto idx : members[static_cast<std::size_t>(s)]) {
      const auto& q = quartets[idx];
      const auto ck = cloud_group(q);
      const auto mk = middle_group(q);

      const auto lookup = [&](std::uint64_t group,
                              analysis::ExpectedRttKey key) {
        const auto it = shard.comparison_cache.find(group);
        if (it != shard.comparison_cache.end()) return it->second;
        Comparison cmp;
        if (config_.churn_baseline_transfer) {
          const auto graded = learner_->expected_with_provenance(key, day);
          if (graded.value) {
            cmp.value = *graded.value;
            cmp.transferred = graded.provenance ==
                              analysis::BaselineProvenance::kTransferred;
          } else {
            cmp.value = thresholds_.threshold(q.region, q.key.device);
          }
          cmp.churned = learner_->recently_churned(key, day);
        } else {
          const auto learned = learner_->expected(key, day);
          cmp.value = learned ? *learned
                              : thresholds_.threshold(q.region, q.key.device);
        }
        shard.comparison_cache.emplace(group, cmp);
        return cmp;
      };
      const auto cloud_cmp =
          lookup(ck, analysis::cloud_key(q.key.location, q.key.device));
      const auto middle_cmp = lookup(
          mk, analysis::middle_key(q.key.location, q.middle, q.key.device));

      // §4.2 subtlety: fractions count quartets, NOT RTT samples — a handful
      // of high-volume "good" /24s must not mask widespread badness.
      const bool cloud_bad = q.mean_rtt_ms > cloud_cmp.value;
      auto& cg = shard.groups[ck];
      ++cg.quartets;
      cg.bad_vs_expected += cloud_bad;
      if (shield_on && !shielded(q)) {
        ++cg.unshielded_quartets;
        cg.unshielded_bad += cloud_bad;
      }

      auto& mg = shard.groups[mk];
      ++mg.quartets;
      mg.bad_vs_expected += q.mean_rtt_ms > middle_cmp.value;

      if (!q.bad) {
        shard.good_locations[q.key.block.block].insert(q.key.location.value);
      }
    }
  };
  if (pool_) {
    pool_->run(static_cast<int>(nshards), pass1);
  } else {
    pass1(0);
  }

  // Shard imbalance: biggest shard relative to a perfect split. Persistently
  // high values mean the location → shard modulo is clustering hot
  // locations together and pass 1 is bottlenecked on one worker.
  if (nshards > 1 && n > 0) {
    std::size_t biggest = 0;
    for (const auto& m : members) biggest = std::max(biggest, m.size());
    obs::set_max(shard_imbalance_g_,
                 static_cast<double>(biggest) * static_cast<double>(nshards) /
                     static_cast<double>(n));
  }

  // Barrier: merge the per-/24 good-location sets into shard 0's map. A
  // dual-homed /24 can be good at a location owned by another shard, and the
  // ambiguity rule needs the global view. Set union in fixed shard order —
  // order-independent, hence deterministic for any shard count.
  auto& good_locations = shards[0].good_locations;
  for (std::size_t s = 1; s < nshards; ++s) {
    for (auto& [block, locs] : shards[s].good_locations) {
      good_locations[block].insert(locs.begin(), locs.end());
    }
  }

  // Pass 2: hierarchical blame per bad quartet, over contiguous input chunks
  // against the now read-only shard states. Chunk results are concatenated
  // in chunk order, so the output sequence is the input order exactly.
  const std::size_t nchunks = std::min<std::size_t>(nshards, n ? n : 1);
  const std::size_t chunk_size = n ? (n + nchunks - 1) / nchunks : 0;
  std::vector<std::vector<BlameResult>> chunks(nchunks);
  const auto pass2 = [&](int c) {
    auto& out = chunks[static_cast<std::size_t>(c)];
    const std::size_t begin = static_cast<std::size_t>(c) * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    for (std::size_t i = begin; i < end; ++i) {
      const auto& q = quartets[i];
      const auto& shard = shards[q.key.location.value % nshards];
      if (!q.bad) {
        // §13 soft badness: a route change can move a whole middle group to
        // a longer path whose RTT stays under the absolute region target —
        // invisible to the per-quartet threshold, but exactly what the
        // expectation comparison exists to catch. Only RECENTLY CHURNED
        // groups qualify (a live churn event re-routed traffic onto this
        // key): there, "the group crossed τ against its expectation" is a
        // path-shaped signal corroborated by the routing plane, while the
        // same crossing on an unchurned group can equally be a client-side
        // fault inflating a small group (so co-group quartets must keep
        // seed's abstain behavior). Soft-bad quartets are blamed Middle
        // directly and never touch the cloud or client branches.
        if (!config_.churn_baseline_transfer) continue;
        const auto mk = middle_group(q);
        const auto& soft_mg = shard.groups.at(mk);
        const auto& cmp = shard.comparison_cache.at(mk);
        if (!cmp.churned) continue;
        if (soft_mg.quartets <= config_.min_group_quartets) continue;
        if (soft_mg.bad_fraction() < config_.tau) continue;
        if (q.mean_rtt_ms <= cmp.value) continue;
        BlameResult result;
        result.quartet = q;
        result.blame = Blame::Middle;
        result.grade = cmp.transferred ? BaselineGrade::Transferred
                                       : BaselineGrade::Fresh;
        out.push_back(std::move(result));
        continue;
      }
      BlameResult result;
      result.quartet = q;

      const auto& cg = shard.groups.at(cloud_group(q));
      const auto& mg = shard.groups.at(middle_group(q));

      // With a steer shield active, the cloud check runs on the group's
      // UN-shielded evidence: a destination-edge shift that is only visible
      // through just-re-steered /24s has no corroborating cloud-side signal
      // and must fall through to the middle checks. Groups untouched by the
      // shield have unshielded == full counters, so this is the original
      // rule for them; with the shield off it is the original rule for all.
      const bool cloud_blamed =
          shield_on ? (cg.unshielded_quartets > config_.min_group_quartets &&
                       cg.unshielded_fraction() >= config_.tau)
                    : cg.bad_fraction() >= config_.tau;
      if (cg.quartets <= config_.min_group_quartets) {
        result.blame = Blame::Insufficient;
      } else if (cloud_blamed) {
        result.blame = Blame::Cloud;
        result.faulty_as = topology_->cloud_as();
      } else if (mg.quartets <= config_.min_group_quartets) {
        result.blame = Blame::Insufficient;
      } else if (mg.bad_fraction() >= config_.tau) {
        result.blame = Blame::Middle;  // active phase refines to an AS
        result.grade = shard.comparison_cache.at(middle_group(q)).transferred
                           ? BaselineGrade::Transferred
                           : BaselineGrade::Fresh;
      } else {
        const auto it = good_locations.find(q.key.block.block);
        const bool good_elsewhere =
            it != good_locations.end() &&
            (it->second.size() > 1 ||
             !it->second.contains(q.key.location.value));
        if (good_elsewhere) {
          result.blame = Blame::Ambiguous;
        } else {
          result.blame = Blame::Client;
          result.faulty_as = q.client_as;
        }
      }
      out.push_back(std::move(result));
    }
  };
  if (pool_) {
    pool_->run(static_cast<int>(nchunks), pass2);
  } else {
    pass2(0);
  }

  std::size_t total = 0;
  for (const auto& c : chunks) total += c.size();
  std::vector<BlameResult> results;
  results.reserve(total);
  for (auto& c : chunks) {
    results.insert(results.end(), std::make_move_iterator(c.begin()),
                   std::make_move_iterator(c.end()));
  }
  if (blame_c_[0]) {
    for (const auto& r : results) {
      blame_c_[static_cast<std::size_t>(r.blame)]->add();
    }
  }
  return results;
}

}  // namespace blameit::core
