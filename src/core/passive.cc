#include "core/passive.h"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace blameit::core {

namespace {

struct GroupStats {
  int quartets = 0;
  int bad_vs_expected = 0;  ///< quartets whose mean exceeds the expected RTT

  [[nodiscard]] double bad_fraction() const noexcept {
    return quartets == 0
               ? 0.0
               : static_cast<double>(bad_vs_expected) / quartets;
  }
};

std::uint64_t cloud_group(const analysis::Quartet& q) noexcept {
  return (std::uint64_t{q.key.location.value} << 8) |
         static_cast<std::uint64_t>(q.key.device);
}

std::uint64_t middle_group(const analysis::Quartet& q) noexcept {
  return (std::uint64_t{1} << 62) |
         (std::uint64_t{q.key.location.value} << 40) |
         (std::uint64_t{q.middle.value} << 8) |
         static_cast<std::uint64_t>(q.key.device);
}

}  // namespace

PassiveLocalizer::PassiveLocalizer(
    const net::Topology* topology,
    const analysis::ExpectedRttLearner* learner, BlameItConfig config)
    : topology_(topology), learner_(learner), config_(config) {
  if (!topology_ || !learner_) {
    throw std::invalid_argument{"PassiveLocalizer: null dependency"};
  }
  if (config_.tau <= 0.0 || config_.tau > 1.0 ||
      config_.min_group_quartets < 1) {
    throw std::invalid_argument{"BlameItConfig: invalid tau or min quartets"};
  }
}

double PassiveLocalizer::comparison_rtt(analysis::ExpectedRttKey key, int day,
                                        net::Region region,
                                        net::DeviceClass device) const {
  // Prefer the learned 14-day median; before history accrues, fall back to
  // the region target (deployment bootstrap; also exercised by the
  // expected-RTT ablation bench).
  const auto learned = learner_->expected(key, day);
  return learned ? *learned : thresholds_.threshold(region, device);
}

std::vector<BlameResult> PassiveLocalizer::localize(
    std::span<const analysis::Quartet> quartets, int day) const {
  // Pass 1: group statistics against the learned expected RTTs, plus the
  // per-/24 "good somewhere else" sets for the ambiguity rule.
  std::unordered_map<std::uint64_t, GroupStats> groups;
  // block -> locations where it saw a *good* (below threshold) quartet.
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint16_t>>
      good_locations;
  // Cache comparison RTTs per group so the learner is consulted once.
  std::unordered_map<std::uint64_t, double> comparison_cache;

  for (const auto& q : quartets) {
    const auto ck = cloud_group(q);
    const auto mk = middle_group(q);

    const auto cloud_cmp = [&] {
      const auto it = comparison_cache.find(ck);
      if (it != comparison_cache.end()) return it->second;
      const double v =
          comparison_rtt(analysis::cloud_key(q.key.location, q.key.device),
                         day, q.region, q.key.device);
      comparison_cache.emplace(ck, v);
      return v;
    }();
    const auto middle_cmp = [&] {
      const auto it = comparison_cache.find(mk);
      if (it != comparison_cache.end()) return it->second;
      const double v = comparison_rtt(
          analysis::middle_key(q.key.location, q.middle, q.key.device), day,
          q.region, q.key.device);
      comparison_cache.emplace(mk, v);
      return v;
    }();

    // §4.2 subtlety: fractions count quartets, NOT RTT samples — a handful
    // of high-volume "good" /24s must not mask widespread badness.
    auto& cg = groups[ck];
    ++cg.quartets;
    cg.bad_vs_expected += q.mean_rtt_ms > cloud_cmp;

    auto& mg = groups[mk];
    ++mg.quartets;
    mg.bad_vs_expected += q.mean_rtt_ms > middle_cmp;

    if (!q.bad) {
      good_locations[q.key.block.block].insert(q.key.location.value);
    }
  }

  // Pass 2: hierarchical blame per bad quartet.
  std::vector<BlameResult> results;
  for (const auto& q : quartets) {
    if (!q.bad) continue;
    BlameResult result;
    result.quartet = q;

    const auto& cg = groups[cloud_group(q)];
    const auto& mg = groups[middle_group(q)];

    if (cg.quartets <= config_.min_group_quartets) {
      result.blame = Blame::Insufficient;
    } else if (cg.bad_fraction() >= config_.tau) {
      result.blame = Blame::Cloud;
      result.faulty_as = topology_->cloud_as();
    } else if (mg.quartets <= config_.min_group_quartets) {
      result.blame = Blame::Insufficient;
    } else if (mg.bad_fraction() >= config_.tau) {
      result.blame = Blame::Middle;  // active phase refines to an AS
    } else {
      const auto it = good_locations.find(q.key.block.block);
      const bool good_elsewhere =
          it != good_locations.end() &&
          (it->second.size() > 1 ||
           !it->second.contains(q.key.location.value));
      if (good_elsewhere) {
        result.blame = Blame::Ambiguous;
      } else {
        result.blame = Blame::Client;
        result.faulty_as = q.client_as;
      }
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace blameit::core
