#include "core/active.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/stats.h"

namespace blameit::core {

namespace {

/// Baseline-age buckets in minutes: a bucket per interesting staleness tier
/// up to a week (the background cadence is 2×/day, so ages past ~12 h mean
/// the periodic probes are not keeping up).
constexpr double kBaselineAgeBucketsMin[] = {15,   60,   180,  360, 720,
                                             1440, 2880, 5760, 10080};

/// Quorum aggregate: what the baseline diff consumes instead of one probe.
struct ProbeAggregate {
  double cloud_ms = 0.0;
  std::vector<std::pair<net::AsId, double>> contributions;
};

/// Median-of-K per-AS contributions across the quorum's full-path results,
/// with whole-result outlier rejection first: a result whose end-to-end RTT
/// is wildly off the quorum median (3×) is a bad measurement (duplicated /
/// late / cross-traffic spike) and is dropped before the per-AS medians.
/// An AS enters the aggregate when a majority of kept results report it —
/// silently non-responding ASes that answered only a minority of probes
/// stay out, exactly as a missing contribution entry would.
ProbeAggregate aggregate_quorum(
    const std::vector<sim::TracerouteResult>& results) {
  ProbeAggregate agg;
  std::vector<double> totals;
  totals.reserve(results.size());
  for (const auto& r : results) totals.push_back(r.hops.back().cumulative_rtt_ms);
  const double med_total = util::median(totals);
  std::vector<const sim::TracerouteResult*> kept;
  for (const auto& r : results) {
    const double total = r.hops.back().cumulative_rtt_ms;
    if (med_total <= 0.0 ||
        (total >= med_total / 3.0 && total <= med_total * 3.0)) {
      kept.push_back(&r);
    }
  }
  if (kept.empty()) {
    for (const auto& r : results) kept.push_back(&r);
  }

  std::vector<double> clouds;
  clouds.reserve(kept.size());
  for (const auto* r : kept) clouds.push_back(r->cloud_ms);
  agg.cloud_ms = util::median_inplace(clouds);

  std::vector<net::AsId> order;  // first-seen hop order across kept results
  std::unordered_map<net::AsId, std::vector<double>> values;
  for (const auto* r : kept) {
    for (const auto& [as, ms] : r->contributions()) {
      auto& v = values[as];
      if (v.empty()) order.push_back(as);
      v.push_back(ms);
    }
  }
  for (const auto as : order) {
    auto& v = values[as];
    if (v.size() * 2 >= kept.size()) {
      agg.contributions.emplace_back(as, util::median_inplace(v));
    }
  }
  return agg;
}

/// Prefer full paths, then longer partials, then anything at all — the
/// retry loop keeps the most informative result it saw.
bool better_result(const sim::TracerouteResult& a,
                   const sim::TracerouteResult& b) {
  if (a.reached != b.reached) return a.reached;
  if (a.truncated != b.truncated) return a.truncated;
  return a.hops.size() > b.hops.size();
}

}  // namespace

ActiveLocalizer::ActiveLocalizer(const net::Topology* topology,
                                 sim::TracerouteEngine* engine,
                                 const BaselineStore* baselines,
                                 BlameItConfig config, obs::Registry* registry)
    : topology_(topology),
      engine_(engine),
      baselines_(baselines),
      config_(config) {
  if (!topology_ || !engine_ || !baselines_) {
    throw std::invalid_argument{"ActiveLocalizer: null dependency"};
  }
  if (config_.active_probe_retries < 0 || config_.active_quorum_k < 1 ||
      config_.retry_backoff_base_minutes < 0) {
    throw std::invalid_argument{"ActiveLocalizer: invalid retry/quorum config"};
  }
  probes_c_ = obs::counter(registry, "active.probes");
  unreached_c_ = obs::counter(registry, "active.unreached");
  no_baseline_c_ = obs::counter(registry, "active.no_baseline");
  predates_c_ = obs::counter(registry, "active.baseline_predates_issue");
  retries_c_ = obs::counter(registry, "active.retries");
  lost_c_ = obs::counter(registry, "active.lost_probes");
  truncated_c_ = obs::counter(registry, "active.truncated_probes");
  partial_c_ = obs::counter(registry, "active.partial_diagnoses");
  coarse_middle_c_ = obs::counter(registry, "active.coarse_middle");
  stale_baseline_c_ = obs::counter(registry, "active.stale_baseline");
  conf_high_c_ = obs::counter(registry, "active.confidence.high");
  conf_medium_c_ = obs::counter(registry, "active.confidence.medium");
  conf_low_c_ = obs::counter(registry, "active.confidence.low");
  probed_cold_c_ = obs::counter(registry, "active.probed_cold");
  baseline_age_h_ = obs::histogram(registry, "active.baseline_age_minutes",
                                   kBaselineAgeBucketsMin);
}

sim::TracerouteResult ActiveLocalizer::probe_with_retries(
    net::CloudLocationId location, net::Slash24 target_block,
    util::MinuteTime now, int& attempt_counter, ActiveDiagnosis& diag) {
  sim::TracerouteResult best;
  bool have_best = false;
  std::int64_t backoff = 0;  // minutes past `now`; base * (2^r - 1)
  for (int r = 0; r <= config_.active_probe_retries; ++r) {
    if (r > 0) {
      ++diag.retries;
      obs::add(retries_c_);
      backoff = backoff * 2 + config_.retry_backoff_base_minutes;
    }
    auto result = engine_->trace(location, target_block,
                                 now.plus_minutes(backoff), attempt_counter++);
    ++diag.probes_spent;
    if (result.lost) obs::add(lost_c_);
    if (result.truncated) obs::add(truncated_c_);
    if (!have_best || better_result(result, best)) {
      best = result;
      have_best = true;
    }
    if (result.reached) break;
    // No-route failures are deterministic — retrying cannot help. An
    // engine-wide outage likewise outlasts any per-probe backoff.
    if (result.no_route || result.in_outage) break;
  }
  return best;
}

void ActiveLocalizer::finalize_confidence(ActiveDiagnosis& diag) const {
  DiagnosisConfidence conf = DiagnosisConfidence::Low;
  if (diag.coarse_middle || !diag.culprit.has_value()) {
    conf = DiagnosisConfidence::Low;
  } else if (!diag.have_baseline) {
    // A probed-cold verdict rests on two agreeing direct measurements of
    // the path (§13) — degraded but actionable. Any other no-baseline
    // verdict stays Low, exactly as before the knob existed.
    conf = diag.grade == BaselineGrade::ProbedCold ? DiagnosisConfidence::Medium
                                                   : DiagnosisConfidence::Low;
  } else if (diag.truncated || diag.baseline_stale) {
    conf = DiagnosisConfidence::Medium;
  } else {
    conf = DiagnosisConfidence::High;
  }
  diag.confidence = conf;
  switch (conf) {
    case DiagnosisConfidence::High: obs::add(conf_high_c_); break;
    case DiagnosisConfidence::Medium: obs::add(conf_medium_c_); break;
    case DiagnosisConfidence::Low: obs::add(conf_low_c_); break;
  }
}

ActiveDiagnosis ActiveLocalizer::diagnose(
    net::CloudLocationId location, net::MiddleSegmentId middle,
    net::Slash24 target_block, util::MinuteTime now,
    std::optional<util::MinuteTime> issue_start) {
  ActiveDiagnosis diag;
  diag.location = location;
  diag.middle = middle;

  // Quorum phase: up to K full-path results, each slot retrying lost or
  // truncated probes with backoff. Every attempt is charged.
  std::vector<sim::TracerouteResult> full;
  sim::TracerouteResult best_partial;
  bool have_partial = false;
  sim::TracerouteResult last_failed;
  int attempt_counter = 0;
  const int quorum = std::max(1, config_.active_quorum_k);
  for (int k = 0; k < quorum; ++k) {
    auto result =
        probe_with_retries(location, target_block, now, attempt_counter, diag);
    const bool dead_end = result.no_route || result.in_outage;
    if (result.reached) {
      full.push_back(std::move(result));
    } else if (result.truncated) {
      if (!have_partial || result.hops.size() > best_partial.hops.size()) {
        best_partial = std::move(result);
        have_partial = true;
      }
    } else {
      last_failed = std::move(result);
    }
    // A deterministic failure fails every slot identically; stop burning
    // budget on it.
    if (dead_end) break;
  }
  obs::add(probes_c_, static_cast<std::uint64_t>(diag.probes_spent));

  if (full.empty() && !have_partial) {
    // Nothing answered: no per-AS evidence at all.
    diag.probe = last_failed;
    obs::add(unreached_c_);
    finalize_confidence(diag);
    return diag;
  }

  ProbeAggregate agg;
  if (!full.empty()) {
    diag.probe_reached = true;
    if (full.size() == 1) {
      // Single result: use it verbatim — the median-of-1 identity keeps the
      // legacy single-probe path bit-exact.
      agg.cloud_ms = full.front().cloud_ms;
      agg.contributions = full.front().contributions();
    } else {
      agg = aggregate_quorum(full);
    }
    diag.probe = std::move(full.front());
  } else {
    // Partial-path diagnosis: only a truncated prefix answered. Diff what
    // was reached; the culprit may legitimately be past the horizon.
    diag.truncated = true;
    agg.cloud_ms = best_partial.cloud_ms;
    agg.contributions = best_partial.contributions();
    diag.probe = std::move(best_partial);
    obs::add(partial_c_);
  }

  const Baseline* baseline =
      issue_start ? baselines_->get_before(location, middle, *issue_start)
                  : baselines_->get(location, middle);
  diag.have_baseline = baseline != nullptr;
  // get_before() only returns baselines strictly older than issue_start, so
  // a hit there is a guarantee; a plain get() makes no such promise.
  diag.baseline_predates_issue = baseline != nullptr && issue_start.has_value();

  if (baseline) {
    if (diag.baseline_predates_issue) obs::add(predates_c_);
    const double age_minutes =
        static_cast<double>(now.minutes - baseline->when.minutes);
    obs::record(baseline_age_h_, age_minutes);
    if (age_minutes > static_cast<double>(config_.baseline_stale_minutes)) {
      diag.baseline_stale = true;
      obs::add(stale_baseline_c_);
    }
    // Index the baseline contributions; path membership can differ slightly
    // (e.g. baseline captured just before a hop-level change), so match by
    // AS and treat new ASes as pure increase.
    std::unordered_map<net::AsId, double> base;
    for (const auto& [as, ms] : baseline->contributions) base[as] = ms;
    double best_increase = 0.0;
    std::optional<net::AsId> best_as;
    // The cloud's own segment participates too: a traceroute that shows the
    // first-hop time ballooning implicates the cloud, not the middle.
    const double cloud_increase = agg.cloud_ms - baseline->cloud_ms;
    if (cloud_increase > best_increase) {
      best_increase = cloud_increase;
      best_as = topology_->cloud_as();
    }
    for (const auto& [as, ms] : agg.contributions) {
      const auto it = base.find(as);
      const double increase = it == base.end() ? ms : ms - it->second;
      if (increase > best_increase) {
        best_increase = increase;
        best_as = as;
      }
    }
    if (diag.truncated &&
        best_increase < config_.partial_path_min_increase_ms) {
      // The reached prefix looks healthy: the inflation lives at or past
      // the truncation point. Blame stays at coarse "middle segment"
      // granularity rather than naming an innocent prefix AS.
      diag.coarse_middle = true;
      diag.culprit_increase_ms = best_increase;
      obs::add(coarse_middle_c_);
    } else {
      diag.culprit = best_as;
      diag.culprit_increase_ms = best_increase;
    }
  } else {
    obs::add(no_baseline_c_);
    // No baseline: blame the largest absolute contributor (low confidence).
    // The cloud segment is a candidate here exactly as in the baseline
    // branch — without it a cloud-dominated path could never be blamed on
    // the cloud AS. Over a truncated prefix the absolute fallback is
    // doubly unreliable; the confidence stays Low either way.
    const auto top_contributor =
        [&](double cloud_ms,
            const std::vector<std::pair<net::AsId, double>>& contribs) {
          double best = cloud_ms;
          std::optional<net::AsId> who;
          if (best > 0.0) who = topology_->cloud_as();
          for (const auto& [as, ms] : contribs) {
            if (ms > best) {
              best = ms;
              who = as;
            }
          }
          return std::pair{who, best};
        };
    const auto [who, best] = top_contributor(agg.cloud_ms, agg.contributions);
    diag.culprit = who;
    diag.culprit_increase_ms = best;
    if (config_.probe_on_no_baseline && diag.probe_reached) {
      // §13 probe-on-no-baseline: instead of abstaining at Low on a
      // (likely churn-fresh) path, spend one bounded confirmation probe.
      // If it answers end-to-end and independently names the same top
      // contributor, the diagnosis is graded probed-cold and confidence
      // rises to Medium; the pipeline back-fills the learner and the
      // baseline store from the confirmed measurement. Every attempt is
      // charged against the same §5.3 budget as the quorum probes.
      const int pre_confirm = diag.probes_spent;
      const auto confirm =
          probe_with_retries(location, target_block, now, attempt_counter,
                             diag);
      obs::add(probes_c_,
               static_cast<std::uint64_t>(diag.probes_spent - pre_confirm));
      if (confirm.reached) {
        const auto [confirm_who, confirm_best] =
            top_contributor(confirm.cloud_ms, confirm.contributions());
        if (confirm_who == diag.culprit) {
          diag.grade = BaselineGrade::ProbedCold;
          diag.culprit_increase_ms = (best + confirm_best) / 2.0;
          obs::add(probed_cold_c_);
        }
      }
    }
  }
  finalize_confidence(diag);
  return diag;
}

}  // namespace blameit::core
