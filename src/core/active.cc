#include "core/active.h"

#include <stdexcept>
#include <unordered_map>

namespace blameit::core {

ActiveLocalizer::ActiveLocalizer(const net::Topology* topology,
                                 sim::TracerouteEngine* engine,
                                 const BaselineStore* baselines)
    : topology_(topology), engine_(engine), baselines_(baselines) {
  if (!topology_ || !engine_ || !baselines_) {
    throw std::invalid_argument{"ActiveLocalizer: null dependency"};
  }
}

ActiveDiagnosis ActiveLocalizer::diagnose(
    net::CloudLocationId location, net::MiddleSegmentId middle,
    net::Slash24 target_block, util::MinuteTime now,
    std::optional<util::MinuteTime> issue_start) {
  ActiveDiagnosis diag;
  diag.location = location;
  diag.middle = middle;
  diag.probe = engine_->trace(location, target_block, now);
  diag.probe_reached = diag.probe.reached;
  if (!diag.probe_reached) return diag;

  const auto current = diag.probe.contributions();
  const Baseline* baseline =
      issue_start ? baselines_->get_before(location, middle, *issue_start)
                  : baselines_->get(location, middle);
  diag.have_baseline = baseline != nullptr;

  if (baseline) {
    // Index the baseline contributions; path membership can differ slightly
    // (e.g. baseline captured just before a hop-level change), so match by
    // AS and treat new ASes as pure increase.
    std::unordered_map<net::AsId, double> base;
    for (const auto& [as, ms] : baseline->contributions) base[as] = ms;
    double best_increase = 0.0;
    std::optional<net::AsId> best_as;
    // The cloud's own segment participates too: a traceroute that shows the
    // first-hop time ballooning implicates the cloud, not the middle.
    const double cloud_increase = diag.probe.cloud_ms - baseline->cloud_ms;
    if (cloud_increase > best_increase) {
      best_increase = cloud_increase;
      best_as = topology_->cloud_as();
    }
    for (const auto& [as, ms] : current) {
      const auto it = base.find(as);
      const double increase = it == base.end() ? ms : ms - it->second;
      if (increase > best_increase) {
        best_increase = increase;
        best_as = as;
      }
    }
    diag.culprit = best_as;
    diag.culprit_increase_ms = best_increase;
  } else {
    // No baseline: blame the largest absolute contributor (low confidence).
    double best = 0.0;
    for (const auto& [as, ms] : current) {
      if (ms > best) {
        best = ms;
        diag.culprit = as;
      }
    }
    diag.culprit_increase_ms = best;
  }
  return diag;
}

}  // namespace blameit::core
