#include "core/active.h"

#include <stdexcept>
#include <unordered_map>

namespace blameit::core {

namespace {

/// Baseline-age buckets in minutes: a bucket per interesting staleness tier
/// up to a week (the background cadence is 2×/day, so ages past ~12 h mean
/// the periodic probes are not keeping up).
constexpr double kBaselineAgeBucketsMin[] = {15,   60,   180,  360, 720,
                                             1440, 2880, 5760, 10080};

}  // namespace

ActiveLocalizer::ActiveLocalizer(const net::Topology* topology,
                                 sim::TracerouteEngine* engine,
                                 const BaselineStore* baselines,
                                 obs::Registry* registry)
    : topology_(topology), engine_(engine), baselines_(baselines) {
  if (!topology_ || !engine_ || !baselines_) {
    throw std::invalid_argument{"ActiveLocalizer: null dependency"};
  }
  probes_c_ = obs::counter(registry, "active.probes");
  unreached_c_ = obs::counter(registry, "active.unreached");
  no_baseline_c_ = obs::counter(registry, "active.no_baseline");
  predates_c_ = obs::counter(registry, "active.baseline_predates_issue");
  baseline_age_h_ = obs::histogram(registry, "active.baseline_age_minutes",
                                   kBaselineAgeBucketsMin);
}

ActiveDiagnosis ActiveLocalizer::diagnose(
    net::CloudLocationId location, net::MiddleSegmentId middle,
    net::Slash24 target_block, util::MinuteTime now,
    std::optional<util::MinuteTime> issue_start) {
  ActiveDiagnosis diag;
  diag.location = location;
  diag.middle = middle;
  diag.probe = engine_->trace(location, target_block, now);
  diag.probe_reached = diag.probe.reached;
  obs::add(probes_c_);
  if (!diag.probe_reached) {
    obs::add(unreached_c_);
    return diag;
  }

  const auto current = diag.probe.contributions();
  const Baseline* baseline =
      issue_start ? baselines_->get_before(location, middle, *issue_start)
                  : baselines_->get(location, middle);
  diag.have_baseline = baseline != nullptr;
  // get_before() only returns baselines strictly older than issue_start, so
  // a hit there is a guarantee; a plain get() makes no such promise.
  diag.baseline_predates_issue = baseline != nullptr && issue_start.has_value();

  if (baseline) {
    if (diag.baseline_predates_issue) obs::add(predates_c_);
    obs::record(baseline_age_h_,
                static_cast<double>(now.minutes - baseline->when.minutes));
    // Index the baseline contributions; path membership can differ slightly
    // (e.g. baseline captured just before a hop-level change), so match by
    // AS and treat new ASes as pure increase.
    std::unordered_map<net::AsId, double> base;
    for (const auto& [as, ms] : baseline->contributions) base[as] = ms;
    double best_increase = 0.0;
    std::optional<net::AsId> best_as;
    // The cloud's own segment participates too: a traceroute that shows the
    // first-hop time ballooning implicates the cloud, not the middle.
    const double cloud_increase = diag.probe.cloud_ms - baseline->cloud_ms;
    if (cloud_increase > best_increase) {
      best_increase = cloud_increase;
      best_as = topology_->cloud_as();
    }
    for (const auto& [as, ms] : current) {
      const auto it = base.find(as);
      const double increase = it == base.end() ? ms : ms - it->second;
      if (increase > best_increase) {
        best_increase = increase;
        best_as = as;
      }
    }
    diag.culprit = best_as;
    diag.culprit_increase_ms = best_increase;
  } else {
    obs::add(no_baseline_c_);
    // No baseline: blame the largest absolute contributor (low confidence).
    // The cloud segment is a candidate here exactly as in the baseline
    // branch — without it a cloud-dominated path could never be blamed on
    // the cloud AS.
    double best = diag.probe.cloud_ms;
    if (best > 0.0) diag.culprit = topology_->cloud_as();
    for (const auto& [as, ms] : current) {
      if (ms > best) {
        best = ms;
        diag.culprit = as;
      }
    }
    diag.culprit_increase_ms = best;
  }
  return diag;
}

}  // namespace blameit::core
