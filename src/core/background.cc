#include "core/background.h"

#include <stdexcept>

#include "core/prioritizer.h"
#include "util/rng.h"

namespace blameit::core {

void BaselineStore::update(net::CloudLocationId location,
                           net::MiddleSegmentId middle, Baseline baseline) {
  auto& history = baselines_[middle_issue_key(location, middle)];
  history.push_back(std::move(baseline));
  if (history.size() > kHistory) {
    history.erase(history.begin());
  }
}

const Baseline* BaselineStore::get(net::CloudLocationId location,
                                   net::MiddleSegmentId middle) const {
  const auto it = baselines_.find(middle_issue_key(location, middle));
  if (it == baselines_.end() || it->second.empty()) return nullptr;
  return &it->second.back();
}

const Baseline* BaselineStore::get_before(net::CloudLocationId location,
                                          net::MiddleSegmentId middle,
                                          util::MinuteTime when) const {
  const auto it = baselines_.find(middle_issue_key(location, middle));
  if (it == baselines_.end() || it->second.empty()) return nullptr;
  const Baseline* best = nullptr;
  for (const auto& baseline : it->second) {  // oldest first
    if (baseline.when < when) best = &baseline;
  }
  return best ? best : &it->second.front();
}

BackgroundProber::BackgroundProber(const net::Topology* topology,
                                   sim::TracerouteEngine* engine,
                                   BaselineStore* store, BlameItConfig config)
    : topology_(topology), engine_(engine), store_(store), config_(config) {
  if (!topology_ || !engine_ || !store_) {
    throw std::invalid_argument{"BackgroundProber: null dependency"};
  }
  if (config_.background_period_minutes < util::kBucketMinutes) {
    throw std::invalid_argument{
        "BackgroundProber: period shorter than a bucket"};
  }
}

void BackgroundProber::rebuild_targets(util::MinuteTime now) {
  targets_.clear();
  // One representative client /24 per ⟨location, middle segment⟩ under the
  // routes currently installed. Phase-staggered by a hash so the fleet's
  // periodic probes spread across the period instead of spiking together.
  std::unordered_map<std::uint64_t, bool> seen;
  for (const auto& loc : topology_->locations()) {
    for (const auto& block : topology_->blocks()) {
      const auto* route =
          topology_->routing().route_for(loc.id, block.block, now);
      if (!route) continue;
      const auto key = middle_issue_key(loc.id, route->middle);
      if (seen.emplace(key, true).second) {
        targets_.push_back(Target{
            .location = loc.id,
            .middle = route->middle,
            .block = block.block,
            .phase_minutes = static_cast<int>(
                util::hash_combine(key, 0x9E3779B9u) %
                static_cast<std::uint64_t>(
                    config_.background_period_minutes))});
      }
    }
  }
  targets_dirty_ = false;
}

void BackgroundProber::probe(const Target& target, util::MinuteTime now) {
  const auto result = engine_->trace(target.location, target.block, now);
  if (!result.reached) return;
  store_->update(target.location, target.middle,
                 Baseline{.when = now,
                          .cloud_ms = result.cloud_ms,
                          .contributions = result.contributions()});
}

int BackgroundProber::step(util::MinuteTime prev, util::MinuteTime now) {
  if (now <= prev) return 0;
  int probes = 0;

  // Churn-triggered probes first: they also tell us the target list changed.
  const auto churn = topology_->routing().churn_between(
      prev.plus_minutes(1), now.plus_minutes(1));
  if (!churn.empty()) targets_dirty_ = true;
  if (targets_dirty_) rebuild_targets(now);

  if (config_.churn_triggered_probes) {
    for (const auto& event : churn) {
      if (event.kind == net::ChurnKind::Announce &&
          event.time == util::MinuteTime{0}) {
        continue;  // initial table load, not real churn
      }
      if (!event.new_route) continue;
      // Probe a /24 inside the affected prefix from the listening location.
      const net::Slash24 block{event.prefix.network >> 8};
      const auto result = engine_->trace(event.location, block, now);
      ++probes;
      if (result.reached) {
        store_->update(event.location, event.new_route->middle,
                       Baseline{.when = now,
                                .cloud_ms = result.cloud_ms,
                                .contributions = result.contributions()});
      }
    }
  }

  // Periodic probes whose phase fell inside (prev, now].
  const int period = config_.background_period_minutes;
  for (const auto& target : targets_) {
    // Fire at every time T with T % period == phase, T in (prev, now].
    std::int64_t t =
        (prev.minutes / period) * period + target.phase_minutes;
    while (t <= prev.minutes) t += period;
    for (; t <= now.minutes; t += period) {
      probe(target, util::MinuteTime{t});
      ++probes;
    }
  }
  return probes;
}

std::uint64_t BackgroundProber::periodic_probes_per_day() const {
  const auto probes_per_target =
      static_cast<std::uint64_t>(util::kMinutesPerDay /
                                 config_.background_period_minutes);
  return probes_per_target * targets_.size();
}

}  // namespace blameit::core
