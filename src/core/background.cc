#include "core/background.h"

#include <algorithm>
#include <stdexcept>

#include "core/prioritizer.h"
#include "sim/chaos.h"
#include "util/rng.h"

namespace blameit::core {

void BaselineStore::update(net::CloudLocationId location,
                           net::MiddleSegmentId middle, Baseline baseline) {
  auto& history = baselines_[middle_issue_key(location, middle)];
  history.push_back(std::move(baseline));
  if (history.size() > kHistory) {
    history.erase(history.begin());
  }
}

const Baseline* BaselineStore::get(net::CloudLocationId location,
                                   net::MiddleSegmentId middle) const {
  const auto it = baselines_.find(middle_issue_key(location, middle));
  if (it == baselines_.end() || it->second.empty()) return nullptr;
  return &it->second.back();
}

const Baseline* BaselineStore::get_before(net::CloudLocationId location,
                                          net::MiddleSegmentId middle,
                                          util::MinuteTime when) const {
  const auto it = baselines_.find(middle_issue_key(location, middle));
  if (it == baselines_.end() || it->second.empty()) return nullptr;
  const Baseline* best = nullptr;
  for (const auto& baseline : it->second) {  // oldest first
    if (baseline.when < when) best = &baseline;
  }
  // No baseline predates `when`: every retained probe ran during (or after)
  // the incident and would show the inflated path as "normal", yielding a
  // culprit increase of ~0 — a silent miss. Let the caller take the
  // explicit low-confidence no-baseline path instead.
  return best;
}

void BaselineStore::save(std::string& out) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(baselines_.size());
  for (const auto& [key, history] : baselines_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  store::put_varint(out, keys.size());
  std::uint64_t prev = 0;
  for (const std::uint64_t key : keys) {
    store::put_varint(out, key - prev);
    prev = key;
    const auto& history = baselines_.at(key);
    store::put_varint(out, history.size());
    for (const Baseline& baseline : history) {
      store::put_svarint(out, baseline.when.minutes);
      store::put_f64(out, baseline.cloud_ms);
      store::put_varint(out, baseline.contributions.size());
      for (const auto& [as, ms] : baseline.contributions) {
        store::put_varint(out, as.value);
        store::put_f64(out, ms);
      }
    }
  }
}

void BaselineStore::restore(store::ByteReader& in) {
  std::unordered_map<std::uint64_t, std::vector<Baseline>> baselines;
  const std::uint64_t n_keys = in.varint();
  if (n_keys > (std::uint64_t{1} << 40)) in.fail("baseline key count absurd");
  baselines.reserve(static_cast<std::size_t>(n_keys));
  std::uint64_t prev = 0;
  for (std::uint64_t k = 0; k < n_keys; ++k) {
    prev += in.varint();
    const std::uint64_t n = in.varint();
    if (n > kHistory) in.fail("baseline history exceeds retention");
    auto& history = baselines[prev];
    history.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      Baseline baseline;
      baseline.when.minutes = in.svarint();
      baseline.cloud_ms = in.f64();
      const std::uint64_t n_contrib = in.varint();
      if (n_contrib > (std::uint64_t{1} << 20)) {
        in.fail("contribution count absurd");
      }
      baseline.contributions.reserve(static_cast<std::size_t>(n_contrib));
      for (std::uint64_t c = 0; c < n_contrib; ++c) {
        const net::AsId as{static_cast<std::uint32_t>(in.varint())};
        const double ms = in.f64();
        baseline.contributions.emplace_back(as, ms);
      }
      history.push_back(std::move(baseline));
    }
  }
  baselines_ = std::move(baselines);
}

BackgroundProber::BackgroundProber(const net::Topology* topology,
                                   sim::TracerouteEngine* engine,
                                   BaselineStore* store, BlameItConfig config,
                                   obs::Registry* registry)
    : topology_(topology), engine_(engine), store_(store), config_(config) {
  if (!topology_ || !engine_ || !store_) {
    throw std::invalid_argument{"BackgroundProber: null dependency"};
  }
  if (config_.background_period_minutes < util::kBucketMinutes) {
    throw std::invalid_argument{
        "BackgroundProber: period shorter than a bucket"};
  }
  probes_c_ = obs::counter(registry, "background.probes");
  churn_probes_c_ = obs::counter(registry, "background.churn_probes");
  unreached_c_ = obs::counter(registry, "background.unreached");
  targets_g_ = obs::gauge(registry, "background.targets");
  baselines_g_ = obs::gauge(registry, "background.baseline_paths");
}

void BackgroundProber::rebuild_targets(util::MinuteTime now) {
  targets_.clear();
  // One representative client /24 per ⟨location, middle segment⟩ under the
  // routes currently installed. Phase-staggered by a hash so the fleet's
  // periodic probes spread across the period instead of spiking together.
  std::unordered_map<std::uint64_t, bool> seen;
  for (const auto& loc : topology_->locations()) {
    for (const auto& block : topology_->blocks()) {
      const auto* route =
          topology_->routing().route_for(loc.id, block.block, now);
      if (!route) continue;
      const auto key = middle_issue_key(loc.id, route->middle);
      if (seen.emplace(key, true).second) {
        targets_.push_back(Target{
            .location = loc.id,
            .middle = route->middle,
            .block = block.block,
            .phase_minutes = static_cast<int>(
                util::hash_combine(key, 0x9E3779B9u) %
                static_cast<std::uint64_t>(
                    config_.background_period_minutes))});
      }
    }
  }
  targets_dirty_ = false;
}

void BackgroundProber::probe(const Target& target, util::MinuteTime now) {
  const auto result = engine_->trace(target.location, target.block, now);
  obs::add(probes_c_);
  if (!result.reached) {
    obs::add(unreached_c_);
    return;
  }
  store_->update(target.location, target.middle,
                 Baseline{.when = now,
                          .cloud_ms = result.cloud_ms,
                          .contributions = result.contributions()});
}

int BackgroundProber::step(util::MinuteTime prev, util::MinuteTime now) {
  if (now <= prev) return 0;
  int probes = 0;

  // Churn-triggered probes first: they also tell us the target list changed.
  // The feed goes through the chaos layer (§13): with control-plane chaos
  // configured, some events are dropped or delivered late; without it this
  // is the raw listener feed verbatim.
  const auto churn = sim::fetch_churn(topology_->routing(), engine_->chaos(),
                                      prev.plus_minutes(1),
                                      now.plus_minutes(1));
  for (const auto& event : churn) {
    // SteerShift moves clients, not routes: the ⟨location, path⟩ target list
    // and its baselines are both still valid, so the prober ignores steers
    // entirely (and churn-blind configs stay bit-identical to the pre-steer
    // feed).
    if (event.kind != net::ChurnKind::SteerShift) {
      targets_dirty_ = true;
      break;
    }
  }
  if (targets_dirty_) rebuild_targets(now);

  if (config_.churn_triggered_probes) {
    for (const auto& event : churn) {
      if (event.kind == net::ChurnKind::SteerShift) continue;
      if (event.kind == net::ChurnKind::Announce &&
          event.time == util::MinuteTime{0}) {
        continue;  // initial table load, not real churn
      }
      if (!event.new_route) continue;
      // Probe a /24 inside the affected prefix from the listening location.
      const net::Slash24 block{event.prefix.network >> 8};
      const auto result = engine_->trace(event.location, block, now);
      ++probes;
      obs::add(probes_c_);
      obs::add(churn_probes_c_);
      if (result.reached) {
        store_->update(event.location, event.new_route->middle,
                       Baseline{.when = now,
                                .cloud_ms = result.cloud_ms,
                                .contributions = result.contributions()});
      } else {
        obs::add(unreached_c_);
      }
    }
  }

  // Periodic probes whose phase fell inside (prev, now].
  const int period = config_.background_period_minutes;
  for (const auto& target : targets_) {
    // Fire at every time T with T % period == phase, T in (prev, now].
    std::int64_t t =
        (prev.minutes / period) * period + target.phase_minutes;
    while (t <= prev.minutes) t += period;
    for (; t <= now.minutes; t += period) {
      probe(target, util::MinuteTime{t});
      ++probes;
    }
  }
  obs::set(targets_g_, static_cast<double>(targets_.size()));
  obs::set(baselines_g_, static_cast<double>(store_->size()));
  return probes;
}

std::uint64_t BackgroundProber::periodic_probes_per_day() const {
  // Count exactly what the firing loop in step() issues over one day
  // (0, kMinutesPerDay]: target t fires at every T ≡ phase (mod period) in
  // the window. Truncating kMinutesPerDay / period instead under-reports
  // whenever the period doesn't divide a day (e.g. 7 h → 3.43 firings/day,
  // and targets whose phase falls early in the day fire 4 times).
  const std::int64_t period = config_.background_period_minutes;
  std::uint64_t total = 0;
  for (const auto& target : targets_) {
    const std::int64_t phase = target.phase_minutes;
    total += static_cast<std::uint64_t>(
        phase == 0 ? util::kMinutesPerDay / period
                   : (util::kMinutesPerDay - phase) / period + 1);
  }
  return total;
}

}  // namespace blameit::core
