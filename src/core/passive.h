// Algorithm 1 — coarse-grained fault localization from passive RTT data.
//
// Hierarchical elimination over one 5-minute bucket of quartets: start with
// the cloud node (richest aggregate), fall through to the middle BGP path,
// then the client, emitting "insufficient" when a group is too thin and
// "ambiguous" when the same /24 simultaneously saw good RTT at another
// location. Bad fractions compare against the *learned* expected RTTs
// (14-day medians), not the badness thresholds — §4.3 explains why.
#pragma once

#include <span>
#include <vector>

#include "analysis/expected_rtt.h"
#include "analysis/quartet.h"
#include "core/blame.h"
#include "core/config.h"
#include "net/topology.h"

namespace blameit::core {

class PassiveLocalizer {
 public:
  PassiveLocalizer(const net::Topology* topology,
                   const analysis::ExpectedRttLearner* learner,
                   BlameItConfig config = {});

  /// Runs Algorithm 1 over one bucket's quartets (good and bad; the good
  /// ones shape the group fractions and the ambiguity signal). Returns one
  /// BlameResult per *bad* quartet. `day` selects the learner's history
  /// window.
  [[nodiscard]] std::vector<BlameResult> localize(
      std::span<const analysis::Quartet> quartets, int day) const;

  /// The comparison value used for group bad-fractions: the learned expected
  /// RTT when history exists, else the badness threshold (bootstrap
  /// fallback). Exposed for tests and the ablation bench.
  [[nodiscard]] double comparison_rtt(analysis::ExpectedRttKey key, int day,
                                      net::Region region,
                                      net::DeviceClass device) const;

  [[nodiscard]] const BlameItConfig& config() const noexcept {
    return config_;
  }

 private:
  const net::Topology* topology_;
  const analysis::ExpectedRttLearner* learner_;
  BlameItConfig config_;
  analysis::BadnessThresholds thresholds_;
};

}  // namespace blameit::core
