// Algorithm 1 — coarse-grained fault localization from passive RTT data.
//
// Hierarchical elimination over one 5-minute bucket of quartets: start with
// the cloud node (richest aggregate), fall through to the middle BGP path,
// then the client, emitting "insufficient" when a group is too thin and
// "ambiguous" when the same /24 simultaneously saw good RTT at another
// location. Bad fractions compare against the *learned* expected RTTs
// (14-day medians), not the badness thresholds — §4.3 explains why.
//
// Parallel design (config.analytics_threads > 1): quartets are partitioned
// by cloud location across a util::ThreadPool.
//   Pass 1 — each shard builds GroupStats for its locations' cloud/middle
//     groups plus the per-/24 good-location sets. Every learner key embeds
//     the location, so shards never touch the same group; the per-/24 sets
//     DO cross shards (dual-homed blocks) and are merged in shard order
//     after the barrier — a set union, order-independent.
//   Pass 2 — contiguous input chunks are blamed in parallel against the
//     read-only merged state and concatenated in chunk order, so results
//     come out in input order.
// Every per-quartet decision is a pure function of ⟨group stats, merged
// good-location sets, learner medians⟩, none of which depend on execution
// order, so N-thread output is bit-identical to the serial path (asserted
// in tests).
#pragma once

#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include <array>

#include "analysis/expected_rtt.h"
#include "analysis/quartet.h"
#include "core/blame.h"
#include "core/config.h"
#include "net/topology.h"
#include "obs/registry.h"
#include "util/thread_pool.h"

namespace blameit::core {

/// /24s currently shielded from Cloud blame at a location because a recent
/// SteerShift churn event moved them there: entries are packed
/// (location << 32) | /24 block. Assembled by the pipeline from the churn
/// feed (config.churn_steer_shield); empty or null = no shielding, and
/// localize() is bit-identical to the churn-blind pipeline.
using SteerShield = std::unordered_set<std::uint64_t>;

[[nodiscard]] constexpr std::uint64_t steer_shield_key(
    net::CloudLocationId location, net::Slash24 block) noexcept {
  return (std::uint64_t{location.value} << 32) | block.block;
}

class PassiveLocalizer {
 public:
  PassiveLocalizer(const net::Topology* topology,
                   const analysis::ExpectedRttLearner* learner,
                   BlameItConfig config = {},
                   obs::Registry* registry = nullptr);

  /// Runs Algorithm 1 over one bucket's quartets (good and bad; the good
  /// ones shape the group fractions and the ambiguity signal). Returns one
  /// BlameResult per *bad* quartet, in input order regardless of thread
  /// count. `day` selects the learner's history window. A non-empty
  /// `shield` makes Cloud blame for shielded ⟨location, /24⟩ quartets
  /// require corroboration from the location's UN-shielded quartets (§13's
  /// re-steer rule); un-shielded quartets of an affected group likewise
  /// judge the cloud check on the un-steered evidence only.
  [[nodiscard]] std::vector<BlameResult> localize(
      std::span<const analysis::Quartet> quartets, int day,
      const SteerShield* shield = nullptr) const;

  /// The comparison value used for group bad-fractions: the learned expected
  /// RTT when history exists, else the badness threshold (bootstrap
  /// fallback). Exposed for tests and the ablation bench.
  [[nodiscard]] double comparison_rtt(analysis::ExpectedRttKey key, int day,
                                      net::Region region,
                                      net::DeviceClass device) const;

  [[nodiscard]] const BlameItConfig& config() const noexcept {
    return config_;
  }

  /// Parallelism localize() actually runs with (resolved from the knob).
  [[nodiscard]] int threads() const noexcept {
    return pool_ ? pool_->size() : 1;
  }

 private:
  const net::Topology* topology_;
  const analysis::ExpectedRttLearner* learner_;
  BlameItConfig config_;
  analysis::BadnessThresholds thresholds_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when serial

  // Instruments (null without a registry). Blame counters are bumped after
  // the parallel passes finish, from the merged result list, so the
  // registry never participates in the parallel section's determinism.
  obs::Histogram* localize_ms_h_ = nullptr;
  obs::Gauge* shard_imbalance_g_ = nullptr;
  std::array<obs::Counter*, kAllBlames.size()> blame_c_{};
};

}  // namespace blameit::core
