#include "core/reverse.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace blameit::core {

SimulatedClientProber::SimulatedClientProber(const net::Topology* topology,
                                             const sim::RttModel* model,
                                             sim::TracerouteConfig config)
    : topology_(topology), model_(model), config_(config) {
  if (!topology_ || !model_) {
    throw std::invalid_argument{"SimulatedClientProber: null dependency"};
  }
}

sim::TracerouteResult SimulatedClientProber::trace(
    net::Slash24 block, net::CloudLocationId location,
    util::MinuteTime when) {
  accountant_.record(location, when);

  sim::TracerouteResult result;
  result.from = location;
  result.target = block;
  result.time = when;

  const auto* cb = topology_->find_block(block);
  const auto* route =
      cb ? topology_->routing().route_for(location, block, when) : nullptr;
  if (!cb || !route) {
    result.reached = false;
    return result;
  }

  // The reverse path re-traverses the same ASes in opposite order (our
  // simulated internet is symmetric; real asymmetry would come from a
  // second routing table, which the interface already permits).
  const auto breakdown = model_->breakdown(
      location, *route, *cb, net::DeviceClass::NonMobile, when);

  util::Rng rng{util::hash_combine(
      config_.seed ^ 0x4E5u,
      util::hash_combine(static_cast<std::uint64_t>(when.minutes),
                         util::hash_combine(location.value, block.block)))};
  auto noisy = [&](double ms) {
    return ms * rng.lognormal(0.0, config_.hop_noise_sigma);
  };

  // Client-side view: the "cloud_ms" slot holds the client's own access
  // segment (the part before the first responding external hop), then the
  // middle ASes appear nearest-first, ending at the cloud AS.
  result.cloud_ms = noisy(breakdown.client_ms);
  double cumulative = result.cloud_ms;
  const auto middle = route->middle_ases();
  for (std::size_t i = middle.size(); i-- > 0;) {
    cumulative += noisy(breakdown.middle_ms[i]);
    result.hops.push_back(sim::TracerouteHop{middle[i], cumulative});
  }
  cumulative += noisy(breakdown.cloud_ms);
  result.hops.push_back(sim::TracerouteHop{route->cloud_as(), cumulative});
  result.reached = true;
  return result;
}

DualViewDiagnosis diagnose_dual(ActiveLocalizer& forward,
                                ReverseProbeSource& reverse,
                                net::CloudLocationId location,
                                net::MiddleSegmentId middle,
                                net::Slash24 target_block,
                                util::MinuteTime now,
                                std::optional<util::MinuteTime> issue_start) {
  DualViewDiagnosis dual;
  dual.forward =
      forward.diagnose(location, middle, target_block, now, issue_start);

  const auto probe = reverse.trace(target_block, location, now);
  dual.reverse_reached = probe.reached;
  if (probe.reached) {
    double best = 0.0;
    for (const auto& [as, ms] : probe.contributions()) {
      if (ms > best) {
        best = ms;
        dual.reverse_dominant = as;
      }
    }
  }
  dual.corroborated = dual.forward.culprit && dual.reverse_dominant &&
                      *dual.forward.culprit == *dual.reverse_dominant;
  return dual;
}

}  // namespace blameit::core
