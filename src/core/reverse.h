// Reverse-path probing extension (§5.1).
//
// Internet routing is asymmetric: the forward (cloud→client) and reverse
// (client→cloud) paths can differ, and BlameIt's deployed active phase only
// probes forward. The paper notes Azure's rich clients (the Odin fleet)
// could be coordinated to traceroute the reverse direction. This header is
// that integration point: an abstract ReverseProbeSource, a simulated
// client-side prober over the same network model, and a corroboration
// helper that cross-checks a forward diagnosis against the reverse view.
#pragma once

#include <optional>

#include "core/active.h"
#include "net/topology.h"
#include "sim/rtt_model.h"
#include "sim/traceroute.h"

namespace blameit::core {

/// Source of client→cloud traceroutes. Implementations may be real client
/// agents (production) or simulators (this repo).
class ReverseProbeSource {
 public:
  virtual ~ReverseProbeSource() = default;

  /// Issues one reverse traceroute from a host in `block` toward
  /// `location`. Hops are in travel order from the client: first the middle
  /// ASes nearest the client, last the cloud AS.
  [[nodiscard]] virtual sim::TracerouteResult trace(
      net::Slash24 block, net::CloudLocationId location,
      util::MinuteTime when) = 0;
};

/// Simulated client-side prober. Reuses the simulation's routing state and
/// RTT model, so forward and reverse views are consistent up to probe noise
/// — the controlled stand-in for a client measurement fleet.
class SimulatedClientProber final : public ReverseProbeSource {
 public:
  SimulatedClientProber(const net::Topology* topology,
                        const sim::RttModel* model,
                        sim::TracerouteConfig config = {});

  [[nodiscard]] sim::TracerouteResult trace(net::Slash24 block,
                                            net::CloudLocationId location,
                                            util::MinuteTime when) override;

  [[nodiscard]] const sim::ProbeAccountant& accountant() const noexcept {
    return accountant_;
  }

 private:
  const net::Topology* topology_;
  const sim::RttModel* model_;
  sim::TracerouteConfig config_;
  sim::ProbeAccountant accountant_;
};

/// A forward diagnosis cross-checked with one reverse probe.
struct DualViewDiagnosis {
  ActiveDiagnosis forward;
  bool reverse_reached = false;
  /// Largest absolute contributor seen from the client side (reverse probes
  /// have no background baselines, so they corroborate rather than diff).
  std::optional<net::AsId> reverse_dominant;
  /// True when the reverse view's dominant AS matches the forward culprit —
  /// strong evidence the fault is not an artifact of forward-path asymmetry.
  bool corroborated = false;
};

/// Runs the forward diagnosis and corroborates it with a reverse probe.
[[nodiscard]] DualViewDiagnosis diagnose_dual(
    ActiveLocalizer& forward, ReverseProbeSource& reverse,
    net::CloudLocationId location, net::MiddleSegmentId middle,
    net::Slash24 target_block, util::MinuteTime now,
    std::optional<util::MinuteTime> issue_start = std::nullopt);

}  // namespace blameit::core
