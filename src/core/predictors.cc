#include "core/predictors.h"

#include <algorithm>
#include <stdexcept>

namespace blameit::core {

DurationPredictor::DurationPredictor(int horizon_buckets)
    : horizon_(horizon_buckets) {
  if (horizon_ < 1) {
    throw std::invalid_argument{"DurationPredictor: horizon must be >= 1"};
  }
}

void DurationPredictor::record_duration(std::uint64_t key,
                                        int duration_buckets) {
  if (duration_buckets < 1) {
    throw std::invalid_argument{"DurationPredictor: duration must be >= 1"};
  }
  per_key_[key].push_back(duration_buckets);
  global_.push_back(duration_buckets);
}

const std::vector<int>& DurationPredictor::pool_for(std::uint64_t key) const {
  const auto it = per_key_.find(key);
  if (it != per_key_.end() && it->second.size() >= kMinKeyHistory) {
    return it->second;
  }
  return global_;
}

double DurationPredictor::expected_remaining_from(
    const std::vector<int>& durations, int elapsed, int horizon) {
  // An issue observed bad for `elapsed` buckets is consistent with any total
  // duration D >= elapsed (it may end exactly now). Then
  //   E[T_extra | D >= elapsed] = Σ_{T=1..horizon} P(D >= elapsed+T | D >=
  //   elapsed)
  // — the paper's Σ P(T|t)·T written as a survival sum.
  std::size_t alive = 0;
  for (const int d : durations) alive += d >= elapsed;
  if (alive == 0) return 1.0;  // outlasted all precedent: assume one more
  double expected = 0.0;
  for (int extra = 1; extra <= horizon; ++extra) {
    std::size_t surviving = 0;
    for (const int d : durations) surviving += d >= elapsed + extra;
    expected += static_cast<double>(surviving) / static_cast<double>(alive);
    if (surviving == 0) break;
  }
  return expected;
}

double DurationPredictor::expected_remaining(std::uint64_t key,
                                             int elapsed_buckets) const {
  if (elapsed_buckets < 1) elapsed_buckets = 1;
  const auto& pool = pool_for(key);
  if (pool.empty()) return 1.0;
  return expected_remaining_from(pool, elapsed_buckets, horizon_);
}

double DurationPredictor::conditional_survival(std::uint64_t key,
                                               int elapsed_buckets,
                                               int extra_buckets) const {
  const auto& pool = pool_for(key);
  std::size_t alive = 0;
  std::size_t surviving = 0;
  for (const int d : pool) {
    alive += d >= elapsed_buckets;
    surviving += d >= elapsed_buckets + extra_buckets;
  }
  if (alive == 0) return 0.0;
  return static_cast<double>(surviving) / static_cast<double>(alive);
}

std::size_t DurationPredictor::history_count(std::uint64_t key) const {
  const auto it = per_key_.find(key);
  return it == per_key_.end() ? 0 : it->second.size();
}

ClientVolumePredictor::ClientVolumePredictor(int window_days)
    : window_days_(window_days) {
  if (window_days_ < 1) {
    throw std::invalid_argument{"ClientVolumePredictor: window must be >= 1"};
  }
}

void ClientVolumePredictor::observe(std::uint64_t key, util::TimeBucket bucket,
                                    double users) {
  auto& slot = data_[key][bucket.bucket_of_day()];
  if (!slot.history.empty() && slot.history.back().first == bucket.day()) {
    // Multiple observations within one bucket (e.g. re-feeds): keep the max.
    slot.history.back().second = std::max(slot.history.back().second, users);
    return;
  }
  slot.history.emplace_back(bucket.day(), users);
  while (slot.history.size() >
         static_cast<std::size_t>(window_days_ + 1)) {
    slot.history.pop_front();
  }
}

double ClientVolumePredictor::predict(std::uint64_t key,
                                      util::TimeBucket bucket) const {
  const auto kit = data_.find(key);
  if (kit == data_.end()) return 0.0;
  const auto sit = kit->second.find(bucket.bucket_of_day());
  if (sit == kit->second.end()) return 0.0;
  double sum = 0.0;
  int n = 0;
  for (const auto& [day, users] : sit->second.history) {
    if (day >= bucket.day() || day < bucket.day() - window_days_) continue;
    sum += users;
    ++n;
  }
  return n == 0 ? 0.0 : sum / n;
}

void ClientVolumePredictor::evict_stale(int current_day) {
  for (auto& [key, slots] : data_) {
    for (auto& [bod, slot] : slots) {
      while (!slot.history.empty() &&
             slot.history.front().first < current_day - window_days_) {
        slot.history.pop_front();
      }
    }
  }
}

}  // namespace blameit::core
