#include "core/predictors.h"

#include <algorithm>
#include <climits>
#include <stdexcept>

namespace blameit::core {

DurationPredictor::DurationPredictor(int horizon_buckets)
    : horizon_(horizon_buckets) {
  if (horizon_ < 1) {
    throw std::invalid_argument{"DurationPredictor: horizon must be >= 1"};
  }
}

void DurationPredictor::record_duration(std::uint64_t key,
                                        int duration_buckets) {
  if (duration_buckets < 1) {
    throw std::invalid_argument{"DurationPredictor: duration must be >= 1"};
  }
  per_key_[key].push_back(duration_buckets);
  global_.push_back(duration_buckets);
}

const std::vector<int>& DurationPredictor::pool_for(std::uint64_t key) const {
  const auto it = per_key_.find(key);
  if (it != per_key_.end() && it->second.size() >= kMinKeyHistory) {
    return it->second;
  }
  return global_;
}

double DurationPredictor::expected_remaining_from(
    const std::vector<int>& durations, int elapsed, int horizon) {
  // An issue observed bad for `elapsed` buckets is consistent with any total
  // duration D >= elapsed (it may end exactly now). Then
  //   E[T_extra | D >= elapsed] = Σ_{T=1..horizon} P(D >= elapsed+T | D >=
  //   elapsed)
  // — the paper's Σ P(T|t)·T written as a survival sum.
  std::size_t alive = 0;
  for (const int d : durations) alive += d >= elapsed;
  if (alive == 0) return 1.0;  // outlasted all precedent: assume one more
  double expected = 0.0;
  for (int extra = 1; extra <= horizon; ++extra) {
    std::size_t surviving = 0;
    for (const int d : durations) surviving += d >= elapsed + extra;
    expected += static_cast<double>(surviving) / static_cast<double>(alive);
    if (surviving == 0) break;
  }
  return expected;
}

double DurationPredictor::expected_remaining(std::uint64_t key,
                                             int elapsed_buckets) const {
  if (elapsed_buckets < 1) elapsed_buckets = 1;
  const auto& pool = pool_for(key);
  if (pool.empty()) return 1.0;
  return expected_remaining_from(pool, elapsed_buckets, horizon_);
}

double DurationPredictor::conditional_survival(std::uint64_t key,
                                               int elapsed_buckets,
                                               int extra_buckets) const {
  const auto& pool = pool_for(key);
  std::size_t alive = 0;
  std::size_t surviving = 0;
  for (const int d : pool) {
    alive += d >= elapsed_buckets;
    surviving += d >= elapsed_buckets + extra_buckets;
  }
  if (alive == 0) return 0.0;
  return static_cast<double>(surviving) / static_cast<double>(alive);
}

std::size_t DurationPredictor::history_count(std::uint64_t key) const {
  const auto it = per_key_.find(key);
  return it == per_key_.end() ? 0 : it->second.size();
}

void DurationPredictor::save(std::string& out) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(per_key_.size());
  for (const auto& [key, durations] : per_key_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  store::put_varint(out, keys.size());
  std::uint64_t prev = 0;
  for (const std::uint64_t key : keys) {
    store::put_varint(out, key - prev);
    prev = key;
    const auto& durations = per_key_.at(key);
    store::put_varint(out, durations.size());
    for (const int d : durations) store::put_svarint(out, d);
  }
  store::put_varint(out, global_.size());
  for (const int d : global_) store::put_svarint(out, d);
}

void DurationPredictor::restore(store::ByteReader& in) {
  std::unordered_map<std::uint64_t, std::vector<int>> per_key;
  const std::uint64_t n_keys = in.varint();
  if (n_keys > (std::uint64_t{1} << 40)) in.fail("duration key count absurd");
  per_key.reserve(static_cast<std::size_t>(n_keys));
  std::uint64_t prev = 0;
  for (std::uint64_t k = 0; k < n_keys; ++k) {
    prev += in.varint();
    const std::uint64_t n = in.varint();
    if (n > (std::uint64_t{1} << 32)) in.fail("duration history absurd");
    auto& durations = per_key[prev];
    durations.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::int64_t d = in.svarint();
      if (d < 1 || d > INT_MAX) in.fail("duration out of range");
      durations.push_back(static_cast<int>(d));
    }
  }
  const std::uint64_t n_global = in.varint();
  if (n_global > (std::uint64_t{1} << 40)) in.fail("global pool absurd");
  std::vector<int> global;
  global.reserve(static_cast<std::size_t>(n_global));
  for (std::uint64_t i = 0; i < n_global; ++i) {
    const std::int64_t d = in.svarint();
    if (d < 1 || d > INT_MAX) in.fail("duration out of range");
    global.push_back(static_cast<int>(d));
  }
  per_key_ = std::move(per_key);
  global_ = std::move(global);
}

ClientVolumePredictor::ClientVolumePredictor(int window_days)
    : window_days_(window_days) {
  if (window_days_ < 1) {
    throw std::invalid_argument{"ClientVolumePredictor: window must be >= 1"};
  }
}

void ClientVolumePredictor::observe(std::uint64_t key, util::TimeBucket bucket,
                                    double users) {
  auto& slot = data_[key][bucket.bucket_of_day()];
  if (!slot.history.empty() && slot.history.back().first == bucket.day()) {
    // Multiple observations within one bucket (e.g. re-feeds): keep the max.
    slot.history.back().second = std::max(slot.history.back().second, users);
    return;
  }
  slot.history.emplace_back(bucket.day(), users);
  while (slot.history.size() >
         static_cast<std::size_t>(window_days_ + 1)) {
    slot.history.pop_front();
  }
}

double ClientVolumePredictor::predict(std::uint64_t key,
                                      util::TimeBucket bucket) const {
  const auto kit = data_.find(key);
  if (kit == data_.end()) return 0.0;
  const auto sit = kit->second.find(bucket.bucket_of_day());
  if (sit == kit->second.end()) return 0.0;
  double sum = 0.0;
  int n = 0;
  for (const auto& [day, users] : sit->second.history) {
    if (day >= bucket.day() || day < bucket.day() - window_days_) continue;
    sum += users;
    ++n;
  }
  return n == 0 ? 0.0 : sum / n;
}

void ClientVolumePredictor::evict_stale(int current_day) {
  for (auto& [key, slots] : data_) {
    for (auto& [bod, slot] : slots) {
      while (!slot.history.empty() &&
             slot.history.front().first < current_day - window_days_) {
        slot.history.pop_front();
      }
    }
  }
}

void ClientVolumePredictor::save(std::string& out) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(data_.size());
  for (const auto& [key, slots] : data_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  store::put_varint(out, keys.size());
  std::uint64_t prev = 0;
  for (const std::uint64_t key : keys) {
    store::put_varint(out, key - prev);
    prev = key;
    const auto& slots = data_.at(key);
    std::vector<int> bods;
    bods.reserve(slots.size());
    for (const auto& [bod, slot] : slots) bods.push_back(bod);
    std::sort(bods.begin(), bods.end());
    store::put_varint(out, bods.size());
    for (const int bod : bods) {
      store::put_svarint(out, bod);
      const auto& history = slots.at(bod).history;
      store::put_varint(out, history.size());
      for (const auto& [day, users] : history) {
        store::put_svarint(out, day);
        store::put_f64(out, users);
      }
    }
  }
}

void ClientVolumePredictor::restore(store::ByteReader& in) {
  std::unordered_map<std::uint64_t, std::unordered_map<int, Slot>> data;
  const std::uint64_t n_keys = in.varint();
  if (n_keys > (std::uint64_t{1} << 40)) in.fail("client key count absurd");
  data.reserve(static_cast<std::size_t>(n_keys));
  std::uint64_t prev = 0;
  for (std::uint64_t k = 0; k < n_keys; ++k) {
    prev += in.varint();
    auto& slots = data[prev];
    const std::uint64_t n_slots = in.varint();
    if (n_slots > (std::uint64_t{1} << 20)) in.fail("slot count absurd");
    for (std::uint64_t s = 0; s < n_slots; ++s) {
      const std::int64_t bod = in.svarint();
      if (bod < 0 || bod > INT_MAX) in.fail("bucket-of-day out of range");
      auto& slot = slots[static_cast<int>(bod)];
      const std::uint64_t n = in.varint();
      if (n > (std::uint64_t{1} << 20)) in.fail("slot history absurd");
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::int64_t day = in.svarint();
        if (day < 0 || day > INT_MAX) in.fail("history day out of range");
        const double users = in.f64();
        slot.history.emplace_back(static_cast<int>(day), users);
      }
    }
  }
  data_ = std::move(data);
}

}  // namespace blameit::core
