// Baseline: boolean network tomography over the client/middle/cloud
// segmentation (§4.1's infeasibility argument).
//
// Each quartet is a "path observation" crossing three segments; boolean
// tomography seeks a minimal set of bad segments that covers every bad path
// while touching no good path. §4.1 shows the system is under-determined:
// this solver makes that concrete by reporting, per bucket, whether a
// consistent minimal explanation exists and whether it is unique — the
// ambiguity rate is what BlameIt's hierarchical elimination removes.
#pragma once

#include <span>
#include <vector>

#include "analysis/quartet.h"
#include "net/topology.h"

namespace blameit::baselines {

/// Segment identity in the tomography graph.
struct TomographySegment {
  enum class Kind : std::uint8_t { Cloud, Middle, Client } kind{};
  std::uint64_t id = 0;  ///< location / (location,middle) / client AS value
  bool operator==(const TomographySegment&) const = default;
};

struct TomographyResult {
  /// True when at least one segment set explains all observations (every
  /// bad path crosses a blamed segment, no good path does).
  bool consistent = false;
  /// True when exactly one minimal explanation exists.
  bool unique = false;
  /// One minimal explanation (arbitrary representative when not unique).
  std::vector<TomographySegment> blamed;
  /// Count of minimal explanations found (capped at `max_solutions`).
  int solutions = 0;
};

struct TomographyConfig {
  /// Search cap: minimal covers of size above this are not enumerated
  /// (classic tomography also prefers small failure sets — Insight-2).
  int max_set_size = 3;
  /// Enumeration cap for counting alternative explanations.
  int max_solutions = 16;
};

/// Runs boolean tomography over one bucket of quartets.
[[nodiscard]] TomographyResult boolean_tomography(
    std::span<const analysis::Quartet> quartets,
    const TomographyConfig& config = {});

}  // namespace blameit::baselines
