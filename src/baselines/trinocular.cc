#include "baselines/trinocular.h"

#include <stdexcept>

#include "core/prioritizer.h"

namespace blameit::baselines {

TrinocularMonitor::TrinocularMonitor(const net::Topology* topology,
                                     sim::TracerouteEngine* engine,
                                     TrinocularConfig config)
    : topology_(topology), engine_(engine), config_(config) {
  if (!topology_ || !engine_) {
    throw std::invalid_argument{"TrinocularMonitor: null dependency"};
  }
  if (config_.base_period_minutes < 1 || config_.confirmation_probes < 0 ||
      config_.degraded_factor <= 1.0) {
    throw std::invalid_argument{"TrinocularConfig: invalid parameters"};
  }
}

void TrinocularMonitor::rebuild(util::MinuteTime now) {
  paths_.clear();
  index_.clear();
  for (const auto& loc : topology_->locations()) {
    for (const auto& block : topology_->blocks()) {
      const auto* route =
          topology_->routing().route_for(loc.id, block.block, now);
      if (!route) continue;
      const auto key = core::middle_issue_key(loc.id, route->middle);
      if (index_.contains(key)) continue;
      index_.emplace(key, paths_.size());
      paths_.push_back(PathBelief{.location = loc.id,
                                  .middle = route->middle,
                                  .block = block.block});
    }
  }
  built_ = true;
}

int TrinocularMonitor::observe(PathBelief& path, util::MinuteTime t) {
  int extra = 0;
  const auto result = engine_->trace(path.location, path.block, t);
  if (!result.reached) return extra;
  double rtt = result.hops.back().cumulative_rtt_ms;

  const bool looks_degraded =
      path.observations > 0 &&
      rtt > path.mean_rtt_ms * config_.degraded_factor;
  if (looks_degraded != path.degraded && path.observations > 0) {
    // Belief disagreement: burst confirmation probes (adaptive phase).
    int agree = 0;
    for (int i = 0; i < config_.confirmation_probes; ++i) {
      const auto recheck =
          engine_->trace(path.location, path.block, t.plus_minutes(i + 1));
      ++extra;
      if (!recheck.reached) continue;
      const double rrtt = recheck.hops.back().cumulative_rtt_ms;
      agree += (rrtt > path.mean_rtt_ms * config_.degraded_factor) ==
               looks_degraded;
    }
    if (agree * 2 >= config_.confirmation_probes) {
      path.degraded = looks_degraded;
    }
    path.consecutive_consistent = 0;  // state in flux: probe fast again
  } else {
    ++path.consecutive_consistent;
  }
  if (!path.degraded) {
    // Healthy observations refresh the long-term mean.
    path.mean_rtt_ms = path.observations == 0
                           ? rtt
                           : 0.9 * path.mean_rtt_ms + 0.1 * rtt;
  }
  ++path.observations;
  return extra;
}

int TrinocularMonitor::step(util::MinuteTime prev, util::MinuteTime now) {
  if (!built_) rebuild(now);
  int probes = 0;
  const int period = config_.base_period_minutes;
  for (auto& path : paths_) {
    std::int64_t t = (prev.minutes / period + 1) * period;
    for (; t <= now.minutes; t += period) {
      ++path.cycle;
      // Adaptive suppression: confident beliefs are refreshed less often.
      const int skip = std::min(
          config_.max_backoff,
          1 + path.consecutive_consistent / config_.backoff_after);
      if (path.cycle % skip != 0) continue;
      probes += 1 + observe(path, util::MinuteTime{t});
    }
  }
  return probes;
}

bool TrinocularMonitor::believes_degraded(
    net::CloudLocationId location, net::MiddleSegmentId middle) const {
  const auto it = index_.find(core::middle_issue_key(location, middle));
  return it != index_.end() && paths_[it->second].degraded;
}

std::uint64_t TrinocularMonitor::probes_per_day() {
  if (!built_) rebuild(util::MinuteTime{0});
  return paths_.size() *
         static_cast<std::uint64_t>(util::kMinutesPerDay /
                                    config_.base_period_minutes);
}

}  // namespace blameit::baselines
