// Baseline: grouping the middle segment by ⟨client AS, metro⟩ instead of the
// BGP path — the "traditional practice" the paper compares against (§4.2,
// Fig 6/Fig 11). Only 47% of ⟨AS, Metro⟩ client groups see one consistent
// path in Azure's tables, so this grouping mixes different middles into one
// aggregate and dilutes fault signals.
#pragma once

#include <span>
#include <vector>

#include "analysis/expected_rtt.h"
#include "analysis/quartet.h"
#include "core/blame.h"
#include "core/config.h"
#include "net/topology.h"

namespace blameit::baselines {

/// Variant of Algorithm 1 whose middle grouping key is ⟨location, client
/// AS, metro, device⟩. Cloud and client steps are identical to BlameIt's,
/// isolating the grouping decision for the Fig 11 ablation.
class AsMetroLocalizer {
 public:
  AsMetroLocalizer(const net::Topology* topology,
                   const analysis::ExpectedRttLearner* learner,
                   core::BlameItConfig config = {});

  [[nodiscard]] std::vector<core::BlameResult> localize(
      std::span<const analysis::Quartet> quartets, int day) const;

  /// The learner key used for an ⟨AS, metro⟩ middle group (exposed so the
  /// bench can warm the learner with the same keys).
  [[nodiscard]] static analysis::ExpectedRttKey group_key(
      net::CloudLocationId location, net::AsId client_as, net::MetroId metro,
      net::DeviceClass device) noexcept;

 private:
  const net::Topology* topology_;
  const analysis::ExpectedRttLearner* learner_;
  core::BlameItConfig config_;
  analysis::BadnessThresholds thresholds_;
};

}  // namespace blameit::baselines
