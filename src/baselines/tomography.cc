#include "baselines/tomography.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/prioritizer.h"

namespace blameit::baselines {

namespace {

struct PathObs {
  // Segment indices into the segment table.
  std::array<std::size_t, 3> segments;
  bool bad = false;
};

}  // namespace

TomographyResult boolean_tomography(
    std::span<const analysis::Quartet> quartets,
    const TomographyConfig& config) {
  TomographyResult result;

  // Intern segments.
  std::vector<TomographySegment> segments;
  std::unordered_map<std::uint64_t, std::size_t> seg_index;
  auto intern = [&](TomographySegment seg) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(seg.kind) << 56) ^ seg.id;
    const auto it = seg_index.find(key);
    if (it != seg_index.end()) return it->second;
    seg_index.emplace(key, segments.size());
    segments.push_back(seg);
    return segments.size() - 1;
  };

  std::vector<PathObs> paths;
  paths.reserve(quartets.size());
  for (const auto& q : quartets) {
    PathObs obs;
    obs.segments[0] = intern(TomographySegment{
        TomographySegment::Kind::Cloud, q.key.location.value});
    obs.segments[1] = intern(TomographySegment{
        TomographySegment::Kind::Middle,
        core::middle_issue_key(q.key.location, q.middle)});
    obs.segments[2] = intern(TomographySegment{
        TomographySegment::Kind::Client, q.client_as.value});
    obs.bad = q.bad;
    paths.push_back(obs);
  }

  const bool any_bad =
      std::any_of(paths.begin(), paths.end(),
                  [](const PathObs& p) { return p.bad; });
  if (!any_bad) {
    result.consistent = true;
    result.unique = true;
    result.solutions = 1;
    return result;  // empty explanation
  }

  // Candidate segments: those that appear on at least one bad path but on
  // NO good path (blaming a segment on a good path contradicts the boolean
  // model where a path is good only if all its segments are good).
  std::unordered_set<std::size_t> on_good;
  std::unordered_set<std::size_t> on_bad;
  for (const auto& p : paths) {
    for (const auto s : p.segments) {
      (p.bad ? on_bad : on_good).insert(s);
    }
  }
  std::vector<std::size_t> candidates;
  for (const auto s : on_bad) {
    if (!on_good.contains(s)) candidates.push_back(s);
  }
  std::sort(candidates.begin(), candidates.end());

  // Bad paths must each be covered by a blamed candidate segment.
  std::vector<const PathObs*> bad_paths;
  for (const auto& p : paths) {
    if (p.bad) bad_paths.push_back(&p);
  }

  auto covers = [&](const std::vector<std::size_t>& chosen) {
    for (const auto* p : bad_paths) {
      bool covered = false;
      for (const auto s : p->segments) {
        if (std::find(chosen.begin(), chosen.end(), s) != chosen.end()) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    }
    return true;
  };

  // Enumerate minimal covers by increasing size (Insight-2: small sets
  // first). Candidate counts here are small, so the combinatorial search is
  // exact up to the caps.
  std::vector<std::vector<std::size_t>> minimal;
  for (int size = 1;
       size <= config.max_set_size && minimal.empty(); ++size) {
    std::vector<std::size_t> pick(static_cast<std::size_t>(size));
    auto recurse = [&](auto&& self, std::size_t start,
                       std::size_t depth) -> void {
      if (static_cast<int>(minimal.size()) >= config.max_solutions) return;
      if (depth == pick.size()) {
        if (covers(pick)) minimal.push_back(pick);
        return;
      }
      for (std::size_t i = start; i < candidates.size(); ++i) {
        pick[depth] = candidates[i];
        self(self, i + 1, depth + 1);
      }
    };
    recurse(recurse, 0, 0);
  }

  result.solutions = static_cast<int>(minimal.size());
  result.consistent = !minimal.empty();
  result.unique = minimal.size() == 1;
  if (!minimal.empty()) {
    for (const auto s : minimal.front()) {
      result.blamed.push_back(segments[s]);
    }
  }
  return result;
}

}  // namespace blameit::baselines
