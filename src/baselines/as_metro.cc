#include "baselines/as_metro.h"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace blameit::baselines {

AsMetroLocalizer::AsMetroLocalizer(
    const net::Topology* topology,
    const analysis::ExpectedRttLearner* learner, core::BlameItConfig config)
    : topology_(topology), learner_(learner), config_(config) {
  if (!topology_ || !learner_) {
    throw std::invalid_argument{"AsMetroLocalizer: null dependency"};
  }
}

analysis::ExpectedRttKey AsMetroLocalizer::group_key(
    net::CloudLocationId location, net::AsId client_as, net::MetroId metro,
    net::DeviceClass device) noexcept {
  // Tag 3 distinguishes this namespace from cloud_key (1) and middle_key (2).
  return analysis::ExpectedRttKey{
      (std::uint64_t{3} << 62) | (std::uint64_t{location.value} << 44) |
      ((std::uint64_t{client_as.value} & 0x7FFF) << 12) |
      (std::uint64_t{metro.value} << 2) | static_cast<std::uint64_t>(device)};
}

std::vector<core::BlameResult> AsMetroLocalizer::localize(
    std::span<const analysis::Quartet> quartets, int day) const {
  struct GroupStats {
    int quartets = 0;
    int bad = 0;
  };
  std::unordered_map<std::uint64_t, GroupStats> cloud_groups;
  std::unordered_map<std::uint64_t, GroupStats> metro_groups;
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint16_t>>
      good_locations;

  auto cloud_group_key = [](const analysis::Quartet& q) {
    return (std::uint64_t{q.key.location.value} << 8) |
           static_cast<std::uint64_t>(q.key.device);
  };
  auto metro_of = [&](const analysis::Quartet& q) {
    const auto* block = topology_->find_block(q.key.block);
    return block ? block->metro : net::MetroId{0};
  };
  auto metro_group_key = [&](const analysis::Quartet& q) {
    return group_key(q.key.location, q.client_as, metro_of(q), q.key.device)
        .packed;
  };

  auto comparison = [&](analysis::ExpectedRttKey key,
                        const analysis::Quartet& q) {
    const auto learned = learner_->expected(key, day);
    return learned ? *learned
                   : thresholds_.threshold(q.region, q.key.device);
  };

  for (const auto& q : quartets) {
    auto& cg = cloud_groups[cloud_group_key(q)];
    ++cg.quartets;
    cg.bad += q.mean_rtt_ms >
              comparison(analysis::cloud_key(q.key.location, q.key.device),
                         q);
    auto& mg = metro_groups[metro_group_key(q)];
    ++mg.quartets;
    mg.bad += q.mean_rtt_ms >
              comparison(group_key(q.key.location, q.client_as, metro_of(q),
                                   q.key.device),
                         q);
    if (!q.bad) good_locations[q.key.block.block].insert(q.key.location.value);
  }

  std::vector<core::BlameResult> results;
  for (const auto& q : quartets) {
    if (!q.bad) continue;
    core::BlameResult result;
    result.quartet = q;
    const auto& cg = cloud_groups[cloud_group_key(q)];
    const auto& mg = metro_groups[metro_group_key(q)];
    const double cloud_fraction =
        cg.quartets ? static_cast<double>(cg.bad) / cg.quartets : 0.0;
    const double metro_fraction =
        mg.quartets ? static_cast<double>(mg.bad) / mg.quartets : 0.0;
    if (cg.quartets <= config_.min_group_quartets) {
      result.blame = core::Blame::Insufficient;
    } else if (cloud_fraction >= config_.tau) {
      result.blame = core::Blame::Cloud;
      result.faulty_as = topology_->cloud_as();
    } else if (mg.quartets <= config_.min_group_quartets) {
      result.blame = core::Blame::Insufficient;
    } else if (metro_fraction >= config_.tau) {
      result.blame = core::Blame::Middle;
    } else {
      const auto it = good_locations.find(q.key.block.block);
      const bool good_elsewhere =
          it != good_locations.end() &&
          (it->second.size() > 1 ||
           !it->second.contains(q.key.location.value));
      if (good_elsewhere) {
        result.blame = core::Blame::Ambiguous;
      } else {
        result.blame = core::Blame::Client;
        result.faulty_as = q.client_as;
      }
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace blameit::baselines
