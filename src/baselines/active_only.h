// Baseline: pure active probing (§5.1's strawman). Continuous traceroutes
// from every cloud location to every BGP path at a fixed cadence (the paper
// uses 10 minutes for ground truth, §6.4/§6.5) give full before/after
// coverage — and a probe bill ~72× BlameIt's. This baseline exists to
// reproduce that comparison.
#pragma once

#include "core/background.h"
#include "net/topology.h"
#include "sim/traceroute.h"

namespace blameit::baselines {

struct ActiveOnlyConfig {
  /// Probe period per ⟨location, BGP path⟩ (paper ground truth: 10 min).
  int period_minutes = 10;
};

class ActiveOnlyMonitor {
 public:
  ActiveOnlyMonitor(const net::Topology* topology,
                    sim::TracerouteEngine* engine,
                    ActiveOnlyConfig config = {});

  /// Probes every ⟨location, BGP path⟩ whose period elapsed in (prev, now],
  /// updating its rolling baseline. Returns probes issued.
  int step(util::MinuteTime prev, util::MinuteTime now);

  /// Localizes the culprit AS for a (location, path) using the last two
  /// probes (previous = baseline, latest = incident view). Mirrors
  /// core::ActiveLocalizer's diff rule so the comparison is apples-to-apples.
  [[nodiscard]] std::optional<net::AsId> culprit(
      net::CloudLocationId location, net::MiddleSegmentId middle) const;

  /// Probes a full day costs at this cadence (overhead accounting).
  [[nodiscard]] std::uint64_t probes_per_day();

 private:
  struct PathState {
    net::CloudLocationId location;
    net::MiddleSegmentId middle;
    net::Slash24 block;
    // Last two per-AS contribution snapshots (older, newer).
    std::vector<std::pair<net::AsId, double>> previous;
    std::vector<std::pair<net::AsId, double>> latest;
    double previous_cloud_ms = 0.0;
    double latest_cloud_ms = 0.0;
    bool has_two = false;
    bool has_one = false;
  };

  void rebuild_paths(util::MinuteTime now);

  const net::Topology* topology_;
  sim::TracerouteEngine* engine_;
  ActiveOnlyConfig config_;
  std::vector<PathState> paths_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  bool built_ = false;
};

}  // namespace blameit::baselines
