#include "baselines/active_only.h"

#include <stdexcept>

#include "core/prioritizer.h"

namespace blameit::baselines {

ActiveOnlyMonitor::ActiveOnlyMonitor(const net::Topology* topology,
                                     sim::TracerouteEngine* engine,
                                     ActiveOnlyConfig config)
    : topology_(topology), engine_(engine), config_(config) {
  if (!topology_ || !engine_) {
    throw std::invalid_argument{"ActiveOnlyMonitor: null dependency"};
  }
  if (config_.period_minutes < 1) {
    throw std::invalid_argument{"ActiveOnlyConfig: period must be >= 1"};
  }
}

void ActiveOnlyMonitor::rebuild_paths(util::MinuteTime now) {
  paths_.clear();
  index_.clear();
  for (const auto& loc : topology_->locations()) {
    for (const auto& block : topology_->blocks()) {
      const auto* route =
          topology_->routing().route_for(loc.id, block.block, now);
      if (!route) continue;
      const auto key = core::middle_issue_key(loc.id, route->middle);
      if (index_.contains(key)) continue;
      index_.emplace(key, paths_.size());
      paths_.push_back(PathState{.location = loc.id,
                                 .middle = route->middle,
                                 .block = block.block});
    }
  }
  built_ = true;
}

int ActiveOnlyMonitor::step(util::MinuteTime prev, util::MinuteTime now) {
  if (!built_) rebuild_paths(now);
  int probes = 0;
  for (auto& path : paths_) {
    // One probe per elapsed period boundary, like the background prober but
    // without staggering (the strawman probes everything on the clock).
    const int period = config_.period_minutes;
    std::int64_t t = (prev.minutes / period + 1) * period;
    for (; t <= now.minutes; t += period) {
      const auto result =
          engine_->trace(path.location, path.block, util::MinuteTime{t});
      ++probes;
      if (!result.reached) continue;
      path.previous = std::move(path.latest);
      path.previous_cloud_ms = path.latest_cloud_ms;
      path.latest = result.contributions();
      path.latest_cloud_ms = result.cloud_ms;
      path.has_two = path.has_one;
      path.has_one = true;
    }
  }
  return probes;
}

std::optional<net::AsId> ActiveOnlyMonitor::culprit(
    net::CloudLocationId location, net::MiddleSegmentId middle) const {
  const auto it = index_.find(core::middle_issue_key(location, middle));
  if (it == index_.end()) return std::nullopt;
  const PathState& path = paths_[it->second];
  if (!path.has_two) return std::nullopt;
  std::unordered_map<net::AsId, double> base;
  for (const auto& [as, ms] : path.previous) base[as] = ms;
  double best_increase = 0.0;
  std::optional<net::AsId> best;
  const double cloud_increase =
      path.latest_cloud_ms - path.previous_cloud_ms;
  if (cloud_increase > best_increase) {
    best_increase = cloud_increase;
    best = topology_->cloud_as();
  }
  for (const auto& [as, ms] : path.latest) {
    const auto bit = base.find(as);
    const double increase = bit == base.end() ? ms : ms - bit->second;
    if (increase > best_increase) {
      best_increase = increase;
      best = as;
    }
  }
  return best;
}

std::uint64_t ActiveOnlyMonitor::probes_per_day() {
  if (!built_) rebuild_paths(util::MinuteTime{0});
  return paths_.size() *
         static_cast<std::uint64_t>(util::kMinutesPerDay /
                                    config_.period_minutes);
}

}  // namespace blameit::baselines
