// Baseline: Trinocular-style adaptive probing (Quan et al., SIGCOMM'13),
// re-targeted from reachability to latency state as the paper's comparison
// point ("BlameIt issues 20× fewer active probes than Trinocular", §6.5).
//
// Faithful-in-spirit simplification: each ⟨location, BGP path⟩ carries a
// belief that the path is degraded, refreshed by periodic probes; when an
// observation disagrees with the current belief, Trinocular bursts up to
// `confirmation_probes` recheck probes before switching state. The knob
// structure (base period + adaptive bursts over the whole path population)
// is what drives its probe bill.
#pragma once

#include "net/topology.h"
#include "sim/traceroute.h"

namespace blameit::baselines {

struct TrinocularConfig {
  /// Base refresh period per path (Trinocular probes each block on an ~11
  /// minute cycle; we default to the same).
  int base_period_minutes = 11;
  /// Extra probes issued to confirm a suspected state change.
  int confirmation_probes = 3;
  /// RTT multiplier over the learned mean that counts as "degraded".
  double degraded_factor = 1.5;
  /// Adaptive suppression: after `backoff_after` consecutive observations
  /// that confirm the current belief, only every k-th cycle is probed, with
  /// k growing up to `max_backoff` (Trinocular's belief model skips probes
  /// whose expected information gain is low).
  int backoff_after = 8;
  int max_backoff = 3;
};

class TrinocularMonitor {
 public:
  TrinocularMonitor(const net::Topology* topology,
                    sim::TracerouteEngine* engine,
                    TrinocularConfig config = {});

  /// Advances probing over (prev, now]. Returns probes issued.
  int step(util::MinuteTime prev, util::MinuteTime now);

  /// Whether the monitor currently believes the path is degraded.
  [[nodiscard]] bool believes_degraded(net::CloudLocationId location,
                                       net::MiddleSegmentId middle) const;

  [[nodiscard]] std::uint64_t probes_per_day();

 private:
  struct PathBelief {
    net::CloudLocationId location;
    net::MiddleSegmentId middle;
    net::Slash24 block;
    double mean_rtt_ms = 0.0;  ///< EWMA of healthy observations
    bool degraded = false;
    int observations = 0;
    int consecutive_consistent = 0;  ///< drives the adaptive backoff
    std::int64_t cycle = 0;          ///< base-period cycle counter
  };

  void rebuild(util::MinuteTime now);
  /// Probes one path at `t`; returns extra confirmation probes issued.
  int observe(PathBelief& path, util::MinuteTime t);

  const net::Topology* topology_;
  sim::TracerouteEngine* engine_;
  TrinocularConfig config_;
  std::vector<PathBelief> paths_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  bool built_ = false;
};

}  // namespace blameit::baselines
