// Pipeline-wide observability: a thread-safe registry of named counters,
// gauges, and fixed-bucket latency histograms, with point-in-time snapshots
// and text/JSON exporters.
//
// Design rules, in order of importance:
//  - Hot paths never pay for metrics they don't use. Every instrumented
//    component takes an optional `Registry*`; when it is null the null-safe
//    free helpers (obs::add, obs::set, obs::record, ...) compile down to a
//    single pointer test, and ScopedTimer skips the clock reads entirely.
//  - Instrument sites resolve their instruments ONCE (at construction) and
//    keep the returned pointer: registration takes the registry mutex, but
//    updates are lock-free relaxed atomics, safe from any thread.
//  - Metrics never feed back into the computation. Localization output with
//    a registry attached is bit-identical to output without one (tested);
//    the registry observes, it does not participate.
//
// Naming convention: dot-separated lowercase paths, `<component>.<metric>`
// (e.g. "ingest.records_in", "passive.blame.middle", "step.localize_ms").
// Histograms of wall time end in `_ms` and use kLatencyBucketsMs unless the
// site passes custom bounds.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace blameit::obs {

/// Monotonically increasing event count. All operations are relaxed atomics:
/// increments from any thread, wait-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written (or maximum-so-far) instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if `v` is larger (high-water-mark semantics).
  void set_max(double v) noexcept {
    double prev = value_.load(std::memory_order_relaxed);
    while (prev < v && !value_.compare_exchange_weak(
                           prev, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Default wall-time bucket upper bounds, in milliseconds.
inline constexpr double kLatencyBucketsMs[] = {
    0.05, 0.1, 0.25, 0.5, 1.0,  2.5,   5.0,   10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0};

/// Fixed-bucket histogram: bucket i counts values <= bounds[i] (first match);
/// one implicit overflow bucket catches the rest. Records are wait-free
/// relaxed atomics; bounds are immutable after construction.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void record(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Point-in-time view of every registered instrument, name-sorted. Values of
/// one snapshot are each individually consistent (relaxed reads of live
/// atomics); a snapshot taken after writers quiesce is exact. For
/// histograms, `count` is derived from the bucket counts read by the same
/// snapshot, so `count == sum(counts)` holds even when records race the
/// snapshot (`sum`/`max` may trail by the in-flight record).
struct Snapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1, last = overflow
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;

    [[nodiscard]] double mean() const noexcept {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  [[nodiscard]] std::optional<std::uint64_t> counter_value(
      std::string_view name) const;
  [[nodiscard]] std::optional<double> gauge_value(std::string_view name) const;
  [[nodiscard]] const HistogramSample* histogram(std::string_view name) const;
};

/// Owns every instrument; hands out stable pointers. Registration locks a
/// mutex (do it once, at component construction); instrument updates and
/// snapshot() reads are lock-free on the instruments themselves.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the named instrument, creating it on first use. Pointers stay
  /// valid for the registry's lifetime. A histogram's bounds are fixed by
  /// its first registration; later calls with different bounds get the
  /// existing instrument.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name,
                       std::span<const double> bounds = kLatencyBucketsMs);

  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Null-safe registration: resolve instruments through a possibly-null
// registry. A component built without a registry holds null instrument
// pointers and every update below is a predictable not-taken branch.
[[nodiscard]] inline Counter* counter(Registry* r, std::string_view name) {
  return r ? r->counter(name) : nullptr;
}
[[nodiscard]] inline Gauge* gauge(Registry* r, std::string_view name) {
  return r ? r->gauge(name) : nullptr;
}
[[nodiscard]] inline Histogram* histogram(
    Registry* r, std::string_view name,
    std::span<const double> bounds = kLatencyBucketsMs) {
  return r ? r->histogram(name, bounds) : nullptr;
}

// Null-safe updates.
inline void add(Counter* c, std::uint64_t n = 1) noexcept {
  if (c) c->add(n);
}
inline void set(Gauge* g, double v) noexcept {
  if (g) g->set(v);
}
inline void set_max(Gauge* g, double v) noexcept {
  if (g) g->set_max(v);
}
inline void record(Histogram* h, double v) noexcept {
  if (h) h->record(v);
}

/// RAII stage span: on destruction, records the elapsed wall milliseconds
/// into `hist` (if any) and adds them to `*out_ms` (if any) — the latter is
/// how StepReport carries per-stage timings even without a registry. With
/// both sinks null the clock is never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist, double* out_ms = nullptr) noexcept
      : hist_(hist), out_ms_(out_ms) {
    if (hist_ || out_ms_) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (!hist_ && !out_ms_) return;
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    if (hist_) hist_->record(ms);
    if (out_ms_) *out_ms_ += ms;
  }

 private:
  Histogram* hist_;
  double* out_ms_;
  std::chrono::steady_clock::time_point start_{};
};

/// Human-readable dump: one line per counter/gauge, a count/mean/max line
/// plus bucket rows per histogram.
[[nodiscard]] std::string render_text(const Snapshot& snapshot);

/// Machine-readable dump (compact, via util::json): {"counters": {...},
/// "gauges": {...}, "histograms": {name: {"count", "sum", "max",
/// "buckets": [[le, n], ...]}}} where the overflow bucket's `le` is null.
void write_json(const Snapshot& snapshot, std::ostream& os);
[[nodiscard]] std::string to_json(const Snapshot& snapshot);

/// Influx-style line protocol for a push/scrape sink, one line per
/// instrument: `<measurement>,metric=<name>,kind=counter value=<n>i`;
/// histograms carry count/sum/max/mean fields.
[[nodiscard]] std::string render_line_protocol(
    const Snapshot& snapshot, std::string_view measurement = "blameit");

}  // namespace blameit::obs
