#include "obs/registry.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/json.h"

namespace blameit::obs {

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      counts_(new std::atomic<std::uint64_t>[bounds.size() + 1]) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument{"Histogram: bounds must be ascending"};
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::record(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  double prev = max_.load(std::memory_order_relaxed);
  while (prev < v &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

namespace {

template <typename Map, typename Make>
auto* find_or_make(Map& map, std::string_view name, const Make& make) {
  const auto it = map.find(name);
  if (it != map.end()) return it->second.get();
  return map.emplace(std::string{name}, make()).first->second.get();
}

}  // namespace

Counter* Registry::counter(std::string_view name) {
  std::lock_guard lock{mutex_};
  return find_or_make(counters_, name,
                      [] { return std::make_unique<Counter>(); });
}

Gauge* Registry::gauge(std::string_view name) {
  std::lock_guard lock{mutex_};
  return find_or_make(gauges_, name, [] { return std::make_unique<Gauge>(); });
}

Histogram* Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  std::lock_guard lock{mutex_};
  return find_or_make(histograms_, name, [&] {
    return std::make_unique<Histogram>(bounds);
  });
}

Snapshot Registry::snapshot() const {
  std::lock_guard lock{mutex_};
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    // Internal consistency under concurrent record(): derive the sample
    // count from the bucket counts read in this snapshot, instead of
    // reading the separately-maintained total. record() bumps the bucket
    // before the total, so the two reads can disagree mid-record; deriving
    // makes count == sum(buckets) hold by construction.
    auto counts = h->bucket_counts();
    std::uint64_t total = 0;
    for (const auto n : counts) total += n;
    snap.histograms.push_back(
        {name, h->bounds(), std::move(counts), total, h->sum(), h->max()});
  }
  return snap;
}

std::optional<std::uint64_t> Snapshot::counter_value(
    std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return std::nullopt;
}

std::optional<double> Snapshot::gauge_value(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return std::nullopt;
}

const Snapshot::HistogramSample* Snapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string render_text(const Snapshot& snapshot) {
  std::ostringstream oss;
  for (const auto& c : snapshot.counters) {
    oss << c.name << " = " << c.value << '\n';
  }
  for (const auto& g : snapshot.gauges) {
    oss << g.name << " = " << g.value << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    oss << h.name << ": count=" << h.count << " mean=" << h.mean()
        << " max=" << h.max << '\n';
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;  // sparse: most buckets are empty
      oss << "  le=";
      if (i < h.bounds.size()) {
        oss << h.bounds[i];
      } else {
        oss << "+inf";
      }
      oss << " : " << h.counts[i] << '\n';
    }
  }
  return oss.str();
}

void write_json(const Snapshot& snapshot, std::ostream& os) {
  os << to_json(snapshot);
}

std::string to_json(const Snapshot& snapshot) {
  util::json::Writer w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& c : snapshot.counters) w.member(c.name, c.value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& g : snapshot.gauges) w.member(g.name, g.value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : snapshot.histograms) {
    w.key(h.name).begin_object();
    w.member("count", h.count);
    w.member("sum", h.sum);
    w.member("max", h.max);
    w.key("buckets").begin_array();
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      w.begin_array();
      if (b < h.bounds.size()) {
        w.value(h.bounds[b]);
      } else {
        w.null();  // the implicit +inf overflow bucket
      }
      w.value(h.counts[b]).end_array();
    }
    w.end_array().end_object();
  }
  w.end_object().end_object();
  return std::move(w).str();
}

namespace {

// Influx line protocol demands backslash-escaped commas/spaces/equals in
// tag values. Metric names are dot paths, but escape defensively anyway.
std::string lp_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == ',' || ch == ' ' || ch == '=') out += '\\';
    out += ch;
  }
  return out;
}

}  // namespace

std::string render_line_protocol(const Snapshot& snapshot,
                                 std::string_view measurement) {
  std::string out;
  const std::string m = lp_escape(measurement);
  for (const auto& c : snapshot.counters) {
    out += m + ",metric=" + lp_escape(c.name) +
           ",kind=counter value=" + std::to_string(c.value) + "i\n";
  }
  for (const auto& g : snapshot.gauges) {
    out += m + ",metric=" + lp_escape(g.name) +
           ",kind=gauge value=" + util::json::number(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    out += m + ",metric=" + lp_escape(h.name) +
           ",kind=histogram count=" + std::to_string(h.count) +
           "i,sum=" + util::json::number(h.sum) +
           ",max=" + util::json::number(h.max) +
           ",mean=" + util::json::number(h.mean()) + "\n";
  }
  return out;
}

}  // namespace blameit::obs
