#include "scenario/runner.h"

#include <memory>

#include <optional>

#include "analysis/quartet.h"
#include "ingest/source.h"
#include "sim/chaos.h"
#include "sim/rtt_model.h"
#include "sim/traceroute.h"
#include "store/snapshot.h"
#include "util/digest.h"
#include "util/json.h"

namespace blameit::scenario {

namespace {

/// Folds one step's output into the trace digest. Everything that makes a
/// run's OUTPUT (not its timing) is included: the verdict stream with its
/// exact order, and the active diagnoses. Stage wall times are excluded by
/// construction.
void fold_step(util::Digest64& digest, const core::StepReport& report) {
  digest.update(report.now.minutes);
  digest.update(static_cast<std::uint64_t>(report.blames.size()));
  for (const auto& blame : report.blames) {
    const auto& key = blame.quartet.key;
    digest.update(static_cast<std::uint64_t>(key.block.block));
    digest.update(static_cast<std::uint64_t>(key.location.value));
    digest.update(static_cast<std::uint64_t>(key.device));
    digest.update(key.bucket.index);
    digest.update(static_cast<std::uint64_t>(blame.blame));
    digest.update(
        static_cast<std::uint64_t>(blame.faulty_as ? blame.faulty_as->value
                                                   : 0));
  }
  digest.update(static_cast<std::uint64_t>(report.diagnoses.size()));
  for (const auto& diag : report.diagnoses) {
    digest.update(static_cast<std::uint64_t>(diag.location.value));
    digest.update(static_cast<std::uint64_t>(diag.middle.value));
    digest.update(
        static_cast<std::uint64_t>(diag.culprit ? diag.culprit->value : 0));
    digest.update(static_cast<std::uint64_t>(diag.confidence));
    digest.update(diag.probe_reached);
    digest.update(diag.coarse_middle);
  }
  digest.update(report.degraded_passive_only);
}

/// One full execution of the pack. When `restart_at` is set, the pipeline is
/// snapshotted after the step at that time, destroyed, and a fresh pipeline
/// is restored from the snapshot bytes before the next step. Everything
/// else — topology, fault schedule, chaos, traceroute engine, ingest
/// plumbing — lives on: it models the internet and the telemetry stream,
/// which do not restart when the monitor does.
RunResult run_once(const Pack& pack, const RunnerOptions& options,
                   std::optional<util::MinuteTime> restart_at) {
  auto topology = net::make_topology(pack.topology);

  sim::FaultInjector faults;
  sim::TelemetryConfig telemetry_config;
  telemetry_config.seed = pack.telemetry_seed;
  auto generator = std::make_unique<sim::TelemetryGenerator>(
      topology.get(), &faults, telemetry_config);
  auto model = std::make_unique<sim::RttModel>(topology.get(), &faults);

  std::unique_ptr<sim::ChaosInjector> chaos;
  if (pack.chaos.enabled()) {
    chaos = std::make_unique<sim::ChaosInjector>(pack.chaos);
  }
  auto engine = std::make_unique<sim::TracerouteEngine>(
      topology.get(), model.get(), sim::TracerouteConfig{}, chaos.get());

  // Schedule: surges first (they do not touch routing), then incidents —
  // route disruptions require monotonically non-decreasing change times per
  // (location, prefix) timeline, and resolve_incidents already ran in pack
  // order.
  for (const auto& surge : pack.surges) {
    generator->add_surge(sim::TrafficSurge{.start = surge.start,
                                           .duration_minutes =
                                               surge.duration_minutes,
                                           .region = surge.region,
                                           .multiplier = surge.multiplier});
  }
  auto incidents = resolve_incidents(pack, *topology);
  sim::apply_incidents(incidents,
                       sim::ApplyTargets{.injector = &faults,
                                         .generator = generator.get(),
                                         .topology = topology.get()});

  core::BlameItConfig pipeline_config = pack.pipeline;
  if (options.analytics_threads > 0) {
    pipeline_config.analytics_threads = options.analytics_threads;
  }

  std::unique_ptr<ingest::IngestEngine> ingest_engine;
  core::BlameItPipeline::QuartetSource source;
  if (pack.mode == FeedMode::Records) {
    ingest::IngestConfig ingest_config = pack.ingest;
    if (options.ingest_shards > 0) {
      ingest_config.shards = options.ingest_shards;
    }
    ingest_engine = std::make_unique<ingest::IngestEngine>(
        topology.get(), analysis::BadnessThresholds{}, ingest_config);
    sim::ChaosRecordFeed::Feed feed =
        [&generator = *generator](
            util::TimeBucket bucket,
            const std::function<void(const analysis::RttRecord&)>& sink) {
          generator.generate_records_shuffled(bucket, sink);
        };
    if (chaos && pack.chaos.any_telemetry_chaos()) {
      auto chaotic = std::make_shared<sim::ChaosRecordFeed>(chaos.get(),
                                                            std::move(feed));
      feed = [chaotic](util::TimeBucket bucket,
                       const sim::ChaosRecordFeed::Sink& sink) {
        (*chaotic)(bucket, sink);
      };
    }
    source = ingest::StreamingQuartetSource{ingest_engine.get(),
                                            std::move(feed)};
  } else {
    const net::Topology* topo = topology.get();
    const sim::TelemetryGenerator* gen = generator.get();
    source = [topo, gen](util::TimeBucket bucket) {
      analysis::QuartetBuilder builder{topo, analysis::BadnessThresholds{}};
      gen->generate_aggregates(
          bucket, [&](const analysis::QuartetKey& k, int n, double mean) {
            builder.add_aggregate(k, n, mean);
          });
      return builder.take_bucket(bucket);
    };
  }

  // The source is copied (not moved) into the pipeline so a restarted
  // pipeline can be wired to the very same feed.
  auto pipeline = std::make_unique<core::BlameItPipeline>(
      topology.get(), engine.get(), source, pipeline_config);

  for (int day = 0; day < pack.warmup_days; ++day) {
    for (int b = 0; b < util::kBucketsPerDay; ++b) {
      pipeline->warmup_bucket(
          util::TimeBucket{day * util::kBucketsPerDay + b});
    }
  }

  IncidentScorer scorer{topology.get(), std::move(incidents)};
  util::Digest64 digest;
  RunResult result;
  result.pack_name = pack.name;

  for (int day = pack.warmup_days; day < pack.warmup_days + pack.run_days;
       ++day) {
    for (int minute = 15; minute <= util::kMinutesPerDay; minute += 15) {
      const auto now = util::MinuteTime::from_days(day).plus_minutes(minute);
      const auto report = pipeline->step(now);
      scorer.observe(report);
      fold_step(digest, report);
      ++result.steps;
      result.blames_total += static_cast<long>(report.blames.size());
      result.diagnoses_total += static_cast<long>(report.diagnoses.size());

      if (restart_at && now == *restart_at) {
        // Snapshot, kill, restore. The snapshot round-trips through its
        // serialized byte form — the same container live_pipeline writes to
        // disk — so checksums and version gates are exercised, not just the
        // in-memory section list.
        store::SnapshotWriter writer;
        pipeline->save_snapshot(writer);
        std::string bytes = writer.serialize();
        pipeline.reset();
        pipeline = std::make_unique<core::BlameItPipeline>(
            topology.get(), engine.get(), source, pipeline_config);
        pipeline->restore_snapshot(store::SnapshotReader::from_bytes(
            std::move(bytes), "<restart at " +
                                  std::to_string(restart_at->minutes) +
                                  "m>"));
      }
    }
  }

  result.digest = digest.hex();
  result.scores = scorer.finish();
  for (const auto& score : result.scores) {
    if (score.passed) {
      ++result.passed;
    } else {
      ++result.failed;
    }
  }
  result.accuracy =
      result.scores.empty()
          ? 1.0
          : static_cast<double>(result.passed) /
                static_cast<double>(result.scores.size());

  if (ingest_engine) {
    ingest_engine->close();
    const auto stats = ingest_engine->stats();
    result.ingest_records_in = stats.records_in;
    result.ingest_late_dropped = stats.late_dropped;
    result.ingest_backpressure_waits = stats.backpressure_waits;
    result.ingest_ring_high_water =
        static_cast<std::uint64_t>(stats.ring_high_water);
  }
  return result;
}

}  // namespace

RunResult run_pack(const Pack& pack, const RunnerOptions& options) {
  RunResult reference = run_once(pack, options, std::nullopt);
  if (!pack.restart) return reference;

  // Restart pack: the reference run above is the ground truth; the second
  // run kills and restores the pipeline mid-window. The restarted run is
  // what the pack REPORTS (its digest is what goldens pin), with the
  // reference digest alongside so drift in either run is caught.
  RunResult result = run_once(pack, options, pack.restart->at);
  result.restarted = true;
  result.uninterrupted_digest = reference.digest;
  result.restart_ok = result.digest == reference.digest;
  return result;
}

std::string manifest_jsonl(const Pack& pack, const RunResult& result,
                           const std::string& pack_path,
                           const RunnerOptions& options) {
  std::string out;
  const auto rerun_suffix = [&]() {
    std::string s;
    if (options.analytics_threads > 0) {
      s += " --threads " + std::to_string(options.analytics_threads);
    }
    if (options.ingest_shards > 0) {
      s += " --shards " + std::to_string(options.ingest_shards);
    }
    return s;
  }();

  for (const auto& score : result.scores) {
    util::json::Writer w;
    w.begin_object()
        .member("pack", pack.name)
        .member("incident", score.name)
        .member("expected", core::to_string(score.expected))
        .member("majority", core::to_string(score.majority))
        .member("votes_for_majority", score.votes_for_majority)
        .member("votes_total", score.votes_total)
        .member("detected", score.detected)
        .member("as_identified", score.as_identified)
        .member("primary", score.primary);
    w.key("overlapped_with").begin_array();
    for (const auto& partner : score.overlapped_with) w.value(partner);
    w.end_array();
    w.member("passed", score.passed);
    if (!score.passed) {
      w.member("rerun",
               "scenario_runner --pack " + pack_path + rerun_suffix +
                   "  # incident: " + score.name);
    }
    w.end_object();
    out += std::move(w).str();
    out += '\n';
  }

  util::json::Writer w;
  w.begin_object()
      .member("pack", pack.name)
      .member("digest", result.digest)
      .member("passed", result.passed)
      .member("failed", result.failed)
      .member("accuracy", result.accuracy)
      .member("steps", result.steps)
      .member("blames_total", static_cast<std::int64_t>(result.blames_total))
      .member("diagnoses_total",
              static_cast<std::int64_t>(result.diagnoses_total))
      .member("ingest_records_in", result.ingest_records_in)
      .member("ingest_late_dropped", result.ingest_late_dropped)
      .member("ingest_backpressure_waits", result.ingest_backpressure_waits)
      .member("ingest_ring_high_water", result.ingest_ring_high_water)
      .end_object();
  out += std::move(w).str();
  out += '\n';
  return out;
}

}  // namespace blameit::scenario
