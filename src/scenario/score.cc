#include "scenario/score.h"

#include <algorithm>

namespace blameit::scenario {

core::Blame expected_blame(sim::FaultKind kind) noexcept {
  switch (kind) {
    case sim::FaultKind::CloudLocation: return core::Blame::Cloud;
    case sim::FaultKind::MiddleAs: return core::Blame::Middle;
    default: return core::Blame::Client;
  }
}

bool attributable(const net::Topology& topology,
                  const analysis::Quartet& quartet,
                  const sim::Incident& incident) {
  if (quartet.region != incident.region) return false;
  switch (incident.kind) {
    case sim::FaultKind::CloudLocation:
      return quartet.key.location == incident.cloud_location;
    case sim::FaultKind::MiddleAs: {
      // Re-steers and flap storms have no single faulted AS; any quartet of
      // the region counts (their impact is region-wide path churn).
      if (!incident.culprit_as &&
          incident.target_as == net::AsId{}) {
        return true;
      }
      const auto& mids = topology.interner().ases(quartet.middle);
      return std::find(mids.begin(), mids.end(), incident.target_as) !=
             mids.end();
    }
    case sim::FaultKind::ClientAs:
      return quartet.client_as == incident.target_as;
    case sim::FaultKind::ClientBlock:
      return quartet.key.block == incident.block;
  }
  return false;
}

IncidentScorer::IncidentScorer(const net::Topology* topology,
                               std::vector<sim::Incident> incidents)
    : topology_(topology),
      incidents_(std::move(incidents)),
      verdicts_(incidents_.size()),
      as_identified_(incidents_.size(), false),
      overlaps_(incidents_.size()) {}

void IncidentScorer::observe(const core::StepReport& report) {
  const auto now = report.now;
  // Which incidents are live for this step (one bucket of grace past the
  // end, matching the 15-minute cadence lag).
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < incidents_.size(); ++i) {
    const auto& inc = incidents_[i];
    if (now >= inc.start && now < inc.end().plus_minutes(15)) {
      live.push_back(i);
    }
  }
  if (live.empty()) return;

  std::vector<std::size_t> claimants;
  for (const auto& blame : report.blames) {
    // Score the dense non-mobile series; Insufficient is an abstention
    // (bench-scale mobile groups routinely fall under the quartet floor).
    if (blame.quartet.key.device != net::DeviceClass::NonMobile) continue;
    if (blame.blame == core::Blame::Insufficient) continue;
    claimants.clear();
    for (const auto i : live) {
      if (attributable(*topology_, blame.quartet, incidents_[i])) {
        claimants.push_back(i);
      }
    }
    for (const auto i : claimants) {
      ++verdicts_[i][blame.blame];
      if (incidents_[i].culprit_as && blame.faulty_as &&
          *blame.faulty_as == *incidents_[i].culprit_as) {
        as_identified_[i] = true;
      }
    }
    if (claimants.size() > 1) {
      for (const auto i : claimants) {
        for (const auto j : claimants) {
          if (i != j) overlaps_[i].insert(j);
        }
      }
    }
  }
  for (const auto& diag : report.diagnoses) {
    if (!diag.culprit) continue;
    for (const auto i : live) {
      if (incidents_[i].culprit_as &&
          *diag.culprit == *incidents_[i].culprit_as) {
        as_identified_[i] = true;
      }
    }
  }
}

std::vector<IncidentScore> IncidentScorer::finish() const {
  std::vector<IncidentScore> out;
  out.reserve(incidents_.size());
  for (std::size_t i = 0; i < incidents_.size(); ++i) {
    const auto& inc = incidents_[i];
    IncidentScore score;
    score.name = inc.name;
    score.expected = expected_blame(inc.kind);
    for (const auto& [blame, n] : verdicts_[i]) {
      score.votes_total += n;
      if (n > score.votes_for_majority) {
        score.votes_for_majority = n;
        score.majority = blame;
      }
    }
    score.detected = score.votes_total > 0;
    score.as_identified = as_identified_[i];

    // Acceptable categories: own expected + expected of overlap partners.
    std::set<core::Blame> acceptable{score.expected};
    for (const auto j : overlaps_[i]) {
      acceptable.insert(expected_blame(incidents_[j].kind));
      score.overlapped_with.push_back(incidents_[j].name);
      // Latest start wins primary ownership of the shared records; ties
      // break toward the schedule order (earlier index stays primary).
      if (incidents_[j].start > inc.start ||
          (incidents_[j].start == inc.start && j < i)) {
        score.primary = false;
      }
    }
    std::sort(score.overlapped_with.begin(), score.overlapped_with.end());
    score.passed = score.detected && acceptable.count(score.majority) > 0;
    out.push_back(std::move(score));
  }
  return out;
}

}  // namespace blameit::scenario
